"""Tests for the (gamma, ell, L)-decomposition (Definition 71, Lemma 72)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.rake_compress import (
    Layer,
    gamma_for_k_layers,
    rake_compress,
    validate_decomposition,
)
from repro.constructions import build_lower_bound_graph, caterpillar, random_tree
from repro.local import Graph, balanced_tree, path_graph


class TestLayerOrdering:
    def test_definition_75_order(self):
        r11 = Layer.rake(1, 1)
        r12 = Layer.rake(1, 2)
        c1 = Layer.compress(1)
        r21 = Layer.rake(2, 1)
        assert r11 < r12 < c1 < r21

    def test_repr(self):
        assert repr(Layer.rake(2, 3)) == "R(2,3)"
        assert repr(Layer.compress(1)) == "C(1)"


class TestDecompositionValidity:
    @pytest.mark.parametrize("gamma,ell", [(1, 3), (2, 4), (3, 2)])
    def test_path(self, gamma, ell):
        dec = rake_compress(path_graph(200), gamma, ell)
        assert not validate_decomposition(dec)

    def test_balanced_tree(self):
        dec = rake_compress(balanced_tree(3, 5), 1, 4)
        assert not validate_decomposition(dec)

    def test_lower_bound_graph(self):
        lb = build_lower_bound_graph([8, 8, 10])
        dec = rake_compress(lb.graph, 2, 3)
        assert not validate_decomposition(dec)

    def test_caterpillar(self):
        dec = rake_compress(caterpillar(50, 2), 1, 3)
        assert not validate_decomposition(dec)

    def test_every_node_assigned(self):
        g = balanced_tree(2, 6)
        dec = rake_compress(g, 1, 4)
        assert all(layer is not None for layer in dec.layer_of)

    def test_rejects_cycle(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        with pytest.raises(ValueError):
            rake_compress(g, 1, 3)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=150),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_random_trees_property(self, n, gamma, ell, seed):
        g = random_tree(n, 4, random.Random(seed))
        dec = rake_compress(g, gamma, ell)
        issues = validate_decomposition(dec)
        assert not issues, issues[:3]


class TestLayerCounts:
    def test_gamma_one_log_layers(self):
        # Lemma 72: gamma=1 gives O(log n) iterations on bushy trees
        for height in (4, 6, 8):
            g = balanced_tree(2, height)
            dec = rake_compress(g, 1, 4)
            assert dec.num_iterations <= 3 * math.ceil(math.log2(g.n)) + 3

    def test_gamma_poly_constant_layers(self):
        # Lemma 72: gamma ~ n^{1/k} gives <= k+1 iterations
        lb = build_lower_bound_graph([30, 40])
        g = lb.graph
        for k in (2, 3):
            gamma = gamma_for_k_layers(g.n, k, 4)
            dec = rake_compress(g, gamma, 4)
            assert dec.num_iterations <= k + 1, (k, dec.num_iterations)

    def test_compress_needed_on_long_paths(self):
        # a bare path cannot be raked away quickly: compress must fire
        dec = rake_compress(path_graph(100), 1, 4)
        assert dec.compress_paths, "no compress layer used on a long path"

    def test_star_rakes_entirely(self):
        from repro.local import star_graph

        dec = rake_compress(star_graph(10), 1, 4)
        assert not dec.compress_paths


class TestSplitRun:
    def test_chunk_sizes(self):
        from repro.algorithms.rake_compress import _split_run

        for m in range(3, 200):
            chunks, seps = _split_run(list(range(m)), 3)
            assert all(3 <= len(c) <= 6 for c in chunks), (m, [len(c) for c in chunks])
            assert sum(len(c) for c in chunks) + len(seps) == m
            # separators are interior nodes
            assert 0 not in seps and m - 1 not in seps
