"""Tests for the d-free weight problem and Algorithm A (Section 7)."""

import math
import random
from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.dfree_solver import (
    astar_assignment,
    dfree_radius,
    optimal_copy_assignment,
    run_algorithm_a,
)
from repro.constructions import random_tree
from repro.lcl import DFreeWeightProblem
from repro.lcl.dfree import A_INPUT, CONNECT, COPY, DECLINE, W_INPUT, count_copies
from repro.local import Graph, path_graph


def regular_weight_tree(w: int, delta: int) -> Graph:
    """Balanced tree of w nodes; root (handle 0, input A) and every other
    node have delta-1 children — the Lemma 23 instance."""
    edges = []
    frontier = deque([0])
    nxt, remaining = 1, w - 1
    while remaining > 0:
        p = frontier.popleft()
        for _ in range(delta - 1):
            if remaining == 0:
                break
            edges.append((p, nxt))
            frontier.append(nxt)
            nxt += 1
            remaining -= 1
    return Graph(w, edges, [A_INPUT] + [W_INPUT] * (w - 1))


class TestProblemChecker:
    def test_a_node_cannot_decline(self):
        g = Graph(2, [(0, 1)], [A_INPUT, W_INPUT])
        prob = DFreeWeightProblem(5, 2)
        assert not prob.verify(g, [DECLINE, DECLINE]).valid
        assert prob.verify(g, [COPY, DECLINE]).valid

    def test_connect_support(self):
        g = path_graph(4).with_inputs([A_INPUT, W_INPUT, W_INPUT, A_INPUT])
        prob = DFreeWeightProblem(5, 2)
        assert prob.verify(g, [CONNECT] * 4).valid
        # a W-Connect node needs two Connect neighbours
        assert not prob.verify(g, [COPY, CONNECT, DECLINE, COPY]).valid

    def test_copy_decline_budget(self):
        g = Graph(5, [(0, 1), (0, 2), (0, 3), (0, 4)],
                  [A_INPUT] + [W_INPUT] * 4)
        prob = DFreeWeightProblem(5, 2)
        assert prob.verify(g, [COPY, DECLINE, DECLINE, COPY, COPY]).valid
        assert not prob.verify(g, [COPY, DECLINE, DECLINE, DECLINE, COPY]).valid


class TestAlgorithmA:
    def test_radius_schedule(self):
        L, R = dfree_radius(1000, 2)
        assert L == math.ceil(math.log(1000, 3))
        assert R == 3 * L + 3

    @pytest.mark.parametrize("delta,d", [(5, 2), (6, 3), (9, 4)])
    def test_valid_on_regular_trees(self, delta, d):
        for w in (5, 60, 400):
            g = regular_weight_tree(w, delta)
            sol = run_algorithm_a(g, d)
            assert DFreeWeightProblem(delta, d).verify(g, sol.outputs).valid

    def test_connect_between_close_a_nodes(self):
        # two A-nodes at distance 3 with big n: everything on the path
        # connects
        g = path_graph(4).with_inputs([A_INPUT, W_INPUT, W_INPUT, A_INPUT])
        sol = run_algorithm_a(g, d=2, n_global=1000)
        assert sol.outputs == [CONNECT] * 4

    def test_far_a_nodes_copy(self):
        m = 101
        inputs = [W_INPUT] * m
        inputs[0] = inputs[m - 1] = A_INPUT
        g = path_graph(m).with_inputs(inputs)
        sol = run_algorithm_a(g, d=2, n_global=m)
        assert sol.outputs[0] == COPY and sol.outputs[m - 1] == COPY
        assert DFreeWeightProblem(5, 2).verify(g, sol.outputs).valid

    def test_all_w_component_declines(self):
        g = path_graph(10).with_inputs([W_INPUT] * 10)
        sol = run_algorithm_a(g, d=2)
        assert all(o == DECLINE for o in sol.outputs)

    def test_rejects_bad_inputs(self):
        g = path_graph(2).with_inputs([A_INPUT, "bogus"])
        with pytest.raises(ValueError):
            run_algorithm_a(g, 2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=120),
           st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=2, max_value=3))
    def test_random_instances_valid(self, n, seed, d):
        rng = random.Random(seed)
        g = random_tree(n, 4, rng)
        inputs = [A_INPUT if rng.random() < 0.15 else W_INPUT for _ in range(n)]
        g = g.with_inputs(inputs)
        sol = run_algorithm_a(g, d)
        prob = DFreeWeightProblem(max(5, d + 3), d)
        assert prob.verify(g, sol.outputs).valid


class TestCopyEfficiency:
    """Lemmas 23 and 40: the minimum Copy count on balanced delta-regular
    trees is Theta(w^x), x = log(delta-1-d)/log(delta-1)."""

    @pytest.mark.parametrize("delta,d", [(5, 2), (9, 4)])
    def test_copy_count_tracks_w_to_x(self, delta, d):
        x = math.log(delta - 1 - d) / math.log(delta - 1)
        for w in (100, 1000):
            g = regular_weight_tree(w, delta)
            sol = run_algorithm_a(g, d)
            copies = count_copies(sol.outputs)
            assert copies >= 0.3 * w**x, (w, copies, w**x)
            assert copies <= 8 * w**x, (w, copies, w**x)

    def test_dp_never_worse_than_astar(self):
        for delta, d, w in [(5, 2, 200), (6, 3, 300)]:
            g = regular_weight_tree(w, delta)
            L, _ = dfree_radius(w, d)
            ball_map = g.ball(0, L + 1)
            ball, frontier = set(ball_map), {
                u for u, dist in ball_map.items() if dist == L + 1
            }
            a = astar_assignment(g, 0, ball, frontier, d)
            o = optimal_copy_assignment(g, 0, ball, frontier, d)
            a_copies = sum(1 for lab in a.values() if lab == COPY)
            o_copies = sum(1 for lab in o.values() if lab == COPY)
            assert o_copies <= a_copies

    def test_lemma40_bound(self):
        # |U^_Copy| <= 6 |U^|^x for the A* assignment
        for delta, d in [(5, 2), (9, 4)]:
            x = math.log(delta - 1 - d) / math.log(delta - 1)
            g = regular_weight_tree(1500, delta)
            L, _ = dfree_radius(1500, d)
            ball_map = g.ball(0, L + 1)
            ball, frontier = set(ball_map), {
                u for u, dist in ball_map.items() if dist == L + 1
            }
            a = astar_assignment(g, 0, ball, frontier, d)
            copies = sum(1 for lab in a.values() if lab == COPY)
            assert copies <= 6 * len(ball) ** x

    def test_dp_copy_component_connected(self):
        g = regular_weight_tree(500, 5)
        sol = run_algorithm_a(g, 2)
        comp = sol.copy_component_of[0]
        comp_set = set(comp)
        # connected: BFS from the A-node covers everything
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for w in g.neighbors(u):
                if w in comp_set and w not in seen:
                    seen.add(w)
                    stack.append(w)
        assert seen == comp_set
        assert [v for v in g.nodes() if sol.outputs[v] == COPY] == comp
