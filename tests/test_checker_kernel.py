"""Compiled checker kernel vs. per-node reference oracle.

The kernel contract (ISSUE 3): for every ported problem, ``verify`` via
:mod:`repro.lcl.kernel` and the legacy ``verify_reference`` path must
return identical verdicts and identical violation ``(node, rule)`` sets —
on random labelings, on valid solver outputs, and on valid outputs with
injected single-node corruptions.  ``early_exit`` stops at the first
violation; ``verify_batch`` amortizes the per-graph compile and must
agree with per-call ``verify``.
"""

import random

import pytest

from repro.families import get_family
from repro.lcl import (
    Coloring25,
    Coloring35,
    DFreeWeightProblem,
    HierarchicalLabeling,
    LCLProblem,
    ProperColoring,
    Violation,
    Weighted25,
    Weighted35,
    WeightAugmented25,
    compile_checker,
    valid_coloring25,
)
from repro.lcl.blackwhite import BlackWhiteLCL, two_color_tree
from repro.lcl.dfree import A_INPUT, W_INPUT
from repro.lcl.weighted import ACTIVE, WEIGHT, connect, copy_of, decline
from repro.local import Graph, path_graph


def assert_equivalent(problem, graph, outputs, tag=""):
    """Kernel and reference agree on verdict and (node, rule) sets; the
    early-exit scan agrees on the verdict with at most one violation."""
    ref = problem.verify_reference(graph, outputs)
    ker = problem.compiled().verify(graph, outputs)
    assert ref.valid == ker.valid, (tag, ref.violations[:3], ker.violations[:3])
    ref_set = {(v.node, v.rule) for v in ref.violations}
    ker_set = {(v.node, v.rule) for v in ker.violations}
    assert ref_set == ker_set, (tag, sorted(ref_set ^ ker_set)[:10])
    fast = problem.compiled().verify(graph, outputs, early_exit=True)
    assert fast.valid == ref.valid
    assert len(fast.violations) <= 1
    return ref


FAMILIES = ("random_tree", "caterpillar", "grid", "spider",
            "random_regular_d3", "hypercube", "fragmented_forest")


class TestRandomLabelingEquivalence:
    """Random (overwhelmingly invalid) labelings across graph families."""

    @pytest.mark.parametrize("seed", range(6))
    def test_all_problems(self, seed):
        rng = random.Random(seed)
        for trial in range(12):
            g = get_family(rng.choice(FAMILIES)).instance(
                rng.randint(1, 36), rng.randint(0, 5))
            n = g.n
            k = rng.randint(1, 3)
            for prob in (Coloring25(k), Coloring35(k)):
                outs = [rng.choice(list(prob.sigma_out) + ["Q"])
                        for _ in range(n)]
                assert_equivalent(prob, g, outs, ("hier", k, seed, trial))
            prob = ProperColoring(3)
            outs = [rng.choice([0, 1, 2, 7]) for _ in range(n)]
            assert_equivalent(prob, g, outs, ("proper", seed, trial))
            gi = g.with_inputs(
                [rng.choice([A_INPUT, W_INPUT]) for _ in range(n)])
            outs = [rng.choice(["Decline", "Connect", "Copy", "x"])
                    for _ in range(n)]
            assert_equivalent(
                DFreeWeightProblem(5, 2), gi, outs, ("dfree", seed, trial))
            gw = g.with_inputs(
                [rng.choice([ACTIVE, WEIGHT]) for _ in range(n)])
            for prob in (Weighted25(5, 2, k), Weighted35(5, 2, k)):
                pool = (list(prob.base.sigma_out)
                        + [decline(), connect(), ("Copy",), "zz"]
                        + [copy_of(s) for s in prob.base.sigma_out])
                outs = [rng.choice(pool) for _ in range(n)]
                assert_equivalent(prob, gw, outs, ("weighted", seed, trial))
            prob = HierarchicalLabeling(k)
            outs = [
                (rng.choice(list(prob.sigma_out)),
                 rng.choice([None, None] + list(range(-1, n + 1))))
                for _ in range(n)
            ]
            assert_equivalent(prob, g, outs, ("labeling", seed, trial))
            prob = WeightAugmented25(k)
            outs = [
                rng.choice(list(prob.base.sigma_out) + ["?"])
                if gw.input_of(v) == ACTIVE else
                (rng.choice(list(prob.labeling.sigma_out)),
                 rng.choice([None] + list(range(n))),
                 rng.choice(list(prob.base.sigma_out) + ["Decline"]))
                for v in range(n)
            ]
            assert_equivalent(prob, gw, outs, ("wa25", seed, trial))


class TestValidSolutionsAndCorruptions:
    """Solver outputs verify valid on both paths; every single-node
    corruption yields identical verdicts and violation node-sets."""

    def corruption_sweep(self, problem, graph, outputs, mutants, rng,
                         nodes=None):
        assert problem.verify_reference(graph, outputs).valid
        assert problem.compiled().verify(graph, outputs).valid
        pool = list(nodes if nodes is not None else range(graph.n))
        for v in rng.sample(pool, min(12, len(pool))):
            for mutant in mutants:
                if mutant == outputs[v]:
                    continue
                bad = list(outputs)
                bad[v] = mutant
                assert_equivalent(problem, graph, bad, ("corrupt", v))

    def test_coloring25(self):
        rng = random.Random(0)
        g = get_family("random_tree").instance(120, 3)
        prob = Coloring25(2)
        out = valid_coloring25(g, 2)
        self.corruption_sweep(prob, g, out, ["W", "B", "E", "D"], rng)

    def test_coloring25_grid(self):
        rng = random.Random(1)
        g = get_family("grid").instance(150, 0)
        prob = Coloring25(2)
        out = valid_coloring25(g, 2)
        self.corruption_sweep(prob, g, out, ["W", "B", "E", "D", "R"], rng)

    def test_dfree(self):
        rng = random.Random(2)
        g = get_family("bounded_tree_d3").instance(120, 0).with_inputs(
            [W_INPUT] * 120)
        prob = DFreeWeightProblem(5, 2)
        out = ["Copy"] * 120
        self.corruption_sweep(
            prob, g, out, ["Decline", "Connect", "Copy"], rng)

    def test_weighted25(self):
        from repro.algorithms import run_apoly
        from repro.constructions import build_weighted_construction
        from repro.constructions.lowerbound import paper_lengths
        from repro.local import random_ids

        rng = random.Random(3)
        delta, d, k = 5, 2, 2
        wi = build_weighted_construction(paper_lengths(300, [0.4]), delta, 200)
        ids = random_ids(wi.graph.n, rng=random.Random(7))
        tr = run_apoly(wi.graph, ids, delta, d, k)
        prob = Weighted25(delta, d, k)
        mutants = [decline(), connect(), copy_of("W"), copy_of("E"), "W"]
        self.corruption_sweep(prob, wi.graph, tr.outputs, mutants, rng)

    def test_hierarchical_labeling(self):
        from repro.algorithms import solve_hierarchical_labeling

        rng = random.Random(4)
        g = get_family("bounded_tree_d3").instance(140, 2)
        sol = solve_hierarchical_labeling(g, 3)
        out = sol.as_outputs(g.n)
        prob = HierarchicalLabeling(3)
        mutants = [("R1", None), ("R2", 0), ("C1", None), ("C2", 1)]
        self.corruption_sweep(prob, g, out, mutants, rng)

    def test_proper_coloring(self):
        rng = random.Random(5)
        g = path_graph(90)
        prob = ProperColoring(2)
        out = [v % 2 for v in range(90)]
        self.corruption_sweep(prob, g, out, [0, 1, 2], rng)


class TestEarlyExit:
    def test_first_violation_only(self):
        g = path_graph(50)
        prob = ProperColoring(2)
        bad = [0] * 50  # every edge monochromatic: O(n) violations
        full = prob.verify(g, bad)
        fast = prob.verify(g, bad, early_exit=True)
        assert not full.valid and not fast.valid
        assert len(full.violations) > 10
        assert len(fast.violations) == 1

    def test_valid_labeling_unaffected(self):
        g = path_graph(20)
        prob = ProperColoring(2)
        good = [v % 2 for v in range(20)]
        assert prob.verify(g, good, early_exit=True).valid

    def test_alphabet_early_exit(self):
        g = path_graph(10)
        prob = Coloring25(2)
        res = prob.verify(g, ["?"] * 10, early_exit=True)
        assert not res.valid
        assert len(res.violations) == 1
        assert res.violations[0].rule == "alphabet"

    def test_reference_fallback_truncates(self):
        class Odd(LCLProblem):
            sigma_out = frozenset({0, 1})

            def check_node(self, graph, outputs, v):
                return [Violation(v, "odd")] if outputs[v] else []

        g = path_graph(6)
        prob = Odd()
        assert prob.compiled() is None
        res = prob.verify(g, [1] * 6, early_exit=True)
        assert not res.valid and len(res.violations) == 1


class TestVerifyBatch:
    def test_matches_per_call_verify(self):
        rng = random.Random(9)
        g = get_family("random_tree").instance(60, 1)
        prob = Coloring25(2)
        batch = [
            [rng.choice(["W", "B", "E", "D"]) for _ in range(60)]
            for _ in range(8)
        ]
        batch.append(valid_coloring25(g, 2))
        singles = [prob.verify(g, outs) for outs in batch]
        batched = prob.verify_batch(g, batch)
        assert [r.valid for r in singles] == [r.valid for r in batched]
        for a, b in zip(singles, batched):
            assert {(v.node, v.rule) for v in a.violations} == \
                {(v.node, v.rule) for v in b.violations}

    def test_compile_cache_reused_across_batch(self):
        g = get_family("random_tree").instance(40, 0)
        prob = Coloring25(2)
        checker = prob.compiled()
        checker.verify(g, valid_coloring25(g, 2))
        cached = checker._cache
        assert cached[0] is g
        checker.verify_batch(g, [valid_coloring25(g, 2)] * 3)
        assert checker._cache[1] is cached[1]

    def test_length_mismatch_rejected(self):
        g = path_graph(5)
        prob = ProperColoring(2)
        with pytest.raises(ValueError):
            prob.verify(g, [0, 1])
        with pytest.raises(ValueError):
            prob.verify_batch(g, [[0, 1, 0, 1, 0], [0, 1]])


class TestBlackWhiteKernel:
    def edge_labels(self, graph, rng, labels):
        return {frozenset(e): rng.choice(labels) for e in graph.edges()}

    @pytest.mark.parametrize("seed", range(4))
    def test_differential(self, seed):
        from repro.gap import all_equal, edge_2coloring, edge_3coloring

        rng = random.Random(seed)
        for problem in (all_equal(), edge_2coloring(), edge_3coloring()):
            for _ in range(8):
                g = get_family("random_tree").instance(rng.randint(2, 24),
                                                       rng.randint(0, 3))
                colors = two_color_tree(g)
                inputs = {frozenset(e): "-" for e in g.edges()}
                outs = self.edge_labels(
                    g, rng, list(problem.sigma_out) + ["bad"])
                ref = problem.verify_reference(g, colors, inputs, outs)
                ker = problem.verify(g, colors, inputs, outs)
                assert ref.valid == ker.valid
                assert {(v.node, v.rule) for v in ref.violations} == \
                    {(v.node, v.rule) for v in ker.violations}
                fast = problem.compiled().verify(
                    g, outs, colors=colors, edge_inputs=inputs,
                    early_exit=True)
                assert fast.valid == ref.valid
                assert len(fast.violations) <= 1

    def test_improper_coloring_rejected(self):
        from repro.gap import edge_3coloring

        g = path_graph(3)
        problem = edge_3coloring()
        outs = {frozenset((0, 1)): 1, frozenset((1, 2)): 2}
        inputs = {e: "-" for e in outs}
        res = problem.verify(g, ["W", "W", "B"], inputs, outs)
        assert not res.valid
        assert res.violations[0].rule == "not properly 2-colored"

    def test_default_colors_and_singleton_inputs(self):
        from repro.gap import edge_3coloring

        g = path_graph(4)
        problem = edge_3coloring()
        outs = {frozenset((i, i + 1)): 1 + i % 2 for i in range(3)}
        assert problem.compiled().verify(g, outs).valid
        results = problem.compiled().verify_batch(g, [outs, outs])
        assert all(r.valid for r in results)

    def test_batch_matches_reference(self):
        from repro.gap import all_equal

        rng = random.Random(11)
        g = get_family("random_tree").instance(18, 5)
        problem = all_equal()
        colors = two_color_tree(g)
        inputs = {frozenset(e): "-" for e in g.edges()}
        batch = [self.edge_labels(g, rng, [0, 1]) for _ in range(6)]
        refs = [problem.verify_reference(g, colors, inputs, o) for o in batch]
        kers = problem.compiled().verify_batch(
            g, batch, colors=colors, edge_inputs=inputs)
        assert [r.valid for r in refs] == [r.valid for r in kers]


class _ReprCollider:
    """Unequal labels whose reprs collide — the trap for sorted(key=repr)."""

    def __init__(self, tag):
        self.tag = tag

    def __repr__(self):
        return "collider"

    def __eq__(self, other):
        return isinstance(other, _ReprCollider) and self.tag == other.tag

    def __hash__(self):
        return hash(("collider", self.tag))


class TestAllowsCanonicalization:
    """ISSUE 3 satellite: multiset canonicalization must be stable under
    permutation even when repr order disagrees with equality."""

    def make_problem(self):
        a, b = _ReprCollider("a"), _ReprCollider("b")
        target = None

        def white(pairs):
            # order-sensitive on purpose: equality against one specific
            # tuple; consistent canonicalization makes it permutation-safe
            return pairs == white.target

        problem = BlackWhiteLCL("collider", ("-",), (a, b), white,
                               lambda pairs: True)
        return problem, a, b, white

    def test_permutations_canonicalize_identically(self):
        problem, a, b, white = self.make_problem()
        p1, p2 = ("-", a), ("-", b)
        white.target = problem.canonical_pairs([p1, p2])
        assert problem.canonical_pairs([p1, p2]) == \
            problem.canonical_pairs([p2, p1])
        assert problem.allows("W", [p1, p2])
        assert problem.allows("W", [p2, p1])

    def test_equal_multisets_intern_to_same_key(self):
        problem, a, b, _ = self.make_problem()
        key1 = problem._canonical_indices([("-", a), ("-", b), ("-", a)])
        key2 = problem._canonical_indices([("-", b), ("-", a), ("-", a)])
        assert key1 == key2
        # distinct multisets stay distinct despite identical reprs
        assert problem._canonical_indices([("-", a), ("-", a)]) != \
            problem._canonical_indices([("-", a), ("-", b)])

    def test_memo_does_not_cross_colors(self):
        problem = BlackWhiteLCL(
            "asym", ("-",), (0, 1),
            lambda pairs: True, lambda pairs: False,
        )
        pairs = [("-", 0)]
        assert problem.allows("W", pairs)
        assert not problem.allows("B", pairs)
        # and again, now through the memo
        assert problem.allows("W", pairs)
        assert not problem.allows("B", pairs)


class TestDispatchAndProtocol:
    def test_known_types_compile(self):
        for prob in (Coloring25(2), Coloring35(1), DFreeWeightProblem(4, 1),
                     Weighted25(5, 2, 2), Weighted35(5, 2, 1),
                     HierarchicalLabeling(2), WeightAugmented25(2),
                     ProperColoring(4)):
            checker = compile_checker(prob)
            assert checker is not None
            assert prob.compiled() is prob.compiled()  # cached

    def test_unknown_subclass_falls_back_to_reference(self):
        class Custom(Coloring25):
            """Overrides semantics the kernel cannot see."""

            def check_node(self, graph, outputs, v):
                return [Violation(v, "always")]

        prob = Custom(2)
        assert compile_checker(prob) is None
        g = path_graph(3)
        res = prob.verify(g, ["D", "D", "D"])
        assert not res.valid
        assert all(v.rule == "always" for v in res.violations)

    def test_wide_palette_fallback(self):
        g = path_graph(6)
        prob = ProperColoring(1000)
        good = [500 + (v % 2) for v in range(6)]
        assert prob.verify(g, good).valid
        bad = [500] * 6
        assert_equivalent(prob, g, bad, "wide")
