"""Tests for the LOCAL simulators (view-based and message-passing)."""

import pytest

from repro.local import (
    CONTINUE,
    ExecutionTrace,
    Graph,
    LocalAlgorithm,
    LocalSimulator,
    MessageAlgorithm,
    MessageSimulator,
    SimulationError,
    path_graph,
    random_ids,
    sequential_ids,
)


class OutputDegree(LocalAlgorithm):
    """Round-1 algorithm: output own degree (needs radius 1 to certify)."""

    name = "output-degree"

    def decide(self, view, n):
        if view.round < 1:
            return CONTINUE
        return len(view.neighbors(view.center))


class WaitForNeighborOutput(LocalAlgorithm):
    """The node with ID 1 outputs at round 0; every other node copies as
    soon as some committed output becomes causally visible."""

    name = "wait-chain"

    def decide(self, view, n):
        me = view.center
        if view.id_of(me) == 1:
            return "root"
        for u in view.nodes():
            if u != me and view.output_of(u) is not None:
                return "copy"
        return CONTINUE


class TestViewSimulator:
    def test_degree_outputs(self):
        g = path_graph(4)
        trace = LocalSimulator().run(g, OutputDegree())
        assert trace.outputs == [1, 2, 2, 1]
        assert trace.rounds == [1, 1, 1, 1]

    def test_output_causality(self):
        # node 0 has min ID and outputs at round 0; node at distance d can
        # only see that at round >= d, and then needs its own decision round
        g = path_graph(6)
        trace = LocalSimulator().run(g, WaitForNeighborOutput(), sequential_ids(6))
        assert trace.outputs[0] == "root"
        assert trace.rounds[0] == 0
        for v in range(1, 6):
            assert trace.rounds[v] == v, trace.rounds

    def test_budget_enforced(self):
        class Never(LocalAlgorithm):
            name = "never"

            def decide(self, view, n):
                return CONTINUE

        with pytest.raises(SimulationError):
            LocalSimulator(max_rounds=5).run(path_graph(3), Never())

    def test_rejects_bad_ids(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            LocalSimulator().run(g, OutputDegree(), ids=[1, 1, 2])

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            LocalSimulator().run(Graph(0, []), OutputDegree())


class EchoSum(MessageAlgorithm):
    """Two-round message algorithm: output sum of neighbor IDs."""

    name = "echo-sum"

    def init_state(self, info, n):
        return {"vid": info.vid, "sum": None}

    def message(self, state, t):
        return state["vid"]

    def transition(self, state, incoming, t):
        if state["sum"] is None:
            state["sum"] = sum(incoming)
        return state

    def decide(self, state, t):
        if t >= 1:
            return state["sum"]
        return CONTINUE


class TestMessageSimulator:
    def test_neighbor_sum(self):
        g = path_graph(3)
        trace = MessageSimulator().run(g, EchoSum(), [10, 20, 30])
        assert trace.outputs == [20, 40, 20]
        assert trace.rounds == [1, 1, 1]

    def test_terminated_nodes_keep_relaying(self):
        class Relay(MessageAlgorithm):
            """Node with ID 1 emits a token at round 0 and halts; everyone
            else commits when the token reaches them — which requires the
            terminated nodes to keep forwarding."""

            name = "relay"

            def init_state(self, info, n):
                return {"vid": info.vid, "token": info.vid == 1, "seen_at": 0 if info.vid == 1 else None}

            def message(self, state, t):
                return state["token"]

            def transition(self, state, incoming, t):
                if not state["token"] and any(incoming):
                    state["token"] = True
                    state["seen_at"] = t + 1
                return state

            def decide(self, state, t):
                if state["vid"] == 1:
                    return "src"
                if state["token"]:
                    return state["seen_at"]
                return CONTINUE

        g = path_graph(5)
        trace = MessageSimulator().run(g, Relay(), [1, 2, 3, 4, 5])
        assert trace.outputs[0] == "src"
        assert trace.outputs[1:] == [1, 2, 3, 4]
        assert trace.rounds == [0, 1, 2, 3, 4]

    def test_budget(self):
        class Never(MessageAlgorithm):
            name = "never"

            def init_state(self, info, n):
                return None

            def message(self, state, t):
                return None

            def transition(self, state, incoming, t):
                return state

            def decide(self, state, t):
                return CONTINUE

        with pytest.raises(SimulationError):
            MessageSimulator(max_rounds=3).run(path_graph(2), Never())


class TestExecutionTrace:
    def test_metrics(self):
        tr = ExecutionTrace(rounds=[0, 1, 2, 3], outputs=list("abcd"))
        assert tr.node_averaged() == 1.5
        assert tr.worst_case() == 3
        assert tr.total_rounds() == 6
        assert tr.percentile(50) == 1
        assert tr.averaged_over([2, 3]) == 2.5

    def test_summary_keys(self):
        tr = ExecutionTrace(rounds=[5], outputs=["x"])
        s = tr.summary()
        assert s["n"] == 1 and s["worst_case"] == 5

    def test_percentile_bounds(self):
        tr = ExecutionTrace(rounds=[1, 2], outputs=["a", "b"])
        with pytest.raises(ValueError):
            tr.percentile(101)
