"""Integration tests: full pipelines across modules, plus failure
injection on every composed solver."""

import random

import pytest

from repro.algorithms import (
    run_a35,
    run_apoly,
    run_weight_augmented_solver,
    run_weighted35,
)
from repro.algorithms.baselines import run_naive_weighted25
from repro.analysis import (
    alpha_vector_logstar,
    alpha_vector_poly,
    efficiency_factor,
    efficiency_factor_relaxed,
    find_poly_problem,
)
from repro.constructions import build_weighted_construction
from repro.constructions.lowerbound import paper_lengths
from repro.lcl import (
    WeightAugmented25,
    Weighted25,
    Weighted35,
    copy_of,
    decline,
)
from repro.local import random_ids


def poly_instance(n_target=2_000, delta=5, d=2, k=2, seed=0):
    x = efficiency_factor(delta, d)
    lengths = paper_lengths(n_target // k, alpha_vector_poly(x, k))
    wi = build_weighted_construction(lengths, delta, n_target // k)
    ids = random_ids(wi.n, rng=random.Random(seed))
    return wi, ids


class TestEndToEndPipelines:
    def test_theorem1_to_apoly(self):
        """find_poly_problem -> construction -> A_poly -> checker."""
        p = find_poly_problem(0.34, 0.42)
        # cap parameters for a feasible run (the found Delta can be big)
        if p.delta > 17:
            pytest.skip("window landed on large Delta; covered elsewhere")
        wi, ids = poly_instance(1_500, p.delta, p.d, p.k, 1)
        tr = run_apoly(wi.graph, ids, p.delta, p.d, p.k)
        assert Weighted25(p.delta, p.d, p.k).verify(wi.graph, tr.outputs).valid

    def test_all_solvers_on_same_instance(self):
        wi, ids = poly_instance(2_500, 6, 3, 2, 2)
        results = {}
        tr = run_apoly(wi.graph, ids, 6, 3, 2)
        assert Weighted25(6, 3, 2).verify(wi.graph, tr.outputs).valid
        results["apoly"] = tr.node_averaged()
        tr = run_a35(wi.graph, ids, 6, 3, 2)
        assert Weighted35(6, 3, 2).verify(wi.graph, tr.outputs).valid
        results["a35"] = tr.node_averaged()
        tr = run_weighted35(wi.graph, ids, 6, 3, 2)
        assert Weighted35(6, 3, 2).verify(wi.graph, tr.outputs).valid
        results["w35-fast"] = tr.node_averaged()
        tr = run_naive_weighted25(wi.graph, ids, 6, 3, 2)
        assert Weighted25(6, 3, 2).verify(wi.graph, tr.outputs).valid
        results["naive"] = tr.node_averaged()
        tr = run_weight_augmented_solver(wi.graph, ids, 2)
        assert WeightAugmented25(2).verify(wi.graph, tr.outputs).valid
        results["weight-aug"] = tr.node_averaged()
        # the strawman is the worst 2.5-style solver
        assert results["naive"] > results["apoly"]
        # the fast 3.5 composition beats the Algorithm-A one
        assert results["w35-fast"] < results["a35"]

    def test_logstar_pipeline(self):
        delta, d, k = 6, 3, 2
        xp = efficiency_factor_relaxed(delta, d)
        lengths = paper_lengths(1_000, alpha_vector_logstar(xp, k), "logstar")
        wi = build_weighted_construction(lengths, delta, 1_000)
        ids = random_ids(wi.n, rng=random.Random(3))
        tr = run_weighted35(wi.graph, ids, delta, d, k)
        assert Weighted35(delta, d, k).verify(wi.graph, tr.outputs).valid


class TestFailureInjection:
    """Corrupt solver outputs in targeted ways; the checker must notice."""

    def test_swap_secondary(self):
        wi, ids = poly_instance(seed=4)
        tr = run_apoly(wi.graph, ids, 5, 2, 2)
        prob = Weighted25(5, 2, 2)
        assert prob.verify(wi.graph, tr.outputs).valid
        corrupted = 0
        for v in wi.weight_nodes():
            out = tr.outputs[v]
            if isinstance(out, tuple) and out[0] == "Copy":
                bad = list(tr.outputs)
                wrong = "W" if out[1] != "W" else "B"
                bad[v] = copy_of(wrong)
                assert not prob.verify(wi.graph, bad).valid
                corrupted += 1
                if corrupted >= 5:
                    break
        assert corrupted >= 1

    def test_decline_next_to_active(self):
        wi, ids = poly_instance(seed=5)
        tr = run_apoly(wi.graph, ids, 5, 2, 2)
        prob = Weighted25(5, 2, 2)
        a = next(iter(wi.tree_of))
        root = next(w for w in wi.tree_of[a] if a in wi.graph.neighbors(w))
        bad = list(tr.outputs)
        bad[root] = decline()
        assert not prob.verify(wi.graph, bad).valid

    def test_flip_active_color(self):
        wi, ids = poly_instance(seed=6)
        tr = run_apoly(wi.graph, ids, 5, 2, 2)
        prob = Weighted25(5, 2, 2)
        flipped = 0
        for v in wi.active_nodes():
            if tr.outputs[v] in ("W", "B"):
                bad = list(tr.outputs)
                bad[v] = "B" if tr.outputs[v] == "W" else "W"
                res = prob.verify(wi.graph, bad)
                # flipping one color in a 2-colored path always breaks
                # either the coloring or a Copy node's secondary
                assert not res.valid
                flipped += 1
                if flipped >= 5:
                    break
        assert flipped >= 1


class TestTraceConsistency:
    def test_rounds_nonnegative_and_bounded(self):
        wi, ids = poly_instance(seed=7)
        tr = run_apoly(wi.graph, ids, 5, 2, 2)
        assert all(r >= 0 for r in tr.rounds)
        assert tr.worst_case() <= 40 * (wi.n ** 0.5 + 40)
        assert tr.node_averaged() <= tr.worst_case()
        assert tr.total_rounds() == sum(tr.rounds)
