"""Tests for the 2½-/3½-coloring constraint checkers (Definitions 8, 9)."""

import pytest

from repro.lcl import B, Coloring25, Coloring35, D, E, G, R, W, Y, compute_levels
from repro.local import path_graph, star_graph
from repro.constructions import build_lower_bound_graph


class TestColoring25Paths:
    """On a path everything has level 1 (for k >= 1), so the constraints
    reduce to: no E, and W/B proper with no D adjacent to colors."""

    def setup_method(self):
        self.g = path_graph(4)
        self.prob = Coloring25(2)

    def test_all_decline_valid(self):
        assert self.prob.verify(self.g, [D, D, D, D]).valid

    def test_alternating_valid(self):
        assert self.prob.verify(self.g, [W, B, W, B]).valid

    def test_monochromatic_invalid(self):
        res = self.prob.verify(self.g, [W, W, B, W])
        assert not res.valid

    def test_color_next_to_decline_invalid(self):
        res = self.prob.verify(self.g, [W, D, D, D])
        assert not res.valid

    def test_level1_exempt_invalid(self):
        res = self.prob.verify(self.g, [E, D, D, D])
        assert not res.valid

    def test_alphabet_enforced(self):
        res = self.prob.verify(self.g, ["Q", D, D, D])
        assert not res.valid
        assert res.violations[0].rule == "alphabet"

    def test_raise_if_invalid(self):
        res = self.prob.verify(self.g, [W, W, W, W])
        with pytest.raises(AssertionError):
            res.raise_if_invalid()


class TestColoring25Star:
    def test_center_exempt_iff_leaf_colored(self):
        g = star_graph(4)  # center level 2 (k=1 -> center level 2 = k+1)
        prob = Coloring25(1)
        levels = compute_levels(g, 1)
        assert levels[0] == 2
        # level k+1 = 2 must be E
        assert prob.verify(g, [E, W, B, W, B]).valid
        assert not prob.verify(g, [D, W, B, W, B]).valid

    def test_k2_center_needs_colored_lower(self):
        g = star_graph(4)
        prob = Coloring25(2)
        levels = compute_levels(g, 2)
        assert levels[0] == 2  # centre peels second (level 2 = k)
        # leaves all declined -> centre cannot be E; it is level k so it
        # cannot be D either; a bare color works (no same-level neighbors)
        assert prob.verify(g, [W, D, D, D, D]).valid
        assert not prob.verify(g, [E, D, D, D, D]).valid
        # one colored leaf -> centre must be E
        assert prob.verify(g, [E, W, D, D, D]).valid
        assert not prob.verify(g, [W, W, D, D, D]).valid

    def test_level_k_decline_forbidden(self):
        g = star_graph(4)
        prob = Coloring25(2)
        assert not prob.verify(g, [D, D, D, D, D]).valid


class TestColoring35:
    def test_path_three_coloring_valid(self):
        # on a path with k=1, every node has level 1 = k: must be 3-colored
        g = path_graph(5)
        prob = Coloring35(1)
        assert prob.verify(g, [R, G, Y, R, G]).valid
        assert not prob.verify(g, [R, R, Y, R, G]).valid

    def test_level_k_cannot_use_wb(self):
        g = path_graph(3)
        prob = Coloring35(1)
        assert not prob.verify(g, [W, B, W]).valid

    def test_lower_levels_cannot_use_rgb(self):
        # k=2 on a star: leaves are level 1 < k, cannot use R/G/Y
        g = star_graph(4)
        prob = Coloring35(2)
        assert not prob.verify(g, [W, R, D, D, D]).valid

    def test_full_lower_bound_instance(self):
        lb = build_lower_bound_graph([4, 8])
        g = lb.graph
        prob = Coloring35(2)
        levels = compute_levels(g, 2)
        # all level-1 decline; level-2 properly 3-colored; level-2 boundary
        # leaks (level-1 nodes of the top path) also decline
        out = []
        color_idx = 0
        for v in g.nodes():
            if levels[v] == 1:
                out.append(D)
            else:
                out.append(None)
        # 3-color the level-2 path in path order
        from repro.lcl import level_paths

        for path in level_paths(g, levels, 2):
            for i, v in enumerate(path):
                out[v] = [R, G, Y][i % 3]
        res = prob.verify(g, out)
        assert res.valid, res.violations[:5]


class TestValidatorSoundness:
    """Failure injection: randomly corrupt valid labelings and assert the
    checker notices whenever a constraint is actually broken."""

    def test_corrupting_a_coloring_is_caught(self):
        g = path_graph(6)
        prob = Coloring25(2)
        good = [W, B, W, B, W, B]
        assert prob.verify(g, good).valid
        for v in range(6):
            for bad_label in (E, W if good[v] == B else B):
                candidate = list(good)
                candidate[v] = bad_label
                assert not prob.verify(g, candidate).valid
