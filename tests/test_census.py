"""The problem-space census: enumeration, canonicalization, parallel
decision determinism, verdict cross-validation, and the CLI."""

import json

import pytest

from repro.gap.canonical import get_context
from repro.gap.census import (
    CROSS_CHECKS,
    CrossCheck,
    ProblemSpec,
    VERDICT_GROWTH_AGREEMENT,
    atlas_json,
    atlas_key,
    canonical_encoding,
    census_json,
    classify_growth,
    enumerate_multisets,
    enumerate_space,
    main,
    run_atlas,
    run_census,
    space_size,
    spec_from_problem,
    spec_name,
    spec_to_problem,
)
from repro.gap.problems import all_equal, edge_2coloring, edge_3coloring, free_labeling
from repro.lcl.blackwhite import BLACK, WHITE
from repro.store import ResultStore


class TestEnumeration:
    def test_multiset_counts(self):
        # one input, two outputs, delta 2: 2 singletons + 3 pair multisets
        assert len(enumerate_multisets(1, 2, 2)) == 5
        assert len(enumerate_multisets(1, 1, 2)) == 2
        assert len(enumerate_multisets(2, 2, 2)) == 14

    def test_space_size(self):
        # (2^2)^2 problems at one output + (2^5)^2 at two
        assert space_size(1, 2) == 16
        assert space_size(2, 2) == 16 + 1024

    def test_enumerate_space_covers_and_collapses(self):
        encodings, orbit, raw = enumerate_space(max_labels=2, delta=2)
        assert raw == 1040
        assert sum(orbit.values()) == raw
        assert len(encodings) == len(set(encodings)) < raw
        assert encodings == sorted(encodings)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            run_census(max_labels=0)
        with pytest.raises(ValueError):
            run_census(delta=1)


class TestCanonicalization:
    def test_output_permutation_invariant(self):
        # "only label 0 everywhere" vs "only label 1 everywhere"
        a = ProblemSpec(1, 2, 2, frozenset({(((0, 0),))}),
                        frozenset({(((0, 0),))}))
        b = ProblemSpec(1, 2, 2, frozenset({(((0, 1),))}),
                        frozenset({(((0, 1),))}))
        assert canonical_encoding(a) == canonical_encoding(b)

    def test_color_swap_invariant(self):
        w = frozenset({((0, 0),), ((0, 0), (0, 0))})
        b = frozenset({((0, 1),)})
        assert canonical_encoding(ProblemSpec(1, 2, 2, w, b)) == \
            canonical_encoding(ProblemSpec(1, 2, 2, b, w))

    def test_distinct_problems_stay_distinct(self):
        a = ProblemSpec(1, 2, 2, frozenset({((0, 0),)}), frozenset())
        b = ProblemSpec(1, 2, 2, frozenset({((0, 0), (0, 1))}), frozenset())
        assert canonical_encoding(a) != canonical_encoding(b)

    def test_spec_roundtrip(self):
        spec = ProblemSpec(
            1, 2, 2,
            frozenset({((0, 0),), ((0, 0), (0, 1))}),
            frozenset({((0, 1),)}),
        )
        assert spec_from_problem(spec_to_problem(spec), delta=2) == spec

    def test_spec_from_registry_problem(self):
        spec = spec_from_problem(edge_2coloring(), delta=2)
        # a proper-edge-coloring node never carries two equal labels
        assert ((0, 0), (0, 0)) not in spec.white
        assert ((0, 0), (0, 1)) in spec.white
        assert spec.white == spec.black

    def test_extensional_problem_rejects_overflow_degree(self):
        spec = spec_from_problem(free_labeling(), delta=2)
        problem = spec_to_problem(spec)
        # a degree-3 multiset is outside the delta=2 universe
        assert problem.allows(WHITE, [(0, 0), (0, 0)])
        assert not problem.allows(BLACK, [(0, 0), (0, 0), (0, 0)])
        assert not problem.allows(WHITE, [])


class TestCensusVerdicts:
    @pytest.fixture(scope="class")
    def census(self):
        return run_census(max_labels=2, delta=2, workers=1,
                          cross_validate=False)

    def test_every_canonical_problem_classified(self, census):
        assert census["spec"]["raw_problems"] == 1040
        problems = census["problems"]
        assert len(problems) == census["spec"]["canonical_problems"]
        assert all(
            p["verdict"] in VERDICT_GROWTH_AGREEMENT for p in problems
        )
        assert sum(census["summary"]["verdicts"].values()) == len(problems)

    def test_known_problems_get_known_verdicts(self, census):
        by_key = {p["key"]: p["verdict"] for p in census["problems"]}
        for factory, expected in (
            (free_labeling, "O(1)"),
            (all_equal, "O(1)"),
            (edge_2coloring, "no-good-function"),
        ):
            enc = canonical_encoding(spec_from_problem(factory(), delta=2))
            assert by_key[spec_name(enc)] == expected

    def test_all_three_regions_inhabited(self, census):
        counts = census["summary"]["verdicts"]
        assert set(counts) == {"O(1)", "logstar-regime", "no-good-function"}
        assert all(v > 0 for v in counts.values())

    def test_region_assignment_present(self, census):
        regions = census["summary"]["regions"]
        assert regions["O(1)"][0]["low"] == "1"
        assert all(r["kind"] != "gap"
                   for rs in regions.values() for r in rs)

    def test_orbit_sizes_recorded(self, census):
        assert sum(p["orbit"] for p in census["problems"]) == 1040


class TestDeterminism:
    def test_byte_identical_across_workers(self):
        kwargs = dict(max_labels=2, delta=2, max_problems=48,
                      cross_validate=False)
        serial = census_json(workers=1, **kwargs)
        parallel = census_json(workers=4, **kwargs)
        assert serial == parallel
        payload = json.loads(serial)
        assert "workers" not in payload["spec"]
        assert payload["spec"]["truncated"] is True
        assert len(payload["problems"]) == 48

    def test_edge_3coloring_outside_two_label_bounds(self):
        enc = canonical_encoding(spec_from_problem(edge_3coloring(), delta=2))
        encodings, _, _ = enumerate_space(max_labels=2, delta=2)
        assert enc not in encodings


class TestAtlas:
    @pytest.fixture(scope="class")
    def atlas(self):
        return run_atlas(max_labels=2, delta=2, workers=1)

    def test_byte_identical_across_workers(self):
        kwargs = dict(max_labels=2, delta=2, max_problems=60)
        serial = atlas_json(workers=1, **kwargs)
        parallel = atlas_json(workers=4, **kwargs)
        assert serial == parallel
        payload = json.loads(serial)
        assert "workers" not in payload["atlas"]
        assert payload["atlas"]["truncated"] is True
        assert len(payload["problems"]) == 60

    def test_schema(self, atlas):
        spec = atlas["atlas"]
        assert spec["raw_problems"] == 1040
        assert spec["canonical_problems"] == 298
        assert spec["truncated"] is False
        problems = atlas["problems"]
        assert len(problems) == 298
        assert sum(p["orbit"] for p in problems.values()) == 1040
        for p in problems.values():
            assert set(p) == {"inputs", "outputs", "white_mask",
                              "black_mask", "orbit", "verdict"}
            assert p["verdict"] in VERDICT_GROWTH_AGREEMENT
        # the verdict->region map partitions both counts
        regions = atlas["regions"]
        assert sum(r["problems"] for r in regions.values()) == 298
        assert sum(r["raw_problems"] for r in regions.values()) == 1040
        assert all(r["figure2"] for r in regions.values())

    def test_masks_reconstruct_canonical_specs(self, atlas):
        # white_mask/black_mask are the lossless canonical constraint
        # sets: bit r <-> the r-th multiset in tuple-lex order
        for key, p in list(atlas["problems"].items())[:40]:
            ctx = get_context(p["inputs"], p["outputs"], 2)
            enc = ctx.encoding_from_masks(p["white_mask"], p["black_mask"])
            assert spec_name(enc) == key
            rebuilt = ProblemSpec(enc[0], enc[1], enc[2],
                                  frozenset(enc[3]), frozenset(enc[4]))
            assert canonical_encoding(rebuilt) == enc

    def test_landmarks_locate_registry_problems(self, atlas):
        landmarks = atlas["landmarks"]
        assert landmarks["free_labeling"]["verdict"] == "O(1)"
        assert landmarks["all_equal"]["verdict"] == "O(1)"
        assert landmarks["edge_2coloring"]["verdict"] == "no-good-function"
        # edge-3coloring needs three output labels: outside these bounds
        assert "edge_3coloring" not in landmarks
        for mark in landmarks.values():
            assert atlas["problems"][mark["key"]]["verdict"] == \
                mark["verdict"]

    def test_store_publishes_only_complete_atlases(self, tmp_path):
        store = ResultStore(tmp_path / "cas")
        payload = run_atlas(max_labels=1, delta=2, store=store)
        published = store.get(atlas_key(store, 1, 1, 2, 2, 4096))
        assert published == json.loads(
            json.dumps(payload))  # JSON-round-tripped by the store
        run_atlas(max_labels=2, delta=2, max_problems=5, store=store)
        assert store.get(atlas_key(store, 2, 1, 2, 2, 4096)) is None

    def test_cli(self, tmp_path, capsys):
        out = tmp_path / "atlas.json"
        rc = main(["--max-labels", "1", "--atlas", "--out", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["atlas"]["raw_problems"] == 16
        assert "cross_validation" not in payload
        assert "atlas:" in capsys.readouterr().err


class TestProgress:
    def test_stderr_only_and_payload_invariant(self, capsys):
        kwargs = dict(max_labels=1, workers=1, cross_validate=False)
        quiet = census_json(**kwargs)
        capsys.readouterr()
        loud = census_json(progress=True, **kwargs)
        captured = capsys.readouterr()
        assert "census progress:" in captured.err
        assert captured.out == ""
        assert loud == quiet

    def test_cli_flag(self, capsys):
        rc = main(["--max-labels", "1", "--no-cross-validate",
                   "--progress"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "census progress:" in captured.err
        json.loads(captured.out)  # the payload stays clean JSON


class TestCrossValidation:
    def test_builtin_checks_agree(self):
        payload = run_census(max_labels=2, delta=2, workers=1,
                             cross_validate=True)
        cross = payload["cross_validation"]
        # edge-3coloring needs three labels, so exactly three checks apply
        assert [c["problem"] for c in cross] == \
            ["free-labeling", "all-equal", "edge-2coloring"]
        for c in cross:
            assert c["agrees"], f"{c['problem']}: {c}"
            assert c["violations"] == 0
            assert c["growth"] in VERDICT_GROWTH_AGREEMENT[c["verdict"]]

    def test_o1_verdicts_have_flat_witnesses(self):
        payload = run_census(max_labels=2, delta=2, workers=1,
                             cross_validate=True)
        flat = [c for c in payload["cross_validation"]
                if c["verdict"] == "O(1)"]
        assert flat and all(c["growth"] == "flat" for c in flat)

    def test_constant_witness_registered_lazily(self):
        # importing the census must not touch the sweep registry; the
        # witness appears (idempotently) when cross-validation runs
        from repro.gap.census import _register_census_algorithms
        from repro.sweep import ALGORITHMS

        _register_census_algorithms()
        _register_census_algorithms()
        assert "constant_labeling_ff" in ALGORITHMS

    def test_classify_growth(self):
        assert classify_growth([(64, 3.0), (512, 3.5)]) == "flat"
        assert classify_growth([(64, 16.0), (512, 128.0)]) == "linear"
        assert classify_growth([(64, 2.0), (512, 7.0)]) == "intermediate"
        assert classify_growth([(64, 0.0), (512, 0.0)]) == "flat"
        with pytest.raises(ValueError):
            classify_growth([(64, 1.0)])
        with pytest.raises(ValueError):
            classify_growth([(64, 1.0), (64, 1.0)])

    def test_disagreement_detected(self, monkeypatch):
        # pair the O(1) free-labeling verdict with a linear-growth witness:
        # the census must flag the mismatch and the CLI must gate on it
        import repro.gap.census as census_mod

        bad = (CrossCheck("free-labeling", free_labeling, "two_coloring"),)
        monkeypatch.setattr(census_mod, "CROSS_CHECKS", bad)
        payload = run_census(max_labels=2, delta=2, workers=1,
                             max_problems=None, cross_validate=True)
        (check,) = payload["cross_validation"]
        assert check["growth"] == "linear" and not check["agrees"]
        assert main(["--max-labels", "2", "--out", "/dev/null"]) == 1


class TestCLI:
    def test_writes_json_and_summarizes(self, tmp_path, capsys):
        out = tmp_path / "census.json"
        rc = main(["--max-labels", "1", "--no-cross-validate",
                   "--out", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["spec"]["raw_problems"] == 16
        err = capsys.readouterr().err
        assert "canonical" in err

    def test_stdout_mode(self, capsys):
        rc = main(["--max-labels", "1", "--no-cross-validate"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cross_validation"] == []
        assert payload["spec"]["cross_validate"] is False
