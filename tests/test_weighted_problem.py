"""Tests for Pi^Z_{Delta,d,k} (Definition 22): checker and A_poly solver."""

import random

import pytest

from repro.algorithms.weighted25 import apoly_gammas, run_a35, run_apoly
from repro.analysis import alpha_vector_poly, efficiency_factor
from repro.constructions import build_weighted_construction
from repro.constructions.lowerbound import paper_lengths
from repro.lcl import (
    ACTIVE,
    WEIGHT,
    Weighted25,
    Weighted35,
    connect,
    copy_of,
    decline,
)
from repro.lcl.hierarchical import B, D, W
from repro.local import Graph, path_graph, random_ids


def tiny_instance():
    """active - weight - weight path."""
    return path_graph(3).with_inputs([ACTIVE, WEIGHT, WEIGHT])


class TestCheckerProperties:
    def setup_method(self):
        self.prob = Weighted25(5, 2, 1)

    def test_valid_copy_chain(self):
        g = tiny_instance()
        # active solves 1-hierarchical 2.5 alone on a path: level 1, W ok
        out = [W, copy_of(W), copy_of(W)]
        assert self.prob.verify(g, out).valid

    def test_property2_weight_next_to_active_cannot_decline(self):
        g = tiny_instance()
        out = [W, decline(), decline()]
        res = self.prob.verify(g, out)
        assert not res.valid
        assert any("P2" in v.rule for v in res.violations)

    def test_property3_connect_needs_support(self):
        g = tiny_instance()
        out = [W, connect(), decline()]
        res = self.prob.verify(g, out)
        assert any("P3" in v.rule for v in res.violations)

    def test_property4_copy_decline_budget(self):
        prob = Weighted25(6, 1, 1)
        g = Graph(
            4, [(0, 1), (1, 2), (1, 3)],
            [ACTIVE, WEIGHT, WEIGHT, WEIGHT],
        )
        out = [W, copy_of(W), decline(), decline()]
        res = prob.verify(g, out)
        assert any("P4" in v.rule for v in res.violations)

    def test_property5_secondary_must_match_active(self):
        g = tiny_instance()
        out = [W, copy_of(B), copy_of(B)]
        res = self.prob.verify(g, out)
        assert any("P5" in v.rule for v in res.violations)

    def test_property5_adjacent_copies_agree(self):
        g = path_graph(4).with_inputs([ACTIVE, WEIGHT, WEIGHT, WEIGHT])
        out = [W, copy_of(W), copy_of(B), decline()]
        res = self.prob.verify(g, out)
        assert any("P5" in v.rule for v in res.violations)

    def test_connect_bridge_between_actives(self):
        g = path_graph(4).with_inputs([ACTIVE, WEIGHT, WEIGHT, ACTIVE])
        out = [W, connect(), connect(), B]
        assert self.prob.verify(g, out).valid

    def test_alphabet_guard(self):
        g = tiny_instance()
        res = self.prob.verify(g, [W, "Copy", decline()])
        assert not res.valid

    def test_requires_delta_ge_d_plus_3(self):
        with pytest.raises(ValueError):
            Weighted25(4, 2, 1)


class TestApolyEndToEnd:
    @pytest.mark.parametrize("delta,d,k", [(5, 2, 2), (6, 3, 2), (5, 2, 3)])
    def test_valid_on_paper_construction(self, delta, d, k):
        x = efficiency_factor(delta, d)
        lengths = paper_lengths(400, alpha_vector_poly(x, k))
        wi = build_weighted_construction(lengths, delta, weight_per_level=300)
        ids = random_ids(wi.n, rng=random.Random(delta * 10 + k))
        tr = run_apoly(wi.graph, ids, delta, d, k)
        res = Weighted25(delta, d, k).verify(wi.graph, tr.outputs)
        assert res.valid, res.violations[:5]

    def test_35_variant_valid(self):
        delta, d, k = 6, 3, 2
        lengths = paper_lengths(300, [0.5])
        wi = build_weighted_construction(lengths, delta, weight_per_level=200)
        ids = random_ids(wi.n, rng=random.Random(3))
        tr = run_a35(wi.graph, ids, delta, d, k)
        res = Weighted35(delta, d, k).verify(wi.graph, tr.outputs)
        assert res.valid, res.violations[:5]

    def test_copy_nodes_wait_for_active(self):
        delta, d, k = 5, 2, 2
        x = efficiency_factor(delta, d)
        lengths = paper_lengths(300, alpha_vector_poly(x, k))
        wi = build_weighted_construction(lengths, delta, weight_per_level=200)
        ids = random_ids(wi.n, rng=random.Random(5))
        tr = run_apoly(wi.graph, ids, delta, d, k)
        # every Copy weight node terminates strictly after the active node
        # whose output it carries became visible
        for a, tree in wi.tree_of.items():
            for w in tree:
                out = tr.outputs[w]
                if isinstance(out, tuple) and out[0] == "Copy":
                    assert tr.rounds[w] > tr.rounds[a] or tr.rounds[w] >= tr.meta["dfree_rounds"]

    def test_gammas_match_lemma33(self):
        gam = apoly_gammas(10_000, 5, 2, 3, "poly")
        x = efficiency_factor(5, 2)
        vec = alpha_vector_poly(x, 3)
        assert len(gam) == 2
        assert gam[0] == max(2, round(10_000 ** vec[0]))

    def test_all_weight_instance(self):
        g = path_graph(6).with_inputs([WEIGHT] * 6)
        tr = run_apoly(g, random_ids(6), 5, 2, 2)
        assert all(o == decline() for o in tr.outputs)
        assert Weighted25(5, 2, 2).verify(g, tr.outputs).valid

    def test_all_active_instance(self):
        g = path_graph(12).with_inputs([ACTIVE] * 12)
        tr = run_apoly(g, random_ids(12), 5, 2, 2)
        assert Weighted25(5, 2, 2).verify(g, tr.outputs).valid
