"""The content-addressed result store and its pipeline wiring.

The store's contract has three legs, each pinned here:

* **Durability** — every persisted artifact goes through
  atomic-write-to-temp + ``os.replace``: a writer killed at any moment
  leaves the target absent or complete, never truncated.
* **Correctness** — sweep and census JSON is **byte-identical** whether
  the store is cold, warm or disabled, at any worker count; a corrupted
  or truncated entry is treated as a miss (recomputed and rewritten),
  never served; a killed census resumes from its checkpoints to a
  byte-identical final atlas.
* **Queryability** — ``python -m repro.serve`` answers classification
  and curve queries from the store, byte-identical to fresh computes,
  and exits 3 (not garbage) on a miss without ``--build``.

Also here: ``fork_map``'s labeled worker-error wrapping (the store's
shard workers rely on it to name a failing key).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.gap.census import census_json, run_census, verdict_key
from repro.parallel import ForkTaskError, fork_map
from repro.store import (
    CODE_SALT,
    ResultStore,
    as_store,
    atomic_write_json,
    atomic_write_text,
    canonical_json,
)
from repro.sweep import SweepRunner, unit_key

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run_cli(args, cwd, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        [sys.executable, "-m", *args],
        cwd=cwd, env=env, capture_output=True, text=True,
    )
    if check:
        assert proc.returncode == 0, proc.stdout + proc.stderr
    return proc


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_roundtrip_and_overwrite(self, tmp_path):
        target = tmp_path / "out.json"
        text = atomic_write_json(target, {"b": 2, "a": 1})
        assert text == canonical_json({"a": 1, "b": 2})
        assert target.read_text() == text
        atomic_write_text(target, "v2\n")
        assert target.read_text() == "v2\n"
        # no temp litter
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.json"]

    def test_failed_replace_leaves_previous_and_cleans_temp(
            self, tmp_path, monkeypatch):
        target = tmp_path / "out.json"
        atomic_write_text(target, "v1\n")

        def boom(src, dst):
            raise OSError("simulated replace failure")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_text(target, "v2\n")
        monkeypatch.undo()
        # previous version intact, temp removed
        assert target.read_text() == "v1\n"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.json"]

    def test_kill_mid_write_leaves_absent_or_complete(self, tmp_path):
        """SIGKILL a process that rewrites one JSON file in a tight
        loop; whatever survives must parse as complete JSON."""
        target = tmp_path / "victim.json"
        script = (
            "import sys\n"
            "from repro.store import atomic_write_json\n"
            "i = 0\n"
            "while True:\n"
            "    atomic_write_json(sys.argv[1],\n"
            "                      {'i': i, 'pad': 'x' * 65536})\n"
            "    i += 1\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(target)], env=env,
        )
        try:
            deadline = time.perf_counter() + 10.0  # lint: allow(DET003) subprocess poll deadline, not a result
            while not target.exists():
                assert proc.poll() is None, "writer died prematurely"
                assert time.perf_counter() < deadline, "writer never wrote"  # lint: allow(DET003) subprocess poll deadline, not a result
                time.sleep(0.01)
            time.sleep(0.05)  # let it mid-flight a few rewrites
        finally:
            proc.kill()
            proc.wait()
        if target.exists():
            payload = json.loads(target.read_text())
            assert payload["pad"] == "x" * 65536


# ----------------------------------------------------------------------
# the store itself
# ----------------------------------------------------------------------
class TestResultStore:
    def test_roundtrip_layout_and_counters(self, tmp_path):
        store = ResultStore(tmp_path / "cas")
        key = store.key("sweep-unit", "random_tree", 64, 0)
        assert store.get(key) is None and store.misses == 1
        store.put(key, {"n": 64, "runs": [[1.0, 2]]})
        path = store.path_for(key)
        assert os.path.exists(path)
        # two-level hex fanout under the kind
        rel = os.path.relpath(path, store.objects_root)
        parts = rel.split(os.sep)
        assert parts[0] == "sweep-unit"
        assert parts[1] == key.digest[:2] and parts[2] == key.digest[2:4]
        assert parts[3] == f"{key.digest}.json"
        assert store.get(key) == {"n": 64, "runs": [[1.0, 2]]}
        assert key in store
        assert (store.hits, store.misses, store.puts) == (1, 1, 1)
        assert len(store) == 1

    def test_keys_differ_by_any_part_and_by_salt(self, tmp_path):
        store = ResultStore(tmp_path / "a")
        other = ResultStore(tmp_path / "b", salt="other-salt")
        k1 = store.key("k", "x", 1)
        assert store.key("k", "x", 2).digest != k1.digest
        assert store.key("k2", "x", 1).digest != k1.digest
        assert other.key("k", "x", 1).digest != k1.digest

    def test_invalid_kind_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "cas")
        for kind in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                store.key(kind, 1)

    def test_corrupt_entry_is_miss_then_rewritten(self, tmp_path):
        store = ResultStore(tmp_path / "cas")
        key = store.key("census-verdict", "enc")
        store.put(key, {"klass": "O(1)", "detail": "d"})
        with open(store.path_for(key), "w") as fh:
            fh.write('{"trunc')  # lint: allow(STORE001) deliberately corrupting a fixture entry
        fresh = ResultStore(tmp_path / "cas")  # no LRU carry-over
        assert fresh.get(key) is None
        assert fresh.corrupt == 1 and fresh.misses == 1
        fresh.put(key, {"klass": "O(1)", "detail": "d"})
        assert fresh.get(key) == {"klass": "O(1)", "detail": "d"}

    def test_miskeyed_entry_is_never_served(self, tmp_path):
        """An entry copied to the wrong address (kind/digest mismatch
        inside the wrapper) counts as corrupt."""
        store = ResultStore(tmp_path / "cas")
        k1, k2 = store.key("k", 1), store.key("k", 2)
        store.put(k1, {"v": 1})
        os.makedirs(os.path.dirname(store.path_for(k2)), exist_ok=True)
        with open(store.path_for(k1)) as src:
            text = src.read()
        with open(store.path_for(k2), "w") as dst:
            dst.write(text)
        fresh = ResultStore(tmp_path / "cas")
        assert fresh.get(k2) is None and fresh.corrupt == 1

    def test_lru_serves_after_disk_entry_removed(self, tmp_path):
        store = ResultStore(tmp_path / "cas")
        key = store.key("k", "hot")
        store.put(key, [1, 2, 3])
        os.unlink(store.path_for(key))
        assert store.get(key) == [1, 2, 3]  # in-process LRU hit
        assert ResultStore(tmp_path / "cas").get(key) is None

    def test_lru_payloads_do_not_alias(self, tmp_path):
        store = ResultStore(tmp_path / "cas")
        key = store.key("k", "mut")
        store.put(key, {"runs": [1]})
        first = store.get(key)
        first["runs"].append(2)  # caller mutates its copy
        assert store.get(key) == {"runs": [1]}

    def test_salt_change_wipes_stale_objects(self, tmp_path):
        root = tmp_path / "cas"
        old = ResultStore(root, salt="v1")
        old.put(old.key("k", 1), {"v": 1})
        assert len(old) == 1
        new = ResultStore(root, salt="v2")
        assert len(new) == 0  # stale entries dropped, manifest rewritten
        with open(new.manifest_path) as fh:
            assert json.load(fh)["salt"] == "v2"
        # same salt re-open keeps entries
        keep = ResultStore(root, salt="v2")
        keep.put(keep.key("k", 1), {"v": 1})
        assert len(ResultStore(root, salt="v2")) == 1

    def test_stats_shape(self, tmp_path):
        store = ResultStore(tmp_path / "cas")
        store.put(store.key("a", 1), {})
        store.put(store.key("b", 1), {})
        stats = store.stats()
        assert stats["salt"] == CODE_SALT
        assert stats["entries"] == 2 and stats["bytes"] > 0
        assert sorted(stats["kinds"]) == ["a", "b"]
        assert stats["counters"]["puts"] == 2

    def test_as_store_coercions(self, tmp_path):
        assert as_store(None) is None
        store = ResultStore(tmp_path / "cas")
        assert as_store(store) is store
        opened = as_store(str(tmp_path / "cas2"))
        assert isinstance(opened, ResultStore)


# ----------------------------------------------------------------------
# sweep wiring
# ----------------------------------------------------------------------
SWEEP_ARGS = (["random_tree"], [16, 24], ["two_coloring", "rake_layering"])
SWEEP_KW = dict(samples=2, instances=2, check=True)


class TestSweepStore:
    def test_cold_warm_disabled_byte_identical_any_workers(self, tmp_path):
        plain = SweepRunner(workers=1, **SWEEP_KW).run_json(
            *SWEEP_ARGS, seed=3)
        store = ResultStore(tmp_path / "cas")
        cold = SweepRunner(workers=4, store=store, **SWEEP_KW)
        assert cold.run_json(*SWEEP_ARGS, seed=3) == plain
        assert cold.last_cache == {"hits": 0, "misses": 8}
        # warm, different worker count: all hits, same bytes
        warm = SweepRunner(workers=1, store=store, **SWEEP_KW)
        assert warm.run_json(*SWEEP_ARGS, seed=3) == plain
        assert warm.last_cache == {"hits": 8, "misses": 0}
        warm4 = SweepRunner(workers=4, store=store, **SWEEP_KW)
        assert warm4.run_json(*SWEEP_ARGS, seed=3) == plain
        assert warm4.last_cache == {"hits": 8, "misses": 0}
        # no-store runner reports no cache channel
        none = SweepRunner(workers=1, **SWEEP_KW)
        none.run_json(*SWEEP_ARGS, seed=3)
        assert none.last_cache is None

    def test_payload_carries_no_cache_fields(self, tmp_path):
        runner = SweepRunner(workers=1, store=str(tmp_path / "cas"),
                             **SWEEP_KW)
        payload = runner.run(*SWEEP_ARGS, seed=3)
        assert "cache" not in payload and "cache" not in payload["spec"]

    def test_key_covers_every_semantic_axis(self, tmp_path):
        """Changing seed / samples / id_mode / check misses the cache
        instead of serving a wrong result."""
        store = ResultStore(tmp_path / "cas")
        base = dict(samples=2, instances=1, check=True)
        first = SweepRunner(workers=1, store=store, **base)
        first.run(["random_tree"], [16], ["two_coloring"], seed=0)
        for kw, args in (
            (base, dict(seed=1)),
            (dict(base, samples=3), dict(seed=0)),
            (dict(base, id_mode="descending"), dict(seed=0)),
            (dict(base, check=False), dict(seed=0)),
        ):
            runner = SweepRunner(workers=1, store=store, **kw)
            runner.run(["random_tree"], [16], ["two_coloring"], **args)
            assert runner.last_cache["hits"] == 0, (kw, args)

    def test_corrupted_unit_recomputed_and_rewritten(self, tmp_path):
        store_root = tmp_path / "cas"
        plain = SweepRunner(workers=1, **SWEEP_KW).run_json(
            *SWEEP_ARGS, seed=3)
        SweepRunner(workers=1, store=str(store_root),
                    **SWEEP_KW).run_json(*SWEEP_ARGS, seed=3)
        store = ResultStore(store_root)
        key = unit_key(store, "random_tree", 16, 3, 0, "two_coloring",
                       "auto", "random", True, 2)
        path = store.path_for(key)
        with open(path, "w") as fh:
            fh.write("not json")  # lint: allow(STORE001) deliberately corrupting a fixture entry
        again = SweepRunner(workers=1, store=str(store_root), **SWEEP_KW)
        assert again.run_json(*SWEEP_ARGS, seed=3) == plain
        assert again.last_cache == {"hits": 7, "misses": 1}
        json.loads(open(path).read())  # rewritten complete

    def test_wrong_schema_entry_is_miss(self, tmp_path):
        store = ResultStore(tmp_path / "cas")
        key = unit_key(store, "random_tree", 16, 3, 0, "two_coloring",
                       "auto", "random", True, 2)
        store.put(key, {"n": "sixteen", "runs": "nope"})
        runner = SweepRunner(workers=1, store=store, samples=2,
                             instances=1, check=True)
        runner.run(["random_tree"], [16], ["two_coloring"], seed=3)
        assert runner.last_cache["misses"] == 1


# ----------------------------------------------------------------------
# census checkpoint / resume
# ----------------------------------------------------------------------
CENSUS_KW = dict(max_labels=2, delta=2, cross_validate=False)


class TestCensusStore:
    def test_store_cold_matches_no_store(self, tmp_path):
        plain = census_json(workers=1, max_problems=40, **CENSUS_KW)
        stats = {}
        cold = census_json(workers=4, max_problems=40,
                           store=str(tmp_path / "cas"), stats_out=stats,
                           **CENSUS_KW)
        assert cold == plain
        assert stats == {"reused": 0, "computed": 40}

    def test_resume_reuses_prefix_checkpoints(self, tmp_path):
        store = str(tmp_path / "cas")
        s1 = {}
        census_json(workers=2, max_problems=10, store=store,
                    stats_out=s1, **CENSUS_KW)
        assert s1 == {"reused": 0, "computed": 10}
        plain = census_json(workers=1, max_problems=40, **CENSUS_KW)
        s2 = {}
        resumed = census_json(workers=4, max_problems=40, store=store,
                              resume=True, stats_out=s2, **CENSUS_KW)
        assert resumed == plain
        assert s2 == {"reused": 10, "computed": 30}
        # a fully-warm resume recomputes nothing
        s3 = {}
        warm = census_json(workers=1, max_problems=40, store=store,
                           resume=True, stats_out=s3, **CENSUS_KW)
        assert warm == plain
        assert s3 == {"reused": 40, "computed": 0}

    def test_resume_requires_store(self):
        with pytest.raises(ValueError):
            run_census(resume=True, **CENSUS_KW)

    def test_corrupt_checkpoint_recomputed(self, tmp_path):
        store_root = tmp_path / "cas"
        census_json(workers=1, max_problems=5, store=str(store_root),
                    **CENSUS_KW)
        store = ResultStore(store_root)
        files = []
        for dirpath, dirnames, filenames in os.walk(store.objects_root):
            dirnames.sort()
            files.extend(os.path.join(dirpath, f)
                         for f in sorted(filenames))
        assert len(files) == 5
        with open(files[0], "w") as fh:
            fh.write("{}")  # lint: allow(STORE001) deliberately corrupting a fixture entry
        plain = census_json(workers=1, max_problems=5, **CENSUS_KW)
        stats = {}
        resumed = census_json(workers=1, max_problems=5,
                              store=str(store_root), resume=True,
                              stats_out=stats, **CENSUS_KW)
        assert resumed == plain
        assert stats == {"reused": 4, "computed": 1}

    def test_sigkilled_census_resumes_byte_identical(self, tmp_path):
        """Kill a census mid-decide; --resume finishes from the
        checkpoints to the exact bytes of an uninterrupted run."""
        store_root = tmp_path / "cas"
        out = tmp_path / "atlas.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        args = [
            sys.executable, "-m", "repro.gap.census",
            "--max-labels", "2", "--delta", "2", "--no-cross-validate",
            "--workers", "1", "--store", str(store_root),
            "--out", str(out),
        ]
        proc = subprocess.Popen(args, env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        verdict_dir = os.path.join(str(store_root), "objects",
                                   "census-verdict")
        try:
            deadline = time.perf_counter() + 60.0  # lint: allow(DET003) subprocess poll deadline, not a result
            while True:
                count = 0
                for _dirpath, _dirnames, filenames in os.walk(verdict_dir):
                    count += len(filenames)
                if count >= 5:
                    break
                if proc.poll() is not None:
                    pytest.skip("census finished before the kill landed")
                assert time.perf_counter() < deadline  # lint: allow(DET003) subprocess poll deadline, not a result
                time.sleep(0.02)
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait()
        assert not out.exists(), "killed run must not have written --out"
        resume = _run_cli([
            "repro.gap.census", "--max-labels", "2", "--delta", "2",
            "--no-cross-validate", "--workers", "4",
            "--store", str(store_root), "--resume", "--out", str(out),
        ], cwd=REPO)
        assert "store: reused=" in resume.stderr
        reused = int(resume.stderr.split("reused=")[1].split()[0])
        assert reused >= 5, resume.stderr
        expected = census_json(workers=1, **CENSUS_KW)
        assert out.read_text() == expected


# ----------------------------------------------------------------------
# fork_map worker-error labeling
# ----------------------------------------------------------------------
def _explode_on_three(task):
    if task == 3:
        raise ValueError(f"boom on {task}")
    return task * 2


def _cell_label(task):
    return f"cell#{task}"


def _double(task):
    return task * 2


class TestForkMapErrors:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_raising_worker_is_labeled(self, workers):
        with pytest.raises(ForkTaskError) as info:
            fork_map(_explode_on_three, [1, 2, 3, 4], workers,
                     label=_cell_label)
        message = str(info.value)
        assert "[cell#3]" in message
        assert "ValueError: boom on 3" in message
        assert "worker traceback" in message

    @pytest.mark.parametrize("workers", [1, 4])
    def test_default_label_is_task_repr(self, workers):
        with pytest.raises(ForkTaskError) as info:
            fork_map(_explode_on_three, [3], workers)
        assert "[3]" in str(info.value)

    def test_clean_tasks_unaffected(self):
        assert fork_map(_explode_on_three, [1, 2], 2,
                        label=_cell_label) == [2, 4]


class TestForkMapOnResult:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_counts_arrive_in_task_order(self, workers):
        # on_result runs in the parent and reports the task-order prefix
        # length, monotonically, regardless of completion order
        seen = []
        out = fork_map(_double, list(range(9)), workers,
                       on_result=seen.append)
        assert out == [t * 2 for t in range(9)]
        assert seen == list(range(1, 10))

    def test_results_unchanged_by_hook(self):
        with_hook = fork_map(_double, [3, 1, 4], 2,
                             on_result=lambda _n: None)
        assert with_hook == fork_map(_double, [3, 1, 4], 2) == [6, 2, 8]


# ----------------------------------------------------------------------
# the serve CLI
# ----------------------------------------------------------------------
class TestServeCLI:
    def test_classify_miss_exits_3_then_build_then_serve(self, tmp_path):
        store = str(tmp_path / "cas")
        miss = _run_cli(["repro.serve", "--store", store, "classify",
                         "--problem", "free_labeling"],
                        cwd=REPO, check=False)
        assert miss.returncode == 3
        assert "miss" in miss.stderr
        built = _run_cli(["repro.serve", "--store", store, "classify",
                          "--problem", "free_labeling", "--build"],
                         cwd=REPO)
        assert "computed and stored" in built.stderr
        served = _run_cli(["repro.serve", "--store", store, "classify",
                           "--problem", "free_labeling"], cwd=REPO)
        assert "served from store" in served.stderr
        assert served.stdout == built.stdout
        payload = json.loads(served.stdout)
        assert payload["verdict"] == "O(1)"
        assert payload["problem"] == "free_labeling"
        assert payload["regions"]

    def test_classify_census_populated_store_serves(self, tmp_path):
        store_root = tmp_path / "cas"
        run_census(workers=1, store=str(store_root), **CENSUS_KW)
        served = _run_cli(["repro.serve", "--store", str(store_root),
                           "classify", "--problem", "edge_2coloring"],
                          cwd=REPO)
        assert "served from store" in served.stderr
        assert json.loads(served.stdout)["verdict"] == "no-good-function"

    def test_classify_inline_spec(self, tmp_path):
        spec = json.dumps({
            "n_in": 1, "n_out": 2, "delta": 2,
            "white": [[[0, 0]], [[0, 1]], [[0, 0], [0, 1]]],
            "black": [[[0, 0]], [[0, 1]], [[0, 0], [0, 1]]],
        })
        built = _run_cli(["repro.serve", "--store", str(tmp_path / "cas"),
                          "classify", "--spec", spec, "--build"], cwd=REPO)
        assert json.loads(built.stdout)["problem"] == "inline-spec"

    def test_curve_miss_build_then_serve_identical(self, tmp_path):
        store = str(tmp_path / "cas")
        common = ["curve", "--family", "random_tree", "--algorithm",
                  "two_coloring", "--sizes", "16,24", "--samples", "2",
                  "--instances", "1"]
        miss = _run_cli(["repro.serve", "--store", store, *common],
                        cwd=REPO, check=False)
        assert miss.returncode == 3
        built = _run_cli(["repro.serve", "--store", store, *common,
                          "--build"], cwd=REPO)
        served = _run_cli(["repro.serve", "--store", store, *common],
                          cwd=REPO)
        assert "served from store" in served.stderr
        assert served.stdout == built.stdout
        payload = json.loads(served.stdout)
        assert [p["n"] for p in payload["points"]] == [16, 24]
        assert payload["growth"] in ("flat", "intermediate", "linear")

    def test_curve_serves_sweep_cli_populated_store(self, tmp_path):
        """The sweep CLI and serve curve build identical unit keys
        (including the check default)."""
        store = str(tmp_path / "cas")
        _run_cli(["repro.sweep", "--family", "random_tree", "--sizes",
                  "16,24", "--algorithms", "two_coloring", "--samples",
                  "2", "--instances", "1", "--store", store, "--out",
                  str(tmp_path / "sweep.json")], cwd=REPO)
        served = _run_cli(["repro.serve", "--store", store, "curve",
                           "--family", "random_tree", "--algorithm",
                           "two_coloring", "--sizes", "16,24",
                           "--samples", "2", "--instances", "1"],
                          cwd=REPO)
        assert "served from store" in served.stderr

    def test_atlas_miss_build_then_serve_identical(self, tmp_path):
        store = str(tmp_path / "cas")
        common = ["atlas", "--max-labels", "1"]
        miss = _run_cli(["repro.serve", "--store", store, *common],
                        cwd=REPO, check=False)
        assert miss.returncode == 3
        assert "miss" in miss.stderr
        built = _run_cli(["repro.serve", "--store", store, *common,
                          "--build"], cwd=REPO)
        assert "computed and stored" in built.stderr
        served = _run_cli(["repro.serve", "--store", store, *common],
                          cwd=REPO)
        assert "served from store" in served.stderr
        assert served.stdout == built.stdout
        payload = json.loads(served.stdout)
        assert payload["atlas"]["max_labels"] == 1
        assert payload["atlas"]["truncated"] is False
        # every registry problem needs two output labels: none land here
        assert payload["landmarks"] == {}

    def test_atlas_census_cli_populated_store_serves(self, tmp_path):
        """The census --atlas publisher and serve atlas build identical
        keys; the served bytes equal the census-written artifact."""
        store = str(tmp_path / "cas")
        out = tmp_path / "atlas.json"
        _run_cli(["repro.gap.census", "--max-labels", "1", "--atlas",
                  "--store", store, "--out", str(out)], cwd=REPO)
        served = _run_cli(["repro.serve", "--store", store, "atlas",
                           "--max-labels", "1"], cwd=REPO)
        assert "served from store" in served.stderr
        assert served.stdout == out.read_text()

    def test_stats(self, tmp_path):
        store_root = tmp_path / "cas"
        ResultStore(store_root).put(
            ResultStore(store_root).key("k", 1), {"v": 1})
        proc = _run_cli(["repro.serve", "--store", str(store_root),
                         "stats"], cwd=REPO)
        stats = json.loads(proc.stdout)
        assert stats["entries"] == 1 and "k" in stats["kinds"]


# ----------------------------------------------------------------------
# experiments index dump
# ----------------------------------------------------------------------
class TestExperimentsDumpIndex:
    def test_dump_index_writes_canonical_json(self, tmp_path):
        from repro.experiments import EXPERIMENTS, dump_index

        path = tmp_path / "index.json"
        payload = dump_index(str(path))
        assert path.read_text() == canonical_json(payload)
        ids = [e["id"] for e in payload["experiments"]]
        assert ids == list(EXPERIMENTS)

    def test_cli_dump_index(self, tmp_path):
        path = tmp_path / "index.json"
        proc = _run_cli(["repro.experiments", "--dump-index", str(path)],
                        cwd=REPO)
        assert "wrote" in proc.stdout
        assert json.loads(path.read_text())["experiments"]
