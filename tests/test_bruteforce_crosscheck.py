"""Brute-force cross-checks on tiny instances.

The strongest form of checker/solver validation: enumerate *every*
labeling of a tiny instance and compare against what the library's
checkers accept and what the optimizing solvers report."""

import itertools
import math
import random

import pytest

from repro.algorithms import optimal_copy_assignment, run_algorithm_a
from repro.constructions import random_tree
from repro.lcl import Coloring25, DFreeWeightProblem, compute_levels
from repro.lcl.dfree import A_INPUT, CONNECT, COPY, DECLINE, W_INPUT
from repro.local import Graph, path_graph, star_graph


class TestDFreeBruteForce:
    """The DP minimum must equal the brute-force minimum Copy count."""

    def brute_min_copies(self, graph, d, root, ball, frontier):
        nodes = sorted(ball)
        best = None
        for combo in itertools.product((COPY, DECLINE), repeat=len(nodes)):
            assign = dict(zip(nodes, combo))
            if assign[root] != COPY:
                continue
            if any(assign[u] == COPY for u in frontier):
                continue
            ok = True
            for u in nodes:
                if assign[u] == COPY:
                    declines = sum(
                        1
                        for w in graph.neighbors(u)
                        if w in ball and assign[w] == DECLINE
                    )
                    # neighbours outside the ball decline implicitly
                    declines += sum(
                        1 for w in graph.neighbors(u) if w not in ball
                    )
                    if declines > d:
                        ok = False
                        break
            if ok:
                copies = sum(1 for lab in assign.values() if lab == COPY)
                if best is None or copies < best:
                    best = copies
        return best

    @pytest.mark.parametrize("seed", range(12))
    def test_dp_matches_bruteforce(self, seed):
        rng = random.Random(seed)
        g = random_tree(rng.randint(3, 11), 4, rng)
        d = rng.choice([1, 2, 3])
        root = 0
        radius = rng.randint(1, 3)
        ball_map = g.ball(root, radius)
        ball = set(ball_map)
        frontier = {u for u, dist in ball_map.items() if dist == radius}
        if root in frontier:
            frontier.discard(root)
        expected = self.brute_min_copies(g, d, root, ball, frontier)
        if expected is None:
            with pytest.raises(AssertionError):
                optimal_copy_assignment(g, root, ball, frontier, d)
            return
        assign = optimal_copy_assignment(g, root, ball, frontier, d)
        got = sum(1 for lab in assign.values() if lab == COPY)
        assert got == expected, (seed, got, expected)


class TestColoring25BruteForce:
    """Our solvers must agree with brute-force solvability, and the
    checker must accept exactly the solutions a direct reading of
    Definition 8 accepts."""

    def direct_check(self, graph, levels, outputs, k):
        # an independent re-implementation of Definition 8, written
        # differently from the library checker on purpose
        for v in graph.nodes():
            lv, out = levels[v], outputs[v]
            lower_colored = any(
                outputs[w] in ("W", "B", "E")
                for w in graph.neighbors(v)
                if levels[w] < lv
            )
            if lv == 1 and out == "E":
                return False
            if lv == k + 1:
                if out != "E":
                    return False
                continue
            if 2 <= lv <= k and (out == "E") != lower_colored:
                return False
            if lv == k and out == "D":
                return False
            if out in ("W", "B"):
                for w in graph.neighbors(v):
                    if levels[w] == lv and outputs[w] in (out, "D"):
                        return False
            if out not in ("W", "B", "E", "D"):
                return False
        return True

    @pytest.mark.parametrize("graph_factory,k", [
        (lambda: path_graph(4), 1),
        (lambda: star_graph(3), 1),
        (lambda: star_graph(3), 2),
        (lambda: Graph(6, [(0, 1), (1, 2), (1, 3), (3, 4), (3, 5)]), 2),
    ])
    def test_checker_equals_direct_reading(self, graph_factory, k):
        g = graph_factory()
        levels = compute_levels(g, k)
        prob = Coloring25(k)
        labels = ("W", "B", "E", "D")
        agree = 0
        for combo in itertools.product(labels, repeat=g.n):
            lib = prob.verify(g, list(combo)).valid
            direct = self.direct_check(g, levels, combo, k)
            assert lib == direct, (combo, levels)
            agree += 1
        assert agree == len(labels) ** g.n


class TestAlgorithmAOnTinyInstances:
    def test_every_output_kind_reachable(self):
        # a path with A at the ends and in the middle produces Connect,
        # Copy and Decline all at once somewhere in the space of instances
        seen = set()
        for seed in range(30):
            rng = random.Random(seed)
            g = random_tree(rng.randint(2, 25), 3, rng)
            inputs = [
                A_INPUT if rng.random() < 0.25 else W_INPUT
                for _ in range(g.n)
            ]
            sol = run_algorithm_a(g.with_inputs(inputs), 2)
            seen.update(sol.outputs)
            assert DFreeWeightProblem(5, 2).verify(
                g.with_inputs(inputs), sol.outputs
            ).valid
        assert seen == {CONNECT, COPY, DECLINE}
