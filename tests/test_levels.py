"""Tests for the k-hierarchical level computation (Definition 8)."""

import random

from hypothesis import given, settings, strategies as st

from repro.constructions import build_lower_bound_graph, caterpillar, random_tree
from repro.lcl import compute_levels, level_paths, nodes_of_level
from repro.local import balanced_tree, path_graph, star_graph


class TestComputeLevels:
    def test_path_all_level_one(self):
        g = path_graph(10)
        assert compute_levels(g, 2) == [1] * 10

    def test_star_two_levels(self):
        g = star_graph(5)
        levels = compute_levels(g, 2)
        # leaves peel at level 1; the centre then has degree 0 -> level 2
        assert levels[0] == 2
        assert levels[1:] == [1] * 5

    def test_high_degree_core_reaches_k_plus_one(self):
        # complete-ish tree: peeling k=1 leaves the internal nodes at level 2
        g = balanced_tree(3, 4)
        levels = compute_levels(g, 1)
        assert 2 in levels  # level k+1 = 2 exists
        assert levels.count(1) > levels.count(2)

    def test_caterpillar(self):
        g = caterpillar(spine=10, legs=3)
        levels = compute_levels(g, 2)
        # legs peel first; spine (degree 5 inside) peels second
        assert all(levels[v] == 1 for v in range(10, g.n))
        assert all(levels[v] == 2 for v in range(10))

    def test_restrict(self):
        g = path_graph(6)
        levels = compute_levels(g, 2, restrict=[0, 1, 2])
        assert levels[3:] == [0, 0, 0]
        assert levels[:3] == [1, 1, 1]

    def test_lower_bound_graph_levels(self):
        lb = build_lower_bound_graph([5, 5, 8])
        levels = compute_levels(lb.graph, 3)
        # every construction level is populated (up to boundary leaks,
        # the peeled level equals the intended level)
        for i in (1, 2, 3):
            assert nodes_of_level(levels, i)
        agree = sum(
            1 for v in lb.graph.nodes() if levels[v] == lb.intended_level[v]
        )
        assert agree / lb.graph.n > 0.8

    def test_level_monotone_in_k(self):
        g = balanced_tree(3, 3)
        l1 = compute_levels(g, 1)
        l3 = compute_levels(g, 3)
        # peeling longer can only refine: nodes peeled at level i for k=3
        # with i <= 1 must be peeled at level 1 for k=1
        for v in g.nodes():
            if l3[v] == 1:
                assert l1[v] == 1


class TestLevelPaths:
    def test_paths_are_ordered(self):
        lb = build_lower_bound_graph([6, 10])
        levels = compute_levels(lb.graph, 2)
        for path in level_paths(lb.graph, levels, 1):
            for a, b in zip(path, path[1:]):
                assert b in lb.graph.neighbors(a)

    def test_paths_partition_level(self):
        lb = build_lower_bound_graph([4, 6])
        levels = compute_levels(lb.graph, 2)
        covered = [v for p in level_paths(lb.graph, levels, 1) for v in p]
        assert sorted(covered) == sorted(nodes_of_level(levels, 1))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=60), st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=10_000))
def test_levels_invariants(n, k, seed):
    g = random_tree(n, max_degree=4, rng=random.Random(seed))
    levels = compute_levels(g, k)
    assert all(1 <= lv <= k + 1 for lv in levels)
    # a level-i node (i <= k) has at most 2 neighbours of level >= i
    for v in g.nodes():
        if levels[v] <= k:
            assert sum(1 for w in g.neighbors(v) if levels[w] >= levels[v]) <= 2
    # peeling is greedy: a node with <= 2 same-or-higher neighbours at
    # level i would have been taken at level i; so any level-(i+1) node has
    # >= 3 neighbours of level >= i ... equivalently, level-(i+1) nodes had
    # degree >= 3 when level i was peeled.
    for v in g.nodes():
        lv = levels[v]
        if lv >= 2 and lv <= k:
            higher = sum(1 for w in g.neighbors(v) if levels[w] >= lv)
            assert higher <= 2
