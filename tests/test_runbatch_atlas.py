"""Fuzz ``LocalSimulator.run_batch`` atlas reuse against fresh runs.

``run_batch`` shares a per-topology cache across ID samples: BFS layer
lists for view algorithms, neighbour tuples for message algorithms.  The
contract is that a cached (shared-layer) run is indistinguishable from a
fresh per-run store — pinned here over seeded corpora drawn from the
family generators, deliberately including disconnected graphs and
single-node components (the shapes where frontier exhaustion and
``sees_whole_component`` short-circuits are easiest to get wrong).
"""

import random

import pytest

from repro.algorithms import CanonicalTwoColoring, ColeVishkin3Coloring
from repro.families import get_family
from repro.local import (
    CONTINUE,
    ENGINES,
    Graph,
    LocalAlgorithm,
    LocalSimulator,
    MessageAlgorithm,
    disjoint_union,
    path_graph,
    random_ids,
)


def _corpus():
    """Seeded graphs: random forests with singleton components, spiders,
    caterpillars, plus a hand-built multi-singleton forest."""
    cases = []
    for name, n, seed in (
        ("fragmented_forest", 40, 0),
        ("fragmented_forest", 25, 7),
        ("random_forest", 30, 1),
        ("spider", 21, 2),
        ("caterpillar", 18, 3),
    ):
        for i, g in enumerate(get_family(name).instances(n, seed=seed, count=2)):
            cases.append((f"{name}-{n}-{seed}-{i}", g))
    lonely = disjoint_union(
        [Graph(1, []), path_graph(4), Graph(1, []), Graph(1, [])]
    )
    cases.append(("singletons", lonely))
    return cases


CORPUS = _corpus()


class _MinIdRank(LocalAlgorithm):
    """Commits once the whole component is visible; output = rank of own
    ID inside the component (exercises ball contents, not just sizes)."""

    name = "min-id-rank"

    def decide(self, view, n):
        if len(view.nodes()) < n and not view.sees_whole_component():
            return CONTINUE
        ids = sorted(view.id_of(u) for u in view.nodes())
        return ids.index(view.id_of(view.center))


class _FirstVisibleOutput(LocalAlgorithm):
    """Causality probe with ID-dependent commit rounds: min-ID node roots,
    everyone else commits when an output turns visible.  Under run_batch
    this makes later samples grow balls past what earlier samples cached,
    exercising the cached->expanding transition of the shared pool."""

    name = "first-visible-output"

    def decide(self, view, n):
        me = view.center
        if view.id_of(me) == min(view.id_of(u) for u in view.nodes()):
            if view.sees_whole_component() or len(view.nodes()) == n:
                return "root"
            return CONTINUE
        for u in view.nodes():
            if u != me and view.output_of(u) is not None:
                return view.round
        return CONTINUE


class _DegreeSum2(MessageAlgorithm):
    """Commits at round 2 with the sum of degrees at distance <= 2."""

    name = "degree-sum-2"

    def init_state(self, info, n):
        return {"deg": info.degree, "sum": info.degree, "nbrs": info.neighbors}

    def message(self, state, t):
        return state["sum"] if t == 0 else state["deg"]

    def transition(self, state, incoming, t):
        if t == 0:
            state["sum"] = state["deg"] + sum(incoming)
        return state

    def decide(self, state, t):
        return state["sum"] if t >= 2 else CONTINUE


def _id_samples(g, seed, k=3):
    rng = random.Random(seed)
    return [random_ids(g.n, rng=rng) for _ in range(k)]


@pytest.mark.parametrize("name,graph", CORPUS, ids=[c[0] for c in CORPUS])
@pytest.mark.parametrize("engine", ENGINES)
def test_view_batch_equals_fresh_runs(name, graph, engine):
    samples = _id_samples(graph, seed=hashlib_seed(name))
    for algo_factory in (CanonicalTwoColoring, _MinIdRank, _FirstVisibleOutput):
        sim = LocalSimulator(engine=engine)
        batched = sim.run_batch(graph, algo_factory(), samples)
        for ids, trace in zip(samples, batched):
            fresh = sim.run(graph, algo_factory(), ids)
            assert trace.rounds == fresh.rounds, (name, engine)
            assert trace.outputs == fresh.outputs, (name, engine)


@pytest.mark.parametrize("name,graph", CORPUS, ids=[c[0] for c in CORPUS])
@pytest.mark.parametrize("engine", ("incremental", "batched"))
def test_message_batch_equals_fresh_runs(name, graph, engine):
    samples = _id_samples(graph, seed=hashlib_seed(name) + 1)
    sim = LocalSimulator(engine=engine)
    batched = sim.run_batch(graph, _DegreeSum2(), samples)
    for ids, trace in zip(samples, batched):
        fresh = sim.run(graph, _DegreeSum2(), ids)
        assert trace.rounds == fresh.rounds, name
        assert trace.outputs == fresh.outputs, name


@pytest.mark.parametrize("engine", ("incremental", "batched"))
def test_message_batch_on_paths_matches_reference(engine):
    # under engine="batched" this exercises the vectorized decide_batch of
    # Cole-Vishkin across run_batch reuse (per-execution array state must
    # reset between the ID samples)
    g = disjoint_union([path_graph(6), path_graph(3), Graph(1, [])])
    samples = _id_samples(g, seed=99)
    batched = LocalSimulator(engine=engine).run_batch(
        g, ColeVishkin3Coloring(), samples
    )
    for ids, trace in zip(samples, batched):
        ref = LocalSimulator(engine="reference").run(g, ColeVishkin3Coloring(), ids)
        assert trace.rounds == ref.rounds
        assert trace.outputs == ref.outputs


def hashlib_seed(name: str) -> int:
    import hashlib

    return int.from_bytes(
        hashlib.blake2b(name.encode(), digest_size=4).digest(), "big"
    )
