"""Batched-engine internals and the satellite APIs that ride with them.

The observational three-way engine contract is pinned in
``tests/test_engine_equivalence.py``; this module goes one level down:
the :class:`~repro.local.frontier.FrontierScheduler` must grow layer
pools byte-identical to per-node :class:`~repro.local.algorithm.BallStore`
growth (same lists, same order), plus coverage for the adversarial ID
modes, the cached trace percentiles, and the sweep's auto-engine /
id-mode axes.
"""

import random

import pytest

from repro.families import get_family
from repro.local import (
    ID_MODES,
    BallStore,
    BatchedViews,
    FrontierScheduler,
    Graph,
    LocalSimulator,
    balanced_tree,
    bit_reversal_ids,
    boundary_clustered_ids,
    cycle_graph,
    descending_ids,
    disjoint_union,
    make_ids,
    path_graph,
    random_ids,
    sequential_ids,
    validate_ids,
)
from repro.local.metrics import ExecutionTrace


def _scheduler_corpus():
    cases = [
        ("path7", path_graph(7)),
        ("cycle8", cycle_graph(8)),
        ("btree", balanced_tree(2, 3)),
        ("forest", Graph(9, [(0, 1), (1, 2), (3, 4), (6, 7), (7, 8)])),
        ("singleton", Graph(1, [])),
    ]
    for i, g in enumerate(get_family("caterpillar").instances(14, seed=5, count=2)):
        cases.append((f"caterpillar{i}", g))
    return cases


SCHED_CORPUS = _scheduler_corpus()


class TestFrontierScheduler:
    @pytest.mark.parametrize(
        "name,graph", SCHED_CORPUS, ids=[c[0] for c in SCHED_CORPUS]
    )
    def test_layers_match_ballstore(self, name, graph):
        n = graph.n
        sched = FrontierScheduler(graph, bytearray(n))
        radius = n + 1
        sched.grow_to(radius)
        for v in range(n):
            store = BallStore(graph, v)
            store.grow_to(radius)
            # identical lists in identical order, including the trailing
            # empty layer the BallStore convention records
            assert sched.pool(v) == store._layers, (name, v)
            assert bool(sched.complete[v]) == store.complete, (name, v)
            assert int(sched.ball_size[v]) == len(store.dist), (name, v)

    @pytest.mark.parametrize(
        "name,graph", SCHED_CORPUS, ids=[c[0] for c in SCHED_CORPUS]
    )
    def test_views_match_fresh_extraction(self, name, graph):
        n = graph.n
        ids = random_ids(n, rng=random.Random(3))
        commit_round = [None] * n
        outputs = [None] * n
        sched = FrontierScheduler(graph, bytearray(n))
        views = BatchedViews(graph, ids, commit_round, outputs, sched)
        for t in range(min(n, 5)):
            views.round = t
            for v in range(n):
                view = views.view_of(v)
                # same dict contents AND iteration order as a from-scratch
                # extraction — the engine-contract requirement
                assert list(view.nodes().items()) == \
                    list(graph.ball(v, t).items()), (name, v, t)

    def test_committed_centers_stop_growing(self):
        g = path_graph(9)
        committed = bytearray(9)
        sched = FrontierScheduler(g, committed)
        sched.grow_to(2)
        committed[4] = 1
        sched.grow_to(4)
        # node 4's pool froze at radius 2; its neighbours kept growing
        assert len(sched.pool(4)) == 3
        assert len(sched.pool(3)) == 5
        assert int(sched.ball_size[4]) == 5

    def test_atlas_layers_shared_with_ballstore_format(self):
        g = balanced_tree(2, 2)
        atlas = {}
        sched = FrontierScheduler(g, bytearray(g.n), atlas=atlas)
        sched.grow_to(3)
        # the scheduler populated the exact atlas keys run_batch shares
        store = BallStore(g, 0, layers=atlas[("layers", 0)])
        store.grow_to(3)
        assert store.dist == g.ball(0, 3)

    def test_lazy_growth(self):
        g = path_graph(50)
        sched = FrontierScheduler(g, bytearray(50))
        assert sched.radius == 0  # nothing queried, nothing swept
        sched.grow_to(0)
        assert sched.radius == 0

    def test_ball_fact_arrays_are_read_only(self):
        # mutating shared engine state must raise, not silently corrupt
        # later rounds (same sealing philosophy as the read-only View ball)
        g = path_graph(5)
        views = BatchedViews(g, [1, 2, 3, 4, 5], [None] * 5, [None] * 5,
                             FrontierScheduler(g, bytearray(5)))
        views.round = 1
        import pytest as _pytest
        with _pytest.raises(ValueError):
            views.complete_mask()[0] = True
        with _pytest.raises(ValueError):
            views.ball_sizes()[0] = 99


class TestAdversarialIds:
    @pytest.mark.parametrize("mode", sorted(ID_MODES))
    @pytest.mark.parametrize("n", [1, 2, 7, 16, 33])
    def test_modes_produce_valid_assignments(self, mode, n):
        ids = make_ids(mode, n, rng=random.Random(0))
        assert len(ids) == n
        validate_ids(ids)

    def test_descending(self):
        assert descending_ids(5) == [5, 4, 3, 2, 1]

    def test_boundary_clustered(self):
        assert boundary_clustered_ids(6) == [1, 3, 5, 6, 4, 2]
        assert boundary_clustered_ids(5) == [1, 3, 5, 4, 2]
        assert boundary_clustered_ids(1) == [1]

    def test_bit_reversal_is_permutation(self):
        for n in (1, 2, 8, 12, 16):
            ids = bit_reversal_ids(n)
            assert sorted(ids) == list(range(1, n + 1))
        # n=8, 3 bits: reversed values 0,4,2,6,1,5,3,7 -> ranks
        assert bit_reversal_ids(8) == [1, 5, 3, 7, 2, 6, 4, 8]

    def test_deterministic_modes_ignore_rng(self):
        for mode in ("sequential", "descending", "bit_reversal",
                     "boundary_clustered"):
            a = make_ids(mode, 9, rng=random.Random(1))
            b = make_ids(mode, 9, rng=random.Random(2))
            assert a == b

    def test_registry_declares_determinism(self):
        # the declared flag is what the sweep's sample-collapse relies on:
        # it must match each mode's actual rng behaviour
        for name, entry in ID_MODES.items():
            a = entry.fn(9, random.Random(1))
            b = entry.fn(9, random.Random(2))
            assert entry.deterministic == (a == b), name

    def test_unknown_mode_rejected(self):
        with pytest.raises(KeyError):
            make_ids("nope", 5)

    def test_adversarial_ids_run_through_all_engines(self):
        from repro.algorithms import ColeVishkin3Coloring
        from repro.local import ENGINES

        g = cycle_graph(12)
        for mode in ("descending", "bit_reversal", "boundary_clustered"):
            ids = make_ids(mode, 12)
            ref = LocalSimulator(engine="reference").run(
                g, ColeVishkin3Coloring(), ids)
            for engine in ENGINES:
                tr = LocalSimulator(engine=engine).run(
                    g, ColeVishkin3Coloring(), ids)
                assert tr.rounds == ref.rounds and tr.outputs == ref.outputs


class TestPercentileCache:
    def test_percentiles_bulk_matches_scalar(self):
        tr = ExecutionTrace(rounds=[5, 1, 4, 2, 3], outputs=[0] * 5)
        qs = (0, 25, 50, 75, 99, 100)
        assert tr.percentiles(qs) == [tr.percentile(q) for q in qs]

    def test_sort_is_cached(self):
        tr = ExecutionTrace(rounds=[3, 1, 2], outputs=[0] * 3)
        assert tr.percentile(50) == 2
        assert tr._ordered == [1, 2, 3]
        assert tr.percentile(100) == 3

    def test_summary_uses_bulk_accessor(self):
        tr = ExecutionTrace(rounds=[1, 2, 3, 4], outputs=[0] * 4)
        s = tr.summary()
        assert s["median"] == 2.0 and s["p99"] == 4.0

    def test_bounds_still_enforced(self):
        tr = ExecutionTrace(rounds=[1], outputs=[0])
        with pytest.raises(ValueError):
            tr.percentile(101)
        with pytest.raises(ValueError):
            tr.percentiles([50, -1])


class TestSweepAxes:
    def test_auto_engine_and_id_mode_recorded_in_spec(self):
        from repro.sweep import SweepRunner

        payload = SweepRunner(samples=1, instances=1, id_mode="descending").run(
            ["random_tree"], [12], ["two_coloring"])
        assert payload["spec"]["engine"] == "auto"
        assert payload["spec"]["id_mode"] == "descending"

    def test_auto_matches_explicit_engines(self):
        from repro.sweep import SweepRunner

        args = (["spider"], [12], ["two_coloring", "rake_layering"])
        auto = SweepRunner(samples=2, engine="auto").run(*args, seed=5)
        inc = SweepRunner(samples=2, engine="incremental").run(*args, seed=5)
        bat = SweepRunner(samples=2, engine="batched").run(*args, seed=5)
        for a, i, b in zip(auto["cells"], inc["cells"], bat["cells"]):
            assert a["node_averaged"] == i["node_averaged"] == b["node_averaged"]
            assert a["worst_case"] == i["worst_case"] == b["worst_case"]

    def test_id_mode_reaches_the_simulator(self):
        # the sweep hands the mode's exact assignment to every run: with
        # id_mode="sequential" on the canonical path family, outputs are
        # the parity coloring rooted at handle 0
        from repro.algorithms import CanonicalTwoColoring
        from repro.sweep import SweepRunner

        payload = SweepRunner(samples=1, instances=1,
                              id_mode="sequential").run(
            ["path"], [8], ["two_coloring"], seed=0)
        cell = payload["cells"][0]
        assert cell["validity"] == {"valid": 1, "violations": 0}
        tr = LocalSimulator(engine="batched").run(
            path_graph(8), CanonicalTwoColoring(), sequential_ids(8))
        assert cell["node_averaged"]["max"] == tr.node_averaged()

    def test_invalid_axes_rejected(self):
        from repro.sweep import SweepRunner

        with pytest.raises(ValueError):
            SweepRunner(id_mode="nope")
        with pytest.raises(ValueError):
            SweepRunner(engine="warp")

    def test_cli_id_mode_axis(self, capsys):
        import json

        from repro.sweep import main

        rc = main(["--family", "path", "--sizes", "9", "--samples", "1",
                   "--instances", "1", "--id-mode", "bit_reversal"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["id_mode"] == "bit_reversal"
        assert payload["spec"]["engine"] == "auto"
