"""Property-based tests (hypothesis) on core invariants across the stack."""

import random

from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    run_algorithm_a,
    run_fast_dfree,
    run_generic_fast_forward,
    default_gammas_25,
    default_gammas_35,
    solve_hierarchical_labeling,
)
from repro.algorithms.generic_message import GenericPhaseColoring
from repro.constructions import random_tree
from repro.lcl import (
    Coloring25,
    Coloring35,
    DFreeWeightProblem,
    HierarchicalLabeling,
    compute_levels,
)
from repro.lcl.dfree import A_INPUT, W_INPUT
from repro.local import MessageSimulator, random_ids

trees = st.builds(
    lambda n, seed: random_tree(n, 4, random.Random(seed)),
    st.integers(min_value=2, max_value=80),
    st.integers(min_value=0, max_value=10**6),
)


@settings(max_examples=25, deadline=None)
@given(trees, st.integers(min_value=1, max_value=3),
       st.sampled_from(["2.5", "3.5"]), st.integers(min_value=0, max_value=99))
def test_generic_algorithm_always_valid(g, k, variant, seed):
    """On ANY bounded-degree tree, the generic algorithm's output passes
    the Definition 8/9 checker."""
    ids = random_ids(g.n, rng=random.Random(seed))
    gammas = (
        default_gammas_25(g.n, k) if variant == "2.5" else default_gammas_35(g.n, k)
    )
    tr = run_generic_fast_forward(g, ids, k, gammas, variant)
    prob = Coloring25(k) if variant == "2.5" else Coloring35(k)
    assert prob.verify(g, tr.outputs).valid


@settings(max_examples=12, deadline=None)
@given(trees, st.integers(min_value=1, max_value=2),
       st.integers(min_value=0, max_value=99))
def test_message_equals_fast_forward_on_random_trees(g, k, seed):
    """The distributed execution and the centralized replay agree on
    arbitrary trees, not just the paper's constructions."""
    ids = random_ids(g.n, rng=random.Random(seed))
    gammas = default_gammas_25(g.n, k)
    ff = run_generic_fast_forward(g, ids, k, gammas, "2.5")
    tr = MessageSimulator().run(g, GenericPhaseColoring(k, gammas, "2.5"), ids)
    assert tr.outputs == ff.outputs
    assert tr.rounds == ff.rounds


@settings(max_examples=20, deadline=None)
@given(trees, st.integers(min_value=0, max_value=99),
       st.integers(min_value=2, max_value=3))
def test_dfree_solvers_agree_on_validity(g, seed, d):
    """Both d-free solvers produce valid solutions on random instances,
    and the fast solver never uses more Copy nodes than nodes exist."""
    rng = random.Random(seed)
    inputs = [A_INPUT if rng.random() < 0.12 else W_INPUT for _ in range(g.n)]
    inst = g.with_inputs(inputs)
    prob = DFreeWeightProblem(max(6, d + 3), d)
    a = run_algorithm_a(inst, d)
    assert prob.verify(inst, a.outputs).valid
    f = run_fast_dfree(inst, d)
    assert prob.verify(inst, f.outputs).valid
    assert f.outputs.count("Copy") <= g.n


@settings(max_examples=20, deadline=None)
@given(trees, st.integers(min_value=2, max_value=4))
def test_labeling_solver_always_valid(g, k):
    sol = solve_hierarchical_labeling(g, k)
    assert HierarchicalLabeling(k).verify(g, sol.as_outputs(g.n)).valid


@settings(max_examples=25, deadline=None)
@given(trees, st.integers(min_value=1, max_value=4))
def test_levels_cover_and_bound(g, k):
    levels = compute_levels(g, k)
    assert all(1 <= lv <= k + 1 for lv in levels)
    # level sets of index <= k are unions of paths in the peeled graph:
    # every level-i node has at most 2 same-level neighbours
    for v in g.nodes():
        if levels[v] <= k:
            same = sum(1 for w in g.neighbors(v) if levels[w] == levels[v])
            assert same <= 2
