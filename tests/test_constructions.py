"""Tests for the lower-bound constructions (Definitions 18 and 25)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.constructions import (
    build_lower_bound_graph,
    build_weighted_construction,
    caterpillar,
    paper_lengths,
    random_tree,
    weight_tree_edges,
)
from repro.lcl import ACTIVE, WEIGHT, compute_levels
from repro.local import Graph


class TestLowerBoundGraph:
    def test_size_is_product_sum(self):
        lb = build_lower_bound_graph([3, 4, 5])
        # level-3 path: 5; level-2: 5*4; level-1: 5*4*3
        assert lb.graph.n == 5 + 20 + 60
        assert lb.graph.is_tree()

    def test_corollary19_level_sizes(self):
        # |L_i| = Theta(prod_{j>=i} l_j)
        lengths = [4, 5, 6]
        lb = build_lower_bound_graph(lengths)
        for i in (1, 2, 3):
            expected = math.prod(lengths[i - 1 :])
            got = len(lb.nodes_of_intended_level(i))
            assert got == expected

    def test_peeled_levels_match_up_to_leaks(self):
        lb = build_lower_bound_graph([6, 6, 8])
        levels = compute_levels(lb.graph, 3)
        mism = sum(
            1 for v in lb.graph.nodes() if levels[v] != lb.intended_level[v]
        )
        # boundary leaks are O(1) per path
        total_paths = sum(len(p) for p in lb.paths_by_level.values())
        assert mism <= 2 * total_paths

    def test_paths_in_order(self):
        lb = build_lower_bound_graph([5, 7])
        for i, paths in lb.paths_by_level.items():
            for p in paths:
                for a, b in zip(p, p[1:]):
                    assert b in lb.graph.neighbors(a)

    def test_k1_is_just_a_path(self):
        lb = build_lower_bound_graph([9])
        assert lb.graph.n == 9
        assert lb.graph.max_degree() == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_lower_bound_graph([])

    def test_max_degree_bounded(self):
        lb = build_lower_bound_graph([4, 4, 4])
        # interior of a level path: 2 path nbrs + 1 pendant + 1 up-link
        assert lb.graph.max_degree() <= 4


class TestPaperLengths:
    def test_poly_lengths_product(self):
        lens = paper_lengths(10_000, [0.25, 0.4], "poly")
        assert len(lens) == 3
        assert all(l >= 2 for l in lens)
        assert math.prod(lens) == pytest.approx(10_000, rel=0.5)

    def test_logstar_lengths_small(self):
        lens = paper_lengths(10_000, [0.5], "logstar")
        # (log* 10^4)^0.5 ~ 2
        assert lens[0] <= 4
        assert lens[1] >= 1000

    def test_bad_regime(self):
        with pytest.raises(ValueError):
            paper_lengths(100, [0.5], "exp")


class TestWeightTree:
    def test_edge_count_and_handles(self):
        edges, nxt = weight_tree_edges(7, 4, root_handle=99, first_handle=100)
        assert len(edges) == 7
        assert nxt == 107
        assert edges[0] == (99, 100)

    def test_zero_weight(self):
        edges, nxt = weight_tree_edges(0, 4, 0, 1)
        assert edges == [] and nxt == 1

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=3, max_value=6))
    def test_degree_budget(self, w, delta):
        edges, nxt = weight_tree_edges(w, delta, 0, 1)
        g = Graph(nxt, edges)
        # tree nodes have at most delta-1 children + 1 parent = delta
        for v in range(1, nxt):
            assert g.degree(v) <= delta


class TestWeightedConstruction:
    def test_input_partition(self):
        wi = build_weighted_construction([4, 5], 5, weight_per_level=50)
        inputs = wi.graph.inputs()
        assert inputs.count(ACTIVE) == wi.core.graph.n
        assert inputs.count(WEIGHT) == wi.n - wi.core.graph.n

    def test_weight_total(self):
        k = 3
        wi = build_weighted_construction([3, 4, 5], 5, weight_per_level=60)
        # levels 2..k get 60 each
        assert len(wi.weight_nodes()) == 60 * (k - 1)

    def test_trees_attach_to_level_ge_2(self):
        wi = build_weighted_construction([4, 5], 5, weight_per_level=40)
        for a in wi.tree_of:
            assert wi.core.intended_level[a] >= 2

    def test_even_distribution(self):
        wi = build_weighted_construction([4, 6], 5, weight_per_level=60)
        lvl2 = [a for a in wi.tree_of if wi.core.intended_level[a] == 2]
        sizes = [len(wi.tree_of[a]) for a in lvl2]
        assert max(sizes) - min(sizes) <= 1

    def test_is_tree(self):
        wi = build_weighted_construction([3, 4], 5, weight_per_level=33)
        assert wi.graph.is_tree()


class TestGenerators:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=100), st.integers(min_value=0, max_value=10**6))
    def test_random_tree_is_tree(self, n, seed):
        g = random_tree(n, 4, random.Random(seed))
        assert g.is_tree()
        assert g.max_degree() <= 4

    def test_caterpillar_shape(self):
        g = caterpillar(5, 2)
        assert g.n == 5 + 10
        assert g.degree(0) == 3  # spine end: 1 spine + 2 legs
        assert g.degree(2) == 4
