"""Tests for the Section-11 gap machinery: black-white formalism, classes,
testing procedure, and the Theorem-7 decider."""

import pytest

from repro.gap import (
    RectangleChooser,
    decide_node_averaged_class,
    find_good_function,
    g_single_node,
    is_constant_good,
    leaf_label_sets,
    maximal_rectangles,
    node_feasible,
    path_relation,
)
from repro.gap.problems import all_equal, edge_2coloring, edge_3coloring, free_labeling
from repro.lcl import BlackWhiteLCL, two_color_tree
from repro.local import path_graph


class TestBlackWhiteChecker:
    def test_verify_free(self):
        g = path_graph(4)
        colors = two_color_tree(g)
        prob = free_labeling()
        edges = {frozenset(e): "-" for e in g.edges()}
        outs = {frozenset(e): 0 for e in g.edges()}
        assert prob.verify(g, colors, edges, outs).valid

    def test_verify_coloring(self):
        g = path_graph(4)
        colors = two_color_tree(g)
        prob = edge_3coloring()
        edges = {frozenset(e): "-" for e in g.edges()}
        good = {frozenset((i, i + 1)): (i % 3) + 1 for i in range(3)}
        assert prob.verify(g, colors, edges, good).valid
        bad = dict(good)
        bad[frozenset((1, 2))] = good[frozenset((0, 1))]
        assert not prob.verify(g, colors, edges, bad).valid

    def test_rejects_bad_2coloring(self):
        g = path_graph(3)
        prob = free_labeling()
        edges = {frozenset(e): "-" for e in g.edges()}
        outs = {frozenset(e): 0 for e in g.edges()}
        assert not prob.verify(g, ["W", "W", "B"], edges, outs).valid


class TestClasses:
    def test_leaf_label_sets(self):
        prob = edge_3coloring()
        ls = leaf_label_sets(prob, "W")["-"]
        assert ls == frozenset({1, 2, 3})

    def test_g_single_node(self):
        prob = edge_3coloring()
        # one incoming edge fixed to {1}: outgoing may be 2 or 3
        out = g_single_node(prob, "W", [("-", frozenset({1}))], "-")
        assert out == frozenset({2, 3})

    def test_node_feasible(self):
        prob = edge_2coloring()
        assert node_feasible(prob, "W", [("-", 1)], [("-", frozenset({2}))])
        assert not node_feasible(prob, "W", [("-", 1)], [("-", frozenset({1}))])

    def test_path_relation_3coloring_is_full(self):
        prob = edge_3coloring()
        rel = path_relation(
            prob, ["W", "B", "W"], ["-", "-"], [[], [], []], ("-", "-")
        )
        assert len(rel) == 9  # any endpoint combination is completable

    def test_path_relation_2coloring_is_parity(self):
        prob = edge_2coloring()
        rel = path_relation(prob, ["W", "B"], ["-"], [[], []], ("-", "-"))
        # two nodes, middle edge: out1 != mid != out2: out1, out2 free? no:
        # out1 != mid and out2 != mid with 2 colors forces out1 == out2
        assert rel == frozenset({(1, 1), (2, 2)})

    def test_maximal_rectangles(self):
        rel = frozenset({(1, 2), (2, 1)})
        rects = maximal_rectangles(rel)
        assert (frozenset({1}), frozenset({2})) in rects
        assert (frozenset({2}), frozenset({1})) in rects
        full = frozenset({(a, b) for a in (1, 2) for b in (1, 2)})
        assert maximal_rectangles(full) == [
            (frozenset({1, 2}), frozenset({1, 2}))
        ]

    def test_empty_relation_no_rects(self):
        assert maximal_rectangles(frozenset()) == []


class TestDecider:
    def test_free_labeling_is_constant(self):
        v = decide_node_averaged_class(free_labeling())
        assert v.klass == "O(1)"
        assert v.witness is not None

    def test_all_equal_is_constant(self):
        assert decide_node_averaged_class(all_equal()).klass == "O(1)"

    def test_edge_3coloring_is_logstar(self):
        v = decide_node_averaged_class(edge_3coloring())
        assert v.klass == "logstar-regime"

    def test_edge_2coloring_has_no_good_function(self):
        v = decide_node_averaged_class(edge_2coloring())
        assert v.klass == "no-good-function"
        assert find_good_function(edge_2coloring()) is None

    def test_good_function_exists_for_3coloring(self):
        got = find_good_function(edge_3coloring())
        assert got is not None
        chooser, outcome = got
        assert outcome.good
        assert not is_constant_good(edge_3coloring(), chooser, outcome)

    def test_verdict_str(self):
        v = decide_node_averaged_class(free_labeling())
        assert "O(1)" in str(v)
