"""Tests for the Section-11 gap machinery: black-white formalism, classes,
testing procedure, and the Theorem-7 decider."""

import pytest

from repro.gap import (
    RectangleChooser,
    decide_node_averaged_class,
    find_good_function,
    g_single_node,
    is_constant_good,
    leaf_label_sets,
    maximal_rectangles,
    node_feasible,
    path_relation,
)
from repro.gap.problems import all_equal, edge_2coloring, edge_3coloring, free_labeling
from repro.lcl import BlackWhiteLCL, two_color_tree
from repro.local import path_graph


class TestBlackWhiteChecker:
    def test_verify_free(self):
        g = path_graph(4)
        colors = two_color_tree(g)
        prob = free_labeling()
        edges = {frozenset(e): "-" for e in g.edges()}
        outs = {frozenset(e): 0 for e in g.edges()}
        assert prob.verify(g, colors, edges, outs).valid

    def test_verify_coloring(self):
        g = path_graph(4)
        colors = two_color_tree(g)
        prob = edge_3coloring()
        edges = {frozenset(e): "-" for e in g.edges()}
        good = {frozenset((i, i + 1)): (i % 3) + 1 for i in range(3)}
        assert prob.verify(g, colors, edges, good).valid
        bad = dict(good)
        bad[frozenset((1, 2))] = good[frozenset((0, 1))]
        assert not prob.verify(g, colors, edges, bad).valid

    def test_rejects_bad_2coloring(self):
        g = path_graph(3)
        prob = free_labeling()
        edges = {frozenset(e): "-" for e in g.edges()}
        outs = {frozenset(e): 0 for e in g.edges()}
        assert not prob.verify(g, ["W", "W", "B"], edges, outs).valid


class TestClasses:
    def test_leaf_label_sets(self):
        prob = edge_3coloring()
        ls = leaf_label_sets(prob, "W")["-"]
        assert ls == frozenset({1, 2, 3})

    def test_g_single_node(self):
        prob = edge_3coloring()
        # one incoming edge fixed to {1}: outgoing may be 2 or 3
        out = g_single_node(prob, "W", [("-", frozenset({1}))], "-")
        assert out == frozenset({2, 3})

    def test_node_feasible(self):
        prob = edge_2coloring()
        assert node_feasible(prob, "W", [("-", 1)], [("-", frozenset({2}))])
        assert not node_feasible(prob, "W", [("-", 1)], [("-", frozenset({1}))])

    def test_path_relation_3coloring_is_full(self):
        prob = edge_3coloring()
        rel = path_relation(
            prob, ["W", "B", "W"], ["-", "-"], [[], [], []], ("-", "-")
        )
        assert len(rel) == 9  # any endpoint combination is completable

    def test_path_relation_2coloring_is_parity(self):
        prob = edge_2coloring()
        rel = path_relation(prob, ["W", "B"], ["-"], [[], []], ("-", "-"))
        # two nodes, middle edge: out1 != mid != out2: out1, out2 free? no:
        # out1 != mid and out2 != mid with 2 colors forces out1 == out2
        assert rel == frozenset({(1, 1), (2, 2)})

    def test_maximal_rectangles(self):
        rel = frozenset({(1, 2), (2, 1)})
        rects = maximal_rectangles(rel)
        assert (frozenset({1}), frozenset({2})) in rects
        assert (frozenset({2}), frozenset({1})) in rects
        full = frozenset({(a, b) for a in (1, 2) for b in (1, 2)})
        assert maximal_rectangles(full) == [
            (frozenset({1, 2}), frozenset({1, 2}))
        ]

    def test_empty_relation_no_rects(self):
        assert maximal_rectangles(frozenset()) == []


class TestDecider:
    def test_free_labeling_is_constant(self):
        v = decide_node_averaged_class(free_labeling())
        assert v.klass == "O(1)"
        assert v.witness is not None

    def test_all_equal_is_constant(self):
        assert decide_node_averaged_class(all_equal()).klass == "O(1)"

    def test_edge_3coloring_is_logstar(self):
        v = decide_node_averaged_class(edge_3coloring())
        assert v.klass == "logstar-regime"

    def test_edge_2coloring_has_no_good_function(self):
        v = decide_node_averaged_class(edge_2coloring())
        assert v.klass == "no-good-function"
        assert find_good_function(edge_2coloring()) is None

    def test_good_function_exists_for_3coloring(self):
        got = find_good_function(edge_3coloring())
        assert got is not None
        chooser, outcome = got
        assert outcome.good
        assert not is_constant_good(edge_3coloring(), chooser, outcome)

    def test_verdict_str(self):
        v = decide_node_averaged_class(free_labeling())
        assert "O(1)" in str(v)


#: pinned Theorem-7 verdicts for the registry problems — the O(1)
#: witnesses, the logstar-regime witness and the no-good-function witness
VERDICT_SNAPSHOTS = {
    "free-labeling": (
        "O(1)", "constant-good function found; node-averaged O(1)"),
    "all-equal": (
        "O(1)", "constant-good function found; node-averaged O(1)"),
    "edge-3coloring": (
        "logstar-regime",
        "good function exists but none constant-good: complexity is "
        "(log* n)^{Omega(1)} and O(log* n) node-averaged "
        "(Theorem 7 gap: nothing lives in omega(1)..(log* n)^{o(1)})"),
    "edge-2coloring": (
        "no-good-function",
        "no good f_{Pi,infinity}: outside the log* regime (polynomial or "
        "unsolvable)"),
}

_REGISTRY = (free_labeling, all_equal, edge_3coloring, edge_2coloring)


class TestDeciderSnapshots:
    def test_registry_verdict_snapshots(self):
        for factory in _REGISTRY:
            v = decide_node_averaged_class(factory())
            klass, detail = VERDICT_SNAPSHOTS[v.problem]
            assert (v.klass, v.detail) == (klass, detail)

    def test_witness_presence_matches_klass(self):
        for factory in _REGISTRY:
            v = decide_node_averaged_class(factory())
            assert (v.witness is not None) == (v.klass != "no-good-function")


class TestDeciderMemoization:
    def test_verdicts_identical_with_and_without_cache(self):
        # the GapCache may only change the work done, never the verdict
        for factory in _REGISTRY:
            memo = decide_node_averaged_class(factory(), memoize=True)
            cold = decide_node_averaged_class(factory(), memoize=False)
            assert (memo.problem, memo.klass, memo.detail) == \
                (cold.problem, cold.klass, cold.detail)
            if memo.witness is None:
                assert cold.witness is None
            else:
                assert memo.witness.choices == cold.witness.choices

    def test_census_space_verdicts_identical(self):
        # same equivalence over (a slice of) the enumerated census space
        from repro.gap.census import _decode, enumerate_space, spec_to_problem

        encodings, _, _ = enumerate_space(max_labels=2, delta=2)
        for enc in encodings[::7]:
            memo = decide_node_averaged_class(
                spec_to_problem(_decode(enc)), memoize=True)
            cold = decide_node_averaged_class(
                spec_to_problem(_decode(enc)), memoize=False)
            assert (memo.klass, memo.detail) == (cold.klass, cold.detail)

    def test_find_good_function_accepts_shared_cache(self):
        from repro.gap import GapCache

        problem = edge_3coloring()
        cache = GapCache(problem)
        got = find_good_function(problem, cache=cache)
        again = find_good_function(problem, cache=cache)
        assert got is not None and again is not None
        assert got[0].choices == again[0].choices
        assert cache.rake  # the shared closure memo actually filled

    def test_testing_procedure_budget_respected_with_cache(self):
        # budget accounting counts enumerated combinations even when the
        # cache skips the enumeration — exhaustion must be identical
        from repro.gap import GapCache, RectangleChooser
        from repro.gap.testing import run_testing_procedure

        from repro.gap.testing import UnseenRelation

        problem = free_labeling()
        for memoize in (True, False):
            cache = GapCache(problem, memoize=memoize)
            # warm the cache (the empty chooser stops at the first
            # compress relation, after the rake closure is computed)
            with pytest.raises(UnseenRelation):
                run_testing_procedure(
                    problem, RectangleChooser({}), cache=cache)
            # rerun with a budget that cannot cover even that first rake
            # closure: cached and uncached runs must starve identically
            starved = run_testing_procedure(
                problem, RectangleChooser({}), combo_budget=3, cache=cache)
            assert starved.reason == "combination budget exceeded"
            assert not starved.good

    def test_truncated_rake_closure_not_cached(self):
        # the budget aborts the closure mid-enumeration; the partial
        # result must never enter the shared memo
        from repro.gap import GapCache, RectangleChooser
        from repro.gap.testing import run_testing_procedure

        problem = free_labeling()
        cache = GapCache(problem)
        starved = run_testing_procedure(
            problem, RectangleChooser({}), combo_budget=3, cache=cache)
        assert starved.reason == "combination budget exceeded"
        assert cache.rake == {}
