"""Tests for the graph substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.local import Graph, balanced_tree, from_networkx, path_graph, star_graph, to_networkx


class TestGraphBasics:
    def test_empty_edges(self):
        g = Graph(3, [])
        assert g.n == 3 and g.m == 0
        assert g.degree(0) == 0

    def test_path_structure(self):
        g = path_graph(5)
        assert g.n == 5 and g.m == 4
        assert g.degree(0) == 1 and g.degree(2) == 2
        assert g.is_tree()

    def test_single_node_is_tree(self):
        assert path_graph(1).is_tree()

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 1), (1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 2)])

    def test_inputs_roundtrip(self):
        g = Graph(3, [(0, 1)], inputs=["a", "b", "c"])
        assert g.input_of(2) == "c"
        g2 = g.with_inputs(["x", "y", "z"])
        assert g2.input_of(0) == "x"
        assert g.input_of(0) == "a"

    def test_inputs_length_mismatch(self):
        with pytest.raises(ValueError):
            Graph(2, [], inputs=["a"])

    def test_star(self):
        g = star_graph(5)
        assert g.degree(0) == 5
        assert g.max_degree() == 5
        assert g.is_tree()

    def test_balanced_tree_counts(self):
        g = balanced_tree(fanout=2, height=3)
        assert g.n == 1 + 2 + 4 + 8
        assert g.is_tree()
        assert g.degree(0) == 2

    def test_forest_detection(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.is_forest()
        assert not g.is_tree()
        assert not g.is_connected()


class TestBallsAndComponents:
    def test_ball_radii(self):
        g = path_graph(9)
        ball = g.ball(4, 2)
        assert set(ball) == {2, 3, 4, 5, 6}
        assert ball[2] == 2 and ball[4] == 0

    def test_ball_zero(self):
        g = path_graph(3)
        assert g.ball(1, 0) == {1: 0}

    def test_components(self):
        g = Graph(5, [(0, 1), (3, 4)])
        comps = sorted(sorted(c) for c in g.connected_components())
        assert comps == [[0, 1], [2], [3, 4]]

    def test_eccentricity_path(self):
        g = path_graph(7)
        assert g.eccentricity(0) == 6
        assert g.eccentricity(3) == 3

    def test_bfs_multi_source(self):
        g = path_graph(5)
        dist = g.bfs_distances([0, 4])
        assert dist == [0, 1, 2, 1, 0]

    def test_induced_subgraph(self):
        g = path_graph(5)
        sub, remap = g.induced_subgraph([1, 2, 3])
        assert sub.n == 3 and sub.m == 2
        assert remap[2] == 1


class TestNetworkxConversion:
    def test_roundtrip(self):
        g = balanced_tree(3, 2)
        nx_g = to_networkx(g)
        back = from_networkx(nx_g)
        assert back.n == g.n and back.m == g.m

    def test_inputs_preserved(self):
        g = Graph(2, [(0, 1)], inputs=["Active", "Weight"])
        back = from_networkx(to_networkx(g))
        assert sorted([back.input_of(0), back.input_of(1)]) == ["Active", "Weight"]


@given(st.integers(min_value=1, max_value=40))
def test_path_is_tree_property(n):
    g = path_graph(n)
    assert g.is_tree()
    assert g.m == n - 1
    assert sum(g.degree(v) for v in g.nodes()) == 2 * g.m


@given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=4))
def test_balanced_tree_property(fanout, height):
    g = balanced_tree(fanout, height)
    assert g.is_tree()
    expected = sum(fanout**i for i in range(height + 1))
    assert g.n == expected
