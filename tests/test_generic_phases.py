"""Tests for the generic phase algorithm (Section 4.1): fast-forward vs
faithful message-passing execution, output validity, and Lemma 13/14."""

import random

import pytest

from repro.algorithms.generic_message import GenericPhaseColoring
from repro.algorithms.generic_phases import (
    default_gammas_25,
    default_gammas_35,
    phase_schedule,
    run_generic_fast_forward,
)
from repro.constructions import build_lower_bound_graph
from repro.lcl import Coloring25, Coloring35, compute_levels
from repro.local import MessageSimulator, random_ids

CASES = [
    (1, [12]),
    (2, [5, 12]),
    (2, [9, 9]),
    (3, [3, 4, 10]),
]


class TestFastForwardValidity:
    @pytest.mark.parametrize("k,lengths", CASES)
    def test_25_valid(self, k, lengths):
        lb = build_lower_bound_graph(lengths)
        ids = random_ids(lb.graph.n, rng=random.Random(1))
        tr = run_generic_fast_forward(
            lb.graph, ids, k, default_gammas_25(lb.graph.n, k), "2.5"
        )
        assert Coloring25(k).verify(lb.graph, tr.outputs).valid

    @pytest.mark.parametrize("k,lengths", CASES)
    def test_35_valid(self, k, lengths):
        lb = build_lower_bound_graph(lengths)
        ids = random_ids(lb.graph.n, rng=random.Random(2))
        tr = run_generic_fast_forward(
            lb.graph, ids, k, default_gammas_35(lb.graph.n, k), "3.5"
        )
        assert Coloring35(k).verify(lb.graph, tr.outputs).valid

    def test_bad_variant_rejected(self):
        lb = build_lower_bound_graph([4, 4])
        with pytest.raises(ValueError):
            run_generic_fast_forward(lb.graph, random_ids(lb.graph.n), 2, [3], "4.5")


class TestMessageAgreement:
    """The distributed execution must equal the fast-forward exactly."""

    @pytest.mark.parametrize("k,lengths", CASES)
    @pytest.mark.parametrize("variant", ["2.5", "3.5"])
    def test_agreement(self, k, lengths, variant):
        lb = build_lower_bound_graph(lengths)
        g = lb.graph
        ids = random_ids(g.n, rng=random.Random(k * 100 + len(lengths)))
        gammas = (
            default_gammas_25(g.n, k) if variant == "2.5" else default_gammas_35(g.n, k)
        )
        ff = run_generic_fast_forward(g, ids, k, gammas, variant)
        tr = MessageSimulator().run(g, GenericPhaseColoring(k, gammas, variant), ids)
        assert tr.outputs == ff.outputs
        assert tr.rounds == ff.rounds


class TestLemma13Decay:
    """Lemma 13: after phase i with parameter gamma_i, at most O(n'/gamma_i)
    nodes remain."""

    def test_remaining_counts_shrink(self):
        lb = build_lower_bound_graph([8, 8, 12])
        g = lb.graph
        ids = random_ids(g.n, rng=random.Random(3))
        gammas = [4, 6]
        tr = run_generic_fast_forward(g, ids, 3, gammas, "2.5")
        remaining = tr.meta["remaining_after_phase"]
        n = g.n
        # the charged constant in Lemma 13 is small; allow factor 8
        assert remaining[1] <= 8 * n / gammas[0]
        assert remaining[2] <= 8 * remaining[1] / gammas[1]
        assert remaining[3] == 0

    def test_declined_paths_reach_gamma(self):
        lb = build_lower_bound_graph([10, 10])
        g = lb.graph
        ids = random_ids(g.n, rng=random.Random(4))
        gamma = 5
        tr = run_generic_fast_forward(g, ids, 2, [gamma], "2.5")
        levels = compute_levels(g, 2)
        from repro.lcl import D, level_paths

        for path in level_paths(g, levels, 1):
            labels = {tr.outputs[v] for v in path}
            if "D" in labels:
                # maximal D-runs within a level-1 path must have >= gamma nodes
                run = 0
                for v in path:
                    if tr.outputs[v] == D:
                        run += 1
                    else:
                        if run:
                            assert run >= gamma
                        run = 0
                if run:
                    assert run >= gamma


class TestSchedule:
    def test_phase_schedule(self):
        starts = phase_schedule(3, [4, 8])
        assert starts[0] == 5
        assert starts[1] == 5 + 8 + 5
        assert starts[2] == starts[1] + 16 + 5

    def test_gamma_count_enforced(self):
        with pytest.raises(ValueError):
            phase_schedule(3, [4])

    def test_default_gammas_monotone(self):
        g25 = default_gammas_25(10_000, 4)
        assert g25 == sorted(g25)
        g35 = default_gammas_35(10_000, 3)
        assert g35 == sorted(g35)


class TestRestrictAndOffset:
    def test_restrict_subset(self):
        lb = build_lower_bound_graph([6, 8])
        g = lb.graph
        ids = random_ids(g.n, rng=random.Random(5))
        # restrict to a sub-forest: drop one attached path entirely
        drop = set(lb.paths_by_level[1][0])
        keep = [v for v in g.nodes() if v not in drop]
        tr = run_generic_fast_forward(
            g, ids, 2, [4], "2.5", restrict=keep, time_offset=7
        )
        for v in drop:
            assert tr.outputs[v] is None and tr.rounds[v] == 0
        assert all(tr.rounds[v] >= 7 for v in keep)
