"""Checker fuzzing: random labelings are overwhelmingly rejected, valid
ones are stable under re-verification, and every checker is deterministic."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import run_apoly
from repro.constructions import build_weighted_construction, random_tree
from repro.constructions.lowerbound import paper_lengths
from repro.lcl import (
    Coloring25,
    Coloring35,
    DFreeWeightProblem,
    Weighted25,
    connect,
    copy_of,
    decline,
)
from repro.lcl.dfree import A_INPUT, W_INPUT
from repro.local import path_graph, random_ids


class TestRandomLabelingsRejected:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=3, max_value=40),
           st.integers(min_value=0, max_value=10**6))
    def test_random_25_labelings(self, n, seed):
        rng = random.Random(seed)
        g = random_tree(n, 4, rng)
        prob = Coloring25(2)
        outputs = [rng.choice(["W", "B", "E", "D"]) for _ in range(n)]
        res = prob.verify(g, outputs)
        # re-verification is deterministic
        res2 = prob.verify(g, outputs)
        assert res.valid == res2.valid
        assert len(res.violations) == len(res2.violations)

    def test_random_rejection_rate(self):
        # on a 30-node tree, random labelings are almost never valid
        rng = random.Random(0)
        g = random_tree(30, 4, rng)
        prob = Coloring35(2)
        labels = list(prob.sigma_out)
        accepted = sum(
            1
            for _ in range(300)
            if prob.verify(g, [rng.choice(labels) for _ in range(30)]).valid
        )
        assert accepted <= 3

    def test_dfree_random_rejection(self):
        rng = random.Random(1)
        g = random_tree(25, 4, rng).with_inputs(
            [A_INPUT if rng.random() < 0.3 else W_INPUT for _ in range(25)]
        )
        prob = DFreeWeightProblem(5, 2)
        labels = ["Copy", "Connect", "Decline"]
        accepted = sum(
            1
            for _ in range(300)
            if prob.verify(g, [rng.choice(labels) for _ in range(25)]).valid
        )
        assert accepted < 50  # Connect constraints bite hard


class TestWeightedCheckerMutations:
    """Every single-node mutation of a valid Pi^2.5 solution that changes
    the label class is detected somewhere (not necessarily at that node)."""

    def test_mutation_sweep(self):
        delta, d, k = 5, 2, 2
        lengths = paper_lengths(400, [0.4])
        wi = build_weighted_construction(lengths, delta, 300)
        ids = random_ids(wi.n, rng=random.Random(3))
        tr = run_apoly(wi.graph, ids, delta, d, k)
        prob = Weighted25(delta, d, k)
        assert prob.verify(wi.graph, tr.outputs).valid
        rng = random.Random(4)
        checked = detected = 0
        weight_mutants = [decline(), connect(), copy_of("W"), copy_of("E")]
        for v in rng.sample(list(wi.weight_nodes()), 25):
            for mutant in weight_mutants:
                if mutant == tr.outputs[v]:
                    continue
                bad = list(tr.outputs)
                bad[v] = mutant
                checked += 1
                if not prob.verify(wi.graph, bad).valid:
                    detected += 1
        # most arbitrary rewrites of a weight node break something
        assert checked > 0
        assert detected / checked > 0.6, (detected, checked)


class TestViewCausality:
    """The view simulator must not leak outputs faster than light."""

    def test_output_visibility_radius(self):
        from repro.local import CONTINUE, LocalAlgorithm, LocalSimulator

        class Probe(LocalAlgorithm):
            name = "probe"

            def decide(self, view, n):
                me = view.center
                if view.id_of(me) == 1:
                    return "src"
                # report the first round at which any output is visible
                for u in view.nodes():
                    if u != me and view.output_of(u) is not None:
                        return view.round
                return CONTINUE

        g = path_graph(8)
        trace = LocalSimulator().run(g, Probe(), list(range(1, 9)))
        # node at distance d sees the round-0 commit exactly at round d
        for v in range(1, 8):
            assert trace.outputs[v] == v
