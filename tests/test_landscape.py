"""Tests for the landscape formulas (Lemmas 33, 36, 57, 58, 61, 62;
Theorems 1, 6)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    alpha1_logstar,
    alpha1_poly,
    alpha_vector_logstar,
    alpha_vector_poly,
    efficiency_factor,
    efficiency_factor_relaxed,
    find_logstar_problem,
    find_poly_problem,
    fit_power_law,
    invert_alpha1,
    landscape_regions,
    log_star,
    log_star_float,
    params_for_rational_x,
)


class TestEfficiencyFactor:
    def test_lemma23_formula(self):
        # delta=5, d=2: x = log(2)/log(4) = 1/2
        assert efficiency_factor(5, 2) == pytest.approx(0.5)

    def test_relaxed_is_larger(self):
        for delta, d in [(5, 2), (9, 4), (17, 8), (33, 28)]:
            assert efficiency_factor_relaxed(delta, d) > efficiency_factor(delta, d)

    def test_requires_delta_ge_d_plus_3(self):
        with pytest.raises(ValueError):
            efficiency_factor(4, 2)


class TestAlphaFormulas:
    def test_poly_endpoints(self):
        # Lemma 57: alpha1 ranges over [1/(2^k - 1), 1/k]
        for k in range(1, 8):
            assert alpha1_poly(0.0, k) == pytest.approx(1 / (2**k - 1))
            assert alpha1_poly(1.0, k) == pytest.approx(1 / k)

    def test_logstar_endpoints(self):
        # the formula gives [1/2^{k-1}, 1]; at x=0 it matches Theorem 11's
        # unweighted exponent
        for k in range(1, 8):
            assert alpha1_logstar(0.0, k) == pytest.approx(1 / 2 ** (k - 1))
            assert alpha1_logstar(1.0, k) == pytest.approx(1.0)

    @given(st.floats(min_value=0, max_value=1), st.integers(min_value=1, max_value=6))
    def test_poly_monotone(self, x, k):
        eps = 1e-6
        if x + eps <= 1:
            assert alpha1_poly(x, k) <= alpha1_poly(x + eps, k) + 1e-12

    def test_alpha_vector_k1_is_empty(self):
        # regression: the docs promise (alpha_1, ..., alpha_{k-1}) but
        # k=1 used to return a one-element vector
        for x in (0.0, 0.5, 1.0):
            assert alpha_vector_poly(x, 1) == []
            assert alpha_vector_logstar(x, 1) == []

    def test_alpha_vector_k2_is_alpha1(self):
        for x in (0.0, 0.4, 1.0):
            assert alpha_vector_poly(x, 2) == [alpha1_poly(x, 2)]
            assert alpha_vector_logstar(x, 2) == [alpha1_logstar(x, 2)]

    def test_alpha_vector_length_is_k_minus_1(self):
        for k in range(1, 7):
            assert len(alpha_vector_poly(0.3, k)) == k - 1
            assert len(alpha_vector_logstar(0.3, k)) == k - 1

    def test_alpha_vector_recurrence(self):
        # Lemma 33: alpha_i = (2 - x) alpha_{i-1}
        x = 0.4
        vec = alpha_vector_poly(x, 4)
        assert len(vec) == 3
        for a, b in zip(vec, vec[1:]):
            assert b == pytest.approx((2 - x) * a)

    def test_alpha_vector_sums_match_bk(self):
        # B_k = 1 + (x-2) sum alpha_j must equal alpha_1 at the optimum
        x, k = 0.3, 3
        vec = alpha_vector_poly(x, k)
        bk = 1 + (x - 2) * sum(vec)
        assert bk == pytest.approx(vec[0])

    def test_logstar_vector_bk(self):
        # log* regime: B_k = 1 + (x-1) sum alpha_j = alpha_1
        x, k = 0.3, 3
        vec = alpha_vector_logstar(x, k)
        bk = 1 + (x - 1) * sum(vec)
        assert bk == pytest.approx(vec[0])

    def test_invert_roundtrip(self):
        for k in (2, 3, 4):
            for x in (0.1, 0.5, 0.9):
                target = alpha1_poly(x, k)
                assert invert_alpha1(target, k, "poly") == pytest.approx(x, abs=1e-6)

    def test_invert_out_of_range(self):
        with pytest.raises(ValueError):
            invert_alpha1(0.9, 2, "poly")  # poly k=2 tops out at 1/2


class TestParamSearch:
    def test_rational_x_exact(self):
        # Lemma 58's construction: x = p/q exactly
        delta, d = params_for_rational_x(1, 3)
        assert efficiency_factor(delta, d) == pytest.approx(1 / 3)
        delta, d = params_for_rational_x(2, 5, scale=2)
        assert efficiency_factor(delta, d) == pytest.approx(2 / 5)

    def test_theorem1_window(self):
        for r1, r2 in [(0.05, 0.08), (0.21, 0.24), (0.34, 0.4), (0.45, 0.5)]:
            p = find_poly_problem(r1, r2)
            assert r1 <= p.exponent_lower <= r2
            assert p.exponent_lower == p.exponent_upper
            assert p.delta >= p.d + 3

    def test_theorem6_window_and_gap(self):
        for r1, r2, eps in [(0.3, 0.5, 0.05), (0.6, 0.8, 0.02), (0.52, 0.9, 0.1)]:
            p = find_logstar_problem(r1, r2, eps)
            assert r1 <= p.exponent_lower <= r2 + eps
            assert p.exponent_upper - p.exponent_lower < eps
            assert p.delta >= p.d + 3

    def test_lemma62_scaling_shrinks_gap(self):
        gaps = []
        for scale in (1, 2, 4):
            delta, d = params_for_rational_x(1, 2, scale)
            gaps.append(
                efficiency_factor_relaxed(delta, d) - efficiency_factor(delta, d)
            )
        assert gaps[0] > gaps[1] > gaps[2]

    def test_poly_bad_window(self):
        with pytest.raises(ValueError):
            find_poly_problem(0.6, 0.7)


class TestLandscapeRegions:
    def test_after_has_gaps_and_density(self):
        regions = landscape_regions(after=True)
        kinds = [r.kind for r in regions]
        assert kinds.count("gap") == 3
        assert kinds.count("dense") == 2

    def test_before_smaller(self):
        assert len(landscape_regions(after=False)) < len(landscape_regions(True))

    def test_regions_for_verdict(self):
        from repro.analysis import regions_for_verdict

        o1 = regions_for_verdict("O(1)")
        assert [r.kind for r in o1] == ["point"] and o1[0].low == "1"
        logstar = regions_for_verdict("logstar-regime")
        assert {r.kind for r in logstar} == {"dense", "point"}
        assert any(r.low == "log* n" for r in logstar)
        beyond = regions_for_verdict("no-good-function")
        assert all(r.kind != "gap" for r in beyond)
        assert any(r.low == "n" for r in beyond)
        with pytest.raises(ValueError):
            regions_for_verdict("nonsense")


class TestMathUtil:
    def test_log_star_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2**65536) == 5

    def test_log_star_float_monotone(self):
        xs = [2, 10, 100, 10**4, 10**8]
        vals = [log_star_float(x) for x in xs]
        assert vals == sorted(vals)
        assert all(abs(log_star_float(x) - log_star(x)) <= 1.0 for x in xs)

    def test_fit_power_law(self):
        xs = [10, 100, 1000]
        ys = [3 * x**0.7 for x in xs]
        alpha, c = fit_power_law(xs, ys)
        assert alpha == pytest.approx(0.7)
        assert c == pytest.approx(3.0)

    def test_fit_requires_variation(self):
        with pytest.raises(ValueError):
            fit_power_law([5, 5], [1, 2])
