"""SweepRunner: determinism across worker counts, registry, CLI.

The headline acceptance criterion: a sweep with ``--workers 4`` must
produce **byte-identical** JSON aggregates to ``--workers 1`` under a
fixed seed (parallelism only changes wall-clock, never results).
"""

import json

import pytest

from repro.families import Family, get_family
from repro.local import path_graph
from repro.sweep import (
    ALGORITHMS,
    AlgorithmSpec,
    SweepRunner,
    get_algorithm,
    main,
    register_algorithm,
)


class TestDeterminism:
    def test_parallel_json_byte_identical_to_serial(self):
        kwargs = dict(samples=2, instances=2)
        args = (["random_tree", "fragmented_forest"], [16, 24], ["two_coloring"])
        serial = SweepRunner(workers=1, **kwargs).run_json(*args, seed=3)
        parallel = SweepRunner(workers=4, **kwargs).run_json(*args, seed=3)
        assert serial == parallel
        payload = json.loads(serial)
        assert "workers" not in payload["spec"]
        assert len(payload["cells"]) == 4
        for cell in payload["cells"]:
            assert cell["runs"] == 2 * 2
            assert cell["node_averaged"]["max"] >= cell["node_averaged"]["mean"]
            # actual built sizes are recorded (families may round target n)
            assert 1 <= cell["instance_n"]["min"] <= cell["instance_n"]["max"]
            assert cell["instance_n"]["max"] <= cell["n"]
            # two_coloring declares its LCL, so every run is verified
            assert cell["validity"] == {"valid": 4, "violations": 0}

    def test_seed_changes_results(self):
        runner = SweepRunner(samples=2, instances=2)
        a = runner.run(["random_tree"], [20], ["two_coloring"], seed=0)
        b = runner.run(["random_tree"], [20], ["two_coloring"], seed=1)
        assert a["cells"] != b["cells"]

    def test_fast_forward_agrees_with_simulator(self):
        # the fast-forward registry entry replays the same algorithm the
        # simulator executes; cell aggregates must coincide exactly
        runner = SweepRunner(samples=2)
        payload = runner.run(["path"], [17], ["two_coloring", "two_coloring_ff"])
        sim, ff = payload["cells"]
        assert sim["node_averaged"] == ff["node_averaged"]
        assert sim["worst_case"] == ff["worst_case"]

    def test_engines_agree(self):
        args = (["spider"], [12], ["two_coloring"])
        inc = SweepRunner(samples=2, engine="incremental").run(*args, seed=5)
        ref = SweepRunner(samples=2, engine="reference").run(*args, seed=5)
        assert inc["cells"][0]["node_averaged"] == ref["cells"][0]["node_averaged"]


class TestRegistry:
    def test_default_algorithms_present(self):
        assert {"two_coloring", "cole_vishkin", "wait_whole_graph",
                "two_coloring_ff", "cv3_path_ff"} <= set(ALGORITHMS)

    def test_unknown_names_fail_fast(self):
        runner = SweepRunner()
        with pytest.raises(KeyError):
            runner.run(["no_such_family"], [8], ["two_coloring"])
        with pytest.raises(KeyError):
            runner.run(["path"], [8], ["no_such_algorithm"])
        with pytest.raises(KeyError):
            get_algorithm("nope")

    def test_algorithm_spec_needs_exactly_one_runner(self):
        with pytest.raises(ValueError):
            AlgorithmSpec("broken")
        with pytest.raises(ValueError):
            AlgorithmSpec("broken", factory=lambda n: None,
                          fast_forward=lambda g, ids: None)
        with pytest.raises(ValueError):
            register_algorithm(ALGORITHMS["two_coloring"])

    def test_ad_hoc_family_object_accepted(self):
        fam = Family("adhoc_sweep_path",
                     lambda n, rng: path_graph(n), degree_bound=2)
        payload = SweepRunner(samples=1).run([fam], [9], ["two_coloring"])
        assert payload["cells"][0]["family"] == "adhoc_sweep_path"
        assert get_family("adhoc_sweep_path") is fam

    def test_cv3_ff_rejects_non_paths(self):
        spec = get_algorithm("cv3_path_ff")
        from repro.local import star_graph

        with pytest.raises(ValueError):
            spec.fast_forward(star_graph(4), [1, 2, 3, 4, 5])

    def test_runner_parameter_validation(self):
        for bad in (dict(workers=0), dict(samples=0), dict(instances=0),
                    dict(engine="warp")):
            with pytest.raises(ValueError):
                SweepRunner(**bad)
        with pytest.raises(ValueError):
            SweepRunner().run([], [8], ["two_coloring"])

    def test_duplicate_cells_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner().run(["path"], [8, 8], ["two_coloring"])
        with pytest.raises(ValueError):
            SweepRunner().run(["path", "path"], [8], ["two_coloring"])


def _register_bad_coloring(name):
    """A deliberately invalid 'solver': constant color 0 everywhere."""
    from repro.local.metrics import ExecutionTrace
    from repro.sweep import _proper_coloring_problem

    def bad_ff(graph, ids):
        return ExecutionTrace(rounds=[1] * graph.n, outputs=[0] * graph.n,
                              algorithm=name)

    if name not in ALGORITHMS:
        register_algorithm(AlgorithmSpec(
            name, fast_forward=bad_ff,
            problem=_proper_coloring_problem(2),
        ))
    return name


class TestValidity:
    def test_unchecked_algorithm_reports_null(self):
        payload = SweepRunner(samples=1).run(
            ["path"], [9], ["wait_whole_graph"])
        assert payload["cells"][0]["validity"] is None

    def test_check_false_disables_verification(self):
        payload = SweepRunner(samples=1, check=False).run(
            ["path"], [9], ["two_coloring"])
        assert payload["cells"][0]["validity"] is None
        assert payload["spec"]["check"] is False

    def test_invalid_labelings_are_counted(self):
        name = _register_bad_coloring("bad_constant_coloring")
        payload = SweepRunner(samples=2, instances=2).run(
            ["random_tree"], [12], [name, "two_coloring"])
        by_algo = {c["algorithm"]: c for c in payload["cells"]}
        assert by_algo[name]["validity"] == {"valid": 0, "violations": 4}
        assert by_algo["two_coloring"]["validity"] == \
            {"valid": 4, "violations": 0}

    def test_validity_deterministic_across_workers(self):
        name = _register_bad_coloring("bad_constant_coloring")
        args = (["random_tree"], [12], [name])
        kwargs = dict(samples=2, instances=2)
        serial = SweepRunner(workers=1, **kwargs).run_json(*args, seed=1)
        parallel = SweepRunner(workers=3, **kwargs).run_json(*args, seed=1)
        assert serial == parallel

    def test_default_specs_declare_their_lcl(self):
        for name in ("two_coloring", "two_coloring_ff", "cole_vishkin",
                     "cv3_path_ff"):
            assert ALGORITHMS[name].problem is not None
        assert ALGORITHMS["wait_whole_graph"].problem is None

    def test_cli_check_passes_on_valid_sweep(self, capsys):
        rc = main(["--family", "path", "--sizes", "9", "--samples", "1",
                   "--instances", "1", "--check"])
        assert rc == 0
        assert "0 violating" in capsys.readouterr().err

    def test_cli_check_fails_on_violations(self, capsys):
        name = _register_bad_coloring("bad_constant_coloring")
        rc = main(["--family", "random_tree", "--sizes", "12",
                   "--samples", "1", "--instances", "1",
                   "--algorithms", name, "--check"])
        assert rc == 1
        assert "1 violating" in capsys.readouterr().err

    def test_cli_check_reports_unchecked_cells(self, capsys):
        rc = main(["--family", "path", "--sizes", "9", "--samples", "1",
                   "--instances", "1", "--algorithms", "wait_whole_graph",
                   "--check"])
        assert rc == 0
        assert "declare no LCL" in capsys.readouterr().err

    def test_cli_forwards_check_flag_on(self, capsys):
        # regression: main() used to drop args.check, so the runner always
        # verified; with the flag the payload must record check: true and
        # carry validity counts
        rc = main(["--family", "path", "--sizes", "9", "--samples", "1",
                   "--instances", "1", "--check"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["check"] is True
        assert payload["cells"][0]["validity"] == \
            {"valid": 1, "violations": 0}

    def test_cli_without_check_skips_verification(self, capsys):
        # regression: without --check the sweep must not pay verification
        # cost — spec.check records false and every cell reports null
        rc = main(["--family", "path", "--sizes", "9", "--samples", "1",
                   "--instances", "1"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["check"] is False
        assert all(c["validity"] is None for c in payload["cells"])

    def test_cli_without_check_ignores_violations(self, capsys):
        # a violating algorithm must not fail the run when --check is off
        name = _register_bad_coloring("bad_constant_coloring")
        rc = main(["--family", "random_tree", "--sizes", "12",
                   "--samples", "1", "--instances", "1",
                   "--algorithms", name])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"][0]["validity"] is None


class TestSharedSubstrate:
    def test_shm_and_rebuild_payloads_byte_identical(self):
        # the zero-copy substrate is an optimisation, never a semantic
        # switch: serial, rebuild-in-worker and shared-memory runs must
        # emit the same bytes
        kwargs = dict(samples=2, instances=2)
        args = (["random_tree", "caterpillar"], [24], ["two_coloring"])
        serial = SweepRunner(workers=1, shared=False, **kwargs)
        rebuild = SweepRunner(workers=4, shared=False, **kwargs)
        shm = SweepRunner(workers=4, shared=True, **kwargs)
        j_serial = serial.run_json(*args, seed=2)
        j_rebuild = rebuild.run_json(*args, seed=2)
        j_shm = shm.run_json(*args, seed=2)
        assert j_serial == j_rebuild == j_shm
        assert "shared" not in json.loads(j_shm)["spec"]

    def test_shared_defaults_track_workers(self):
        assert SweepRunner(workers=1).shared is False
        assert SweepRunner(workers=2).shared is True
        assert SweepRunner(workers=2, shared=False).shared is False

    def test_sample_chunking_path_byte_identical(self):
        # fewer (instance, algorithm) units than workers triggers the
        # per-sample task split under shared=True — same bytes either way
        kwargs = dict(samples=6, instances=1)
        args = (["random_tree"], [30], ["two_coloring"])
        j_serial = SweepRunner(workers=1, **kwargs).run_json(*args, seed=4)
        j_split = SweepRunner(workers=4, shared=True, **kwargs).run_json(
            *args, seed=4)
        assert j_serial == j_split


class TestWeightedSpecs:
    def test_weighted_entries_registered(self):
        assert {"weighted25_ff", "weighted25_replay",
                "weighted35_ff", "weighted35_replay"} <= set(ALGORITHMS)
        for name in ("weighted25_ff", "weighted25_replay",
                     "weighted35_ff", "weighted35_replay"):
            assert ALGORITHMS[name].problem is not None

    def test_weighted_families_registered(self):
        get_family("weighted25_d5k2")
        get_family("weighted35_d6k2")

    def test_replay_matches_fast_forward(self):
        # the batched ScheduleReplay wrapper must reproduce the
        # fast-forward trace aggregates exactly, and every labeling must
        # verify against the declared LCL
        for family, ff, replay in (
            ("weighted25_d5k2", "weighted25_ff", "weighted25_replay"),
            ("weighted35_d6k2", "weighted35_ff", "weighted35_replay"),
        ):
            payload = SweepRunner(samples=2).run(
                [family], [60], [ff, replay])
            by_algo = {c["algorithm"]: c for c in payload["cells"]}
            a, b = by_algo[ff], by_algo[replay]
            assert a["node_averaged"] == b["node_averaged"], family
            assert a["worst_case"] == b["worst_case"], family
            for cell in (a, b):
                assert cell["validity"]["violations"] == 0
                assert cell["validity"]["valid"] == cell["runs"]

    def test_weighted_sweep_deterministic_across_workers(self):
        args = (["weighted25_d5k2"], [40], ["weighted25_replay"])
        kwargs = dict(samples=2, instances=1)
        j1 = SweepRunner(workers=1, **kwargs).run_json(*args, seed=0)
        j4 = SweepRunner(workers=4, **kwargs).run_json(*args, seed=0)
        assert j1 == j4


class TestCLI:
    def test_writes_json_file(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        rc = main(["--family", "random_tree", "--sizes", "12",
                   "--samples", "1", "--instances", "2",
                   "--workers", "2", "--seed", "0", "--out", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["spec"]["families"] == ["random_tree"]
        assert payload["cells"][0]["runs"] == 2
        assert "family-sup" in capsys.readouterr().out

    def test_stdout_and_comma_separated_lists(self, capsys):
        rc = main(["--family", "path,spider", "--sizes", "8,12",
                   "--samples", "1", "--instances", "1"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["families"] == ["path", "spider"]
        assert len(payload["cells"]) == 4
