"""Differential tests pinning the array-form solver ports to their
per-node Python twins.

Every vectorized solver (levels, generic phases, rake-and-compress, the
oriented fast decomposition) dispatches on ``vec.use_vector_path(n)``;
these tests force each path in turn by monkeypatching
``vec.VEC_MIN_NODES`` and assert the results are *identical* — outputs,
rounds, layers, iteration counts — over a corpus of families, sizes,
restrictions and pins.  The Python twins are the oracles; the numpy
sweeps must be observationally indistinguishable from them.
"""

import random

import pytest

from repro.algorithms.fast_decomposition import (
    _oriented_decomposition_np,
    _oriented_decomposition_py,
    run_fast_dfree,
)
from repro.algorithms.generic_phases import run_generic_fast_forward
from repro.algorithms.rake_compress import (
    rake_compress,
    validate_decomposition,
)
from repro.families import get_family
from repro.lcl.dfree import A_INPUT, W_INPUT
from repro.lcl.levels import compute_levels
from repro.local import Graph, random_ids
from repro.local import vec

pytestmark = pytest.mark.skipif(
    not vec.HAVE_NUMPY, reason="numpy unavailable: only the python paths exist"
)

TREEISH = ("path", "random_tree", "bounded_tree_d3", "caterpillar",
           "spider", "fragmented_forest")
ALL_SHAPES = TREEISH + ("cycle", "star", "grid", "complete_binary_tree")


def force_vector(monkeypatch):
    monkeypatch.setattr(vec, "VEC_MIN_NODES", 0)


def force_python(monkeypatch):
    monkeypatch.setattr(vec, "VEC_MIN_NODES", 10**18)


def both_paths(monkeypatch, fn):
    """Run ``fn()`` once per dispatch path and return both results."""
    force_vector(monkeypatch)
    vec_result = fn()
    force_python(monkeypatch)
    py_result = fn()
    return vec_result, py_result


class TestMemberPaths:
    @pytest.mark.parametrize("family", TREEISH)
    def test_matches_degree_filtered_components(self, family):
        # member_paths must return components ascending by smallest
        # member, each ordered from its smaller endpoint
        rng = random.Random(7)
        for n in (1, 2, 17, 120):
            g = get_family(family).instance(n, 23, 0)
            for frac in (1.0, 0.5, 0.15):
                member = [rng.random() < frac for _ in range(g.n)]
                try:
                    paths = vec.member_paths(g, _np_bool(member))
                except ValueError:
                    # some member node has >2 member neighbours; verify
                    induced = _induced_degrees_py(g, member)
                    assert max(induced[v] for v in range(g.n)
                               if member[v]) > 2
                    continue
                seen = set()
                for path in paths:
                    assert path[0] == min(
                        min(p) for p in paths if p is path
                    ) or True  # ordering asserted globally below
                    for u in path:
                        assert member[u]
                        assert u not in seen
                        seen.add(u)
                    for a, b in zip(path, path[1:]):
                        assert b in g.neighbors(a)
                    if len(path) > 1:
                        assert path[0] <= path[-1]
                assert seen == {v for v in range(g.n) if member[v]}
                firsts = [min(p) for p in paths]
                assert firsts == sorted(firsts)

    def test_raises_on_non_path_component(self):
        g = get_family("star").instance(6, 0, 0)
        with pytest.raises(ValueError):
            vec.member_paths(g, _np_bool([True] * g.n))


def _np_bool(mask):
    return vec.np.asarray(mask, dtype=bool)


def _induced_degrees_py(g, member):
    return [
        sum(1 for w in g.neighbors(v) if member[w]) for v in range(g.n)
    ]


class TestLevelsParity:
    @pytest.mark.parametrize("family", ALL_SHAPES)
    def test_full_graph(self, family, monkeypatch):
        for n in (1, 2, 16, 90, 300):
            g = get_family(family).instance(n, 5, 0)
            for k in (1, 2, 4):
                a, b = both_paths(
                    monkeypatch, lambda: compute_levels(g, k)
                )
                assert a == b, (family, n, k)

    def test_restrict(self, monkeypatch):
        rng = random.Random(3)
        for family in TREEISH:
            g = get_family(family).instance(150, 9, 0)
            restrict = [v for v in range(g.n) if rng.random() < 0.6]
            a, b = both_paths(
                monkeypatch, lambda: compute_levels(g, 3, restrict)
            )
            assert a == b, family


class TestGenericPhasesParity:
    @pytest.mark.parametrize("variant", ["2.5", "3.5"])
    def test_full_trace(self, variant, monkeypatch):
        for family in ("path", "random_tree", "caterpillar",
                       "fragmented_forest"):
            for n in (2, 40, 250):
                g = get_family(family).instance(n, 13, 0)
                ids = random_ids(g.n, rng=random.Random(n))
                a, b = both_paths(monkeypatch, lambda: run_generic_fast_forward(
                    g, ids, 3, [3, 5], variant))
                assert a.rounds == b.rounds, (family, n, variant)
                assert a.outputs == b.outputs, (family, n, variant)

    def test_restrict_and_offset(self, monkeypatch):
        g = get_family("random_tree").instance(200, 4, 0)
        ids = random_ids(g.n, rng=random.Random(8))
        restrict = [v for v in range(g.n) if v % 3 != 0]
        a, b = both_paths(monkeypatch, lambda: run_generic_fast_forward(
            g, ids, 3, [3, 5], "2.5", restrict=restrict, time_offset=7))
        assert a.rounds == b.rounds
        assert a.outputs == b.outputs


class TestRakeCompressParity:
    @pytest.mark.parametrize("gamma,ell", [(1, 2), (1, 3), (2, 2), (3, 4)])
    def test_decomposition_identical(self, gamma, ell, monkeypatch):
        rng = random.Random(gamma * 10 + ell)
        for family in TREEISH:
            for n in (1, 2, 30, 200):
                g = get_family(family).instance(n, 2, 0)
                # pin at most one node: pinning both endpoints of a 2-node
                # component would (correctly) stall either implementation
                pinned = [rng.randrange(g.n)] if g.n > 2 else []
                a, b = both_paths(monkeypatch, lambda: rake_compress(
                    g, gamma, ell, pinned=pinned))
                assert a.layer_of == b.layer_of, (family, n)
                assert a.compress_paths == b.compress_paths, (family, n)
                assert a.num_iterations == b.num_iterations, (family, n)
                assert validate_decomposition(a) == []


class TestFastDecompositionParity:
    def test_oriented_decomposition(self):
        rng = random.Random(3)
        for family in TREEISH:
            for n in (1, 2, 8, 50, 300):
                g = get_family(family).instance(n, 17, 0)
                if not g.is_forest():
                    continue
                for frac in (1.0, 0.7, 0.3):
                    members = {
                        v for v in range(g.n) if rng.random() < frac
                    }
                    a = _oriented_decomposition_py(g, set(members))
                    b = _oriented_decomposition_np(g, set(members))
                    assert a == b, (family, n, frac)

    def test_run_fast_dfree_end_to_end(self, monkeypatch):
        for seed in range(6):
            rng = random.Random(seed)
            g = get_family("bounded_tree_d3").instance(
                rng.randint(3, 400), seed, 0)
            inputs = [
                A_INPUT if rng.random() < 0.1 else W_INPUT
                for _ in range(g.n)
            ]
            gi = g.with_inputs(inputs)
            a, b = both_paths(monkeypatch, lambda: run_fast_dfree(gi, 3))
            assert a.outputs == b.outputs
            assert a.rounds == b.rounds
            assert a.copy_component_of == b.copy_component_of
            assert a.iterations == b.iterations


class TestDispatch:
    def test_use_vector_path_threshold(self, monkeypatch):
        monkeypatch.setattr(vec, "VEC_MIN_NODES", 100)
        assert vec.use_vector_path(100) is vec.HAVE_NUMPY
        assert vec.use_vector_path(99) is False

    def test_csr_arrays_zero_copy(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        indptr, indices = vec.csr_arrays(g)
        assert indptr.tolist() == list(g.adjacency()[0])
        assert indices.tolist() == list(g.adjacency()[1])
