"""The repro.lint static analyzer: rules, framework, runner and CLI.

Every rule gets at least one positive (fires) and one negative (stays
silent) fixture; the framework tests pin the suppression contract
(reasons are mandatory), the per-directory severity config and the
baseline workflow; the CLI tests pin the two repo-level guarantees —
``python -m repro.lint src tests benchmarks`` exits 0, and ``--format
json`` output is byte-identical at ``--jobs 1`` and ``--jobs 4``.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.lint import all_rules, analyze_source
from repro.lint.baseline import (
    BaselineError,
    load_baseline,
    render_baseline,
    split_findings,
)
from repro.lint.config import severity_for
from repro.lint.core import BAD_SUPPRESSION_RULE, PARSE_ERROR_RULE, Finding
from repro.lint.runner import collect_files, run_lint

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
#: default display path: library code, where every DET rule is an error
SRC = "src/repro/fixture.py"


def rule_ids(source: str, path: str = SRC):
    return [f.rule for f in analyze_source(source, path)]


class TestRegistry:
    def test_at_least_eight_rules(self):
        rules = all_rules()
        assert len(rules) >= 8
        ids = [r.id for r in rules]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        assert all(r.summary for r in rules)

    def test_interprocedural_family_registered(self):
        ids = {r.id for r in all_rules()}
        assert {"IPD001", "IPD002", "IPD003", "STORE002"} <= ids


class TestDET001UnseededRandom:
    def test_unseeded_random_and_global_draws_fire(self):
        src = ("import random\n"
               "r = random.Random()\n"
               "x = random.randint(1, 5)\n")
        assert rule_ids(src) == ["DET001", "DET001"]

    def test_numpy_global_rng_fires(self):
        assert rule_ids("import numpy as np\nx = np.random.rand(3)\n") \
            == ["DET001"]

    def test_seeded_rng_is_clean(self):
        src = ("import random\n"
               "r = random.Random(7)\n"
               "y = r.randint(1, 5)\n")
        assert rule_ids(src) == []


class TestDET002BuiltinHash:
    def test_hash_call_fires(self):
        assert rule_ids("k = hash(('a', 1))\n") == ["DET002"]

    def test_dunder_hash_is_exempt(self):
        src = ("class A:\n"
               "    def __hash__(self):\n"
               "        return hash(('A', self.x))\n")
        assert rule_ids(src) == []

    def test_shadowed_hash_is_clean(self):
        src = ("def hash(x):\n"
               "    return 0\n"
               "k = hash('a')\n")
        assert rule_ids(src) == []


class TestDET003WallClock:
    def test_attribute_read_fires(self):
        assert rule_ids("import time\nt = time.time()\n") == ["DET003"]

    def test_from_import_fires(self):
        assert rule_ids(
            "from time import perf_counter\nt = perf_counter()\n"
        ) == ["DET003"]

    def test_sleep_is_not_a_clock(self):
        assert rule_ids("import time\ntime.sleep(1)\n") == []


class TestDET004SetIteration:
    def test_for_loop_with_append_fires(self):
        src = "s = {1, 2}\nout = []\nfor v in s:\n    out.append(v)\n"
        assert rule_ids(src) == ["DET004"]

    def test_listcomp_and_list_conversion_fire(self):
        assert rule_ids("s = {1, 2}\ny = [v for v in s]\n") == ["DET004"]
        assert rule_ids("s = {1, 2}\ny = list(s)\n") == ["DET004"]

    def test_annotated_set_param_is_tracked(self):
        src = ("from typing import Set\n"
               "def f(s: Set[int]):\n"
               "    out = []\n"
               "    for v in s:\n"
               "        out.append(v)\n"
               "    return out\n")
        assert rule_ids(src) == ["DET004"]

    def test_order_free_consumers_are_clean(self):
        src = ("s = {1, 2}\n"
               "y = sorted(s)\n"
               "z = sum(v for v in s)\n"
               "for v in sorted(s):\n"
               "    print(v)\n"
               "m = min([v for v in s])\n")
        assert rule_ids(src) == []

    def test_starred_display_wrappers_fire(self):
        # [*s] / (*s,) freeze set order exactly like list(s)/tuple(s)
        assert rule_ids("s = {1, 2}\ny = [*s]\n") == ["DET004"]
        assert rule_ids("s = {1, 2}\ny = (*s,)\n") == ["DET004"]

    def test_star_argument_splat_fires(self):
        assert rule_ids("s = {1, 2}\nprint(*s)\n") == ["DET004"]

    def test_sorted_starred_display_is_clean(self):
        assert rule_ids("s = {1, 2}\ny = sorted([*s])\n") == []
        assert rule_ids("s = {1, 2}\ny = set([*s])\n") == []

    def test_conversion_into_order_free_sink_is_clean(self):
        # the wrapper's arbitrary order never escapes sorted()/min()
        assert rule_ids("s = {1, 2}\ny = sorted(list(s))\n") == []
        assert rule_ids("s = {1, 2}\ny = min(tuple(s))\n") == []


class TestDET005UnorderedPool:
    def test_imap_unordered_fires(self):
        src = "def f(pool, xs):\n    return list(pool.imap_unordered(str, xs))\n"
        assert rule_ids(src) == ["DET005"]

    def test_as_completed_fires(self):
        src = ("from concurrent.futures import as_completed\n"
               "def f(futs):\n"
               "    return [x.result() for x in as_completed(futs)]\n")
        assert rule_ids(src) == ["DET005"]

    def test_fork_map_is_the_sanctioned_fanout(self):
        src = ("from repro.parallel import fork_map\n"
               "def g(x):\n"
               "    return x\n"
               "r = fork_map(g, [1], workers=2)\n")
        assert rule_ids(src) == []


class TestENG001ViewPrivateAccess:
    def test_private_view_attribute_fires(self):
        src = "def decide(self, view, n):\n    return view._ball\n"
        assert rule_ids(src) == ["ENG001"]

    def test_public_view_api_is_clean(self):
        src = "def decide(self, view, n):\n    return view.ball(1)\n"
        assert rule_ids(src) == []

    def test_other_params_are_not_views(self):
        src = "def helper(state):\n    return state._cache\n"
        assert rule_ids(src) == []


class TestENG002BatchCacheReset:
    def test_cache_not_reset_in_setup_fires(self):
        src = ("class A:\n"
               "    def setup(self, graph, n):\n"
               "        self._cache = None\n"
               "    def decide_batch(self, views, live, t):\n"
               "        self._other = 1\n")
        assert rule_ids(src) == ["ENG002"]

    def test_cache_reset_in_setup_is_clean(self):
        src = ("class A:\n"
               "    def setup(self, graph, n):\n"
               "        self._cache = None\n"
               "    def decide_batch(self, views, live, t):\n"
               "        self._cache = 2\n")
        assert rule_ids(src) == []

    def test_non_batched_classes_are_exempt(self):
        src = ("class B:\n"
               "    def work(self):\n"
               "        self._memo = {}\n")
        assert rule_ids(src) == []


class TestPAR001ForkMapClosure:
    def test_lambda_worker_fires(self):
        src = ("from repro.parallel import fork_map\n"
               "r = fork_map(lambda x: x, [1], workers=2)\n")
        assert rule_ids(src) == ["PAR001"]

    def test_nested_def_worker_fires(self):
        src = ("from repro.parallel import fork_map\n"
               "def run():\n"
               "    def w(x):\n"
               "        return x\n"
               "    return fork_map(w, [1], workers=2)\n")
        assert rule_ids(src) == ["PAR001"]

    def test_module_level_worker_is_clean(self):
        src = ("from repro.parallel import fork_map\n"
               "def w(x):\n"
               "    return x\n"
               "def run():\n"
               "    return fork_map(w, [1], workers=2)\n")
        assert rule_ids(src) == []


class TestSHM001SharedGraphWrite:
    def test_setflags_write_true_fires(self):
        assert rule_ids("def f(arr):\n    arr.setflags(write=True)\n") \
            == ["SHM001"]

    def test_store_into_attached_adjacency_fires(self):
        src = ("from repro.shm import shared_graph\n"
               "g = shared_graph('k')\n"
               "indptr, indices = g.adjacency()\n"
               "indptr[0] = 1\n")
        assert rule_ids(src) == ["SHM001"]

    def test_sealing_readonly_is_the_sanctioned_direction(self):
        src = ("def seal(view):\n"
               "    view.flags.writeable = False\n"
               "    view.setflags(write=False)\n"
               "    return view\n")
        assert rule_ids(src) == []

    def test_local_graph_stores_are_untracked(self):
        src = ("def f(graph):\n"
               "    indptr, indices = graph.adjacency()\n"
               "    return indptr[0]\n")
        assert rule_ids(src) == []


class TestSTORE001StorePayloadPurity:
    def test_timestamp_in_writer_scope_fires(self):
        src = ("import time\n"
               "from repro.store import atomic_write_json\n"
               "def save(path, payload):\n"
               "    payload['written_at'] = time.time()\n"
               "    atomic_write_json(path, payload)\n")
        # DET003 flags the clock read itself; STORE001 flags it reaching
        # a persisted payload
        assert rule_ids(src) == ["DET003", "STORE001"]

    def test_hostname_near_store_put_fires(self):
        src = ("import socket\n"
               "def checkpoint(store, key, payload):\n"
               "    payload['host'] = socket.gethostname()\n"
               "    store.put(key, payload)\n")
        assert rule_ids(src) == ["STORE001"]

    def test_pid_near_attribute_store_fires(self):
        src = ("import os\n"
               "def save(self, key, payload):\n"
               "    payload['pid'] = os.getpid()\n"
               "    self.store.put(key, payload)\n")
        assert rule_ids(src) == ["STORE001"]

    def test_from_import_source_fires(self):
        src = ("from time import time\n"
               "from repro.store import atomic_write_text\n"
               "def save(path):\n"
               "    atomic_write_text(path, str(time()))\n")
        assert rule_ids(src) == ["DET003", "STORE001"]

    def test_pure_writer_is_clean(self):
        src = ("from repro.store import atomic_write_json\n"
               "def save(path, payload):\n"
               "    atomic_write_json(path, payload)\n")
        assert rule_ids(src) == []

    def test_clock_outside_writer_scope_is_clean(self):
        # timing in one function, persistence in another: the DET003
        # exemption story (harness.timed) stays expressible
        src = ("import time\n"
               "from repro.store import atomic_write_json\n"
               "def measure():\n"
               "    return time.perf_counter()\n"
               "def save(path, payload):\n"
               "    atomic_write_json(path, payload)\n")
        # DET003 still fires on the clock read; STORE001 must not
        assert rule_ids(src) == ["DET003"]

    def test_put_on_non_store_receiver_is_clean(self):
        src = ("import time\n"
               "def f(queue):\n"
               "    queue.put(time.monotonic())\n")
        assert rule_ids(src) == ["DET003"]

    def test_benchmarks_severity_is_warning(self):
        assert severity_for("benchmarks/bench_x.py", "STORE001",
                            "error") == "warning"


class TestFramework:
    def test_suppression_with_reason_silences(self):
        src = "import random\nx = random.randint(1, 2)  # lint: allow(DET001) fuzz helper\n"
        assert rule_ids(src) == []

    def test_standalone_suppression_covers_next_line(self):
        src = ("import random\n"
               "# lint: allow(DET001) fuzz helper\n"
               "x = random.randint(1, 2)\n")
        assert rule_ids(src) == []

    def test_reasonless_suppression_is_reported_and_ignored(self):
        src = "import random\nx = random.randint(1, 2)  # lint: allow(DET001)\n"
        assert sorted(rule_ids(src)) == ["DET001", BAD_SUPPRESSION_RULE]

    def test_syntax_error_becomes_lint001(self):
        findings = analyze_source("def f(:\n", SRC)
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]

    def test_benchmark_severity_is_relaxed(self):
        findings = analyze_source("import random\nx = random.randint(1, 2)\n",
                                  "benchmarks/bench_x.py")
        assert [(f.rule, f.severity) for f in findings] \
            == [("DET001", "warning")]

    def test_harness_may_read_the_clock(self):
        assert rule_ids("import time\nt = time.time()\n",
                        "benchmarks/harness.py") == []
        # the exemption is exactly that file, not the directory
        assert rule_ids("import time\nt = time.time()\n",
                        "benchmarks/bench_x.py") == ["DET003"]

    def test_severity_resolution_prefers_longest_prefix(self):
        assert severity_for("benchmarks/harness.py", "DET003", "error") == "off"
        assert severity_for("benchmarks/bench_x.py", "DET001", "error") \
            == "warning"
        assert severity_for("src/repro/x.py", "DET001", "error") == "error"

    def test_examples_wildcard_demotes_every_rule(self):
        assert severity_for("examples/demo.py", "DET001", "error") \
            == "warning"
        assert severity_for("examples/demo.py", "IPD003", "error") \
            == "warning"
        # a wildcard elsewhere does not leak out of its prefix
        assert severity_for("src/repro/x.py", "IPD003", "error") == "error"


class TestBaseline:
    def test_round_trip_and_split(self, tmp_path):
        finding = Finding("src/repro/x.py", 12, 0, "DET004", "error", "msg")
        other = Finding("src/repro/y.py", 3, 0, "DET001", "error", "msg")
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline([finding], reason="order-free sink"))
        baseline = load_baseline(str(path))
        active, matched, stale = split_findings([finding, other], baseline)
        assert active == [other]
        assert matched == [(finding, "order-free sink")]
        assert stale == []

    def test_stale_entries_are_reported(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "findings": [
            {"file": "src/gone.py", "rule": "DET001", "line": 1,
             "reason": "was intentional"},
        ]}))
        _, _, stale = split_findings([], load_baseline(str(path)))
        assert stale == [("src/gone.py", "DET001", 1)]

    def test_reasonless_entries_are_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "findings": [
            {"file": "a.py", "rule": "DET001", "line": 1, "reason": "  "},
        ]}))
        with pytest.raises(BaselineError, match="reason"):
            load_baseline(str(path))


def _write_fixture_tree(root):
    pkg = root / "src"
    pkg.mkdir()
    (pkg / "dirty.py").write_text(
        "import random\nx = random.randint(1, 2)\n")
    (pkg / "clean.py").write_text("VALUE = 3\n")
    return pkg


class TestRunner:
    def test_collect_files_is_sorted_and_recursive(self, tmp_path):
        _write_fixture_tree(tmp_path)
        pairs = collect_files(["src"], root=str(tmp_path))
        assert [display for _, display in pairs] \
            == ["src/clean.py", "src/dirty.py"]

    def test_run_lint_with_baseline(self, tmp_path):
        _write_fixture_tree(tmp_path)
        report = run_lint(["src"], root=str(tmp_path))
        assert report.summary()["errors"] == 1 and report.exit_code == 1
        baseline = tmp_path / "baseline.json"
        baseline.write_text(render_baseline(
            report.findings, reason="fixture: known dirty file"))
        rebaselined = run_lint(["src"], root=str(tmp_path),
                               baseline_path=str(baseline))
        assert rebaselined.findings == [] and rebaselined.exit_code == 0
        assert [r for _, r in rebaselined.baselined] \
            == ["fixture: known dirty file"]

    def test_jobs_do_not_change_the_report(self, tmp_path):
        _write_fixture_tree(tmp_path)
        one = run_lint(["src"], jobs=1, root=str(tmp_path))
        four = run_lint(["src"], jobs=4, root=str(tmp_path))
        assert one.to_json() == four.to_json()


def _run_cli(*args, cwd=REPO):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd, env=env, capture_output=True, text=True,
    )


class TestCLI:
    def test_repo_is_clean(self):
        proc = _run_cli("src", "tests", "benchmarks")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 errors" in proc.stdout

    def test_json_identical_across_jobs(self):
        one = _run_cli("src", "tests", "benchmarks", "--format", "json",
                       "--jobs", "1")
        four = _run_cli("src", "tests", "benchmarks", "--format", "json",
                        "--jobs", "4")
        assert one.returncode == 0 and four.returncode == 0
        assert one.stdout == four.stdout
        payload = json.loads(one.stdout)
        assert payload["summary"]["errors"] == 0

    def test_findings_set_exit_code(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        proc = _run_cli(str(bad))
        assert proc.returncode == 1
        assert "DET001" in proc.stdout

    def test_list_rules(self):
        proc = _run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("DET001", "DET004", "ENG002", "PAR001", "SHM001",
                        "IPD001", "IPD002", "IPD003", "STORE002"):
            assert rule_id in proc.stdout

    def test_examples_linted_by_default(self):
        proc = _run_cli()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        # file count covers examples/ on top of src+tests+benchmarks
        explicit = _run_cli("src", "tests", "benchmarks")
        count = int(proc.stdout.rsplit(" files", 1)[0].rsplit()[-1])
        explicit_count = int(
            explicit.stdout.rsplit(" files", 1)[0].rsplit()[-1])
        assert count > explicit_count
