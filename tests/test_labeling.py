"""Tests for k-hierarchical labeling (Def. 63), weight-augmented 2½
(Def. 67), and their solvers (Lemmas 65, 68, 69)."""

import random

import pytest

from repro.algorithms.labeling_solver import (
    run_weight_augmented_solver,
    solve_hierarchical_labeling,
)
from repro.constructions import (
    build_lower_bound_graph,
    build_weighted_construction,
    random_tree,
)
from repro.lcl import (
    HierarchicalLabeling,
    SECONDARY_DECLINE,
    WeightAugmented25,
    label_order,
)
from repro.lcl.labeling import compress_label, is_compress, is_rake, rake_label
from repro.local import balanced_tree, path_graph, random_ids


class TestLabelOrder:
    def test_order_chain(self):
        # R1 < C1 < R2 < C2 < R3
        seq = ["R1", "C1", "R2", "C2", "R3"]
        assert [label_order(x) for x in seq] == sorted(label_order(x) for x in seq)

    def test_predicates(self):
        assert is_rake(rake_label(2)) and not is_compress(rake_label(2))
        assert is_compress(compress_label(1))


class TestLabelingChecker:
    def test_single_node(self):
        g = path_graph(1)
        prob = HierarchicalLabeling(2)
        assert prob.verify(g, [("R1", None)]).valid

    def test_two_nodes_oriented(self):
        g = path_graph(2)
        prob = HierarchicalLabeling(2)
        assert prob.verify(g, [("R1", 1), ("R1", None)]).valid
        # rake edges must be oriented
        assert not prob.verify(g, [("R1", None), ("R1", None)]).valid
        # orientation cannot decrease labels
        assert not prob.verify(g, [("R2", 1), ("R1", None)]).valid

    def test_doubly_oriented_rejected(self):
        g = path_graph(2)
        prob = HierarchicalLabeling(2)
        res = prob.verify(g, [("R1", 1), ("R1", 0)])
        assert not res.valid

    def test_compress_path_rules(self):
        # R2 - C1 - C1 - C1 - R2: middle has two compress nbrs, no out
        g = path_graph(5)
        prob = HierarchicalLabeling(2)
        out = [
            ("R2", None),
            ("C1", 0),
            ("C1", None),
            ("C1", 4),
            ("R2", None),
        ]
        assert prob.verify(g, out).valid
        # interior with two compress neighbours must not orient
        bad = list(out)
        bad[2] = ("C1", 1)
        assert not prob.verify(g, bad).valid

    def test_distinct_compress_labels_not_adjacent(self):
        g = path_graph(2)
        prob = HierarchicalLabeling(3)
        res = prob.verify(g, [("C1", None), ("C2", None)])
        assert not res.valid


class TestLabelingSolver:
    @pytest.mark.parametrize("k", [2, 3])
    def test_valid_on_structured_trees(self, k):
        for g in (
            path_graph(150),
            balanced_tree(3, 5),
            build_lower_bound_graph([8, 12]).graph,
        ):
            sol = solve_hierarchical_labeling(g, k)
            res = HierarchicalLabeling(k).verify(g, sol.as_outputs(g.n))
            assert res.valid, res.violations[:4]

    def test_valid_on_random_trees(self):
        for seed in range(8):
            rng = random.Random(seed)
            g = random_tree(rng.randint(2, 250), 4, rng)
            sol = solve_hierarchical_labeling(g, 3)
            assert HierarchicalLabeling(3).verify(g, sol.as_outputs(g.n)).valid

    def test_pinned_root_is_sink(self):
        g = balanced_tree(3, 4)
        sol = solve_hierarchical_labeling(g, 2, pinned=[0])
        assert sol.out[0] is None
        # everything eventually points toward the root through the forest
        reached = {0}
        changed = True
        while changed:
            changed = False
            for v in g.nodes():
                if v not in reached and sol.out[v] in reached:
                    reached.add(v)
                    changed = True
        assert len(reached) > g.n // 2

    def test_worst_case_rounds_scale(self):
        # Lemma 65: O(n^{1/k}) rounds; k=2 on a path should beat k=1
        g = path_graph(900)
        t2 = max(solve_hierarchical_labeling(g, 2).times.values())
        assert t2 < 300  # far below n


class TestWeightAugmented:
    def _instance(self, weight_per_level=150):
        return build_weighted_construction([6, 10], 5, weight_per_level)

    def test_solver_valid(self):
        wi = self._instance()
        ids = random_ids(wi.n, rng=random.Random(2))
        tr = run_weight_augmented_solver(wi.graph, ids, 2)
        res = WeightAugmented25(2).verify(wi.graph, tr.outputs)
        assert res.valid, res.violations[:6]

    def test_lemma68_copy_fraction(self):
        # Omega(w) of each tree's weight nodes carry the active output
        wi = self._instance(weight_per_level=400)
        ids = random_ids(wi.n, rng=random.Random(3))
        tr = run_weight_augmented_solver(wi.graph, ids, 2)
        copying = declining = 0
        for a, tree in wi.tree_of.items():
            for w in tree:
                if tr.outputs[w][2] == SECONDARY_DECLINE:
                    declining += 1
                else:
                    copying += 1
        assert copying > 0
        # Lemma 68: all but a O(1/(delta-1)) fraction copy
        assert copying / (copying + declining) > 0.5

    def test_secondary_matches_active(self):
        wi = self._instance()
        ids = random_ids(wi.n, rng=random.Random(4))
        tr = run_weight_augmented_solver(wi.graph, ids, 2)
        for a, tree in wi.tree_of.items():
            root = [w for w in tree if a in wi.graph.neighbors(w)]
            for r in root:
                assert tr.outputs[r][2] == tr.outputs[a]

    def test_checker_rejects_wrong_secondary(self):
        wi = self._instance()
        ids = random_ids(wi.n, rng=random.Random(5))
        tr = run_weight_augmented_solver(wi.graph, ids, 2)
        prob = WeightAugmented25(2)
        assert prob.verify(wi.graph, tr.outputs).valid
        # corrupt one root's secondary
        a, tree = next(iter(wi.tree_of.items()))
        root = next(w for w in tree if a in wi.graph.neighbors(w))
        bad = list(tr.outputs)
        lab, out, sec = bad[root]
        wrong = "W" if sec != "W" else "B"
        bad[root] = (lab, out, wrong)
        assert not prob.verify(wi.graph, bad).valid
