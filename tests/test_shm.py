"""Shared-memory graph substrate and fork_map contract.

Covers the zero-copy protocol end to end: input coding, publish/attach
parity (in-process and across fork workers), cleanup, and the
``fork_map`` guarantees the sweep relies on — workers=1 never touches
multiprocessing, and the initializer hook runs exactly where worker
state must live.
"""

import multiprocessing
import random

import pytest

from repro.families import get_family
from repro.local import Graph, path_graph
from repro.parallel import fork_map
from repro.shm import (
    MAX_ALPHABET,
    SharedGraphPool,
    _attach_untracked,
    _encode_inputs,
    attach_graph,
    shared_graph,
    worker_attach_specs,
    worker_detach,
)


def _graphs_equal(a: Graph, b: Graph) -> bool:
    return (
        a.n == b.n
        and a.m == b.m
        and list(a.edges()) == list(b.edges())
        and list(a.inputs()) == list(b.inputs())
    )


class TestEncodeInputs:
    def test_uniform_none_is_flagged(self):
        alphabet, codes = _encode_inputs([None] * 5)
        assert alphabet is None and codes == b""

    def test_round_trip(self):
        inputs = ["A", "W", None, "A", 7]
        alphabet, codes = _encode_inputs(inputs)
        assert [alphabet[c] for c in codes] == inputs

    def test_alphabet_overflow(self):
        with pytest.raises(ValueError):
            _encode_inputs(list(range(MAX_ALPHABET + 1)))


class TestPublishAttach:
    def test_in_process_parity(self):
        g = get_family("random_tree").instance(300, 1, 0)
        g = g.with_inputs(["A" if v % 7 == 0 else "W" for v in range(g.n)])
        with SharedGraphPool() as pool:
            spec = pool.publish("k1", g)
            assert spec.n == g.n and spec.m == g.m
            # publish is idempotent per key
            assert pool.publish("k1", g) is spec
            worker_attach_specs(pool.specs())
            attached = shared_graph("k1")
            assert attached is not None
            assert _graphs_equal(g, attached)
            # attachment is cached per process
            assert shared_graph("k1") is attached
            worker_detach()
        assert shared_graph("k1") is None

    def test_none_inputs_skip_coding(self):
        g = path_graph(50)
        with SharedGraphPool() as pool:
            spec = pool.publish("k2", g)
            assert spec.alphabet is None
            worker_attach_specs(pool.specs())
            attached = shared_graph("k2")
            assert _graphs_equal(g, attached)
            worker_detach()

    def test_parent_graph_lookup(self):
        g = path_graph(10)
        with SharedGraphPool() as pool:
            pool.publish("k3", g)
            assert pool.graph("k3") is g
            assert pool.graph("missing") is None
            assert len(pool) == 1

    def test_close_unlinks_segments(self):
        from multiprocessing import shared_memory

        pool = SharedGraphPool()
        spec = pool.publish("k4", path_graph(20))
        pool.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=spec.shm_name)

    def test_unknown_key_returns_none(self):
        worker_detach()
        assert shared_graph("never-published") is None


def _read_shared(key: str):
    g = shared_graph(key)
    if g is None:
        return None
    return (g.n, g.m, sum(g.neighbors(0)), list(g.inputs()[:5]))


class TestForkWorkers:
    def test_workers_attach_across_fork(self):
        g = get_family("caterpillar").instance(200, 3, 0)
        g = g.with_inputs([v % 3 for v in range(g.n)])
        with SharedGraphPool() as pool:
            pool.publish("fk", g)
            results = fork_map(
                _read_shared, ["fk", "fk", "fk", "fk"], workers=2,
                initializer=worker_attach_specs, initargs=(pool.specs(),),
            )
        expected = (g.n, g.m, sum(g.neighbors(0)), list(g.inputs()[:5]))
        assert results == [expected] * 4


def _identity(x):
    return x


def _read_marker(_):
    import repro.shm as shm_mod

    return getattr(shm_mod, "_TEST_MARKER", None)


def _set_marker(value):
    import repro.shm as shm_mod

    shm_mod._TEST_MARKER = value


class TestForkMap:
    def test_workers_1_never_touches_multiprocessing(self, monkeypatch):
        # regression: the serial path must not create a pool or even ask
        # for a context — it is the fallback on fork-less platforms
        def boom(*args, **kwargs):
            raise AssertionError("multiprocessing touched at workers=1")

        monkeypatch.setattr(multiprocessing, "get_context", boom)
        assert fork_map(_identity, [1, 2, 3], workers=1) == [1, 2, 3]

    def test_single_task_stays_in_process(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("multiprocessing touched for a single task")

        monkeypatch.setattr(multiprocessing, "get_context", boom)
        assert fork_map(_identity, [41], workers=8) == [41]

    def test_initializer_runs_in_process_at_workers_1(self):
        _set_marker(None)
        result = fork_map(
            _read_marker, [0], workers=1,
            initializer=_set_marker, initargs=("present",),
        )
        assert result == ["present"]
        _set_marker(None)

    def test_initializer_runs_in_workers(self):
        _set_marker(None)
        results = fork_map(
            _read_marker, [0, 1, 2, 3], workers=2,
            initializer=_set_marker, initargs=("forked",),
        )
        # every task ran in a worker whose initializer had fired; the
        # parent's module state is untouched
        assert results == ["forked"] * 4
        assert _read_marker(0) is None

    def test_order_preserved(self):
        tasks = list(range(23))
        assert fork_map(_identity, tasks, workers=3) == tasks

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            fork_map(_identity, [1], workers=0)


class TestGraphArrayConstructors:
    def test_from_arrays_matches_sequential(self):
        rng = random.Random(5)
        g = get_family("random_tree").instance(80, 9, 0)
        edges = list(g.edges())
        rng.shuffle(edges)
        eu = [u for u, _ in edges]
        ev = [v for _, v in edges]
        a = Graph(g.n, edges)
        b = Graph.from_arrays(g.n, eu, ev)
        assert list(a.adjacency()[0]) == list(b.adjacency()[0])
        assert list(a.adjacency()[1]) == list(b.adjacency()[1])

    @pytest.mark.parametrize("edges,message", [
        ([(0, 9)], "out of range"),
        ([(1, 1)], "self-loop"),
        ([(0, 1), (1, 0)], "duplicate edge"),
    ])
    def test_from_arrays_error_parity(self, edges, message):
        eu = [u for u, _ in edges]
        ev = [v for _, v in edges]
        with pytest.raises(ValueError, match=message):
            Graph(3, edges)
        with pytest.raises(ValueError, match=message):
            Graph.from_arrays(3, eu, ev)

    def test_from_csr_buffers_round_trip(self):
        g = get_family("spider").instance(60, 2, 0)
        g = g.with_inputs([chr(65 + v % 4) for v in range(g.n)])
        indptr, indices = g.adjacency()
        attached = Graph.from_csr_buffers(
            g.n, g.m,
            memoryview(indptr).cast("B"),
            memoryview(indices).cast("B"),
            list(g.inputs()),
        )
        assert _graphs_equal(g, attached)

    def test_from_csr_buffers_size_check(self):
        g = path_graph(5)
        indptr, indices = g.adjacency()
        with pytest.raises(ValueError):
            Graph.from_csr_buffers(
                g.n, g.m + 1,
                memoryview(indptr).cast("B"),
                memoryview(indices).cast("B"),
            )


class TestReadOnlyAttach:
    """Runtime twin of lint rule SHM001: attached graphs are sealed.

    A segment is mapped by every sibling worker, so a store through an
    attached graph would race all of them; ``attach_graph`` /
    ``Graph.from_csr_buffers`` seal their views read-only at the buffer
    level so such a write raises instead of corrupting shared state.
    """

    def test_attached_graph_rejects_writes(self):
        g = get_family("random_tree").instance(80, 1, 0)
        g = g.with_inputs(["A" if v % 3 else "W" for v in range(g.n)])
        with SharedGraphPool() as pool:
            spec = pool.publish("ro", g)
            shm = _attach_untracked(spec.shm_name)
            try:
                attached = attach_graph(spec, shm)
                indptr, indices = attached.adjacency()
                try:
                    with pytest.raises(TypeError):
                        indptr[0] = 1  # lint: allow(SHM001) proving the seal rejects this write
                    with pytest.raises(TypeError):
                        indices[0] = 1  # lint: allow(SHM001) proving the seal rejects this write
                    with pytest.raises(TypeError):
                        attached._inputs._codes[0] = 1
                    # reads are untouched by the seal
                    assert _graphs_equal(g, attached)
                finally:
                    # drop the graph's exported views so the segment can
                    # actually close (same ordering worker_detach relies on)
                    del indptr, indices, attached
            finally:
                shm.close()

    def test_from_csr_buffers_seals_writable_sources(self):
        g = path_graph(6)
        indptr, indices = g.adjacency()
        attached = Graph.from_csr_buffers(
            g.n, g.m,
            bytearray(memoryview(indptr).cast("B")),
            bytearray(memoryview(indices).cast("B")),
        )
        ip, ix = attached.adjacency()
        with pytest.raises(TypeError):
            ip[0] = 99  # lint: allow(SHM001) proving the seal rejects this write
        with pytest.raises(TypeError):
            ix[0] = 99  # lint: allow(SHM001) proving the seal rejects this write
