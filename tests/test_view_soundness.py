"""Regression tests for LOCAL-model soundness fixes.

The headline bug: ``View.id_of`` / ``View.input_of`` used to answer for
nodes *outside* the radius-``t`` ball (a silent information leak that let
a buggy algorithm cheat the LOCAL model); they must raise ``KeyError``
exactly like ``distance`` — identically on both engines.  ``output_of``
had a subtler variant (None before the out-of-ball node commits, KeyError
after — a distinguishable out-of-horizon signal) and now raises always.
Also pinned here: negative-radius validation in ``Graph.ball`` /
``BallStore.grow_to``, and the ``MessageSimulator`` trace meta carrying
the ``"engine"`` key that shared tooling reads.
"""

import pytest

from repro.algorithms import ColeVishkin3Coloring
from repro.local import (
    CONTINUE,
    ENGINES,
    BallStore,
    LocalAlgorithm,
    LocalSimulator,
    MessageSimulator,
    View,
    path_graph,
    random_ids,
    sequential_ids,
    validate_ids,
)


class _ProbeOutOfBall(LocalAlgorithm):
    """Queries a node far outside the round-0 ball via the given accessor."""

    name = "probe-out-of-ball"

    def __init__(self, accessor: str) -> None:
        self.accessor = accessor

    def decide(self, view, n):
        target = (view.center + n // 2) % n  # distance >= 2 at round 0 on a path
        return getattr(view, self.accessor)(target)


class TestViewOutOfBallAccess:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "accessor", ["id_of", "input_of", "distance", "output_of", "has_output"]
    )
    def test_accessors_raise_keyerror_on_both_engines(self, engine, accessor):
        g = path_graph(8, inputs=list("abcdefgh"))
        with pytest.raises(KeyError):
            LocalSimulator(engine=engine).run(g, _ProbeOutOfBall(accessor))

    @pytest.mark.parametrize("accessor", ["id_of", "input_of", "output_of"])
    def test_direct_view_raises_with_and_without_store(self, accessor):
        g = path_graph(6)
        ids = sequential_ids(6)
        commit = [None] * 6
        outputs = [None] * 6

        fresh = View(g, 0, 1, ids, commit, outputs)           # reference shape
        store = BallStore(g, 0)
        store.grow_to(1)
        windowed = View(g, 0, 1, ids, commit, outputs, store=store)

        for view in (fresh, windowed):
            assert view.contains(1)
            getattr(view, accessor)(1)  # in-ball: fine
            with pytest.raises(KeyError):
                getattr(view, accessor)(5)  # distance 5 > radius 1

    def test_in_ball_answers_unchanged(self):
        g = path_graph(5, inputs=[10, 11, 12, 13, 14])
        ids = [7, 3, 9, 1, 5]
        view = View(g, 2, 2, ids, [None] * 5, [None] * 5)
        assert [view.id_of(u) for u in sorted(view.nodes())] == ids
        assert view.input_of(0) == 10


class TestNegativeRadius:
    def test_graph_ball_rejects_negative_radius(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            g.ball(0, -1)
        assert g.ball(0, 0) == {0: 0}

    def test_ballstore_rejects_negative_radius(self):
        store = BallStore(path_graph(4), 0)
        with pytest.raises(ValueError):
            store.grow_to(-1)
        assert store.grow_to(0) == {0: 0}


class TestMessageSimulatorDelegation:
    def test_meta_carries_engine_key(self):
        g = path_graph(7)
        ids = random_ids(7)
        trace = MessageSimulator().run(g, ColeVishkin3Coloring(), ids)
        assert trace.meta["engine"] == "incremental"
        assert trace.meta["ids"] == ids

    def test_trace_matches_local_simulator(self):
        g = path_graph(9)
        ids = random_ids(9)
        via_message = MessageSimulator().run(g, ColeVishkin3Coloring(), ids)
        via_local = LocalSimulator().run(g, ColeVishkin3Coloring(), ids)
        assert via_message.rounds == via_local.rounds
        assert via_message.outputs == via_local.outputs
        assert via_message.meta == via_local.meta

    def test_rejects_view_algorithms(self):
        class Noop(LocalAlgorithm):
            def decide(self, view, n):
                return CONTINUE

        with pytest.raises(TypeError):
            MessageSimulator().run(path_graph(3), Noop())

    def test_max_rounds_forwarded(self):
        from repro.local import MessageAlgorithm, SimulationError

        class Never(MessageAlgorithm):
            name = "never"

            def init_state(self, info, n):
                return None

            def message(self, state, t):
                return None

            def transition(self, state, incoming, t):
                return None

            def decide(self, state, t):
                return CONTINUE

        with pytest.raises(SimulationError):
            MessageSimulator(max_rounds=3).run(path_graph(3), Never())


def test_validate_ids_exported():
    # the actually-used validator is part of the public ids API now
    from repro.local import ids as ids_module

    assert "validate_ids" in ids_module.__all__
    with pytest.raises(ValueError):
        validate_ids([1, 1, 2])
