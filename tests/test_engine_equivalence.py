"""Engine equivalence: ``engine="incremental"`` vs ``engine="reference"``.

The contract (see :class:`repro.local.simulator.LocalSimulator`) is that
the two engines are observationally identical: same ``(T_v, output)`` maps
on every graph, algorithm and ID assignment.  This suite pins it over a
seeded corpus covering both algorithm formulations (view-based and
message-passing), plus the CSR substrate invariants the incremental engine
leans on (ball equality with a naive BFS, networkx round-trips, shared
BFS-layer reuse in ``run_batch``).
"""

import random
from collections import deque

import pytest

from repro.algorithms import (
    CanonicalTwoColoring,
    ColeVishkin3Coloring,
    GenericPhaseColoring,
    WaitForWholeGraph,
    default_gammas_25,
    default_gammas_35,
)
from repro.local import (
    CONTINUE,
    ENGINES,
    BallStore,
    Graph,
    LocalAlgorithm,
    LocalSimulator,
    MessageSimulator,
    balanced_tree,
    from_networkx,
    path_graph,
    random_ids,
    star_graph,
    to_networkx,
)


def corpus():
    """Seeded (name, graph) instances: paths, stars, balanced trees."""
    rng = random.Random(20240722)
    cases = [
        ("path2", path_graph(2)),
        ("path9", path_graph(9)),
        ("path24", path_graph(24)),
        ("star6", star_graph(6)),
        ("btree2x3", balanced_tree(2, 3)),
        ("btree3x2", balanced_tree(3, 2)),
        ("forest", Graph(10, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 8)])),
    ]
    return [(name, g, random_ids(g.n, rng=rng)) for name, g in cases]


CORPUS = corpus()
PATH_CORPUS = [(name, g, ids) for name, g, ids in CORPUS if g.max_degree() <= 2]


class FirstVisibleOutput(LocalAlgorithm):
    """Causality probe: min-ID node commits at round 0; everyone else
    commits the round some output becomes causally visible."""

    name = "first-visible-output"

    def decide(self, view, n):
        me = view.center
        if view.id_of(me) == min(view.id_of(u) for u in view.nodes()):
            if view.sees_whole_component() or len(view.nodes()) == n:
                return "root"
            return CONTINUE
        for u in view.nodes():
            if u != me and view.output_of(u) is not None:
                return view.round
        return CONTINUE


def _solve_degrees(graph, ids):
    return [graph.degree(v) for v in graph.nodes()]


def view_algorithms():
    return [
        CanonicalTwoColoring(),
        WaitForWholeGraph(_solve_degrees),
        FirstVisibleOutput(),
    ]


def assert_equivalent(graph, make_algorithm, ids):
    ref = LocalSimulator(engine="reference").run(graph, make_algorithm(), ids)
    inc = LocalSimulator(engine="incremental").run(graph, make_algorithm(), ids)
    assert inc.rounds == ref.rounds
    assert inc.outputs == ref.outputs
    return ref, inc


class TestViewEngineEquivalence:
    @pytest.mark.parametrize("name,graph,ids", CORPUS, ids=[c[0] for c in CORPUS])
    def test_view_algorithms(self, name, graph, ids):
        for algo in view_algorithms():
            assert_equivalent(graph, lambda a=algo: a, ids)

    def test_engine_recorded_in_meta(self):
        g = path_graph(5)
        tr = LocalSimulator(engine="reference").run(g, CanonicalTwoColoring())
        assert tr.meta["engine"] == "reference"
        tr = LocalSimulator().run(g, CanonicalTwoColoring())
        assert tr.meta["engine"] == "incremental"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            LocalSimulator(engine="warp")


class TestMessageEngineEquivalence:
    @pytest.mark.parametrize(
        "name,graph,ids", PATH_CORPUS, ids=[c[0] for c in PATH_CORPUS]
    )
    def test_cole_vishkin(self, name, graph, ids):
        ref, inc = assert_equivalent(graph, ColeVishkin3Coloring, ids)
        msg = MessageSimulator().run(graph, ColeVishkin3Coloring(), ids)
        assert msg.rounds == ref.rounds and msg.outputs == ref.outputs

    @pytest.mark.parametrize("variant", ["2.5", "3.5"])
    def test_generic_phases(self, variant):
        k = 2
        for name, graph, ids in [CORPUS[1], CORPUS[4]]:
            gammas = (
                default_gammas_25(graph.n, k)
                if variant == "2.5"
                else default_gammas_35(graph.n, k)
            )
            assert_equivalent(
                graph, lambda: GenericPhaseColoring(k, gammas, variant), ids
            )


class TestRunBatch:
    def test_batch_matches_individual_runs(self):
        g = balanced_tree(2, 3)
        rng = random.Random(7)
        samples = [random_ids(g.n, rng=rng) for _ in range(4)]
        sim = LocalSimulator()
        batch = sim.run_batch(g, CanonicalTwoColoring(), samples)
        for ids, tr in zip(samples, batch):
            solo = LocalSimulator().run(g, CanonicalTwoColoring(), ids)
            assert tr.rounds == solo.rounds and tr.outputs == solo.outputs

    def test_batch_resets_per_run_caches(self):
        g = path_graph(6)
        samples = [[6, 5, 4, 3, 2, 1], [1, 2, 3, 4, 5, 6]]
        batch = LocalSimulator().run_batch(g, WaitForWholeGraph(_ids_as_outputs), samples)
        assert batch[0].outputs == samples[0]
        assert batch[1].outputs == samples[1]


def _ids_as_outputs(graph, ids):
    return list(ids)


class TestWaitForWholeGraphComponents:
    def test_each_component_solves_with_own_ids(self):
        # regression: the centralized-solve memo must be per component —
        # a shared memo would hand component {3,4} outputs computed from
        # component {0,1,2}'s zero-padded ID vector
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        ids = [10, 11, 12, 13, 14]
        for engine in ENGINES:
            tr = LocalSimulator(engine=engine).run(
                g, WaitForWholeGraph(_ids_as_outputs), ids
            )
            assert tr.outputs == ids, engine

    def test_view_ball_is_read_only_on_both_engines(self):
        class Mutator(LocalAlgorithm):
            name = "mutator"

            def decide(self, view, n):
                view.nodes()[view.center] = 99
                return 0

        for engine in ENGINES:
            with pytest.raises(TypeError):
                LocalSimulator(engine=engine).run(path_graph(3), Mutator())


def naive_ball(graph, v, radius):
    """Dict/deque BFS ball — the pre-CSR implementation, kept as oracle."""
    dist = {v: 0}
    queue = deque([v])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if du == radius:
            continue
        for w in graph.neighbors(u):
            if w not in dist:
                dist[w] = du + 1
                queue.append(w)
    return dist


class TestCSRSubstrate:
    @pytest.mark.parametrize("name,graph,ids", CORPUS, ids=[c[0] for c in CORPUS])
    def test_ball_matches_naive_bfs(self, name, graph, ids):
        for v in range(0, graph.n, 2):
            for radius in (0, 1, 2, graph.n):
                assert graph.ball(v, radius) == naive_ball(graph, v, radius)

    @pytest.mark.parametrize("name,graph,ids", CORPUS, ids=[c[0] for c in CORPUS])
    def test_ballstore_grows_to_exact_balls(self, name, graph, ids):
        store = BallStore(graph, 0)
        for t in range(graph.n + 1):
            assert store.grow_to(t) == graph.ball(0, t)

    def test_networkx_roundtrip_preserves_csr(self):
        g = balanced_tree(3, 2).with_inputs(
            [f"in{v}" for v in range(balanced_tree(3, 2).n)]
        )
        back = from_networkx(to_networkx(g))
        assert back.n == g.n and back.m == g.m
        assert sorted(map(tuple, back.edges())) == sorted(map(tuple, g.edges()))
        assert back.inputs() == g.inputs()
        for v in range(g.n):
            assert back.ball(v, 2) == g.ball(v, 2)

    def test_adjacency_slices_match_neighbors(self):
        g = balanced_tree(2, 4)
        indptr, indices = g.adjacency()
        for v in range(g.n):
            assert tuple(indices[indptr[v]:indptr[v + 1]]) == g.neighbors(v)
            assert indptr[v + 1] - indptr[v] == g.degree(v)

    def test_bfs_layers(self):
        g = path_graph(5)
        layers = list(g.bfs_layers([2]))
        assert layers == [[2], [1, 3], [0, 4]]
        assert list(g.bfs_layers([0, 4])) == [[0, 4], [1, 3], [2]]
