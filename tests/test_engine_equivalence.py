"""Engine equivalence: ``reference`` vs ``incremental`` vs ``batched``.

The contract (see :class:`repro.local.simulator.LocalSimulator`) is that
all three engines are observationally identical: same ``(T_v, output)``
maps on every graph, algorithm and ID assignment.  This suite pins it
over a seeded corpus covering all algorithm formulations — view-based
(through the batched engine's per-node fallback adapter), message-passing
(global dynamics vs causal-cone oracle vs vectorized ``decide_batch``)
and native batched — plus the CSR substrate invariants the fast engines
lean on (ball equality with a naive BFS, networkx round-trips, shared
BFS-layer reuse in ``run_batch``).
"""

import random
from collections import deque

import pytest

from repro.algorithms import (
    CanonicalTwoColoring,
    ColeVishkin3Coloring,
    DFreeAlgorithmA,
    GenericPhaseColoring,
    RakeCompressLayering,
    WaitForWholeGraph,
    default_gammas_25,
    default_gammas_35,
)
from repro.lcl.dfree import A_INPUT, W_INPUT
from repro.local import (
    CONTINUE,
    ENGINES,
    BallStore,
    BatchedAlgorithm,
    Graph,
    LocalAlgorithm,
    LocalSimulator,
    MessageSimulator,
    balanced_tree,
    cycle_graph,
    from_networkx,
    path_graph,
    random_ids,
    star_graph,
    to_networkx,
)


def corpus():
    """Seeded (name, graph) instances: paths, cycles, stars, trees."""
    rng = random.Random(20240722)
    cases = [
        ("path2", path_graph(2)),
        ("path9", path_graph(9)),
        ("path24", path_graph(24)),
        ("cycle11", cycle_graph(11)),
        ("star6", star_graph(6)),
        ("btree2x3", balanced_tree(2, 3)),
        ("btree3x2", balanced_tree(3, 2)),
        ("forest", Graph(10, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 8)])),
    ]
    return [(name, g, random_ids(g.n, rng=rng)) for name, g in cases]


CORPUS = corpus()
PATH_CORPUS = [(name, g, ids) for name, g, ids in CORPUS if g.max_degree() <= 2]
FOREST_CORPUS = [(name, g, ids) for name, g, ids in CORPUS if g.is_forest()]


class FirstVisibleOutput(LocalAlgorithm):
    """Causality probe: min-ID node commits at round 0; everyone else
    commits the round some output becomes causally visible."""

    name = "first-visible-output"

    def decide(self, view, n):
        me = view.center
        if view.id_of(me) == min(view.id_of(u) for u in view.nodes()):
            if view.sees_whole_component() or len(view.nodes()) == n:
                return "root"
            return CONTINUE
        for u in view.nodes():
            if u != me and view.output_of(u) is not None:
                return view.round
        return CONTINUE


def _solve_degrees(graph, ids):
    return [graph.degree(v) for v in graph.nodes()]


def view_algorithms():
    return [
        CanonicalTwoColoring(),
        WaitForWholeGraph(_solve_degrees),
        FirstVisibleOutput(),
    ]


def assert_equivalent(graph, make_algorithm, ids):
    """Run every engine and require (T_v, output) maps identical to the
    reference oracle; returns the reference and batched traces."""
    ref = LocalSimulator(engine="reference").run(graph, make_algorithm(), ids)
    traces = {"reference": ref}
    for engine in ENGINES:
        if engine == "reference":
            continue
        tr = LocalSimulator(engine=engine).run(graph, make_algorithm(), ids)
        assert tr.rounds == ref.rounds, engine
        assert tr.outputs == ref.outputs, engine
        assert tr.meta["engine"] == engine
        traces[engine] = tr
    return ref, traces["batched"]


class TestViewEngineEquivalence:
    @pytest.mark.parametrize("name,graph,ids", CORPUS, ids=[c[0] for c in CORPUS])
    def test_view_algorithms(self, name, graph, ids):
        for algo in view_algorithms():
            assert_equivalent(graph, lambda a=algo: a, ids)

    def test_engine_recorded_in_meta(self):
        g = path_graph(5)
        tr = LocalSimulator(engine="reference").run(g, CanonicalTwoColoring())
        assert tr.meta["engine"] == "reference"
        tr = LocalSimulator().run(g, CanonicalTwoColoring())
        assert tr.meta["engine"] == "incremental"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            LocalSimulator(engine="warp")


class TestMessageEngineEquivalence:
    @pytest.mark.parametrize(
        "name,graph,ids", PATH_CORPUS, ids=[c[0] for c in PATH_CORPUS]
    )
    def test_cole_vishkin(self, name, graph, ids):
        ref, inc = assert_equivalent(graph, ColeVishkin3Coloring, ids)
        msg = MessageSimulator().run(graph, ColeVishkin3Coloring(), ids)
        assert msg.rounds == ref.rounds and msg.outputs == ref.outputs

    @pytest.mark.parametrize("variant", ["2.5", "3.5"])
    def test_generic_phases(self, variant):
        k = 2
        for name, graph, ids in [CORPUS[1], CORPUS[4]]:
            gammas = (
                default_gammas_25(graph.n, k)
                if variant == "2.5"
                else default_gammas_35(graph.n, k)
            )
            assert_equivalent(
                graph, lambda: GenericPhaseColoring(k, gammas, variant), ids
            )


def _dfree_instance(n, seed, frac=0.2):
    """Random tree with A/W inputs — a d-free weight instance."""
    rng = random.Random(seed)
    edges = [(rng.randrange(i), i) for i in range(1, n)]
    inputs = [A_INPUT if rng.random() < frac else W_INPUT for _ in range(n)]
    return Graph(n, edges, inputs)


class _AllAtRoundOne(BatchedAlgorithm):
    """Pure batched algorithm (no per-node form): everyone commits 0 at
    round 1 — exercises the native decide_batch dispatch."""

    name = "all-at-round-one"

    def decide_batch(self, views, live, t):
        if t < 1:
            return []
        sizes = views.ball_sizes()
        return [(v, int(sizes[v])) for v in live]


class _DoubleCommitter(BatchedAlgorithm):
    name = "double-committer"

    def decide_batch(self, views, live, t):
        return [(live[0], 0), (live[0], 1)]


class _OutOfRangeCommitter(BatchedAlgorithm):
    name = "out-of-range-committer"

    def __init__(self, v):
        self._v = v

    def decide_batch(self, views, live, t):
        return [(self._v, 0)]


class TestBatchedEngine:
    """Batched-engine specifics beyond the shared three-way corpus."""

    @pytest.mark.parametrize(
        "name,graph,ids", FOREST_CORPUS, ids=[c[0] for c in FOREST_CORPUS]
    )
    def test_rake_compress_layering(self, name, graph, ids):
        for gamma, ell in ((1, 2), (2, 3)):
            assert_equivalent(
                graph, lambda: RakeCompressLayering(gamma=gamma, ell=ell), ids
            )

    @pytest.mark.parametrize("n,seed", [(12, 0), (25, 3), (40, 7)])
    def test_dfree_algorithm_a(self, n, seed):
        graph = _dfree_instance(n, seed)
        ids = random_ids(n, rng=random.Random(seed))
        ref, bat = assert_equivalent(graph, lambda: DFreeAlgorithmA(d=1), ids)
        # the whole network commits at the common round R = 3L + 3
        assert len(set(ref.rounds)) == 1

    def test_decide_batch_is_used_not_the_adapter(self):
        class Probe(CanonicalTwoColoring):
            def decide(self, view, n):  # pragma: no cover - must not run
                raise AssertionError("batched engine fell back to decide()")

        g = balanced_tree(2, 3)
        tr = LocalSimulator(engine="batched").run(g, Probe())
        ref = LocalSimulator(engine="reference").run(g, CanonicalTwoColoring())
        assert tr.rounds == ref.rounds and tr.outputs == ref.outputs

    def test_pure_batched_algorithm_runs_on_batched_only(self):
        g = path_graph(5)
        tr = LocalSimulator(engine="batched").run(g, _AllAtRoundOne())
        assert tr.rounds == [1] * 5
        # ball sizes at round 1 on a path: 2 at the ends, 3 inside
        assert tr.outputs == [2, 3, 3, 3, 2]
        for engine in ("incremental", "reference"):
            with pytest.raises(TypeError):
                LocalSimulator(engine=engine).run(g, _AllAtRoundOne())

    def test_double_commit_raises(self):
        from repro.local import SimulationError

        with pytest.raises(SimulationError):
            LocalSimulator(engine="batched").run(path_graph(4), _DoubleCommitter())

    @pytest.mark.parametrize("v", [-1, 4, 99])
    def test_out_of_range_commit_raises(self, v):
        # a negative index must not silently alias node n-1
        from repro.local import SimulationError

        with pytest.raises(SimulationError):
            LocalSimulator(engine="batched").run(
                path_graph(4), _OutOfRangeCommitter(v))

    def test_budget_error_identical_on_dynamics_fallback(self):
        # a caller-supplied max_rounds must produce the exact same
        # SimulationError on every engine, including the batched engine's
        # inner-dynamics schedule derivation on non-forest inputs
        from repro.local import SimulationError, disjoint_union

        g = disjoint_union([path_graph(7), cycle_graph(6)])
        ids = random_ids(g.n, rng=random.Random(1))
        gammas = default_gammas_25(g.n, 2)
        messages = set()
        for engine in ENGINES:
            with pytest.raises(SimulationError) as err:
                LocalSimulator(max_rounds=3, engine=engine).run(
                    g, GenericPhaseColoring(2, gammas, "2.5"), ids)
            messages.add(str(err.value))
        assert len(messages) == 1

    @pytest.mark.parametrize("variant", ["2.5", "3.5"])
    def test_generic_phases_on_cycle_components(self, variant):
        # the fast-forward replay is undefined on cycles; the batched
        # engine must fall back to the global dynamics and stay identical
        # to the other engines on the full input domain
        from repro.local import disjoint_union

        g = disjoint_union([path_graph(7), cycle_graph(6), Graph(1, [])])
        ids = random_ids(g.n, rng=random.Random(13))
        k = 2
        gammas = (default_gammas_25(g.n, k) if variant == "2.5"
                  else default_gammas_35(g.n, k))
        assert_equivalent(
            g, lambda: GenericPhaseColoring(k, gammas, variant), ids
        )

    def test_message_algorithm_without_decide_batch_falls_back(self):
        class PlainCV(ColeVishkin3Coloring):
            decide_batch = None  # masks the vectorized path

        g = path_graph(11)
        ids = random_ids(11, rng=random.Random(2))
        ref = LocalSimulator(engine="reference").run(g, ColeVishkin3Coloring(), ids)
        tr = LocalSimulator(engine="batched").run(g, PlainCV(), ids)
        assert tr.rounds == ref.rounds and tr.outputs == ref.outputs


class TestRunBatch:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_batch_matches_individual_runs(self, engine):
        g = balanced_tree(2, 3)
        rng = random.Random(7)
        samples = [random_ids(g.n, rng=rng) for _ in range(4)]
        sim = LocalSimulator(engine=engine)
        batch = sim.run_batch(g, CanonicalTwoColoring(), samples)
        for ids, tr in zip(samples, batch):
            solo = LocalSimulator().run(g, CanonicalTwoColoring(), ids)
            assert tr.rounds == solo.rounds and tr.outputs == solo.outputs

    @pytest.mark.parametrize("engine", ENGINES)
    def test_batch_resets_per_run_caches(self, engine):
        g = path_graph(6)
        samples = [[6, 5, 4, 3, 2, 1], [1, 2, 3, 4, 5, 6]]
        batch = LocalSimulator(engine=engine).run_batch(
            g, WaitForWholeGraph(_ids_as_outputs), samples
        )
        assert batch[0].outputs == samples[0]
        assert batch[1].outputs == samples[1]

    def test_batched_engine_reuses_atlas_grown_by_incremental(self):
        # one shared atlas across engines: incremental grows the layer
        # pool with per-node BallStores, the batched scheduler must read
        # and extend the very same lists (and vice versa)
        g = balanced_tree(2, 3)
        rng = random.Random(11)
        samples = [random_ids(g.n, rng=rng) for _ in range(3)]
        atlas = {}
        inc = [
            LocalSimulator(engine="incremental")._run(
                g, CanonicalTwoColoring(), ids, atlas=atlas)
            for ids in samples
        ]
        bat = [
            LocalSimulator(engine="batched")._run(
                g, CanonicalTwoColoring(), ids, atlas=atlas)
            for ids in samples
        ]
        for a, b in zip(inc, bat):
            assert a.rounds == b.rounds and a.outputs == b.outputs


def _ids_as_outputs(graph, ids):
    return list(ids)


class TestWaitForWholeGraphComponents:
    def test_each_component_solves_with_own_ids(self):
        # regression: the centralized-solve memo must be per component —
        # a shared memo would hand component {3,4} outputs computed from
        # component {0,1,2}'s zero-padded ID vector
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        ids = [10, 11, 12, 13, 14]
        for engine in ENGINES:
            tr = LocalSimulator(engine=engine).run(
                g, WaitForWholeGraph(_ids_as_outputs), ids
            )
            assert tr.outputs == ids, engine

    def test_view_ball_is_read_only_on_both_engines(self):
        class Mutator(LocalAlgorithm):
            name = "mutator"

            def decide(self, view, n):
                view.nodes()[view.center] = 99
                return 0

        for engine in ENGINES:
            with pytest.raises(TypeError):
                LocalSimulator(engine=engine).run(path_graph(3), Mutator())


def naive_ball(graph, v, radius):
    """Dict/deque BFS ball — the pre-CSR implementation, kept as oracle."""
    dist = {v: 0}
    queue = deque([v])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if du == radius:
            continue
        for w in graph.neighbors(u):
            if w not in dist:
                dist[w] = du + 1
                queue.append(w)
    return dist


class TestCSRSubstrate:
    @pytest.mark.parametrize("name,graph,ids", CORPUS, ids=[c[0] for c in CORPUS])
    def test_ball_matches_naive_bfs(self, name, graph, ids):
        for v in range(0, graph.n, 2):
            for radius in (0, 1, 2, graph.n):
                assert graph.ball(v, radius) == naive_ball(graph, v, radius)

    @pytest.mark.parametrize("name,graph,ids", CORPUS, ids=[c[0] for c in CORPUS])
    def test_ballstore_grows_to_exact_balls(self, name, graph, ids):
        store = BallStore(graph, 0)
        for t in range(graph.n + 1):
            assert store.grow_to(t) == graph.ball(0, t)

    def test_networkx_roundtrip_preserves_csr(self):
        g = balanced_tree(3, 2).with_inputs(
            [f"in{v}" for v in range(balanced_tree(3, 2).n)]
        )
        back = from_networkx(to_networkx(g))
        assert back.n == g.n and back.m == g.m
        assert sorted(map(tuple, back.edges())) == sorted(map(tuple, g.edges()))
        assert back.inputs() == g.inputs()
        for v in range(g.n):
            assert back.ball(v, 2) == g.ball(v, 2)

    def test_adjacency_slices_match_neighbors(self):
        g = balanced_tree(2, 4)
        indptr, indices = g.adjacency()
        for v in range(g.n):
            assert tuple(indices[indptr[v]:indptr[v + 1]]) == g.neighbors(v)
            assert indptr[v + 1] - indptr[v] == g.degree(v)

    def test_bfs_layers(self):
        g = path_graph(5)
        layers = list(g.bfs_layers([2]))
        assert layers == [[2], [1, 3], [0, 4]]
        assert list(g.bfs_layers([0, 4])) == [[0, 4], [1, 3], [2]]


class TestScheduleReplay:
    """``ScheduleReplay`` wraps a fast-forward solver as a batched
    algorithm: the batched engine's trace must equal the fast-forward
    trace exactly, with no other engine accepting the wrapper."""

    def _weighted25(self):
        from repro.families import weighted_construction_graph

        return weighted_construction_graph(60, 5, 2, 2, "poly")

    def test_apoly_replay_matches_fast_forward(self):
        from repro.algorithms import replay_apoly, run_apoly

        g = self._weighted25()
        ids = random_ids(g.n, rng=random.Random(11))
        ff = run_apoly(g, list(ids), 5, 2, 2)
        tr = LocalSimulator(engine="batched").run(
            g, replay_apoly(5, 2, 2), ids=ids)
        assert tr.rounds == ff.rounds
        assert tr.outputs == ff.outputs

    def test_weighted35_replay_matches_fast_forward(self):
        from repro.algorithms import replay_weighted35, run_weighted35
        from repro.families import weighted_construction_graph

        g = weighted_construction_graph(60, 6, 3, 2, "logstar")
        ids = random_ids(g.n, rng=random.Random(12))
        ff = run_weighted35(g, list(ids), 6, 3, 2)
        tr = LocalSimulator(engine="batched").run(
            g, replay_weighted35(6, 3, 2), ids=ids)
        assert tr.rounds == ff.rounds
        assert tr.outputs == ff.outputs

    def test_generic_replay_matches_fast_forward(self):
        from repro.algorithms import replay_generic_phases
        from repro.algorithms.generic_phases import run_generic_fast_forward

        g = balanced_tree(2, 5)
        ids = random_ids(g.n, rng=random.Random(13))
        ff = run_generic_fast_forward(g, list(ids), 3, [3, 5], "2.5")
        tr = LocalSimulator(engine="batched").run(
            g, replay_generic_phases(3, variant="2.5", gammas=[3, 5]),
            ids=ids)
        assert tr.rounds == ff.rounds
        assert tr.outputs == ff.outputs

    def test_replay_rejects_per_node_engines(self):
        from repro.algorithms import replay_apoly

        g = self._weighted25()
        for engine in ("incremental", "reference"):
            with pytest.raises(TypeError):
                LocalSimulator(engine=engine).run(g, replay_apoly(5, 2, 2))

    def test_run_batch_recomputes_per_sample(self):
        # run_batch reuses one algorithm instance across ID samples; the
        # cached trace must be invalidated when the IDs change
        from repro.algorithms import replay_apoly, run_apoly

        g = self._weighted25()
        samples = [random_ids(g.n, rng=random.Random(s)) for s in (1, 2, 3)]
        traces = LocalSimulator(engine="batched").run_batch(
            g, replay_apoly(5, 2, 2), samples)
        for ids, tr in zip(samples, traces):
            ff = run_apoly(g, list(ids), 5, 2, 2)
            assert tr.rounds == ff.rounds
            assert tr.outputs == ff.outputs
