"""Tests for Cole-Vishkin 3-coloring and canonical 2-coloring."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.symmetry_breaking import (
    CanonicalTwoColoring,
    ColeVishkin3Coloring,
    cv_iterations,
    cv_step,
    cv_total_rounds,
    three_color_path,
    two_coloring_fast_forward,
)
from repro.local import (
    Graph,
    LocalSimulator,
    MessageSimulator,
    path_graph,
    random_ids,
)
from repro.analysis import log_star


class TestCvPrimitives:
    def test_cv_step_root(self):
        assert cv_step(6, None) == 0
        assert cv_step(7, None) == 1

    def test_cv_step_reduces_and_separates(self):
        for a in range(1, 64):
            for b in range(1, 64):
                if a == b:
                    continue
                # child a with parent b: differs from parent's next value
                # whenever the parent also steps against some c != a
                va = cv_step(a, b)
                assert va < 2 * 6  # labels < 64 have <= 6 bits

    def test_iterations_schedule_monotone(self):
        assert cv_iterations(5) == 0  # labels 0..5 are already 6 colours
        assert cv_iterations(100) >= 1
        assert cv_iterations(10**9) <= 6
        assert cv_total_rounds(100) == cv_iterations(100) + 9

    def test_iterations_logstar_shape(self):
        # the schedule grows like log*: enormous spaces still need few rounds
        assert cv_iterations(2 ** (2**16)) <= 8


class TestThreeColorPath:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=120), st.integers(min_value=0, max_value=10**6))
    def test_proper_and_in_palette(self, m, seed):
        rng = random.Random(seed)
        ids = random_ids(m, rng=rng)
        colors, rounds = three_color_path(ids, (10 * m) ** 3)
        assert len(colors) == m
        assert all(c in (0, 1, 2) for c in colors)
        assert all(colors[i] != colors[i + 1] for i in range(m - 1))
        assert rounds == cv_total_rounds((10 * m) ** 3)

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError):
            three_color_path([3, 3], 100)

    def test_empty(self):
        assert three_color_path([], 10) == ([], 0)


class TestDistributedCV:
    def test_matches_fast_forward(self):
        rng = random.Random(5)
        for m in (1, 2, 3, 17, 64):
            g = path_graph(m)
            ids = random_ids(m, rng=rng)
            trace = MessageSimulator().run(g, ColeVishkin3Coloring(), ids)
            colors, rounds = three_color_path(ids, m**3)
            assert trace.outputs == colors
            assert all(r == rounds for r in trace.rounds)

    def test_rejects_high_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        with pytest.raises(ValueError):
            MessageSimulator().run(g, ColeVishkin3Coloring(), [1, 2, 3, 4])

    def test_rounds_scale_like_log_star(self):
        # E13 shape: node-averaged 3-coloring cost ~ log* n, far below n
        rng = random.Random(0)
        for m in (64, 512):
            ids = random_ids(m, rng=rng)
            _, rounds = three_color_path(ids, m**3)
            assert rounds <= 4 * (log_star(m**3) + 9)
            assert rounds < m or m < rounds  # trivially true; keep shape check below
            assert rounds <= 20


class TestTwoColoring:
    def test_simulator_matches_fast_forward(self):
        rng = random.Random(9)
        for m in (1, 2, 9, 24):
            g = path_graph(m)
            ids = random_ids(m, rng=rng)
            trace = LocalSimulator().run(g, CanonicalTwoColoring(), ids)
            colors, rounds = two_coloring_fast_forward(g, ids)
            assert trace.outputs == colors
            assert trace.rounds == rounds

    def test_proper(self):
        g = path_graph(12)
        colors, _ = two_coloring_fast_forward(g, list(range(1, 13)))
        assert all(colors[i] != colors[i + 1] for i in range(11))

    def test_linear_node_average(self):
        # E12 / Corollary 60 shape: node-averaged Theta(n)
        for m in (32, 64, 128):
            g = path_graph(m)
            _, rounds = two_coloring_fast_forward(g, list(range(1, m + 1)))
            avg = sum(rounds) / m
            assert avg >= m / 2  # ecc(v) >= (m-1)/2 always

    def test_forest_components_independent(self):
        g = Graph(5, [(0, 1), (3, 4)])
        colors, rounds = two_coloring_fast_forward(g, [5, 4, 3, 2, 1])
        assert colors[0] != colors[1] and colors[3] != colors[4]
        assert rounds[2] == 1  # singleton: ecc 0, +1 certification round
