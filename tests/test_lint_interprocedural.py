"""Two-phase analyzer: summaries, call-graph fixpoints, IPD/STORE002.

Every interprocedural rule is tested on a *twin pair*: a fixture whose
violation hides one call level deep, and a clean twin differing only in
the contract-relevant detail (seeded rng, public View API, read-only
kernel, complete key).  The rule must fire on the first and stay silent
on the second — that asymmetry is the whole point of summary
propagation, and the acceptance bar of the analyzer.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.lint.callgraph import CallGraph, module_name_for_path
from repro.lint.core import analyze_source
from repro.lint.summaries import build_project, extract_module_facts

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def rules_on(sources, path):
    """Rule ids reported for ``path`` after a whole-project analysis."""
    index = build_project(sources)
    findings = analyze_source(sources[path], path, project=index)
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# IPD001: transitive unseeded randomness from entry points
# ----------------------------------------------------------------------
class TestTransitiveEntropy:
    HELPER_BAD = (
        "import random\n"
        "\n"
        "def flip():\n"
        "    return random.random() < 0.5\n"
    )
    HELPER_GOOD = (
        "def flip(rng):\n"
        "    return rng.random() < 0.5\n"
    )

    def test_decide_reaching_hidden_draw_fires(self):
        sources = {
            "src/repro/algorithms/alpha.py":
                "from .helpers import flip\n"
                "\n"
                "def decide(view):\n"
                "    return flip()\n",
            "src/repro/algorithms/helpers.py": self.HELPER_BAD,
        }
        assert "IPD001" in rules_on(
            sources, "src/repro/algorithms/alpha.py")

    def test_seeded_twin_is_silent(self):
        sources = {
            "src/repro/algorithms/alpha.py":
                "from .helpers import flip\n"
                "\n"
                "def decide(view, rng):\n"
                "    return flip(rng)\n",
            "src/repro/algorithms/helpers.py": self.HELPER_GOOD,
        }
        assert rules_on(sources, "src/repro/algorithms/alpha.py") == []

    def test_two_levels_deep(self):
        sources = {
            "src/repro/algorithms/alpha.py":
                "from .mid import step\n"
                "\n"
                "def decide_batch(views):\n"
                "    return [step() for _ in views]\n",
            "src/repro/algorithms/mid.py":
                "from .helpers import flip\n"
                "\n"
                "def step():\n"
                "    return flip()\n",
            "src/repro/algorithms/helpers.py": self.HELPER_BAD,
        }
        assert "IPD001" in rules_on(
            sources, "src/repro/algorithms/alpha.py")

    def test_local_draw_is_det001_not_ipd001(self):
        # the entry drawing entropy itself is DET001's finding; IPD001
        # only reports draws hidden behind a call
        sources = {
            "src/repro/algorithms/alpha.py":
                "import random\n"
                "\n"
                "def decide(view):\n"
                "    return random.random() < 0.5\n",
        }
        rules = rules_on(sources, "src/repro/algorithms/alpha.py")
        assert "DET001" in rules
        assert "IPD001" not in rules

    def test_fork_map_worker_is_an_entry(self):
        sources = {
            "src/repro/runner2.py":
                "from repro.parallel import fork_map\n"
                "from .work import crunch\n"
                "\n"
                "def drive(tasks):\n"
                "    return fork_map(crunch, tasks, workers=2)\n",
            "src/repro/work.py":
                "from .deep import jitter\n"
                "\n"
                "def crunch(task):\n"
                "    return jitter(task)\n",
            "src/repro/deep.py":
                "import random\n"
                "\n"
                "def jitter(task):\n"
                "    return task + random.random()\n",
        }
        assert "IPD001" in rules_on(sources, "src/repro/work.py")

    def test_chain_named_in_message(self):
        sources = {
            "src/repro/algorithms/alpha.py":
                "from .helpers import flip\n"
                "\n"
                "def decide(view):\n"
                "    return flip()\n",
            "src/repro/algorithms/helpers.py": self.HELPER_BAD,
        }
        index = build_project(sources)
        path = "src/repro/algorithms/alpha.py"
        (finding,) = analyze_source(sources[path], path, project=index)
        assert "flip" in finding.message
        assert "helpers.py" in finding.message


# ----------------------------------------------------------------------
# IPD002: view escaping into internals-touching callees
# ----------------------------------------------------------------------
class TestTransitiveViewInternals:
    def test_view_escape_into_private_reader_fires(self):
        sources = {
            "src/repro/algorithms/beta.py":
                "from .util import peek\n"
                "\n"
                "def run(view):\n"
                "    return peek(view)\n",
            "src/repro/algorithms/util.py":
                "def peek(v):\n"
                "    return v._ball\n",
        }
        assert "IPD002" in rules_on(
            sources, "src/repro/algorithms/beta.py")

    def test_public_api_twin_is_silent(self):
        sources = {
            "src/repro/algorithms/beta.py":
                "from .util import peek\n"
                "\n"
                "def run(view):\n"
                "    return peek(view)\n",
            "src/repro/algorithms/util.py":
                "def peek(v):\n"
                "    return v.ball(1)\n",
        }
        assert rules_on(sources, "src/repro/algorithms/beta.py") == []

    def test_transitive_through_a_middleman(self):
        sources = {
            "src/repro/algorithms/beta.py":
                "from .mid import relay\n"
                "\n"
                "def run(view):\n"
                "    return relay(view)\n",
            "src/repro/algorithms/mid.py":
                "from .util import peek\n"
                "\n"
                "def relay(v):\n"
                "    return peek(v)\n",
            "src/repro/algorithms/util.py":
                "def peek(v):\n"
                "    return v._ball\n",
        }
        assert "IPD002" in rules_on(
            sources, "src/repro/algorithms/beta.py")


# ----------------------------------------------------------------------
# IPD003: attached shm objects escaping into writing callees
# ----------------------------------------------------------------------
class TestTransitiveSharedWrite:
    def test_attached_graph_into_writer_fires(self):
        sources = {
            "src/repro/w.py":
                "from repro.shm import attach_graph\n"
                "from .kern import scrub\n"
                "\n"
                "def worker(task):\n"
                "    g = attach_graph(task)\n"
                "    scrub(g)\n",
            "src/repro/kern.py":
                "def scrub(g):\n"
                "    g[0] = 0\n",
        }
        assert "IPD003" in rules_on(sources, "src/repro/w.py")

    def test_readonly_kernel_twin_is_silent(self):
        sources = {
            "src/repro/w.py":
                "from repro.shm import attach_graph\n"
                "from .kern import scan\n"
                "\n"
                "def worker(task):\n"
                "    g = attach_graph(task)\n"
                "    return scan(g)\n",
            "src/repro/kern.py":
                "def scan(g):\n"
                "    return g[0]\n",
        }
        assert rules_on(sources, "src/repro/w.py") == []

    def test_adjacency_array_and_setflags_unseal(self):
        sources = {
            "src/repro/w.py":
                "from repro.shm import shared_graph\n"
                "from .kern import unseal\n"
                "\n"
                "def worker(task):\n"
                "    g = shared_graph(task)\n"
                "    indptr, indices = g.adjacency()\n"
                "    unseal(indptr)\n",
            "src/repro/kern.py":
                "def unseal(arr):\n"
                "    arr.setflags(write=True)\n",
        }
        assert "IPD003" in rules_on(sources, "src/repro/w.py")


# ----------------------------------------------------------------------
# STORE002: payload values missing from the digest key
# ----------------------------------------------------------------------
class TestStoreKeyCompleteness:
    KEYS_DROPPING = (
        "def make_key(store, family, n):\n"
        "    return store.key(\"unit\", family, n)\n"
    )
    KEYS_COMPLETE = (
        "def make_key(store, family, n, extra):\n"
        "    return store.key(\"unit\", family, n, extra)\n"
    )

    def test_value_missing_from_helper_built_key_fires(self):
        sources = {
            "src/repro/writer.py":
                "from .keys import make_key\n"
                "\n"
                "def save(store, family, n, extra):\n"
                "    payload = {\"n\": n, \"extra\": extra}\n"
                "    store.put(make_key(store, family, n), payload)\n",
            "src/repro/keys.py": self.KEYS_DROPPING,
        }
        index = build_project(sources)
        path = "src/repro/writer.py"
        (finding,) = analyze_source(sources[path], path, project=index)
        assert finding.rule == "STORE002"
        assert "'extra'" in finding.message

    def test_complete_key_twin_is_silent(self):
        sources = {
            "src/repro/writer.py":
                "from .keys import make_key\n"
                "\n"
                "def save(store, family, n, extra):\n"
                "    payload = {\"n\": n, \"extra\": extra}\n"
                "    store.put(make_key(store, family, n, extra), "
                "payload)\n",
            "src/repro/keys.py": self.KEYS_COMPLETE,
        }
        assert rules_on(sources, "src/repro/writer.py") == []

    def test_direct_digest_key_checked_too(self):
        sources = {
            "src/repro/writer.py":
                "from repro.parallel import stable_digest\n"
                "\n"
                "def save(store, family, n, extra):\n"
                "    payload = {\"n\": n, \"extra\": extra}\n"
                "    key = stable_digest(\"unit\", family, n)\n"
                "    store.put(key, payload)\n",
        }
        assert "STORE002" in rules_on(sources, "src/repro/writer.py")

    def test_non_digest_key_is_out_of_scope(self):
        # a put keyed by something that never touches stable_digest /
        # store.key is not content-addressed — nothing to check
        sources = {
            "src/repro/writer.py":
                "def save(store, name, extra):\n"
                "    store.put(name, {\"extra\": extra})\n",
        }
        assert rules_on(sources, "src/repro/writer.py") == []


# ----------------------------------------------------------------------
# summary extraction corners: decorators, nesting, lambdas, self
# ----------------------------------------------------------------------
class TestSummaryUnits:
    def test_decorated_function_still_summarized(self):
        sources = {
            "src/repro/algorithms/g.py":
                "import functools\n"
                "from .h import flip\n"
                "\n"
                "@functools.lru_cache(maxsize=None)\n"
                "def decide(view):\n"
                "    return flip()\n",
            "src/repro/algorithms/h.py":
                "import random\n"
                "\n"
                "def flip():\n"
                "    return random.random()\n",
        }
        assert "IPD001" in rules_on(sources, "src/repro/algorithms/g.py")

    def test_nested_def_is_its_own_unit(self):
        facts = extract_module_facts(
            "src/repro/n.py",
            "import random\n"
            "\n"
            "def outer():\n"
            "    def inner():\n"
            "        return random.random()\n"
            "    return inner\n",
        )
        by_name = {f.qualname: f for f in facts.functions}
        assert by_name["repro.n.outer.inner"].entropy is not None
        assert by_name["repro.n.outer"].entropy is None

    def test_module_level_lambda_is_a_unit(self):
        facts = extract_module_facts(
            "src/repro/l.py",
            "import random\n"
            "\n"
            "draw = lambda: random.random()\n",
        )
        by_name = {f.qualname: f for f in facts.functions}
        assert by_name["repro.l.draw"].entropy is not None

    def test_method_resolved_through_self(self):
        sources = {
            "src/repro/algorithms/m.py":
                "import random\n"
                "\n"
                "class Algo:\n"
                "    def _draw(self):\n"
                "        return random.random()\n"
                "\n"
                "    def decide(self, view):\n"
                "        return self._draw()\n",
        }
        assert "IPD001" in rules_on(sources, "src/repro/algorithms/m.py")

    def test_method_inherited_from_project_base(self):
        sources = {
            "src/repro/base.py":
                "import random\n"
                "\n"
                "class Base:\n"
                "    def _draw(self):\n"
                "        return random.random()\n",
            "src/repro/algorithms/sub.py":
                "from repro.base import Base\n"
                "\n"
                "class Algo(Base):\n"
                "    def decide(self, view):\n"
                "        return self._draw()\n",
        }
        assert "IPD001" in rules_on(sources, "src/repro/algorithms/sub.py")

    def test_suppressed_source_does_not_taint(self):
        sources = {
            "src/repro/algorithms/alpha.py":
                "from .helpers import flip\n"
                "\n"
                "def decide(view):\n"
                "    return flip()\n",
            "src/repro/algorithms/helpers.py":
                "import random\n"
                "\n"
                "def flip():\n"
                "    # lint: allow(DET001) documented fixture exception\n"
                "    return random.random() < 0.5\n",
        }
        assert "IPD001" not in rules_on(
            sources, "src/repro/algorithms/alpha.py")

    def test_cycle_terminates_clean(self):
        sources = {
            "src/repro/a.py":
                "from .b import g\n"
                "\n"
                "def decide(view):\n"
                "    return g()\n"
                "\n"
                "def f():\n"
                "    return g()\n",
            "src/repro/b.py":
                "from .a import f\n"
                "\n"
                "def g():\n"
                "    return f()\n",
        }
        assert rules_on(sources, "src/repro/a.py") == []


# ----------------------------------------------------------------------
# call-graph plumbing
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_module_names(self):
        assert module_name_for_path("src/repro/sweep.py") == "repro.sweep"
        assert module_name_for_path(
            "src/repro/gap/__init__.py") == "repro.gap"
        assert module_name_for_path(
            "benchmarks/harness.py") == "benchmarks.harness"

    def test_reexport_chasing(self):
        sources = {
            "src/repro/store/__init__.py":
                "from .cas import ResultStore\n",
            "src/repro/store/cas.py":
                "class ResultStore:\n"
                "    def __init__(self, root):\n"
                "        self.root = root\n",
            "src/repro/user.py":
                "from repro.store import ResultStore\n"
                "\n"
                "def open_store(root):\n"
                "    return ResultStore(root)\n",
        }
        facts = [extract_module_facts(p, s) for p, s in sorted(
            sources.items())]
        graph = CallGraph(facts)
        caller = graph.functions["repro.user.open_store"]
        (site,) = caller.calls
        assert graph.resolve_call(caller, site) == (
            "repro.store.cas.ResultStore.__init__", 1)

    def test_bare_script_alias(self):
        sources = {
            "benchmarks/harness.py":
                "def timed(fn):\n"
                "    return fn\n",
            "benchmarks/bench_x.py":
                "from harness import timed\n"
                "\n"
                "def run():\n"
                "    return timed(run)\n",
        }
        facts = [extract_module_facts(p, s) for p, s in sorted(
            sources.items())]
        graph = CallGraph(facts)
        caller = graph.functions["benchmarks.bench_x.run"]
        (site,) = caller.calls
        assert graph.resolve_call(caller, site) == (
            "benchmarks.harness.timed", 0)


# ----------------------------------------------------------------------
# the two-phase runner end to end
# ----------------------------------------------------------------------
class TestTwoPhaseRunner:
    def _lint(self, args, cwd):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.lint"] + args,
            capture_output=True, text=True, cwd=cwd, env=env)

    @pytest.fixture()
    def project(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "algorithms"
        pkg.mkdir(parents=True)
        (pkg / "alpha.py").write_text(
            "from .helpers import flip\n"
            "\n"
            "def decide(view):\n"
            "    return flip()\n")
        (pkg / "helpers.py").write_text(
            "import random\n"
            "\n"
            "def flip():\n"
            "    return random.random() < 0.5\n")
        return tmp_path

    def test_cli_reports_cross_module_finding(self, project):
        result = self._lint(["src", "--format", "json"], str(project))
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        rules = {f["rule"] for f in payload["findings"]}
        assert "IPD001" in rules          # in alpha.py, one call away
        assert "DET001" in rules          # at the draw in helpers.py

    def test_jobs_1_vs_4_byte_identical(self, project):
        j1 = self._lint(["src", "--format", "json", "--jobs", "1"],
                        str(project))
        j4 = self._lint(["src", "--format", "json", "--jobs", "4"],
                        str(project))
        assert j1.stdout == j4.stdout
        assert j1.returncode == j4.returncode

    def test_whole_repo_jobs_identity(self):
        # the acceptance gate on the real tree, not a fixture
        j1 = self._lint(["src/repro/lint", "--format", "json",
                         "--jobs", "1"], REPO)
        j4 = self._lint(["src/repro/lint", "--format", "json",
                         "--jobs", "4"], REPO)
        assert j1.stdout == j4.stdout

    def test_prune_baseline_round_trip(self, project, tmp_path):
        baseline = tmp_path / "baseline.json"
        # 1. write a skeleton covering current findings, stamp reasons
        result = self._lint(["src", "--write-baseline", str(baseline)],
                            str(project))
        assert result.returncode == 0
        doc = json.loads(baseline.read_text())
        for entry in doc["findings"]:
            entry["reason"] = "fixture: known and intentional"
        # 2. add a stale entry for a finding that does not exist
        doc["findings"].append({
            "file": "src/repro/algorithms/gone.py", "rule": "DET001",
            "line": 3, "reason": "stale: file was deleted"})
        baseline.write_text(json.dumps(doc))
        # 3. a plain run reports the stale entry but keeps the file
        before = baseline.read_text()
        result = self._lint(["src", "--baseline", str(baseline)],
                            str(project))
        assert "stale baseline entry" in result.stdout
        assert baseline.read_text() == before
        # 4. --prune-baseline rewrites in place, dropping only the
        #    stale entry and preserving hand-written reasons
        result = self._lint(
            ["src", "--baseline", str(baseline), "--prune-baseline"],
            str(project))
        assert result.returncode == 0
        assert "pruned 1 stale entry" in result.stdout
        pruned = json.loads(baseline.read_text())
        files = {e["file"] for e in pruned["findings"]}
        assert "src/repro/algorithms/gone.py" not in files
        assert all(e["reason"] == "fixture: known and intentional"
                   for e in pruned["findings"])
        # 5. a second prune is a byte-level no-op
        before = baseline.read_text()
        result = self._lint(
            ["src", "--baseline", str(baseline), "--prune-baseline"],
            str(project))
        assert "pruned 0 stale entries" in result.stdout
        assert baseline.read_text() == before

    def test_prune_requires_baseline(self, project):
        result = self._lint(["src", "--prune-baseline"], str(project))
        assert result.returncode == 2
        assert "--prune-baseline requires --baseline" in result.stderr
