"""Property tests for the partition-refinement canonical core.

The acceptance pin: :func:`repro.gap.canonical.canonical_encoding` is
observationally identical to the retired brute force
(:func:`legacy_canonical_encoding`, kept as the differential oracle) on
the *entire* max-labels-2 / delta=2 space — 1040 raw specs collapsing to
298 canonical forms with identical orbit sizes — and on randomized
transform fuzz over larger alphabet signatures.  On top of the pin:
invariance under arbitrary symmetry transforms, idempotence,
orbit--stabilizer agreement with explicitly materialized orbits, the
stuck-cell stabilizer search against the direct full-group scan, the
mask order against the encoding's tuple order, and the streaming orderly
enumeration against the materializing wrapper.
"""

import itertools
import random

from repro.gap.canonical import (
    ProblemSpec,
    canonical_encoding,
    enumerate_multisets,
    get_context,
    iter_space,
    legacy_canonical_encoding,
    mask_less,
    orbit_size,
    stabilizer_order,
    stuck_cell_order,
    stuck_cell_perms,
)
from repro.gap.census import enumerate_space

#: fuzz signatures: multiple output labels, a non-trivial input
#: alphabet, and a delta-3 universe
SIGNATURES = [(1, 3, 2), (2, 2, 2), (1, 2, 3)]


def random_spec(rng, n_in, n_out, delta):
    multisets = enumerate_multisets(n_in, n_out, delta)
    white = frozenset(
        rng.sample(multisets, rng.randrange(len(multisets) + 1)))
    black = frozenset(
        rng.sample(multisets, rng.randrange(len(multisets) + 1)))
    return ProblemSpec(n_in, n_out, delta, white, black)


def transformed(spec, pi_in, pi_out, swap):
    def remap(allowed):
        return frozenset(
            tuple(sorted((pi_in[i], pi_out[o]) for i, o in ms))
            for ms in allowed
        )

    white, black = remap(spec.white), remap(spec.black)
    if swap:
        white, black = black, white
    return ProblemSpec(spec.n_in, spec.n_out, spec.delta, white, black)


def iter_raw_specs(max_labels, delta):
    """Every raw spec of the bounded one-input space (the legacy
    materializing walk)."""
    for n_out in range(1, max_labels + 1):
        multisets = enumerate_multisets(1, n_out, delta)
        subsets = [
            frozenset(c)
            for size in range(len(multisets) + 1)
            for c in itertools.combinations(multisets, size)
        ]
        for white in subsets:
            for black in subsets:
                yield ProblemSpec(1, n_out, delta, white, black)


class TestMaskOrder:
    def test_mask_less_matches_encoding_tuple_order(self):
        ctx = get_context(1, 2, 2)
        ranked = ctx.ranked

        def key(mask):
            return tuple(
                ranked[r] for r in range(ctx.m) if (mask >> r) & 1)

        for a in range(1 << ctx.m):
            for b in range(1 << ctx.m):
                assert mask_less(a, b) == (key(a) < key(b)), (a, b)


class TestCanonicalPin:
    def test_pinned_equal_to_legacy_on_full_ml2_space(self):
        # the acceptance pin: every raw spec of the max-labels-2 space
        # canonicalizes identically under both implementations, and the
        # collision-counted legacy orbits equal the orbit-stabilizer ones
        legacy_orbit = {}
        raw = 0
        for spec in iter_raw_specs(2, 2):
            raw += 1
            legacy = legacy_canonical_encoding(spec)
            assert canonical_encoding(spec) == legacy
            legacy_orbit[legacy] = legacy_orbit.get(legacy, 0) + 1
        assert raw == 1040
        assert len(legacy_orbit) == 298

        streamed = dict(iter_space(max_labels=2, delta=2))
        assert streamed == legacy_orbit

    def test_transform_and_swap_invariance_fuzz(self):
        rng = random.Random(20240807)
        for n_in, n_out, delta in SIGNATURES:
            inputs = list(itertools.permutations(range(n_in)))
            outputs = list(itertools.permutations(range(n_out)))
            for _ in range(40):
                spec = random_spec(rng, n_in, n_out, delta)
                enc = canonical_encoding(spec)
                assert enc == legacy_canonical_encoding(spec)
                image = transformed(spec, rng.choice(inputs),
                                    rng.choice(outputs),
                                    rng.random() < 0.5)
                assert canonical_encoding(image) == enc

    def test_idempotent(self):
        rng = random.Random(11)
        for n_in, n_out, delta in SIGNATURES:
            for _ in range(20):
                enc = canonical_encoding(
                    random_spec(rng, n_in, n_out, delta))
                rebuilt = ProblemSpec(enc[0], enc[1], enc[2],
                                      frozenset(enc[3]), frozenset(enc[4]))
                assert canonical_encoding(rebuilt) == enc

    def test_canonical_form_is_orbit_minimum(self):
        # the canonical encoding is <= the encoding of every orbit member
        rng = random.Random(5)
        spec = random_spec(rng, 1, 3, 2)
        enc = canonical_encoding(spec)
        for pi_out in itertools.permutations(range(3)):
            for swap in (False, True):
                assert enc <= transformed(spec, (0,), pi_out, swap).encode()


class TestOrbitStabilizer:
    def explicit_orbit(self, spec):
        members = set()
        for pi_in in itertools.permutations(range(spec.n_in)):
            for pi_out in itertools.permutations(range(spec.n_out)):
                for swap in (False, True):
                    members.add(
                        transformed(spec, pi_in, pi_out, swap).encode())
        return members

    def test_orbit_size_matches_materialized_orbit(self):
        rng = random.Random(13)
        for n_in, n_out, delta in SIGNATURES:
            ctx = get_context(n_in, n_out, delta)
            for _ in range(15):
                spec = random_spec(rng, n_in, n_out, delta)
                wmask, bmask = ctx.spec_masks(spec)
                assert orbit_size(ctx, wmask, bmask) == \
                    len(self.explicit_orbit(spec))

    def test_stuck_cell_path_matches_direct_scan(self):
        # force_refinement pins the stuck-cell search against the direct
        # full-group scan (the signatures are small enough that the
        # default path IS the direct scan)
        rng = random.Random(17)
        for n_in, n_out, delta in SIGNATURES:
            ctx = get_context(n_in, n_out, delta)
            specs = [ctx.spec_masks(random_spec(rng, n_in, n_out, delta))
                     for _ in range(15)]
            # degenerate fixpoints: empty, full, and symmetric w == b
            full = (1 << ctx.m) - 1
            specs += [(0, 0), (full, full), (full, 0), (3, 3)]
            for wmask, bmask in specs:
                assert stabilizer_order(ctx, wmask, bmask) == \
                    stabilizer_order(ctx, wmask, bmask,
                                     force_refinement=True), (wmask, bmask)

    def test_group_fixed_points_have_unit_orbit(self):
        ctx = get_context(1, 3, 2)
        full = (1 << ctx.m) - 1
        for wmask, bmask in [(0, 0), (full, full)]:
            for force in (False, True):
                assert stabilizer_order(ctx, wmask, bmask,
                                        force_refinement=force) == \
                    ctx.group_order
                assert orbit_size(ctx, wmask, bmask,
                                  force_refinement=force) == 1

    def test_stuck_cell_group(self):
        classes = (0, 1, 0, 2, 1)  # cells {0,2}, {1,4}, {3}
        perms = list(stuck_cell_perms(classes))
        assert len(perms) == stuck_cell_order(classes) == 4
        assert len(set(perms)) == 4
        for pi in perms:
            assert sorted(pi) == [0, 1, 2, 3, 4]
            for src, dst in enumerate(pi):
                assert classes[src] == classes[dst]


class TestStreaming:
    def test_iter_space_matches_materializing_wrapper(self):
        encodings, orbit, raw = enumerate_space(max_labels=2, delta=2)
        streamed = list(iter_space(max_labels=2, delta=2))
        assert [enc for enc, _ in streamed] == encodings
        assert dict(streamed) == orbit
        assert raw == 1040 and len(encodings) == 298

    def test_stream_is_sorted_and_duplicate_free(self):
        encodings = [enc for enc, _ in iter_space(max_labels=2, delta=2)]
        assert encodings == sorted(encodings)
        assert len(encodings) == len(set(encodings))

    def test_orbit_sizes_partition_the_raw_space(self):
        assert sum(size for _, size in
                   iter_space(max_labels=2, delta=2)) == 1040

    def test_tick_reports_raw_progress(self):
        ticks = []
        count = sum(1 for _ in iter_space(max_labels=2, delta=2,
                                          tick=ticks.append,
                                          tick_every=128))
        assert count == 298
        assert ticks == sorted(ticks) and ticks[-1] == 1040
        assert all(t % 128 == 0 for t in ticks[:-1])

    def test_early_close_is_clean(self):
        # _decide_space truncation path: closing the generator mid-walk
        # must not leak or raise
        stream = iter_space(max_labels=2, delta=2)
        taken = [next(stream) for _ in range(10)]
        stream.close()
        assert [e for e, _ in taken] == \
            [e for e, _ in iter_space(max_labels=2, delta=2)][:10]


class TestMemoization:
    def test_enumerate_multisets_returns_cached_tuple(self):
        assert enumerate_multisets(1, 2, 2) is enumerate_multisets(1, 2, 2)
        assert isinstance(enumerate_multisets(1, 2, 2), tuple)

    def test_context_cached_per_signature(self):
        assert get_context(1, 2, 2) is get_context(1, 2, 2)
        assert get_context(1, 2, 2) is not get_context(2, 2, 2)
