"""Tests for the baselines and the experiment-index CLI."""

import random

from repro.algorithms import WaitForWholeGraph, run_naive_weighted25, run_apoly
from repro.algorithms.symmetry_breaking import three_color_path
from repro.constructions import build_weighted_construction
from repro.constructions.lowerbound import paper_lengths
from repro.experiments import EXPERIMENTS, main as experiments_main
from repro.lcl import Weighted25
from repro.local import LocalSimulator, path_graph, random_ids


class TestWaitForWholeGraph:
    def test_canonical_solution_and_times(self):
        def solve(graph, ids):
            colors, _ = three_color_path(
                [ids[v] for v in range(graph.n)], max(6, graph.n**3)
            )
            return colors

        g = path_graph(12)
        ids = random_ids(12, rng=random.Random(0))
        trace = LocalSimulator().run(g, WaitForWholeGraph(solve), ids)
        # proper coloring, and every node waits ~its eccentricity
        assert all(
            trace.outputs[i] != trace.outputs[i + 1] for i in range(11)
        )
        assert trace.worst_case() >= 11
        assert trace.node_averaged() >= 11 / 2


class TestNaiveStrawman:
    def test_valid_but_slower(self):
        delta, d, k = 5, 2, 2
        lengths = paper_lengths(500, [0.4])
        wi = build_weighted_construction(lengths, delta, 400)
        ids = random_ids(wi.n, rng=random.Random(1))
        prob = Weighted25(delta, d, k)
        naive = run_naive_weighted25(wi.graph, ids, delta, d, k)
        assert prob.verify(wi.graph, naive.outputs).valid
        smart = run_apoly(wi.graph, ids, delta, d, k)
        assert naive.node_averaged() > smart.node_averaged()

    def test_weight_only_component_declines(self):
        from repro.lcl import WEIGHT, decline

        g = path_graph(5).with_inputs([WEIGHT] * 5)
        tr = run_naive_weighted25(g, random_ids(5), 5, 2, 2)
        assert all(o == decline() for o in tr.outputs)


class TestExperimentsCli:
    def test_index_complete(self):
        assert len(EXPERIMENTS) == 18
        assert all(k.startswith("e") for k in EXPERIMENTS)

    def test_list_mode(self, capsys):
        assert experiments_main(["prog"]) == 0
        out = capsys.readouterr().out
        assert "e04" in out and "Theorem" in out

    def test_unknown_experiment(self, capsys):
        assert experiments_main(["prog", "e99"]) == 1

    def test_show_recorded_table(self, capsys, tmp_path, monkeypatch):
        import repro.experiments as exp

        (tmp_path / "e04.txt").write_text("E4 table here\n")
        monkeypatch.setattr(exp, "results_dir", lambda: str(tmp_path))
        assert exp.main(["prog", "e04"]) == 0
        assert "E4 table here" in capsys.readouterr().out

    def test_results_dir_prefers_checkout_layout(self):
        import repro.experiments as exp

        # in this repo checkout the module-relative location exists
        assert exp.results_dir() == exp._results_candidates()[0]

    def test_results_dir_falls_back_to_cwd(self, tmp_path, monkeypatch):
        # regression: an installed package resolved three dirnames into
        # site-packages; when that location is missing the cwd's
        # benchmarks/results must win
        import repro.experiments as exp

        (tmp_path / "benchmarks" / "results").mkdir(parents=True)
        monkeypatch.setattr(
            exp, "__file__",
            str(tmp_path / "site-packages" / "repro" / "experiments.py"),
        )
        monkeypatch.chdir(tmp_path)
        assert exp.results_dir() == str(tmp_path / "benchmarks" / "results")

    def test_missing_results_dir_explains_locations(self, capsys, tmp_path,
                                                    monkeypatch):
        import repro.experiments as exp

        monkeypatch.setattr(
            exp, "__file__",
            str(tmp_path / "site-packages" / "repro" / "experiments.py"),
        )
        monkeypatch.chdir(tmp_path)
        assert exp.main(["prog", "e04"]) == 1
        out = capsys.readouterr().out
        assert "no benchmarks/results directory found" in out
        assert str(tmp_path) in out
