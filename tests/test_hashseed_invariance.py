"""PYTHONHASHSEED invariance of the CLI payloads.

The repo's determinism contract says every published byte is a function
of declared seeds — which specifically excludes the interpreter's hash
salt.  String-keyed ``set``/``dict`` iteration order *does* change with
``PYTHONHASHSEED``, so any place where that order leaks into results
(the DET004 lint rule's target) shows up here as a byte diff.  These
tests run the two worker-facing CLIs — a sweep slice and a census slice
— in fresh subprocesses under two different hash seeds and require
byte-identical stdout.
"""

import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run(args, hashseed: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env["PYTHONHASHSEED"] = hashseed
    return subprocess.run(
        [sys.executable, "-m", *args],
        cwd=REPO, env=env, capture_output=True, text=True,
    )


def _assert_invariant(args) -> None:
    a = _run(args, "0")
    b = _run(args, "42")
    assert a.returncode == 0, a.stdout + a.stderr
    assert b.returncode == 0, b.stdout + b.stderr
    assert a.stdout == b.stdout, (
        "stdout differs between PYTHONHASHSEED=0 and 42 — some set/dict "
        "iteration order is leaking into the payload (see lint rule DET004)"
    )
    assert a.stdout.strip(), "expected a JSON payload on stdout"


def test_sweep_payload_is_hashseed_invariant():
    _assert_invariant([
        "repro.sweep", "--family", "random_tree", "--sizes", "48",
        "--samples", "2", "--instances", "2", "--workers", "2", "--check",
    ])


def test_census_payload_is_hashseed_invariant():
    _assert_invariant([
        "repro.gap.census", "--max-labels", "2", "--delta", "2",
        "--workers", "2", "--max-problems", "12", "--no-cross-validate",
    ])
