"""Graph-family generators: validity, degree bounds, reproducibility.

Acceptance contract (ISSUE 2): every registered family yields graphs that
pass ``Graph`` validation, respect their declared degree bound, and are
reproducible from ``(name, n, seed)`` alone.
"""

import random

import pytest

from repro.families import (
    FAMILIES,
    bounded_degree_tree,
    caterpillar_tree,
    get_family,
    hypercube_graph,
    prufer_tree,
    random_regular,
    register_family,
    spider_tree,
    union_family,
)
from repro.local import Graph, cycle_graph, disjoint_union, grid_graph, path_graph

SIZES = (1, 2, 3, 9, 40, 97)
TREE_FAMILIES = (
    "path", "complete_binary_tree", "random_tree", "bounded_tree_d3",
    "caterpillar", "spider", "star",
)
FOREST_FAMILIES = ("random_forest", "fragmented_forest")


def _edge_set(g: Graph):
    return (g.n, sorted(g.edges()))


class TestRegistry:
    def test_expected_families_registered(self):
        expected = {
            "path", "cycle", "star", "grid", "complete_binary_tree",
            "random_tree", "bounded_tree_d3", "caterpillar", "spider",
            "random_forest", "fragmented_forest",
            "random_regular_d3", "hypercube",
        }
        assert expected <= set(FAMILIES)

    def test_get_family_unknown(self):
        with pytest.raises(KeyError):
            get_family("nope")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError):
            register_family(FAMILIES["path"])


class TestInstances:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_valid_and_degree_bounded(self, name):
        fam = get_family(name)
        for n in SIZES:
            for g in fam.instances(n, seed=11):
                assert g.n >= 1
                if fam.degree_bound is not None:
                    assert g.max_degree() <= fam.degree_bound, (name, n)
                # Graph() already validated handles/self-loops/duplicates;
                # re-round-trip the edge list to prove it stays valid
                Graph(g.n, list(g.edges()), g.inputs())

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_reproducible_from_name_n_seed(self, name):
        fam = get_family(name)
        a = [_edge_set(g) for g in fam.instances(40, seed=5)]
        b = [_edge_set(g) for g in fam.instances(40, seed=5)]
        assert a == b
        # instance(index) addresses the same draw without the prefix
        assert _edge_set(fam.instance(40, 5, len(a) - 1)) == a[-1]

    @pytest.mark.parametrize("name", ("random_tree", "bounded_tree_d3",
                                      "caterpillar", "spider"))
    def test_seeds_and_indices_vary(self, name):
        fam = get_family(name)
        draws = {
            tuple(sorted(fam.instance(60, seed, index).edges()))
            for seed in (0, 1)
            for index in (0, 1)
        }
        assert len(draws) >= 3  # genuinely random, not degenerate

    @pytest.mark.parametrize("name", TREE_FAMILIES)
    def test_tree_families_yield_trees(self, name):
        for g in get_family(name).instances(50, seed=2):
            assert g.is_tree(), name

    @pytest.mark.parametrize("name", FOREST_FAMILIES)
    def test_union_families_yield_forests(self, name):
        for g in get_family(name).instances(60, seed=2):
            assert g.is_forest(), name
            assert len(g.connected_components()) >= 2

    def test_fragmented_forest_has_single_node_components(self):
        g = get_family("fragmented_forest").instance(60, 0)
        assert any(len(c) == 1 for c in g.connected_components())

    def test_size_rejects_zero(self):
        with pytest.raises(ValueError):
            get_family("path").instance(0, 0)


class TestGenerators:
    def test_prufer_uniform_small_cases(self):
        rng = random.Random(0)
        assert prufer_tree(1, rng).n == 1
        assert list(prufer_tree(2, rng).edges()) == [(0, 1)]
        for _ in range(20):
            assert prufer_tree(12, rng).is_tree()

    def test_bounded_degree_respects_delta(self):
        rng = random.Random(3)
        for delta in (2, 3, 5):
            g = bounded_degree_tree(120, rng, delta=delta)
            assert g.is_tree()
            assert g.max_degree() <= delta
        with pytest.raises(ValueError):
            bounded_degree_tree(5, rng, delta=1)

    def test_caterpillar_and_spider_shapes(self):
        rng = random.Random(9)
        cat = caterpillar_tree(80, rng)
        assert cat.is_tree() and cat.max_degree() <= 5
        spi = spider_tree(80, rng)
        assert spi.is_tree() and spi.degree(0) <= 8

    def test_random_regular_is_regular_and_simple(self):
        rng = random.Random(5)
        for n, d in ((10, 3), (33, 4), (64, 3)):
            g = random_regular(n, rng, d=d)
            assert all(g.degree(v) == d for v in g.nodes()), (n, d)
            # Graph() rejects self-loops/duplicates at build time; round-trip
            Graph(g.n, list(g.edges()))
        with pytest.raises(ValueError):
            random_regular(10, rng, d=1)

    def test_random_regular_rounds_to_feasible_size(self):
        rng = random.Random(6)
        # n * d odd -> bumped by one; tiny n -> bumped to d + 1
        assert random_regular(9, rng, d=3).n == 10
        assert random_regular(1, rng, d=3).n == 4
        assert random_regular(7, rng, d=4).n == 7

    def test_hypercube_structure(self):
        g = hypercube_graph(4)
        assert (g.n, g.m) == (16, 32)
        assert all(g.degree(v) == 4 for v in g.nodes())
        for u, v in g.edges():
            assert bin(u ^ v).count("1") == 1
        assert hypercube_graph(0).n == 1
        with pytest.raises(ValueError):
            hypercube_graph(-1)

    def test_hypercube_family_rounds_down_to_power_of_two(self):
        fam = get_family("hypercube")
        assert fam.instance(97, 0).n == 64
        assert fam.instance(1, 0).n == 2

    def test_union_family_composition(self):
        fam = union_family(
            "test_union", [get_family("path"), get_family("cycle")]
        )
        g = fam.build(20, random.Random(0))
        assert len(g.connected_components()) == 2
        assert fam.degree_bound == 2
        with pytest.raises(ValueError):
            union_family("empty", [])


class TestGraphConstructors:
    def test_cycle_graph(self):
        g = cycle_graph(5)
        assert (g.n, g.m) == (5, 5)
        assert all(g.degree(v) == 2 for v in g.nodes())
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_grid_graph(self):
        g = grid_graph(3, 4)
        assert (g.n, g.m) == (12, 3 * 3 + 2 * 4)
        assert g.max_degree() == 4
        with pytest.raises(ValueError):
            grid_graph(0, 3)

    def test_disjoint_union_offsets_and_inputs(self):
        a = path_graph(3, inputs=["a0", "a1", "a2"])
        b = path_graph(2, inputs=["b0", "b1"])
        u = disjoint_union([a, b, Graph(1, [], inputs=["c0"])])
        assert u.n == 6 and u.m == 3
        assert sorted(u.edges()) == [(0, 1), (1, 2), (3, 4)]
        assert u.inputs() == ["a0", "a1", "a2", "b0", "b1", "c0"]
        assert [len(c) for c in u.connected_components()] == [3, 2, 1]
        with pytest.raises(ValueError):
            disjoint_union([])
