"""Tests for the adapted fast-decomposition d-free solver (Section 8.1)
and the Pi^{3.5} composition (Section 8.2)."""

import math
import random
from collections import deque

import pytest

from repro.algorithms.fast_decomposition import run_fast_dfree
from repro.algorithms.weighted25 import run_a35
from repro.algorithms.weighted35 import run_weighted35
from repro.analysis import (
    alpha_vector_logstar,
    efficiency_factor_relaxed,
)
from repro.constructions import build_weighted_construction, random_tree
from repro.constructions.lowerbound import paper_lengths
from repro.lcl import DFreeWeightProblem, Weighted35
from repro.lcl.dfree import A_INPUT, COPY, DECLINE, W_INPUT
from repro.local import Graph, path_graph, random_ids


def weight_tree(w, delta):
    edges = []
    frontier = deque([0])
    nxt, remaining = 1, w - 1
    while remaining > 0:
        p = frontier.popleft()
        for _ in range(delta - 1):
            if remaining == 0:
                break
            edges.append((p, nxt))
            frontier.append(nxt)
            nxt += 1
            remaining -= 1
    return Graph(w, edges, [A_INPUT] + [W_INPUT] * (w - 1))


class TestFastDFree:
    @pytest.mark.parametrize("delta,d", [(6, 3), (9, 4)])
    def test_valid(self, delta, d):
        for w in (10, 200, 2000):
            g = weight_tree(w, delta)
            sol = run_fast_dfree(g, d)
            assert DFreeWeightProblem(delta, d).verify(g, sol.outputs).valid

    def test_requires_d_ge_2(self):
        with pytest.raises(ValueError):
            run_fast_dfree(weight_tree(10, 6), 1)

    def test_lemma52_copy_bound(self):
        delta, d = 6, 3
        xp = math.log(delta - d + 1) / math.log(delta - 1)
        for w in (500, 4000):
            g = weight_tree(w, delta)
            sol = run_fast_dfree(g, d)
            copies = sol.outputs.count(COPY)
            assert copies <= 2 * w**xp + 2

    def test_constant_node_average(self):
        # Corollary 49 shape: averaged time flat in w, worst O(log w)
        delta, d = 6, 3
        avgs = []
        for w in (500, 5000, 20000):
            g = weight_tree(w, delta)
            sol = run_fast_dfree(g, d)
            avgs.append(sum(sol.rounds) / w)
            assert max(sol.rounds) <= 12 * math.log2(w)
        assert max(avgs) <= avgs[0] + 3  # essentially flat

    def test_copy_component_separated_by_declines(self):
        # Lemma 50: neighbours of a Copy component decline
        g = weight_tree(800, 6)
        sol = run_fast_dfree(g, 3)
        comp = set(sol.copy_component_of[0])
        for u in comp:
            for w in g.neighbors(u):
                if w not in comp:
                    assert sol.outputs[w] == DECLINE

    def test_close_a_nodes_connect(self):
        g = path_graph(4).with_inputs([A_INPUT, W_INPUT, W_INPUT, A_INPUT])
        sol = run_fast_dfree(g, 3)
        assert sol.outputs == ["Connect"] * 4
        assert all(r == 5 for r in sol.rounds)

    def test_random_instances(self):
        for seed in range(10):
            rng = random.Random(seed)
            g = random_tree(rng.randint(3, 300), 5, rng)
            inputs = [
                A_INPUT if rng.random() < 0.1 else W_INPUT for _ in range(g.n)
            ]
            sol = run_fast_dfree(g.with_inputs(inputs), 3)
            assert DFreeWeightProblem(6, 3).verify(
                g.with_inputs(inputs), sol.outputs
            ).valid


class TestWeighted35Composition:
    def _instance(self, n_target, delta, d, k):
        xp = efficiency_factor_relaxed(delta, d)
        lengths = paper_lengths(
            max(80, n_target // k), alpha_vector_logstar(xp, k), "logstar"
        )
        return build_weighted_construction(
            lengths, delta, weight_per_level=n_target // k
        )

    @pytest.mark.parametrize("delta,d,k", [(6, 3, 2), (7, 4, 2), (6, 3, 3)])
    def test_valid(self, delta, d, k):
        wi = self._instance(1500, delta, d, k)
        ids = random_ids(wi.n, rng=random.Random(delta + k))
        tr = run_weighted35(wi.graph, ids, delta, d, k)
        res = Weighted35(delta, d, k).verify(wi.graph, tr.outputs)
        assert res.valid, res.violations[:5]

    def test_theorem5_hypotheses_enforced(self):
        wi = self._instance(500, 6, 3, 2)
        with pytest.raises(ValueError):
            run_weighted35(wi.graph, random_ids(wi.n), 6, 2, 2)

    def test_fast_beats_algorithm_a_on_declines(self):
        # the Algorithm-A weight side pays Theta(log n) on every weight
        # node; the fast side pays O(1) averaged on Declines
        wi = self._instance(4000, 6, 3, 2)
        ids = random_ids(wi.n, rng=random.Random(9))
        fast = run_weighted35(wi.graph, ids, 6, 3, 2)
        base = run_a35(wi.graph, ids, 6, 3, 2)
        assert fast.node_averaged() < base.node_averaged()

    def test_averaged_flat_in_n(self):
        vals = []
        for n_target in (1000, 8000):
            wi = self._instance(n_target, 6, 3, 2)
            ids = random_ids(wi.n, rng=random.Random(11))
            tr = run_weighted35(wi.graph, ids, 6, 3, 2)
            vals.append(tr.node_averaged())
        # log*-regime: no polynomial growth
        assert vals[1] <= 2 * vals[0] + 5
