"""Landscape explorer: pick any target exponent and get a concrete LCL.

Reproduces the paper's density theorems as a usable tool:
* Theorem 1 — for a window (r1, r2) in (0, 1/2], construct
  ``Pi^{2.5}_{Delta,d,k}`` with node-averaged complexity Theta(n^c),
  r1 < c < r2;
* Theorem 6 — same in the log* regime with an epsilon-gap certificate;
* plus an empirical anchor: a :mod:`repro.sweep` family sweep measuring
  the landscape's two extremes — the Theta(n) canonical-2-coloring
  baseline (Corollary 60) and the Theta(diameter) gather-everything
  bound — as max-over-family aggregates on seeded tree families.

Run:  python examples/landscape_explorer.py 0.37 0.40
"""

import sys

from repro.analysis import (
    find_logstar_problem,
    find_poly_problem,
    landscape_regions,
)
from repro.sweep import SweepRunner


def main() -> None:
    r1 = float(sys.argv[1]) if len(sys.argv) > 2 else 0.37
    r2 = float(sys.argv[2]) if len(sys.argv) > 2 else 0.40

    print("=" * 72)
    print("The node-averaged complexity landscape (Figure 2)")
    print("=" * 72)
    for region in landscape_regions(after=True):
        marker = {"point": "*", "dense": "#", "gap": " "}[region.kind]
        print(f" [{marker}] {region.kind:5s}  {region.low:18s} .. {region.high:18s}"
              f"  ({region.source})")
    print()

    print(f"Target window: node-averaged Theta(n^c) with {r1} < c < {r2}")
    p = find_poly_problem(r1, r2)
    print(f"  -> {p.describe()}")
    print(f"     efficiency factor x = {p.x:.4f} "
          f"(weight trees: w^x of w nodes must copy)")
    print()

    print(f"Target window in the log* regime, eps = 0.03:")
    q = find_logstar_problem(max(0.51, r1), max(0.6, r2), 0.03)
    print(f"  -> {q.describe()}")
    print(f"     lower bound exponent alpha1(x)  = {q.exponent_lower:.4f}")
    print(f"     upper bound exponent alpha1(x') = {q.exponent_upper:.4f}")
    print(f"     certified gap < 0.03 (Lemma 62 scaling)")
    print()

    print("Measured anchors (family-sup over seeded tree families):")
    runner = SweepRunner(samples=2, instances=2)
    payload = runner.run(
        ["random_tree", "caterpillar"], [48, 96],
        ["two_coloring", "wait_whole_graph"], seed=0,
    )
    for cell in payload["cells"]:
        avg = cell["node_averaged"]["max"]
        worst = cell["worst_case"]["max"]
        print(f"  {cell['family']:12s} n~{cell['n']:<3d} "
              f"{cell['algorithm']:16s} avg_sup={avg:7.2f}  worst={worst}")
    print("  (two_coloring is the Theta(n) baseline of Corollary 60;")
    print("   wait_whole_graph the Theta(diameter) upper anchor —")
    print("   rerun with repro.sweep --workers N for larger families)")


if __name__ == "__main__":
    main()
