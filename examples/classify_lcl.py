"""Classify black-white LCLs with the Theorem-7 decider.

Runs the executable testing procedure (Algorithm 1) plus the
constant-good check on four problems sitting in different landscape
regions, and prints where each lands:

* O(1) node-averaged (constant-good function exists),
* the (log* n)^{Omega(1)}..O(log* n) band (good but not constant-good —
  Theorem 7's gap forbids anything in omega(1)..(log* n)^{o(1)}),
* outside the log* regime (no good function at all).

Run:  python examples/classify_lcl.py
"""

from repro.gap import decide_node_averaged_class
from repro.gap.problems import all_equal, edge_2coloring, edge_3coloring, free_labeling
from repro.lcl import BlackWhiteLCL


def maximal_matching_relaxed() -> BlackWhiteLCL:
    """Edges labeled M/U; a node may have at most one M.  (No maximality
    requirement, so the empty labeling works: an O(1) problem.)"""
    def at_most_one_m(pairs):
        return sum(1 for _, o in pairs if o == "M") <= 1

    return BlackWhiteLCL(
        "at-most-one-matched", ("-",), ("M", "U"),
        at_most_one_m, at_most_one_m,
    )


def main() -> None:
    problems = [
        free_labeling(),
        all_equal(),
        maximal_matching_relaxed(),
        edge_3coloring(),
        edge_2coloring(),
    ]
    print(f"{'problem':<22} {'class':<18} detail")
    print("-" * 100)
    for prob in problems:
        verdict = decide_node_averaged_class(prob)
        print(f"{verdict.problem:<22} {verdict.klass:<18} {verdict.detail}")


if __name__ == "__main__":
    main()
