"""Measure the node-averaged scaling of ``Pi^{2.5}_{Delta,d,k}``.

Builds the paper's weighted lower-bound construction (Definition 25) at
increasing sizes, runs A_poly (Theorem 2), verifies every output with the
Definition-22 checker, and fits the measured node-averaged complexity
against the predicted ``Theta(n^{alpha_1})``.

Run:  python examples/weighted_scaling.py
"""

import random

from repro.algorithms import run_apoly
from repro.analysis import (
    alpha1_poly,
    alpha_vector_poly,
    efficiency_factor,
    fit_power_law,
    geometric_range,
)
from repro.constructions import build_weighted_construction
from repro.constructions.lowerbound import paper_lengths
from repro.lcl import Weighted25
from repro.local import random_ids


def main() -> None:
    delta, d, k = 5, 2, 2
    x = efficiency_factor(delta, d)
    a1 = alpha1_poly(x, k)
    print(f"Pi^2.5_(D={delta}, d={d}, k={k}):  x = {x:.3f},  "
          f"predicted exponent alpha1 = {a1:.3f}")
    print(f"{'n':>8} {'avg rounds':>12} {'worst':>8} {'n^a1':>8}")

    ns, avgs = [], []
    rng = random.Random(7)
    for n_target in geometric_range(2_000, 60_000, 5):
        lengths = paper_lengths(n_target // k, alpha_vector_poly(x, k))
        wi = build_weighted_construction(lengths, delta, n_target // k)
        ids = random_ids(wi.n, rng=rng)
        trace = run_apoly(wi.graph, ids, delta, d, k)
        Weighted25(delta, d, k).verify(wi.graph, trace.outputs).raise_if_invalid()
        ns.append(wi.n)
        avgs.append(trace.node_averaged())
        print(f"{wi.n:>8} {trace.node_averaged():>12.2f} "
              f"{trace.worst_case():>8} {wi.n**a1:>8.1f}")

    alpha_hat, _ = fit_power_law(ns, avgs)
    print(f"\nfitted exponent = {alpha_hat:.3f}  vs predicted {a1:.3f}")
    print("(the additive O(log n) of Algorithm A inflates small sizes;")
    print(" the fit tightens as n grows — see benchmarks/bench_e04 for the")
    print(" full sweep recorded in EXPERIMENTS.md)")


if __name__ == "__main__":
    main()
