"""Quickstart: run LOCAL algorithms and measure node-averaged complexity.

Shows the three layers of the library:
1. the LOCAL simulators (view-based and message-passing),
2. an LCL problem + its verifier,
3. the node-averaged vs worst-case complexity measures.

Run:  python examples/quickstart.py
"""

import random

from repro.algorithms import (
    CanonicalTwoColoring,
    ColeVishkin3Coloring,
    default_gammas_35,
    run_generic_fast_forward,
)
from repro.lcl import Coloring35
from repro.local import LocalSimulator, path_graph, random_ids
from repro.constructions import build_lower_bound_graph


def main() -> None:
    rng = random.Random(0)

    # --- 1. 3-coloring a path: node-averaged ~ log* n ------------------
    # LocalSimulator runs both formulations; message algorithms like
    # Cole-Vishkin advance through one shared execution on the default
    # incremental engine (engine="reference" is the cross-check oracle).
    g = path_graph(2000)
    ids = random_ids(g.n, rng=rng)
    trace = LocalSimulator().run(g, ColeVishkin3Coloring(), ids)
    print(f"Cole-Vishkin 3-coloring of a {g.n}-node path:")
    print(f"  node-averaged = {trace.node_averaged():.1f} rounds,"
          f" worst-case = {trace.worst_case()} rounds")
    assert all(trace.outputs[i] != trace.outputs[i + 1] for i in range(g.n - 1))

    # --- 2. 2-coloring the same path: Theta(n) both ways ---------------
    g2 = path_graph(300)
    trace2 = LocalSimulator().run(g2, CanonicalTwoColoring(), random_ids(g2.n, rng=rng))
    print(f"Canonical 2-coloring of a {g2.n}-node path:")
    print(f"  node-averaged = {trace2.node_averaged():.1f} rounds,"
          f" worst-case = {trace2.worst_case()} rounds  (linear, Cor. 60)")

    # --- 2b. sweeping ID assignments on one topology -------------------
    samples = [random_ids(g2.n, rng=rng) for _ in range(5)]
    batch = LocalSimulator().run_batch(g2, CanonicalTwoColoring(), samples)
    avg = sum(t.node_averaged() for t in batch) / len(batch)
    print(f"  run_batch over {len(batch)} ID samples: mean node-averaged = {avg:.1f}")

    # --- 3. the paper's 3.5-coloring on its lower-bound graph ----------
    k = 2
    lb = build_lower_bound_graph([40, 100])
    ids = random_ids(lb.graph.n, rng=rng)
    gammas = default_gammas_35(lb.graph.n, k)
    trace3 = run_generic_fast_forward(lb.graph, ids, k, gammas, "3.5")
    result = Coloring35(k).verify(lb.graph, trace3.outputs)
    print(f"{k}-hierarchical 3.5-coloring on the Def.18 graph "
          f"(n={lb.graph.n}, gammas={gammas}):")
    print(f"  node-averaged = {trace3.node_averaged():.1f}, "
          f"worst-case = {trace3.worst_case()}, valid = {result.valid}")


if __name__ == "__main__":
    main()
