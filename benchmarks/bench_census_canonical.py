"""Census combinatorial core — streaming orderly enumeration +
partition-refinement canonicalization vs. the legacy brute force.

The legacy pipeline canonicalized every raw ``(white, black)`` spec by
scanning all ``n_in!·n_out!·2`` symmetry transforms and deduplicated by
collision counting over a materialized space.  The replacement
(:mod:`repro.gap.canonical`) walks the space in canonical order,
rejects non-canonical specs with an early-abort mask-table scan, and
computes orbit sizes via orbit--stabilizer.  Gates:

* **>= 10x end to end** on the max-labels-2 / delta=2 space (1040 raw
  specs), with encodings and orbit sizes identical to the legacy scan —
  the differential pin;
* **streamed, not materialized**: the traced high-water of consuming
  the max-labels-3 / delta=2 stream (a 253x larger raw space) stays a
  small fraction of materializing that space's canonical forms alone;
* **stuck-cell stabilizer >= 3x** over the full-group stabilizer scan
  at a 6-output-label alphabet (720 permutations), with identical
  stabilizer orders;
* the **full max-labels-3 / delta=2 atlas** (enumerate -> decide ->
  atlas payload) completes inside the CI smoke budget.

Results land in ``benchmarks/results/census_canonical.{txt,json}`` —
the JSON row is the machine-readable perf trajectory artifact.
"""

import itertools
import random
import tracemalloc

from harness import record_table, timed

from repro.gap import canonical
from repro.gap.census import run_atlas

MIN_PIPELINE_SPEEDUP = 10.0
MIN_STABILIZER_SPEEDUP = 3.0
#: the streamed high-water must stay below this fraction of the
#: materialized canonical list's high-water
MAX_STREAM_FRACTION = 0.05
#: CI smoke budget for the full ml3/d2 atlas (usually ~5 s)
MAX_ATLAS_SECONDS = 240.0
BEST_OF = 3


def legacy_scan(max_labels: int, delta: int):
    """The retired pipeline: materialize every raw spec, canonicalize
    each with the brute-force oracle, dedup by collision counting."""
    orbit = {}
    raw = 0
    for n_out in range(1, max_labels + 1):
        multisets = canonical.enumerate_multisets(1, n_out, delta)
        subsets = [
            frozenset(c)
            for size in range(len(multisets) + 1)
            for c in itertools.combinations(multisets, size)
        ]
        for white in subsets:
            for black in subsets:
                raw += 1
                enc = canonical.legacy_canonical_encoding(
                    canonical.ProblemSpec(1, n_out, delta, white, black)
                )
                orbit[enc] = orbit.get(enc, 0) + 1
    return sorted(orbit), orbit, raw


def streaming_scan(max_labels: int, delta: int):
    encodings = []
    orbit = {}
    for enc, size in canonical.iter_space(max_labels, delta):
        encodings.append(enc)
        orbit[enc] = size
    return encodings, orbit


def brute_stabilizer(ctx, wmask: int, bmask: int) -> int:
    """Full-group stabilizer scan (the orbit--stabilizer baseline the
    stuck-cell search replaces at large alphabets)."""
    stab = 0
    for idx in range(len(ctx.perms)):
        tw, tb = ctx.apply(idx, wmask), ctx.apply(idx, bmask)
        if tw == wmask and tb == bmask:
            stab += 1
        if tw == bmask and tb == wmask:
            stab += 1
    return stab


def best_of(fn, *args):
    best = None
    result = None
    for _ in range(BEST_OF):
        result, wall, _ = timed(fn, *args)
        best = wall if best is None else min(best, wall)
    return result, best


def test_census_canonical_speedup():
    # -- end-to-end pipeline gate on the ml2/d2 space ------------------
    (legacy_encs, legacy_orbit, raw), wall_legacy = best_of(
        legacy_scan, 2, 2)
    (new_encs, new_orbit), wall_new = best_of(streaming_scan, 2, 2)
    speedup = wall_legacy / max(wall_new, 1e-9)

    assert raw == 1040 and len(legacy_encs) == 298
    assert new_encs == legacy_encs, "canonical encodings diverge"
    assert new_orbit == legacy_orbit, "orbit sizes diverge"

    # -- streamed vs materialized memory at ml3/d2 ---------------------
    sum(1 for _ in canonical.iter_space(3, 2))  # warm context caches
    tracemalloc.start()
    stream_count = sum(1 for _ in canonical.iter_space(3, 2))
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    tracemalloc.start()
    materialized = list(canonical.iter_space(3, 2))
    _, full_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert stream_count == len(materialized) == 23350
    del materialized

    # -- stuck-cell stabilizer vs full-group scan at 6 labels ----------
    ctx = canonical.get_context(1, 6, 2)
    multisets = canonical.enumerate_multisets(1, 6, 2)
    rng = random.Random(7)
    specs = []
    for _ in range(20):
        white = frozenset(rng.sample(multisets,
                                     rng.randrange(len(multisets) + 1)))
        black = frozenset(rng.sample(multisets,
                                     rng.randrange(len(multisets) + 1)))
        specs.append(ctx.spec_masks(
            canonical.ProblemSpec(1, 6, 2, white, black)))
    brute, wall_brute, _ = timed(
        lambda: [brute_stabilizer(ctx, w, b) for w, b in specs])
    stuck, wall_stuck, _ = timed(
        lambda: [
            canonical.stabilizer_order(ctx, w, b, force_refinement=True)
            for w, b in specs
        ])
    assert brute == stuck, "stuck-cell stabilizer diverges from full scan"
    stab_speedup = wall_brute / max(wall_stuck, 1e-9)

    # -- the deliverable: full ml3/d2 atlas inside the smoke budget ----
    atlas, wall_atlas, _ = timed(
        run_atlas, max_labels=3, delta=2, workers=2)
    assert atlas["atlas"]["canonical_problems"] == 23350
    assert atlas["atlas"]["truncated"] is False
    assert atlas["landmarks"]["edge_3coloring"]["verdict"] == (
        "logstar-regime")
    region_raw = sum(r["raw_problems"] for r in atlas["regions"].values())
    assert region_raw == atlas["atlas"]["raw_problems"] == 263184

    record_table(
        "census_canonical",
        "Census canonical core: orderly enumeration + partition "
        "refinement vs legacy brute force",
        ["stage", "legacy", "new", "speedup"],
        [
            ("ml2/d2 enumerate+orbits (s)", f"{wall_legacy:.4f}",
             f"{wall_new:.4f}", f"{speedup:.1f}x"),
            ("stabilizer @6 labels, 20 specs (s)", f"{wall_brute:.4f}",
             f"{wall_stuck:.4f}", f"{stab_speedup:.1f}x"),
            ("ml3/d2 stream peak (KiB)", f"{full_peak / 1024:.0f}",
             f"{stream_peak / 1024:.0f}",
             f"{full_peak / max(stream_peak, 1):.0f}x"),
            ("ml3/d2 full atlas (s)", "-", f"{wall_atlas:.2f}", "-"),
        ],
        notes=[
            "legacy = brute-force transform scan over a materialized "
            "space with collision-counted orbits",
            "encodings + orbit sizes asserted identical on the whole "
            "ml2/d2 space (1040 raw -> 298 canonical)",
            f"gates: pipeline >= {MIN_PIPELINE_SPEEDUP}x, stuck-cell "
            f"stabilizer >= {MIN_STABILIZER_SPEEDUP}x, stream peak <= "
            f"{MAX_STREAM_FRACTION:.0%} of materialized, atlas <= "
            f"{MAX_ATLAS_SECONDS:.0f}s",
            "ml3/d2: 263184 raw -> 23350 canonical; atlas decided at "
            "workers=2 (payload worker-count invariant)",
        ],
    )

    assert speedup >= MIN_PIPELINE_SPEEDUP, (
        f"canonical pipeline only {speedup:.1f}x over the brute-force "
        f"orbit scan (gate: {MIN_PIPELINE_SPEEDUP}x)"
    )
    assert stab_speedup >= MIN_STABILIZER_SPEEDUP, (
        f"stuck-cell stabilizer only {stab_speedup:.1f}x over the "
        f"full-group scan (gate: {MIN_STABILIZER_SPEEDUP}x)"
    )
    assert stream_peak <= full_peak * MAX_STREAM_FRACTION, (
        f"streaming high-water {stream_peak} B is not flat vs the "
        f"materialized {full_peak} B"
    )
    assert wall_atlas <= MAX_ATLAS_SECONDS, (
        f"full ml3/d2 atlas took {wall_atlas:.1f}s "
        f"(budget: {MAX_ATLAS_SECONDS:.0f}s)"
    )
