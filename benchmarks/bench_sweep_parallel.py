"""Sweep parallelism — ``SweepRunner`` at 4 workers vs. serial.

Micro-benchmark for the :mod:`repro.sweep` fan-out: a 512-instance
``bounded_tree_d3`` family sweep (canonical 2-coloring, one ID sample per
instance) run with ``workers=1`` and ``workers=4``.  Two gates:

* the JSON aggregates must be **byte-identical** across worker counts —
  parallelism is never allowed to change results (asserted always);
* at 4 workers the sweep must be at least 2x faster wall-clock — asserted
  only when the machine actually exposes >= 4 usable cores (CI runners
  do; a 1-core container cannot speed anything up by forking).
"""

import os

from harness import record_table, timed

from repro.sweep import SweepRunner

FAMILY = "bounded_tree_d3"
N = 64
INSTANCES = 512
ALGORITHM = "two_coloring"
SEED = 0
MIN_SPEEDUP = 2.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_sweep(workers: int) -> str:
    runner = SweepRunner(workers=workers, samples=1, instances=INSTANCES)
    return runner.run_json([FAMILY], [N], [ALGORITHM], seed=SEED)


def test_sweep_parallel_speedup():
    cores = _usable_cores()
    json_serial, wall_serial, _ = timed(run_sweep, 1)
    json_parallel, wall_parallel, peak_mib = timed(run_sweep, 4)
    speedup = wall_serial / wall_parallel

    record_table(
        "sweep_parallel",
        f"Sweep fan-out: {INSTANCES} x {FAMILY}(n={N}), {ALGORITHM}",
        ["workers", "instances", "wall_s", "speedup"],
        [
            (1, INSTANCES, f"{wall_serial:.3f}", "1.0"),
            (4, INSTANCES, f"{wall_parallel:.3f}", f"{speedup:.2f}"),
        ],
        notes=[
            f"usable cores: {cores}; byte-identical aggregates: "
            f"{json_serial == json_parallel}; "
            f"peak RSS {peak_mib:.0f} MiB (parent+workers)",
            f"speedup gate (>= {MIN_SPEEDUP}x) "
            + ("enforced" if cores >= 4 else "skipped: fewer than 4 cores"),
        ],
    )

    assert json_serial == json_parallel, (
        "parallel sweep changed the aggregates — determinism bug"
    )
    if cores >= 4:
        assert speedup >= MIN_SPEEDUP, (
            f"4-worker sweep only {speedup:.2f}x faster; need >= {MIN_SPEEDUP}x"
        )
