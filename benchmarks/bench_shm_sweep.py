"""Shared-memory sweep fan-out — zero-copy CSR attach vs. worker rebuild.

Micro-benchmark for the :mod:`repro.shm` substrate: one ``random_tree``
instance at n = 150_000, eight ID samples, ``rake_layering`` through the
batched engine, run at 4 workers with the shared-memory pool on and off.

Without the pool the sweep has a single (instance, algorithm) task — the
eight samples are serialized behind one worker, because splitting them
would force every worker to rebuild the 150k-node instance.  With the
pool the parent builds the instance once, publishes its CSR arrays to
``multiprocessing.shared_memory``, and the sample range is chunked across
workers that attach zero-copy views in milliseconds.  That is the
substrate's point, so the gate asserts the shared run is at least 2x
faster wall-clock (enforced only when >= 4 usable cores are exposed).

Determinism gates are asserted unconditionally: the JSON payload must be
byte-identical shared vs. rebuilt and at 1 vs. 4 workers — sharing is an
optimisation, never a semantic switch.
"""

import os

from harness import peak_rss_mib, record_table, timed

from repro.sweep import SweepRunner

FAMILY = "random_tree"
N = 150_000
SAMPLES = 8
ALGORITHM = "rake_layering"
SEED = 0
MIN_SPEEDUP = 2.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_sweep(workers: int, shared) -> str:
    runner = SweepRunner(
        workers=workers, samples=SAMPLES, instances=1, shared=shared
    )
    return runner.run_json([FAMILY], [N], [ALGORITHM], seed=SEED)


def test_shm_sweep_fanout():
    cores = _usable_cores()
    json_serial, _, _ = timed(run_sweep, 1, None)
    json_rebuild, wall_rebuild, _ = timed(run_sweep, 4, False)
    json_shm, wall_shm, _ = timed(run_sweep, 4, True)
    speedup = wall_rebuild / wall_shm

    record_table(
        "shm_sweep",
        f"Shared-memory sweep fan-out: {FAMILY}(n={N}), "
        f"{SAMPLES} samples, {ALGORITHM}",
        ["workers", "substrate", "wall_s", "speedup"],
        [
            (4, "rebuild", f"{wall_rebuild:.3f}", "1.0"),
            (4, "shm", f"{wall_shm:.3f}", f"{speedup:.2f}"),
        ],
        notes=[
            f"usable cores: {cores}; byte-identical payloads "
            f"(serial == rebuild == shm): "
            f"{json_serial == json_rebuild == json_shm}; "
            f"peak RSS {peak_rss_mib():.0f} MiB (parent+workers)",
            f"speedup gate (>= {MIN_SPEEDUP}x) "
            + ("enforced" if cores >= 4 else "skipped: fewer than 4 cores"),
        ],
    )

    assert json_serial == json_rebuild, (
        "rebuild-path sweep changed the aggregates — determinism bug"
    )
    assert json_serial == json_shm, (
        "shared-memory sweep changed the aggregates — determinism bug"
    )
    if cores >= 4:
        assert speedup >= MIN_SPEEDUP, (
            f"shm sweep only {speedup:.2f}x faster than rebuild; "
            f"need >= {MIN_SPEEDUP}x"
        )
