"""E11 — Theorem 7: the omega(1)..(log* n)^{o(1)} gap is real and
O(1)-membership is decidable.

Runs the executable testing procedure + constant-good decision on
black-white LCLs from three landscape regions and cross-checks the
verdicts against measured node-averaged complexities of the
corresponding path problems (3-coloring ~ log*, 2-coloring ~ n)."""

import random

from harness import record_table

from repro.algorithms import three_color_path, two_coloring_fast_forward
from repro.gap import decide_node_averaged_class
from repro.gap.problems import all_equal, edge_2coloring, edge_3coloring, free_labeling
from repro.local import path_graph, random_ids


def decide_all():
    return [
        decide_node_averaged_class(p())
        for p in (free_labeling, all_equal, edge_3coloring, edge_2coloring)
    ]


def test_e11_thm7(benchmark):
    verdicts = benchmark(decide_all)
    rows = [(v.problem, v.klass) for v in verdicts]

    # measured anchors for the two nontrivial regions
    rng = random.Random(0)
    n = 30_000
    ids = random_ids(n, rng=rng)
    _, t3 = three_color_path(ids, n**3)
    g = path_graph(n)
    _, rounds2 = two_coloring_fast_forward(g, ids)
    avg2 = sum(rounds2) / n
    rows.append(("3-coloring on P_n (measured)", f"avg {t3} rounds ~ log*"))
    rows.append(("2-coloring on P_n (measured)", f"avg {avg2:.0f} rounds ~ n"))
    record_table(
        "e11", "E11: Theorem 7 — decider verdicts + measured anchors",
        ["problem", "verdict"], rows,
    )
    assert [v.klass for v in verdicts] == [
        "O(1)", "O(1)", "logstar-regime", "no-good-function",
    ]
    assert t3 < 40 and avg2 > n / 4
