"""E1 — Figures 1 and 2: the node-averaged complexity landscape.

Regenerates both landscape tables (before/after this paper) and, for the
dense regions, a sample of concrete problems realizing target exponents
(the red bars of Figure 2)."""

from harness import record_table

from repro.analysis import find_logstar_problem, find_poly_problem, landscape_regions


def build_tables():
    before = [(r.kind, r.low, r.high, r.source) for r in landscape_regions(False)]
    after = [(r.kind, r.low, r.high, r.source) for r in landscape_regions(True)]
    density = []
    for r1, r2 in [(0.05, 0.07), (0.2, 0.22), (0.3, 0.33), (0.45, 0.5)]:
        p = find_poly_problem(r1, r2)
        density.append(
            ("poly", f"({r1},{r2})", f"D={p.delta},d={p.d},k={p.k}",
             f"{p.exponent_lower:.4f}")
        )
    for r1, r2 in [(0.3, 0.5), (0.55, 0.7), (0.8, 0.95)]:
        q = find_logstar_problem(r1, r2, 0.05)
        density.append(
            ("log*", f"({r1},{r2})",
             f"D={q.delta},d={q.d},k={q.k}",
             f"[{q.exponent_lower:.4f},{q.exponent_upper:.4f}]")
        )
    return before, after, density


def test_e01_landscape(benchmark):
    before, after, density = benchmark(build_tables)
    record_table("e01_before", "E1a: landscape before (Figure 1)",
                 ["kind", "low", "high", "source"], before)
    record_table("e01_after", "E1b: landscape after (Figure 2)",
                 ["kind", "low", "high", "source"], after)
    record_table("e01_density", "E1c: density witnesses (red bars)",
                 ["regime", "window", "params", "exponent"], density)
    assert len(after) > len(before)
    assert sum(1 for k, *_ in after if k == "gap") == 3
    # every witness exponent falls inside its window
    for regime, window, params, expo in density:
        lo, hi = eval(window)
        val = float(expo.strip("[]").split(",")[0])
        assert lo <= val <= hi + 0.05
