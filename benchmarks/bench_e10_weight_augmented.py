"""E10 — Section 10 (Lemmas 65, 68, 69): efficiency factor x = 1.

(a) the k-hierarchical labeling solver runs in O(n^{1/k}) worst case;
(b) weight-augmented 2½-coloring forces an Omega(w) copy fraction
    (Lemma 68);
(c) its node-averaged complexity is Theta(n^{1/k}) — equal to the worst
    case, closing the gap left by Pi^{2.5} (which only approaches x=1)."""

import random

from harness import record_table

from repro.algorithms import run_weight_augmented_solver, solve_hierarchical_labeling
from repro.analysis import fit_power_law, geometric_range
from repro.constructions import build_weighted_construction
from repro.constructions.lowerbound import paper_lengths
from repro.lcl import SECONDARY_DECLINE, WeightAugmented25
from repro.local import random_ids

K = 2


def run_point(n_target: int, seed: int = 7):
    lengths = paper_lengths(n_target // K, [0.5])
    wi = build_weighted_construction(lengths, 5, n_target // K)
    ids = random_ids(wi.n, rng=random.Random(seed))
    tr = run_weight_augmented_solver(wi.graph, ids, K)
    WeightAugmented25(K).verify(wi.graph, tr.outputs).raise_if_invalid()
    copying = declining = 0
    for a, tree in wi.tree_of.items():
        for w in tree:
            if tr.outputs[w][2] == SECONDARY_DECLINE:
                declining += 1
            else:
                copying += 1
    frac = copying / max(1, copying + declining)
    return wi.n, tr.node_averaged(), tr.worst_case(), frac


def test_e10_weight_augmented(benchmark):
    benchmark(run_point, 2_000)
    rows, ns, avgs = [], [], []
    for n_target in geometric_range(4_000, 120_000, 5):
        n, avg, worst, frac = run_point(n_target)
        rows.append((n, f"{avg:.1f}", worst, f"{n**(1/K):.1f}", f"{frac:.2f}"))
        ns.append(n)
        avgs.append(avg)
    fit, _ = fit_power_law(ns, avgs)
    rows.append(("fit", f"n^{fit:.3f}", "", f"pred n^{1/K:.3f}", ""))
    record_table(
        "e10", "E10: weight-augmented 2.5 — node-averaged Theta(n^(1/k)), k=2",
        ["n", "avg", "worst", "n^(1/k)", "copy frac"], rows,
    )
    # Lemma 69: exponent ~ 1/k; Lemma 68: Omega(w) copy fraction
    assert abs(fit - 1 / K) < 0.15, fit
    assert all(float(r[4]) > 0.5 for r in rows[:-1])


def test_e10_labeling_worstcase(benchmark):
    from repro.local import path_graph

    def kernel():
        g = path_graph(4000)
        sol = solve_hierarchical_labeling(g, 2)
        return max(sol.times.values())

    worst = benchmark(kernel)
    rows = []
    for n in (1_000, 10_000, 100_000):
        g = path_graph(n)
        sol = solve_hierarchical_labeling(g, 2)
        rows.append((n, max(sol.times.values()), f"{n**0.5:.0f}"))
    record_table(
        "e10_labeling", "E10b: Lemma 65 — labeling worst case is O(n^(1/k))",
        ["n", "rounds", "n^(1/2)"], rows,
    )
    for n, rounds, pred in rows:
        assert rounds <= 8 * float(pred) + 20
