"""E14 — Lemma 13: after phase i of the generic algorithm with parameter
gamma_i, at most O(n'/gamma_i) nodes remain unfinished."""

import random

from harness import record_table

from repro.algorithms import run_generic_fast_forward
from repro.constructions import build_lower_bound_graph
from repro.local import random_ids


def run_point(lengths, gammas, seed: int = 0):
    lb = build_lower_bound_graph(lengths)
    ids = random_ids(lb.graph.n, rng=random.Random(seed))
    tr = run_generic_fast_forward(lb.graph, ids, len(lengths), gammas, "2.5")
    return lb.graph.n, tr.meta["remaining_after_phase"]


def test_e14_lemma13(benchmark):
    benchmark(run_point, [20, 20], [10])
    rows = []
    ok = True
    for lengths, gammas in [
        ([30, 40], [10]),
        ([30, 40], [20]),
        ([12, 14, 16], [6, 40]),
        ([8, 10, 60], [4, 16]),
    ]:
        n, remaining = run_point(lengths, gammas)
        prev = n
        for i, g in enumerate(gammas, start=1):
            rem = remaining[i]
            bound = 8 * prev / g
            rows.append((str(lengths), str(gammas), i, prev, rem, f"{bound:.0f}"))
            ok = ok and rem <= bound
            prev = max(rem, 1)
        rows.append((str(lengths), str(gammas), len(gammas) + 1,
                     prev, remaining[len(gammas) + 1], "0 (final)"))
        ok = ok and remaining[len(gammas) + 1] == 0
    record_table(
        "e14", "E14: Lemma 13 — survivors after phase i <= O(n'/gamma_i)",
        ["lengths", "gammas", "phase", "n' before", "remaining", "bound 8n'/g"],
        rows,
    )
    assert ok
