"""E12 — Corollary 60: the omega(sqrt(n))..o(n) gap.

2-coloring on paths has worst case Theta(n), and Lemma 59's charging
forces node-averaged Theta(n) as well — measured here; contrasted with
the sqrt(n)-averaged weight-augmented problem (k=2) sitting just below
the gap."""

import random

from harness import record_table

from repro.algorithms import run_weight_augmented_solver, two_coloring_fast_forward
from repro.analysis import fit_power_law, geometric_range
from repro.constructions import build_weighted_construction
from repro.constructions.lowerbound import paper_lengths
from repro.local import path_graph, random_ids


def run_two_coloring(n: int, seed: int = 0):
    g = path_graph(n)
    ids = random_ids(n, rng=random.Random(seed))
    _, rounds = two_coloring_fast_forward(g, ids)
    return sum(rounds) / n


def test_e12_cor60(benchmark):
    benchmark(run_two_coloring, 4_000)
    rows, ns, avgs = [], [], []
    for n in geometric_range(4_000, 100_000, 4):
        avg = run_two_coloring(n)
        rows.append(("2-coloring", n, f"{avg:.0f}", f"{0.75 * n:.0f}"))
        ns.append(n)
        avgs.append(avg)
    fit, _ = fit_power_law(ns, avgs)
    rows.append(("2-coloring fit", "", f"n^{fit:.3f}", "pred n^1"))

    # the sqrt(n) anchor below the gap
    sq_ns, sq_avgs = [], []
    for n_target in (8_000, 64_000):
        lengths = paper_lengths(n_target // 2, [0.5])
        wi = build_weighted_construction(lengths, 5, n_target // 2)
        ids = random_ids(wi.n, rng=random.Random(1))
        tr = run_weight_augmented_solver(wi.graph, ids, 2)
        sq_ns.append(wi.n)
        sq_avgs.append(tr.node_averaged())
        rows.append(("weight-aug k=2", wi.n, f"{tr.node_averaged():.0f}",
                     f"{wi.n ** 0.5:.0f}"))
    record_table(
        "e12", "E12: Cor. 60 — Theta(n) above the gap vs Theta(sqrt n) below",
        ["problem", "n", "avg", "reference"], rows,
    )
    assert fit > 0.9  # linear
    sq_fit, _ = fit_power_law(sq_ns, sq_avgs)
    assert sq_fit < 0.75  # clearly below linear: the gap separates them
