"""Gap-decider memoization — the Theorem-7 census hot path.

The problem-space census (:mod:`repro.gap.census`) runs
``decide_node_averaged_class`` over every canonical problem of an
enumerated space, and each decision replays the testing procedure once
per candidate function.  The :class:`repro.gap.classes.GapCache` shares
the rake closures, ``g`` label-sets, path relations and maximal
rectangles across those replays; this benchmark gates the cache at
**>= 2x** over the uncached decider on the census smoke space
(``max_labels=2, delta=2`` — the same space the CI census smoke job
runs), and asserts the verdicts are identical either way.
"""

from harness import record_table, timed

from repro.gap import decide_node_averaged_class
from repro.gap.census import _decode, enumerate_space, spec_to_problem

MAX_LABELS = 2
DELTA = 2
ELLS = (2, 3)  # compress path-length parameters decided per problem
REPEATS = 3
MIN_SPEEDUP = 2.0


def decide_space(encodings, memoize: bool):
    """Decide every canonical problem at each ``ell``; problems are
    rebuilt per run so neither path benefits from a previous run's
    per-problem memos."""
    jobs = [
        (spec_to_problem(_decode(enc)), ell)
        for ell in ELLS for enc in encodings
    ]
    verdicts, wall, _rss = timed(_decide_jobs, jobs, memoize)
    return wall, [v.klass for v in verdicts]


def _decide_jobs(jobs, memoize: bool):
    return [
        decide_node_averaged_class(p, delta=DELTA, ell=ell, memoize=memoize)
        for p, ell in jobs
    ]


def test_gap_decider_memoization_speedup():
    encodings, _, raw = enumerate_space(max_labels=MAX_LABELS, delta=DELTA)

    best = {True: float("inf"), False: float("inf")}
    verdicts = {}
    for _ in range(REPEATS):
        for memoize in (True, False):
            wall, klasses = decide_space(encodings, memoize)
            best[memoize] = min(best[memoize], wall)
            verdicts[memoize] = klasses
    speedup = best[False] / best[True]

    record_table(
        "gap_decider",
        f"Gap decider: {len(encodings)} canonical problems "
        f"({raw} raw, max_labels={MAX_LABELS}, delta={DELTA}, "
        f"ell in {ELLS})",
        ["path", "wall_s", "speedup"],
        [
            ("unmemoized", f"{best[False]:.4f}", "1.0"),
            ("GapCache", f"{best[True]:.4f}", f"{speedup:.2f}"),
        ],
        notes=[
            f"best of {REPEATS} repeats per path; verdicts identical: "
            f"{verdicts[True] == verdicts[False]}",
            f"speedup gate: >= {MIN_SPEEDUP}x",
        ],
    )

    assert verdicts[True] == verdicts[False], (
        "memoization changed a Theorem-7 verdict"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"memoized decider only {speedup:.2f}x faster; need >= {MIN_SPEEDUP}x"
    )
