"""E6 — Theorem 1: the polynomial regime is infinitely dense.

For a ladder of shrinking windows (r1, r2) in (0, 1/2], produce concrete
``Pi^{2.5}`` parameters whose exact node-averaged exponent lands inside
the window — the constructive content of Theorem 1 / Lemma 58."""

from harness import record_table

from repro.analysis import (
    alpha1_poly,
    efficiency_factor,
    find_poly_problem,
)

WINDOWS = [
    (0.05, 0.10), (0.10, 0.15), (0.15, 0.20), (0.20, 0.25),
    (0.25, 0.30), (0.30, 0.35), (0.35, 0.40), (0.40, 0.45),
    (0.45, 0.50), (0.333, 0.334), (0.4999, 0.5),
]


def build_rows():
    rows = []
    for r1, r2 in WINDOWS:
        p = find_poly_problem(r1, r2)
        # re-derive the exponent from scratch to confirm the certificate
        c = alpha1_poly(efficiency_factor(p.delta, p.d), p.k)
        rows.append(
            (f"({r1},{r2})", p.delta, p.d, p.k, f"{p.x:.5f}", f"{c:.5f}")
        )
    return rows


def test_e06_thm1(benchmark):
    rows = benchmark(build_rows)
    record_table(
        "e06", "E6: Theorem 1 — density witnesses in the polynomial regime",
        ["window", "Delta", "d", "k", "x", "exponent c"], rows,
    )
    for window, delta, d, k, x, c in rows:
        r1, r2 = eval(window)
        assert r1 <= float(c) <= r2
        assert delta >= d + 3
