"""Batched engine speedup — batched vs. incremental execution engines.

Micro-benchmark for the third :mod:`repro.local.simulator` engine: run
Cole–Vishkin 3-coloring on ``cycle_graph(100_000)`` and
``path_graph(100_000)`` (the max-degree-2 tree) under ``engine="batched"``
(the vectorized ``decide_batch`` port sweeping flat numpy label arrays)
and ``engine="incremental"`` (the shared global message dynamics, one
Python ``message``/``transition`` call per node per round).  The engines
must produce identical ``(T_v, output)`` maps — asserted here and pinned
corpus-wide by ``tests/test_engine_equivalence.py`` — and the batched
engine must be at least 5x faster on both instances (in practice ~10x).

A second table drives the batched engine alone at ``n = 10^6`` on both
shapes — the incremental engine is infeasible there, which is the point
of the port; the rows record wall-clock and peak RSS so the million-node
footprint is pinned in ``benchmarks/results/``.
"""

import random

from harness import record_table, timed

from repro.local import LocalSimulator, cycle_graph, path_graph, random_ids
from repro.algorithms import ColeVishkin3Coloring

N = 100_000
N_LARGE = 1_000_000
MIN_SPEEDUP = 5.0

INSTANCES = [
    ("cycle", cycle_graph),
    ("path", path_graph),  # the max-degree-2 tree
]


def run_engine(engine: str, graph, ids):
    return LocalSimulator(engine=engine).run(graph, ColeVishkin3Coloring(), ids)


def test_batched_engine_speedup(benchmark):
    ids = random_ids(N, rng=random.Random(0))
    graphs = {name: make(N) for name, make in INSTANCES}

    # pytest-benchmark drives the batched engine on the first instance;
    # everything else is timed once (the incremental runs take seconds)
    first = INSTANCES[0][0]
    traces = {(first, "batched"): benchmark(run_engine, "batched", graphs[first], ids)}
    wall = {(first, "batched"): benchmark.stats.stats.mean}
    for name, _make in INSTANCES:
        if (name, "batched") not in traces:
            traces[(name, "batched")], wall[(name, "batched")], _ = timed(
                run_engine, "batched", graphs[name], ids)
        traces[(name, "incremental")], wall[(name, "incremental")], _ = timed(
            run_engine, "incremental", graphs[name], ids)

    rows, speedups = [], {}
    for name, _make in INSTANCES:
        for engine in ("batched", "incremental"):
            tr = traces[(name, engine)]
            rows.append((name, engine, N, tr.worst_case(),
                         f"{tr.node_averaged():.2f}",
                         f"{wall[(name, engine)]:.3f}"))
        speedups[name] = wall[(name, "incremental")] / wall[(name, "batched")]
    record_table(
        "batched_engine_speedup",
        f"Batched engine speedup: Cole-Vishkin 3-coloring at n={N}",
        ["instance", "engine", "n", "worst", "avg", "wall_s"],
        rows,
        notes=[f"speedup[{name}]: {s:.1f}x (incremental / batched)"
               for name, s in speedups.items()],
    )

    for name, _make in INSTANCES:
        assert traces[(name, "batched")].rounds == \
            traces[(name, "incremental")].rounds, name
        assert traces[(name, "batched")].outputs == \
            traces[(name, "incremental")].outputs, name
        assert speedups[name] >= MIN_SPEEDUP, (
            f"batched engine only {speedups[name]:.1f}x faster on {name}; "
            f"need >= {MIN_SPEEDUP}x"
        )


def test_batched_engine_million_nodes():
    """The batched engine alone at n = 10^6 — construction, execution and
    footprint of the scale the incremental engine cannot reach."""
    ids = random_ids(N_LARGE, rng=random.Random(1))
    rows = []
    for name, make in INSTANCES:
        graph, wall_build, _ = timed(make, N_LARGE)
        trace, wall_run, peak_mib = timed(
            run_engine, "batched", graph, ids)
        assert trace.n == N_LARGE
        assert trace.worst_case() <= 64  # Cole-Vishkin: O(log* n) + O(1)
        rows.append((name, N_LARGE, trace.worst_case(),
                     f"{trace.node_averaged():.2f}", f"{wall_build:.3f}",
                     f"{wall_run:.3f}", f"{peak_mib:.0f}"))
    record_table(
        "batched_engine_million",
        f"Batched engine at n={N_LARGE}: Cole-Vishkin 3-coloring",
        ["instance", "n", "worst", "avg", "build_s", "run_s", "peak_mib"],
        rows,
        notes=["incremental engine omitted: per-node ball growth is "
               "infeasible at this scale (the batched port is the point)"],
    )
