"""Batched engine speedup — batched vs. incremental execution engines.

Micro-benchmark for the third :mod:`repro.local.simulator` engine: run
Cole–Vishkin 3-coloring on ``cycle_graph(100_000)`` and
``path_graph(100_000)`` (the max-degree-2 tree) under ``engine="batched"``
(the vectorized ``decide_batch`` port sweeping flat numpy label arrays)
and ``engine="incremental"`` (the shared global message dynamics, one
Python ``message``/``transition`` call per node per round).  The engines
must produce identical ``(T_v, output)`` maps — asserted here and pinned
corpus-wide by ``tests/test_engine_equivalence.py`` — and the batched
engine must be at least 5x faster on both instances (in practice ~10x).
"""

import random

from harness import record_table, timed

from repro.local import LocalSimulator, cycle_graph, path_graph, random_ids
from repro.algorithms import ColeVishkin3Coloring

N = 100_000
MIN_SPEEDUP = 5.0

INSTANCES = [
    ("cycle", cycle_graph),
    ("path", path_graph),  # the max-degree-2 tree
]


def run_engine(engine: str, graph, ids):
    return LocalSimulator(engine=engine).run(graph, ColeVishkin3Coloring(), ids)


def test_batched_engine_speedup(benchmark):
    ids = random_ids(N, rng=random.Random(0))
    graphs = {name: make(N) for name, make in INSTANCES}

    # pytest-benchmark drives the batched engine on the first instance;
    # everything else is timed once (the incremental runs take seconds)
    first = INSTANCES[0][0]
    traces = {(first, "batched"): benchmark(run_engine, "batched", graphs[first], ids)}
    wall = {(first, "batched"): benchmark.stats.stats.mean}
    for name, _make in INSTANCES:
        if (name, "batched") not in traces:
            traces[(name, "batched")], wall[(name, "batched")] = timed(
                run_engine, "batched", graphs[name], ids)
        traces[(name, "incremental")], wall[(name, "incremental")] = timed(
            run_engine, "incremental", graphs[name], ids)

    rows, speedups = [], {}
    for name, _make in INSTANCES:
        for engine in ("batched", "incremental"):
            tr = traces[(name, engine)]
            rows.append((name, engine, N, tr.worst_case(),
                         f"{tr.node_averaged():.2f}",
                         f"{wall[(name, engine)]:.3f}"))
        speedups[name] = wall[(name, "incremental")] / wall[(name, "batched")]
    record_table(
        "batched_engine_speedup",
        f"Batched engine speedup: Cole-Vishkin 3-coloring at n={N}",
        ["instance", "engine", "n", "worst", "avg", "wall_s"],
        rows,
        notes=[f"speedup[{name}]: {s:.1f}x (incremental / batched)"
               for name, s in speedups.items()],
    )

    for name, _make in INSTANCES:
        assert traces[(name, "batched")].rounds == \
            traces[(name, "incremental")].rounds, name
        assert traces[(name, "batched")].outputs == \
            traces[(name, "incremental")].outputs, name
        assert speedups[name] >= MIN_SPEEDUP, (
            f"batched engine only {speedups[name]:.1f}x faster on {name}; "
            f"need >= {MIN_SPEEDUP}x"
        )
