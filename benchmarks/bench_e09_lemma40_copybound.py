"""E9 — Lemma 40: Algorithm A's Copy set obeys
``|U^_Copy| <= 6 |U^|^x`` on every ball it processes (the A* witness),
and the exact DP is never worse."""

import math
import random
from collections import deque

from harness import record_table

from repro.algorithms import astar_assignment, dfree_radius, optimal_copy_assignment
from repro.constructions import random_tree
from repro.lcl.dfree import A_INPUT, COPY, W_INPUT
from repro.local import Graph


def regular_weight_tree(w: int, delta: int) -> Graph:
    edges = []
    frontier = deque([0])
    nxt, remaining = 1, w - 1
    while remaining > 0:
        p = frontier.popleft()
        for _ in range(delta - 1):
            if remaining == 0:
                break
            edges.append((p, nxt))
            frontier.append(nxt)
            nxt += 1
            remaining -= 1
    return Graph(w, edges, [A_INPUT] + [W_INPUT] * (w - 1))


def measure(graph: Graph, root: int, d: int):
    L, _ = dfree_radius(graph.n, d)
    ball_map = graph.ball(root, L + 1)
    ball = set(ball_map)
    frontier = {u for u, dist in ball_map.items() if dist == L + 1}
    a = astar_assignment(graph, root, ball, frontier, d)
    o = optimal_copy_assignment(graph, root, ball, frontier, d)
    a_c = sum(1 for lab in a.values() if lab == COPY)
    o_c = sum(1 for lab in o.values() if lab == COPY)
    return len(ball), a_c, o_c


def test_e09_lemma40(benchmark):
    benchmark(measure, regular_weight_tree(2000, 5), 0, 2)
    rows = []
    ok = True
    for delta, d in [(5, 2), (6, 3), (9, 4)]:
        x = math.log(delta - 1 - d) / math.log(delta - 1)
        for w in (500, 5000, 20000):
            g = regular_weight_tree(w, delta)
            ball, a_c, o_c = measure(g, 0, d)
            bound = 6 * ball**x
            rows.append(
                (f"D={delta},d={d}", w, ball, a_c, o_c, f"{bound:.1f}")
            )
            ok = ok and a_c <= bound and o_c <= a_c
    # random-tree balls too
    for seed in range(5):
        rng = random.Random(seed)
        g = random_tree(400, 5, rng).with_inputs(
            [A_INPUT] + [W_INPUT] * 399
        )
        ball, a_c, o_c = measure(g, 0, 2)
        x = math.log(5 - 1 - 2) / math.log(5 - 1)
        rows.append((f"rand seed={seed}", 400, ball, a_c, o_c, f"{6 * ball**x:.1f}"))
        ok = ok and a_c <= 6 * ball**x and o_c <= a_c
    record_table(
        "e09", "E9: Lemma 40 — |U_Copy| <= 6 |U|^x  (A* vs exact DP)",
        ["params", "w", "|ball|", "A* copies", "DP copies", "6|ball|^x"], rows,
    )
    assert ok
