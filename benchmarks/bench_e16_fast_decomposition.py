"""E16 — Corollaries 47/49: the adapted fast-decomposition d-free solver
terminates in O(1) node-averaged and O(log n) worst-case rounds, with
geometric decay of late finishers."""

import math
from collections import deque

from harness import record_table

from repro.algorithms import run_fast_dfree
from repro.lcl import DFreeWeightProblem
from repro.lcl.dfree import A_INPUT, W_INPUT
from repro.local import Graph


def weight_tree(w, delta):
    edges = []
    frontier = deque([0])
    nxt, remaining = 1, w - 1
    while remaining > 0:
        p = frontier.popleft()
        for _ in range(delta - 1):
            if remaining == 0:
                break
            edges.append((p, nxt))
            frontier.append(nxt)
            nxt += 1
            remaining -= 1
    return Graph(w, edges, [A_INPUT] + [W_INPUT] * (w - 1))


def run_point(w: int, delta: int = 6, d: int = 3):
    g = weight_tree(w, delta)
    sol = run_fast_dfree(g, d)
    DFreeWeightProblem(delta, d).verify(g, sol.outputs).raise_if_invalid()
    avg = sum(sol.rounds) / w
    late = sum(1 for r in sol.rounds if r > 12)  # > 4 iterations
    return avg, max(sol.rounds), late


def test_e16_fast_decomposition(benchmark):
    benchmark(run_point, 5_000)
    rows, avgs = [], []
    for w in (5_000, 40_000, 160_000):
        avg, worst, late = run_point(w)
        rows.append(
            (w, f"{avg:.2f}", worst, f"{12 * math.log2(w):.0f}",
             late, f"{late / w:.4f}")
        )
        avgs.append(avg)
    record_table(
        "e16", "E16: Cor. 47/49 — fast d-free solver: O(1) avg, O(log n) worst",
        ["w", "avg", "worst", "12 log2 w", "late (>12 rnd)", "late frac"], rows,
    )
    # averaged time flat; worst logarithmic; late fraction vanishing
    assert max(avgs) <= min(avgs) + 2
    for row in rows:
        assert row[2] <= float(row[3]) + 6
    assert float(rows[-1][5]) < 0.05
