"""E5 — Theorems 4/5: ``Pi^{3.5}_{Delta,d,k}`` has node-averaged
complexity between Omega((log* n)^{alpha1(x)}) and
O((log* n)^{alpha1(x')}).

Runs the Section-8.2 composition (fast weight solver) over the weighted
construction; the reproducible shape at feasible n: flat in n (no
polynomial growth), cheaper than the Algorithm-A baseline, and bracketed
by small (log* n)-powers."""

import random

from harness import record_table

from repro.algorithms import run_a35, run_weighted35
from repro.analysis import (
    alpha1_logstar,
    alpha_vector_logstar,
    efficiency_factor,
    efficiency_factor_relaxed,
    log_star,
)
from repro.constructions import build_weighted_construction
from repro.constructions.lowerbound import paper_lengths
from repro.lcl import Weighted35
from repro.local import random_ids

PARAMS = (6, 3, 2)


def run_point(n_target: int, seed: int = 5, fast: bool = True):
    delta, d, k = PARAMS
    xp = efficiency_factor_relaxed(delta, d)
    lengths = paper_lengths(
        max(80, n_target // k), alpha_vector_logstar(xp, k), "logstar"
    )
    wi = build_weighted_construction(lengths, delta, n_target // k)
    ids = random_ids(wi.n, rng=random.Random(seed))
    runner = run_weighted35 if fast else run_a35
    tr = runner(wi.graph, ids, delta, d, k)
    Weighted35(delta, d, k).verify(wi.graph, tr.outputs).raise_if_invalid()
    return wi.n, tr.node_averaged(), tr.worst_case()


def test_e05_thm5(benchmark):
    benchmark(run_point, 2_000)
    delta, d, k = PARAMS
    x = efficiency_factor(delta, d)
    xp = efficiency_factor_relaxed(delta, d)
    rows, fast_avgs, base_avgs = [], [], []
    for n_target in (2_000, 16_000, 128_000, 1_000_000):
        n, avg, worst = run_point(n_target, fast=True)
        _, base_avg, _ = run_point(n_target, fast=False)
        ls = max(2, log_star(n))
        rows.append(
            (n, f"{avg:.2f}", f"{base_avg:.2f}", worst,
             f"{ls ** alpha1_logstar(x, k):.2f}",
             f"{ls ** alpha1_logstar(xp, k):.2f}")
        )
        fast_avgs.append(avg)
        base_avgs.append(base_avg)
    record_table(
        "e05",
        f"E5: Thm 4/5 — Pi^3.5 (D={delta},d={d},k={k}) node-averaged",
        ["n", "fast avg", "AlgA avg", "worst",
         "(log*)^a1(x)", "(log*)^a1(x')"], rows,
    )
    # flat in n (log* regime), and the fast composition beats Algorithm A
    assert fast_avgs[-1] <= fast_avgs[0] + 4
    assert all(f < b for f, b in zip(fast_avgs, base_avgs))
