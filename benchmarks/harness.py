"""Shared benchmark harness: result tables, shape checks, persistence.

Every bench regenerates one experiment from DESIGN.md's per-experiment
index (E1..E17).  Results are printed and appended to
``benchmarks/results/<exp_id>.txt`` so the paper-vs-measured record in
EXPERIMENTS.md can be regenerated at any time.
"""

from __future__ import annotations

import math
import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

__all__ = ["record_table", "format_table", "dfree_overhead", "adjusted_average"]


def format_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(header)
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def record_table(exp_id: str, title: str, header: Sequence[str], rows) -> str:
    """Print and persist one experiment table; returns the rendered text."""
    text = format_table(title, header, rows)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{exp_id}.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    return text


def dfree_overhead(n: int, d: int) -> int:
    """Algorithm A's additive per-weight-node round count R = 3L + 3."""
    from repro.algorithms import dfree_radius

    return dfree_radius(n, d)[1]


def adjusted_average(avg: float, n: int, d: int, weight_fraction: float) -> float:
    """Node-averaged complexity minus the known additive Algorithm-A
    overhead paid by every weight node (asymptotically negligible, but
    dominant at benchmark sizes; see EXPERIMENTS.md)."""
    return max(0.0, avg - weight_fraction * dfree_overhead(n, d))
