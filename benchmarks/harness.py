"""Shared benchmark harness: result tables, shape checks, persistence.

Every bench regenerates one experiment from DESIGN.md's per-experiment
index (E1..E18).  Results are printed and written to
``benchmarks/results/<exp_id>.txt`` — each run *overwrites* the previous
file for its experiment, so the file always holds exactly one
regeneration and the paper-vs-measured record in EXPERIMENTS.md can be
rebuilt from the latest state at any time.

Timing columns: benches that exercise the simulator should report which
:mod:`repro.local.simulator` engine produced each row plus the measured
wall-clock (see :func:`timed`), so speedups land in
``benchmarks/results/`` next to the model-level numbers.
"""

from __future__ import annotations

import math
import os
import time
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

__all__ = [
    "record_table",
    "format_table",
    "timed",
    "peak_rss_mib",
    "dfree_overhead",
    "adjusted_average",
]


def format_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(header)
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def record_table(
    exp_id: str,
    title: str,
    header: Sequence[str],
    rows,
    notes: Optional[Sequence[str]] = None,
) -> str:
    """Print and persist one experiment table (overwriting the experiment's
    previous results file); returns the rendered text.

    ``notes`` are free-form footer lines (environment, engine, caveats)
    appended below the table.

    Besides the human-readable ``results/<exp_id>.txt``, the same table
    lands machine-readably in ``results/<exp_id>.json`` (exp_id, title,
    header, stringified rows, notes) — the perf trajectory artifact:
    successive regenerations of an experiment can be diffed or plotted
    without re-parsing the text rendering.
    """
    from repro.store import atomic_write_json, atomic_write_text

    rows = [tuple(str(c) for c in row) for row in rows]
    text = format_table(title, header, rows)
    if notes:
        text += "\n" + "\n".join(notes)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    # atomic: a bench killed mid-write leaves the previous complete
    # results file (or none), never a truncated table
    atomic_write_text(os.path.join(RESULTS_DIR, f"{exp_id}.txt"),
                      text + "\n")
    atomic_write_json(os.path.join(RESULTS_DIR, f"{exp_id}.json"), {
        "exp_id": exp_id,
        "title": title,
        "header": [str(h) for h in header],
        "rows": [list(row) for row in rows],
        "notes": [str(n) for n in (notes or [])],
    })
    print("\n" + text)
    return text


def peak_rss_mib() -> float:
    """Peak resident set size of this process (and any reaped workers) in
    MiB; 0.0 where ``resource`` is unavailable.  The kernel's high-water
    mark never decreases, so per-row values in a bench are cumulative
    maxima — order rows smallest-first to see each scale's footprint."""
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return 0.0
    peak = max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    return peak / 1024.0  # ru_maxrss is KiB on Linux


def timed(fn: Callable, *args, **kwargs) -> Tuple[object, float, float]:
    """Run ``fn(*args, **kwargs)`` returning ``(result, wall_seconds,
    peak_rss_mib)`` — the third column is the process high-water RSS
    after the call (see :func:`peak_rss_mib` for the monotonicity
    caveat), so million-node rows report their memory footprint."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start, peak_rss_mib()


def dfree_overhead(n: int, d: int) -> int:
    """Algorithm A's additive per-weight-node round count R = 3L + 3."""
    from repro.algorithms import dfree_radius

    return dfree_radius(n, d)[1]


def adjusted_average(avg: float, n: int, d: int, weight_fraction: float) -> float:
    """Node-averaged complexity minus the known additive Algorithm-A
    overhead paid by every weight node (asymptotically negligible, but
    dominant at benchmark sizes; see EXPERIMENTS.md)."""
    return max(0.0, avg - weight_fraction * dfree_overhead(n, d))
