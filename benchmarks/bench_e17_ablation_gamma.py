"""E17 — ablation: the Lemma-33 phase parameters are minimax-optimal.

For a *fixed* instance, shrinking gamma_1 below the instance's level-1
path length is a free win (paths decline immediately), so the optimality
of the balanced ``gamma_i = n^{alpha_i}`` choice (Lemma 32: all B_i
equal) is a *minimax* statement: against the family of weighted
constructions with varying path-length scalings, the balanced
parameters minimize the worst node-averaged cost.  We sweep both axes
and report the max-over-instances per configuration.  Also ablates the
naive no-Decline strawman from Section 1.2."""

import random

from harness import record_table

from repro.algorithms import run_apoly
from repro.algorithms.baselines import run_naive_weighted25
from repro.analysis import alpha_vector_poly, efficiency_factor
from repro.constructions import build_weighted_construction
from repro.constructions.lowerbound import paper_lengths
from repro.lcl import Weighted25
from repro.local import random_ids

DELTA, D, K = 5, 2, 2
N_TARGET = 30_000
INSTANCE_SCALES = (0.6, 0.8, 1.0, 1.25)
GAMMA_SCALES = (0.5, 0.75, 1.0, 1.3, 1.6)


def build_instance(scale: float):
    x = efficiency_factor(DELTA, D)
    alphas = [a * scale for a in alpha_vector_poly(x, K)]
    lengths = paper_lengths(N_TARGET // K, alphas)
    return build_weighted_construction(lengths, DELTA, N_TARGET // K)


def run_config(wi, gamma_scale: float, seed: int = 1):
    x = efficiency_factor(DELTA, D)
    gammas = [
        max(2, int(round(wi.n ** (a * gamma_scale))))
        for a in alpha_vector_poly(x, K)
    ]
    ids = random_ids(wi.n, rng=random.Random(seed))
    tr = run_apoly(wi.graph, ids, DELTA, D, K, gammas=gammas)
    Weighted25(DELTA, D, K).verify(wi.graph, tr.outputs).raise_if_invalid()
    return tr.node_averaged()


def test_e17_ablation(benchmark):
    instances = [build_instance(s) for s in INSTANCE_SCALES]
    benchmark(run_config, instances[2], 1.0)
    rows = []
    worst_of = {}
    for gs in GAMMA_SCALES:
        per_instance = [run_config(wi, gs) for wi in instances]
        worst_of[gs] = max(per_instance)
        rows.append(
            (f"gamma = n^(alpha*{gs})",)
            + tuple(f"{v:.1f}" for v in per_instance)
            + (f"{worst_of[gs]:.1f}",)
        )
    wi = instances[2]
    ids = random_ids(wi.n, rng=random.Random(1))
    naive = run_naive_weighted25(wi.graph, ids, DELTA, D, K)
    Weighted25(DELTA, D, K).verify(wi.graph, naive.outputs).raise_if_invalid()
    rows.append(
        ("naive no-Decline strawman", "-", "-", f"{naive.node_averaged():.1f}",
         "-", f"{naive.node_averaged():.1f}")
    )
    record_table(
        "e17", f"E17: minimax gamma ablation on Pi^2.5 (n~{wi.n})",
        ["configuration"]
        + [f"inst s={s}" for s in INSTANCE_SCALES]
        + ["worst"],
        rows,
    )
    best = min(worst_of.values())
    # the balanced choice is minimax-competitive (within 25% of the best
    # perturbation on this finite family)...
    assert worst_of[1.0] <= 1.25 * best, worst_of
    # ...and the extreme perturbations are clearly worse
    assert worst_of[1.6] > 1.5 * worst_of[1.0]
    # the strawman loses to the balanced algorithm on its own instance
    assert naive.node_averaged() > run_config(wi, 1.0)
