"""Checker kernel speedup — compiled CSR pass vs. per-node reference.

Micro-benchmark for the :mod:`repro.lcl.kernel` split: verify *valid*
labelings of n >= 50k instances through both paths and record wall-clock
per workload in ``benchmarks/results/``.  Valid labelings are the honest
workload — an invalid one spends its time building ``Violation`` objects
on both paths (and the sweep hot path short-circuits those with
``early_exit`` anyway).

Gates:

* the paper's central checker — k-hierarchical 2½-coloring — must be at
  least 5x faster through the kernel on both a random tree and a grid
  (the kernel's action tables + translate/bitmask fast path vs. the
  reference per-node rule walk);
* the d-free weight checker and the proper-coloring checker must be at
  least 2x faster (their reference loops are already bare counting, so
  the gather-based kernel wins less headroom);
* kernel and reference must agree that every workload is valid, and
  ``verify_batch`` over 5 labelings must not be slower than 5 separate
  ``verify`` calls plus slack (the batch shares the per-graph compile).
"""

import math

from harness import record_table, timed


def best_of(repeats, fn, *args):
    """Best-of-N wall clock — damps scheduler noise around the gates."""
    result, wall, _ = timed(fn, *args)
    for _ in range(repeats - 1):
        result, w, _ = timed(fn, *args)
        wall = min(wall, w)
    return result, wall

from repro.families import get_family
from repro.lcl import (
    Coloring25,
    DFreeWeightProblem,
    ProperColoring,
    valid_coloring25,
)
from repro.lcl.dfree import W_INPUT

N = 50_000
MIN_SPEEDUP_COLORING = 5.0
MIN_SPEEDUP_COUNTING = 2.0
BATCH = 5


def workloads():
    tree = get_family("random_tree").instance(N, 0)
    grid = get_family("grid").instance(N, 0)
    rows = max(1, math.isqrt(N))
    cols = N // rows
    yield (
        "coloring25/tree", Coloring25(3), tree,
        valid_coloring25(tree, 3), MIN_SPEEDUP_COLORING,
    )
    yield (
        "coloring25/grid", Coloring25(2), grid,
        valid_coloring25(grid, 2), MIN_SPEEDUP_COLORING,
    )
    # all-Copy on a tree exercises P2 Decline counting at every node
    yield (
        "dfree/tree", DFreeWeightProblem(5, 2),
        get_family("random_tree").instance(N, 1).with_inputs([W_INPUT] * N),
        ["Copy"] * N, MIN_SPEEDUP_COUNTING,
    )
    # all-Connect on a grid exercises P1 support counting at every node
    yield (
        "dfree/grid", DFreeWeightProblem(5, 2),
        grid.with_inputs([W_INPUT] * grid.n),
        ["Connect"] * grid.n, MIN_SPEEDUP_COUNTING,
    )
    yield (
        "proper2/grid", ProperColoring(2), grid,
        [(v // cols + v % cols) % 2 for v in range(grid.n)],
        MIN_SPEEDUP_COUNTING,
    )


def test_checker_kernel_speedup():
    rows = []
    notes = []
    failures = []
    batch_note_done = False
    for name, problem, graph, outputs, gate in workloads():
        kernel = problem.compiled()
        # warm both paths: reference caches levels, kernel compiles the
        # graph — the timed comparison is pure scan vs. pure scan
        ref_result = problem.verify_reference(graph, outputs)
        kernel_result = kernel.verify(graph, outputs)
        assert ref_result.valid, (name, ref_result.violations[:3])
        assert kernel_result.valid, (name, kernel_result.violations[:3])

        _, wall_ref = best_of(5, problem.verify_reference, graph, outputs)
        _, wall_kernel = best_of(5, kernel.verify, graph, outputs)
        speedup = wall_ref / wall_kernel
        rows.append((
            name, graph.n, f"{wall_ref:.4f}", f"{wall_kernel:.4f}",
            f"{speedup:.1f}", f"{gate:.0f}",
        ))
        if speedup < gate:
            failures.append(f"{name}: {speedup:.1f}x < {gate:.0f}x")

        if not batch_note_done:
            batch_results, wall_batch = best_of(
                3, kernel.verify_batch, graph, [outputs] * BATCH
            )
            assert all(r.valid for r in batch_results)
            notes.append(
                f"verify_batch({BATCH}) on {name}: {wall_batch:.4f}s vs "
                f"{BATCH}x verify {BATCH * wall_kernel:.4f}s"
            )
            assert wall_batch <= BATCH * wall_kernel * 2.0, (
                "verify_batch slower than repeated verify"
            )
            batch_note_done = True

    notes.append(
        f"gates: coloring >= {MIN_SPEEDUP_COLORING:.0f}x, "
        f"counting checkers >= {MIN_SPEEDUP_COUNTING:.0f}x "
        "(kernel / reference, valid labelings)"
    )
    record_table(
        "checker_kernel",
        f"Checker kernel speedup on n>={N} instances",
        ["workload", "n", "ref_s", "kernel_s", "speedup", "gate"],
        rows,
        notes=notes,
    )
    assert not failures, "; ".join(failures)
