"""E18 — the x = 0 anchor: unweighted k-hierarchical 2½-coloring has
node-averaged complexity Theta(n^{1/(2^k - 1)}) ([BBK+23b], the Figure-1
points the weighted families interpolate from).

Sweeps the Definition-18 graph under the generic algorithm with the
Lemma-14 parameters and fits the exponent; k = 2 should give ~1/3,
anchoring the bottom of the Theorem-1 density band (whose top, x -> 1,
is the E10 anchor at 1/k)."""

import random

from harness import record_table

from repro.algorithms import default_gammas_25, run_generic_fast_forward
from repro.analysis import alpha_vector_poly, fit_power_law, geometric_range
from repro.constructions import build_lower_bound_graph
from repro.constructions.lowerbound import paper_lengths
from repro.lcl import Coloring25
from repro.local import random_ids


def run_point(n_target: int, k: int, seed: int = 0):
    lengths = paper_lengths(n_target, alpha_vector_poly(0.0, k))
    lb = build_lower_bound_graph(lengths)
    ids = random_ids(lb.graph.n, rng=random.Random(seed))
    gammas = default_gammas_25(lb.graph.n, k)
    tr = run_generic_fast_forward(lb.graph, ids, k, gammas, "2.5")
    Coloring25(k).verify(lb.graph, tr.outputs).raise_if_invalid()
    return lb.graph.n, tr.node_averaged()


def test_e18_unweighted_anchor(benchmark):
    benchmark(run_point, 3_000, 2)
    rows, fits = [], {}
    for k in (2, 3):
        pred = 1.0 / (2**k - 1)
        ns, avgs = [], []
        for n_target in geometric_range(3_000, 300_000, 5):
            n, avg = run_point(n_target, k)
            ns.append(n)
            avgs.append(avg)
            rows.append((k, n, f"{avg:.2f}", f"{n**pred:.1f}"))
        fit, _ = fit_power_law(ns, avgs)
        fits[k] = (pred, fit)
        rows.append((k, "fit", f"n^{fit:.3f}", f"pred n^{pred:.3f}"))
    record_table(
        "e18", "E18: unweighted 2.5-coloring — the x=0 anchor of Figure 1",
        ["k", "n", "avg", "n^(1/(2^k-1))"], rows,
    )
    pred2, fit2 = fits[2]
    assert abs(fit2 - pred2) < 0.12, fits
    # k=3's exponent (1/7) separates only at much larger n; require the
    # ordering rather than the absolute value
    assert fits[3][1] < fit2
