"""E2 — Theorem 11: k-hierarchical 3½-coloring has node-averaged
complexity Theta((log* n)^{1/2^{k-1}}).

Sweep n on the Definition-18 lower-bound graphs with the Lemma-14
parameters and measure the node-averaged cost of the generic algorithm.
At feasible n, log* n is nearly constant (4-5), so the reproducible
*shape* is: (a) the averaged cost is flat in n (far below any polynomial),
(b) k = 2 is cheaper than k = 1 (exponent 1/2 vs 1), and (c) the
worst-case stays Theta(log* n)-sized (Corollary 10 — see E3)."""

import random

from harness import record_table

from repro.algorithms import default_gammas_35, run_generic_fast_forward
from repro.analysis import alpha_vector_logstar, log_star
from repro.constructions import build_lower_bound_graph
from repro.constructions.lowerbound import paper_lengths
from repro.lcl import Coloring35
from repro.local import random_ids

NS = [2_000, 10_000, 50_000, 200_000]


def run_point(n_target: int, k: int, seed: int = 0):
    alphas = alpha_vector_logstar(0.0, k) if k > 1 else []
    lengths = paper_lengths(n_target, alphas, "logstar")
    lb = build_lower_bound_graph(lengths)
    ids = random_ids(lb.graph.n, rng=random.Random(seed))
    gammas = default_gammas_35(lb.graph.n, k)
    tr = run_generic_fast_forward(lb.graph, ids, k, gammas, "3.5")
    Coloring35(k).verify(lb.graph, tr.outputs).raise_if_invalid()
    return lb.graph.n, tr.node_averaged(), tr.worst_case()


def test_e02_thm11(benchmark):
    benchmark(run_point, 2_000, 2)
    rows = []
    by_k = {}
    for k in (1, 2, 3):
        for n_target in NS:
            n, avg, worst = run_point(n_target, k)
            pred = max(2, log_star(n)) ** (1.0 / 2 ** (k - 1))
            rows.append((k, n, f"{avg:.2f}", worst, f"{pred:.2f}"))
            by_k.setdefault(k, []).append(avg)
    record_table(
        "e02", "E2: Theorem 11 — 3.5-coloring node-averaged cost",
        ["k", "n", "avg", "worst", "(log* n)^(1/2^(k-1))"], rows,
    )
    # flat in n: largest within 2.5x of smallest for every k
    for k, avgs in by_k.items():
        assert max(avgs) <= 2.5 * min(avgs) + 4, (k, avgs)
    # ordering: higher k never substantially more expensive at largest n
    assert by_k[2][-1] <= by_k[1][-1] * 1.6 + 4
