"""E2 — Theorem 11: k-hierarchical 3½-coloring has node-averaged
complexity Theta((log* n)^{1/2^{k-1}}).

Sweep n on the Definition-18 lower-bound graphs with the Lemma-14
parameters and measure the node-averaged cost of the generic algorithm.
At feasible n, log* n is nearly constant (4-5), so the reproducible
*shape* is: (a) the averaged cost is flat in n (far below any polynomial),
(b) k = 2 is cheaper than k = 1 (exponent 1/2 vs 1), and (c) the
worst-case stays Theta(log* n)-sized (Corollary 10 — see E3).

The sweep itself goes through :mod:`repro.sweep`: each ``k`` registers
the lower-bound construction as a custom :class:`repro.families.Family`
(one deterministic instance per target size) and the generic algorithm
as a fast-forward :class:`repro.sweep.AlgorithmSpec`, so the table rows
are family-cell aggregates maxed over several ID samples — the paper's
max-over-family measure — instead of one hand-picked run."""

from harness import record_table

from repro.algorithms import default_gammas_35, run_generic_fast_forward
from repro.analysis import alpha_vector_logstar, log_star
from repro.constructions import build_lower_bound_graph
from repro.constructions.lowerbound import paper_lengths
from repro.families import Family, register_family
from repro.lcl import Coloring35
from repro.sweep import AlgorithmSpec, SweepRunner, register_algorithm

NS = [2_000, 10_000, 50_000, 200_000]
KS = (1, 2, 3)
SAMPLES = 2


def _lb_family(k: int) -> Family:
    def build(n_target, rng):
        alphas = alpha_vector_logstar(0.0, k) if k > 1 else []
        lengths = paper_lengths(n_target, alphas, "logstar")
        return build_lower_bound_graph(lengths).graph

    return Family(
        f"lb_logstar_k{k}", build, degree_bound=None,
        description=f"Definition-18 lower-bound graphs, k={k} (Lemma 14)",
    )


def _generic35(k: int) -> AlgorithmSpec:
    def fast_forward(graph, ids):
        gammas = default_gammas_35(graph.n, k)
        trace = run_generic_fast_forward(graph, ids, k, gammas, "3.5")
        Coloring35(k).verify(graph, trace.outputs).raise_if_invalid()
        return trace

    return AlgorithmSpec(
        f"generic_35_k{k}", fast_forward=fast_forward,
        description=f"generic phase algorithm, 3.5-variant, k={k}",
    )


for _k in KS:
    register_family(_lb_family(_k), overwrite=True)
    register_algorithm(_generic35(_k), overwrite=True)


def run_point(n_target: int, k: int, seed: int = 0):
    payload = SweepRunner(samples=1).run(
        [f"lb_logstar_k{k}"], [n_target], [f"generic_35_k{k}"], seed=seed
    )
    return payload["cells"][0]["node_averaged"]["max"]


def test_e02_thm11(benchmark):
    benchmark(run_point, 2_000, 2)
    runner = SweepRunner(samples=SAMPLES)
    rows = []
    by_k = {}
    for k in KS:
        payload = runner.run(
            [f"lb_logstar_k{k}"], NS, [f"generic_35_k{k}"], seed=0
        )
        for cell in payload["cells"]:
            # the construction's real size (it rounds the target n)
            n = cell["instance_n"]["max"]
            avg = cell["node_averaged"]["max"]
            worst = cell["worst_case"]["max"]
            pred = max(2, log_star(n)) ** (1.0 / 2 ** (k - 1))
            rows.append((k, n, f"{avg:.2f}", worst, f"{pred:.2f}"))
            by_k.setdefault(k, []).append(avg)
    record_table(
        "e02", "E2: Theorem 11 — 3.5-coloring node-averaged cost",
        ["k", "n", "avg", "worst", "(log* n)^(1/2^(k-1))"], rows,
        notes=[f"family cells via repro.sweep: {SAMPLES} ID samples per "
               "size, seed 0, outputs verified per run"],
    )
    # flat in n: largest within 2.5x of smallest for every k
    for k, avgs in by_k.items():
        assert max(avgs) <= 2.5 * min(avgs) + 4, (k, avgs)
    # ordering: higher k never substantially more expensive at largest n
    assert by_k[2][-1] <= by_k[1][-1] * 1.6 + 4
