"""Content-addressed store — warm incremental rerun vs. cold compute.

The store's reason to exist: sweeps are build-once/query-many, so a
rerun over already-computed units should cost file reads, not
simulation.  One ``random_tree`` instance at n = 100_000, two ID
samples, ``rake_layering``, ``workers=1`` (the store partitions above
the fan-out, so one worker isolates the cache effect):

* **cold** — empty store: every unit simulates, results written back;
* **warm** — same sweep again: every unit served from the store;
* **none** — store disabled: the baseline recompute.

The gate asserts the warm rerun is at least 5x faster than the cold
run, and — unconditionally — that all three JSON payloads are
byte-identical: the store is an optimisation, never a semantic switch.
"""

import shutil
import tempfile

from harness import record_table, timed

from repro.sweep import SweepRunner

FAMILY = "random_tree"
N = 100_000
SAMPLES = 2
ALGORITHM = "rake_layering"
SEED = 0
MIN_SPEEDUP = 5.0


def run_sweep(store) -> str:
    runner = SweepRunner(workers=1, samples=SAMPLES, instances=1,
                         store=store)
    return runner.run_json([FAMILY], [N], [ALGORITHM], seed=SEED)


def test_store_incremental_speedup():
    root = tempfile.mkdtemp(prefix="bench-store-")
    try:
        json_cold, wall_cold, _ = timed(run_sweep, root)
        json_warm, wall_warm, _ = timed(run_sweep, root)
        json_none, wall_none, _ = timed(run_sweep, None)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    speedup = wall_cold / wall_warm

    record_table(
        "store_incremental",
        f"Incremental store rerun: {FAMILY}(n={N}), {SAMPLES} samples, "
        f"{ALGORITHM}",
        ["store", "wall_s", "speedup_vs_cold"],
        [
            ("cold", f"{wall_cold:.3f}", "1.0"),
            ("warm", f"{wall_warm:.3f}", f"{speedup:.1f}"),
            ("none", f"{wall_none:.3f}",
             f"{wall_cold / max(wall_none, 1e-9):.1f}"),
        ],
        notes=[
            "payloads byte-identical across cold/warm/none (asserted)",
            f"gate: warm >= {MIN_SPEEDUP}x faster than cold (asserted)",
        ],
    )

    assert json_cold == json_warm == json_none, (
        "store changed the payload bytes"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm rerun only {speedup:.1f}x faster than cold "
        f"(gate: {MIN_SPEEDUP}x)"
    )
