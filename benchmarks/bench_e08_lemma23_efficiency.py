"""E8 — Lemma 23 / Corollary 24: weight-tree efficiency.

On a balanced Delta-regular tree of w weight nodes whose root is forced
to copy, the *minimum* number of Copy nodes is Theta(w^x),
x = log(Delta-1-d)/log(Delta-1).  The exact tree-DP measures the minimum;
the measured exponent is fitted against x.  Also checks Corollary 24's
even-split superadditivity: splitting w over l trees forces
w^x * l^{1-x} >= w^x copies in total."""

import math
import random
from collections import deque

from harness import record_table

from repro.algorithms import run_algorithm_a
from repro.analysis import fit_power_law
from repro.lcl.dfree import A_INPUT, COPY, W_INPUT
from repro.local import Graph

PARAMS = [(5, 2), (6, 3), (9, 4)]


def regular_weight_tree(w: int, delta: int) -> Graph:
    edges = []
    frontier = deque([0])
    nxt, remaining = 1, w - 1
    while remaining > 0:
        p = frontier.popleft()
        for _ in range(delta - 1):
            if remaining == 0:
                break
            edges.append((p, nxt))
            frontier.append(nxt)
            nxt += 1
            remaining -= 1
    return Graph(w, edges, [A_INPUT] + [W_INPUT] * (w - 1))


def min_copies(w: int, delta: int, d: int) -> int:
    sol = run_algorithm_a(regular_weight_tree(w, delta), d, optimal=True)
    return sol.outputs.count(COPY)


def test_e08_lemma23(benchmark):
    benchmark(min_copies, 500, 5, 2)
    rows, fits = [], []
    for delta, d in PARAMS:
        x = math.log(delta - 1 - d) / math.log(delta - 1)
        ws = [200, 1000, 5000, 25000]
        copies = [min_copies(w, delta, d) for w in ws]
        fit, _ = fit_power_law(ws, copies)
        fits.append((x, fit))
        for w, c in zip(ws, copies):
            rows.append((f"D={delta},d={d}", w, c, f"{w**x:.1f}", f"{x:.3f}", f"{fit:.3f}"))
    record_table(
        "e08", "E8: Lemma 23 — minimum Copy count on balanced weight trees",
        ["params", "w", "min copies", "w^x", "x (pred)", "x (fit)"], rows,
    )
    for x, fit in fits:
        assert abs(fit - x) <= 0.15 + 0.1 * x, (x, fit)


def test_e08_cor24_split(benchmark):
    # splitting weight over l trees multiplies forced copies by l^{1-x}
    delta, d = 5, 2
    x = math.log(delta - 1 - d) / math.log(delta - 1)
    w_total = 8000
    rows = []
    vals = []
    for l in (1, 2, 4, 8):
        per_tree = min_copies(w_total // l, delta, d)
        total = per_tree * l
        pred = (w_total / l) ** x * l
        rows.append((l, total, f"{pred:.1f}", f"{w_total**x:.1f}"))
        vals.append(total)
    benchmark(min_copies, w_total // 8, delta, d)
    record_table(
        "e08_cor24", "E8b: Cor. 24 — even split maximizes forced copies",
        ["trees l", "total copies", "w^x l^(1-x)", "w^x (single)"], rows,
    )
    # more trees force more copies overall (the DP count is a step
    # function of w, so adjacent points may tie)
    assert vals[-1] >= 1.5 * vals[0]
    assert all(b >= a * 0.8 for a, b in zip(vals, vals[1:]))
