"""E7 — Theorem 6: the sub-log* regime is infinitely dense with an
epsilon-certified upper/lower gap (Lemma 62's Delta,d scaling)."""

from harness import record_table

from repro.analysis import (
    efficiency_factor,
    efficiency_factor_relaxed,
    find_logstar_problem,
    params_for_rational_x,
)

WINDOWS = [
    (0.30, 0.45, 0.05),
    (0.50, 0.60, 0.03),
    (0.60, 0.75, 0.02),
    (0.80, 0.95, 0.02),
    (0.55, 0.56, 0.01),
]


def build_rows():
    rows = []
    for r1, r2, eps in WINDOWS:
        q = find_logstar_problem(r1, r2, eps)
        rows.append(
            (f"({r1},{r2})", eps, q.delta, q.d, q.k,
             f"{q.exponent_lower:.4f}", f"{q.exponent_upper:.4f}",
             f"{q.exponent_upper - q.exponent_lower:.4f}")
        )
    return rows


def scaling_rows():
    rows = []
    for scale in (1, 2, 3, 4, 6):
        delta, d = params_for_rational_x(1, 2, scale)
        x = efficiency_factor(delta, d)
        xp = efficiency_factor_relaxed(delta, d)
        rows.append((scale, delta, d, f"{x:.4f}", f"{xp:.4f}", f"{xp - x:.5f}"))
    return rows


def test_e07_thm6(benchmark):
    rows = benchmark(build_rows)
    record_table(
        "e07", "E7: Theorem 6 — density witnesses in the log* regime",
        ["window", "eps", "Delta", "d", "k", "c (lower)", "c+gap (upper)", "gap"],
        rows,
    )
    srows = scaling_rows()
    record_table(
        "e07_lemma62", "E7b: Lemma 62 — the x'-x gap shrinks with scaling",
        ["scale", "Delta", "d", "x", "x'", "x'-x"], srows,
    )
    for window, eps, delta, d, k, lo, hi, gap in rows:
        r1, r2 = eval(window)
        assert r1 <= float(lo) <= r2 + eps
        assert float(gap) < eps
    gaps = [float(r[-1]) for r in srows]
    assert gaps == sorted(gaps, reverse=True)
