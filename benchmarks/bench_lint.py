"""Two-phase analyzer cost: whole-tree wall time, summary amortization.

The summarize-then-check split exists so the expensive phase — parsing
every file, extracting facts, linking the call graph and running the
summary fixpoints — happens **once** and serves every interprocedural
rule family.  The strawman alternative (each of the four IPD/STORE002
checks re-summarizing the project for itself) pays that cost per rule.
Gates:

* **amortization >= 2x**: one shared phase-1 index feeding all rule
  families beats rebuilding the index per interprocedural family;
* **whole-tree budget**: a full two-phase run over ``src tests
  benchmarks examples`` (the CI lint gate) stays inside a generous
  absolute wall bound, so the analyzer never becomes the slow step of
  the build;
* **correctness pin**: the shared-index run and the rebuild-per-family
  run report byte-identical findings — amortization is a pure
  scheduling change.

Results land in ``benchmarks/results/lint.{txt,json}``.
"""

import os

from harness import record_table, timed

from repro.lint.core import analyze_source
from repro.lint.runner import build_index, collect_files, run_lint

#: one shared summary phase for N rule families must beat N phases
MIN_AMORTIZATION = 2.0
#: generous absolute budget for the CI lint gate (usually a few seconds)
MAX_TREE_SECONDS = 120.0
#: the interprocedural rule families the shared index serves
FAMILIES = ("IPD001", "IPD002", "IPD003", "STORE002")

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PATHS = [p for p in ("src", "tests", "benchmarks", "examples")
         if os.path.isdir(os.path.join(REPO, p))]


def _interprocedural_findings(tasks, index):
    """Phase 2 restricted to the interprocedural families: every file
    checked against a prebuilt project index."""
    out = []
    for abs_path, display in tasks:
        with open(abs_path, encoding="utf-8") as fh:
            source = fh.read()
        out.extend(
            f for f in analyze_source(source, display, project=index)
            if f.rule in FAMILIES)
    return sorted(out)


def shared_index_run(tasks):
    """The real discipline: summarize once, check all families."""
    index = build_index(tasks, jobs=1)
    return _interprocedural_findings(tasks, index)


def per_family_run(tasks):
    """The strawman: each rule family rebuilds phase 1 for itself."""
    findings = []
    for family in FAMILIES:
        index = build_index(tasks, jobs=1)
        findings.extend(
            f for f in _interprocedural_findings(tasks, index)
            if f.rule == family)
    return sorted(findings)


def test_lint_two_phase_amortization():
    tasks = collect_files(PATHS, root=REPO)
    assert len(tasks) >= 100, "tree unexpectedly small — wrong root?"

    shared_findings, wall_shared, _ = timed(shared_index_run, tasks)
    family_findings, wall_family, _ = timed(per_family_run, tasks)
    assert shared_findings == family_findings, (
        "amortization changed the findings — phase 1 must be a pure "
        "function of the tree")

    report, wall_tree, rss = timed(
        run_lint, PATHS, jobs=1, root=REPO)
    assert report.exit_code == 0, (
        "dogfooded tree has lint errors:\n" + report.to_text())

    amortization = wall_family / max(wall_shared, 1e-9)
    record_table(
        "lint",
        "Two-phase lint: shared summary index vs per-family rebuild",
        ["configuration", "wall s", "findings"],
        [
            ["shared index (1 summarize, 4 families)",
             f"{wall_shared:.3f}", len(shared_findings)],
            [f"per-family rebuild ({len(FAMILIES)} summarize)",
             f"{wall_family:.3f}", len(family_findings)],
            [f"full two-phase run ({report.files} files, all rules)",
             f"{wall_tree:.3f}", len(report.findings)],
        ],
        notes=[
            f"amortization {amortization:.1f}x "
            f"(gate >= {MIN_AMORTIZATION}x)",
            f"whole-tree budget {wall_tree:.1f}s <= {MAX_TREE_SECONDS}s",
            f"peak RSS {rss:.0f} MiB",
        ],
    )

    assert amortization >= MIN_AMORTIZATION, (
        f"shared summary index only {amortization:.2f}x faster than "
        f"per-family rebuild (gate {MIN_AMORTIZATION}x)")
    assert wall_tree <= MAX_TREE_SECONDS, (
        f"whole-tree lint took {wall_tree:.1f}s "
        f"(budget {MAX_TREE_SECONDS}s)")


if __name__ == "__main__":  # pragma: no cover
    test_lint_two_phase_amortization()
