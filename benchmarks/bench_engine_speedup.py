"""Engine speedup — incremental vs. reference execution engines.

Micro-benchmark for the :mod:`repro.local.simulator` engine split: run
Cole–Vishkin 3-coloring on ``path_graph(2000)`` under both engines and
record wall-clock, per-engine, in ``benchmarks/results/``.  The two
engines must produce identical ``(T_v, output)`` maps (also asserted by
``tests/test_engine_equivalence.py``); the incremental engine is required
to be at least 5x faster on this workload — in practice it is two orders
of magnitude faster, because the reference engine re-derives every node's
state from a freshly extracted ball every round while the incremental
engine advances one shared execution.
"""

import random

from harness import record_table, timed

from repro.local import LocalSimulator, path_graph, random_ids
from repro.algorithms import ColeVishkin3Coloring

N = 2000
MIN_SPEEDUP = 5.0


def run_engine(engine: str, ids):
    g = path_graph(N)
    return LocalSimulator(engine=engine).run(g, ColeVishkin3Coloring(), ids)


def test_engine_speedup(benchmark):
    ids = random_ids(N, rng=random.Random(0))
    traces = {"incremental": benchmark(run_engine, "incremental", ids)}
    wall = {"incremental": benchmark.stats.stats.mean}
    traces["reference"], wall["reference"], peak_mib = timed(
        run_engine, "reference", ids)

    rows = [
        (engine, N, traces[engine].worst_case(),
         f"{traces[engine].node_averaged():.2f}", f"{wall[engine]:.3f}")
        for engine in ("incremental", "reference")
    ]
    speedup = wall["reference"] / wall["incremental"]
    record_table(
        "engine_speedup",
        "Engine speedup: Cole-Vishkin 3-coloring on path_graph(2000)",
        ["engine", "n", "worst", "avg", "wall_s"],
        rows,
        notes=[f"speedup: {speedup:.1f}x (reference / incremental); "
               f"peak RSS {peak_mib:.0f} MiB"],
    )

    assert traces["incremental"].rounds == traces["reference"].rounds
    assert traces["incremental"].outputs == traces["reference"].outputs
    assert speedup >= MIN_SPEEDUP, (
        f"incremental engine only {speedup:.1f}x faster; need >= {MIN_SPEEDUP}x"
    )
