"""E13 — Lemma 16 ([Feu17]): on paths, node-averaged complexity equals
worst-case complexity for both Theta(n) problems (2-coloring) and
Theta(log* n) problems (3-coloring)."""

import random

from harness import record_table

from repro.algorithms import three_color_path, two_coloring_fast_forward
from repro.analysis import log_star
from repro.local import path_graph, random_ids


def run_point(n: int, seed: int = 0):
    ids = random_ids(n, rng=random.Random(seed))
    g = path_graph(n)
    _, r2 = two_coloring_fast_forward(g, ids)
    _, t3 = three_color_path(ids, n**3)
    return sum(r2) / n, max(r2), t3


def test_e13_feuilloley(benchmark):
    benchmark(run_point, 4_000)
    rows = []
    ratios2 = []
    for n in (4_000, 40_000, 400_000):
        avg2, worst2, t3 = run_point(n)
        rows.append(
            (n, f"{avg2:.0f}", worst2, f"{avg2 / worst2:.2f}",
             t3, t3, log_star(n**3))
        )
        ratios2.append(avg2 / worst2)
    record_table(
        "e13", "E13: [Feu17] — paths: avg == worst for 2-col and 3-col",
        ["n", "2col avg", "2col worst", "ratio",
         "3col avg", "3col worst", "log* n^3"], rows,
    )
    # 2-coloring: avg within a constant factor of worst (ratio ~ 0.75)
    assert all(r > 0.5 for r in ratios2)
    # 3-coloring: avg == worst exactly (fixed CV schedule), both ~ log*
    for row in rows:
        assert row[4] == row[5]
        assert row[4] <= 4 * (row[6] + 9)
