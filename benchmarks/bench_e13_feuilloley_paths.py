"""E13 — Lemma 16 ([Feu17]): on paths, node-averaged complexity equals
worst-case complexity for both Theta(n) problems (2-coloring) and
Theta(log* n) problems (3-coloring).

Measured the way the paper defines the quantity: as a family sup.  The
``path`` family from :mod:`repro.families` is swept through
:mod:`repro.sweep` over several ID samples per size, and the reported
avg/worst values are the per-cell maxima over those runs (the
fast-forward registry entries replay the exact simulator algorithms;
``tests/test_sweep.py`` pins the agreement)."""

from harness import record_table

from repro.analysis import log_star
from repro.sweep import SweepRunner

NS = (4_000, 40_000, 400_000)
SAMPLES = 3


def run_point(n: int, seed: int = 0):
    payload = SweepRunner(samples=1).run(
        ["path"], [n], ["two_coloring_ff"], seed=seed
    )
    return payload["cells"][0]["node_averaged"]["max"]


def test_e13_feuilloley(benchmark):
    benchmark(run_point, 4_000)
    payload = SweepRunner(samples=SAMPLES).run(
        ["path"], list(NS), ["two_coloring_ff", "cv3_path_ff"], seed=0
    )
    cells = {(c["n"], c["algorithm"]): c for c in payload["cells"]}

    rows = []
    ratios2 = []
    for n in NS:
        c2 = cells[(n, "two_coloring_ff")]
        c3 = cells[(n, "cv3_path_ff")]
        avg2 = c2["node_averaged"]["max"]
        worst2 = c2["worst_case"]["max"]
        avg3 = c3["node_averaged"]["max"]
        worst3 = c3["worst_case"]["max"]
        rows.append(
            (n, f"{avg2:.0f}", worst2, f"{avg2 / worst2:.2f}",
             f"{avg3:.0f}", worst3, log_star(n**3))
        )
        ratios2.append(avg2 / worst2)
    record_table(
        "e13", "E13: [Feu17] — paths: avg == worst for 2-col and 3-col",
        ["n", "2col avg", "2col worst", "ratio",
         "3col avg", "3col worst", "log* n^3"], rows,
        notes=[f"family sup via repro.sweep: path family, "
               f"{SAMPLES} ID samples per size, seed 0"],
    )
    # 2-coloring: avg within a constant factor of worst (ratio ~ 0.75)
    assert all(r > 0.5 for r in ratios2)
    # 3-coloring: avg == worst exactly (fixed CV schedule), both ~ log*
    for (n, _a2, _w2, _r, avg3, worst3, lstar) in rows:
        assert float(avg3) == worst3
        assert worst3 <= 4 * (lstar + 9)
