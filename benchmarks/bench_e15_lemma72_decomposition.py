"""E15 — Lemma 72: rake-and-compress layer counts.

gamma = 1 gives O(log n) iterations; gamma ~ n^{1/k} gives <= k+1
iterations, on bushy trees and on the paper's lower-bound graphs."""

import math

from harness import record_table

from repro.algorithms import gamma_for_k_layers, rake_compress, validate_decomposition
from repro.constructions import build_lower_bound_graph
from repro.local import balanced_tree


def decompose(graph, gamma, ell=4):
    dec = rake_compress(graph, gamma, ell)
    issues = validate_decomposition(dec)
    assert not issues, issues[:3]
    return dec.num_iterations


def test_e15_lemma72(benchmark):
    g_small = balanced_tree(2, 8)
    benchmark(decompose, g_small, 1)
    rows = []
    log_ok = poly_ok = True
    for height in (6, 9, 12):
        g = balanced_tree(2, height)
        iters = decompose(g, 1)
        bound = 3 * math.ceil(math.log2(g.n)) + 3
        rows.append(("balanced(2,%d)" % height, g.n, 1, iters, f"<= {bound}"))
        log_ok = log_ok and iters <= bound
    for k in (2, 3):
        lb = build_lower_bound_graph([20] * (k - 1) + [60])
        gamma = gamma_for_k_layers(lb.graph.n, k, 4)
        iters = decompose(lb.graph, gamma)
        rows.append((f"lb-graph k={k}", lb.graph.n, gamma, iters, f"<= {k + 1}"))
        poly_ok = poly_ok and iters <= k + 1
    record_table(
        "e15", "E15: Lemma 72 — decomposition iteration counts",
        ["graph", "n", "gamma", "iterations", "bound"], rows,
    )
    assert log_ok and poly_ok
