"""E3 — Corollary 10: k-hierarchical 3½-coloring has *worst-case*
complexity Theta(log* n): the max per-node round count of the generic
algorithm tracks log* n (through the Cole-Vishkin schedule) and stays
orders of magnitude below the n^{1/k} worst case of the 2½ sibling."""

import random

from harness import record_table

from repro.algorithms import (
    cv_total_rounds,
    default_gammas_25,
    default_gammas_35,
    run_generic_fast_forward,
)
from repro.constructions import build_lower_bound_graph
from repro.constructions.lowerbound import paper_lengths
from repro.local import id_space_size, random_ids


def run_point(n_target: int, k: int, variant: str):
    lengths = paper_lengths(n_target, [0.33] * (k - 1), "poly")
    lb = build_lower_bound_graph(lengths)
    ids = random_ids(lb.graph.n, rng=random.Random(1))
    gammas = (
        default_gammas_25(lb.graph.n, k)
        if variant == "2.5"
        else default_gammas_35(lb.graph.n, k)
    )
    tr = run_generic_fast_forward(lb.graph, ids, k, gammas, variant)
    return lb.graph.n, tr.worst_case()


def test_e03_cor10(benchmark):
    benchmark(run_point, 2_000, 2, "3.5")
    rows = []
    worst35, worst25 = [], []
    for n_target in (2_000, 20_000, 200_000):
        n, w35 = run_point(n_target, 2, "3.5")
        _, w25 = run_point(n_target, 2, "2.5")
        cv = cv_total_rounds(id_space_size(n))
        rows.append((n, w35, cv, w25, int(round(n**0.5))))
        worst35.append(w35)
        worst25.append(w25)
    record_table(
        "e03", "E3: Cor. 10 — worst case of 3.5 is Theta(log* n); 2.5 is poly",
        ["n", "worst 3.5", "CV rounds", "worst 2.5", "sqrt(n)"], rows,
    )
    # 3.5 worst case flat; 2.5 worst case grows polynomially
    assert worst35[-1] <= worst35[0] + 6
    assert worst25[-1] >= 4 * worst25[0] / 2
