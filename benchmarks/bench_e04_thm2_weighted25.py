"""E4 — Theorems 2/3: ``Pi^{2.5}_{Delta,d,k}`` has node-averaged
complexity Theta(n^{alpha_1}), alpha_1 = 1/sum_j (2-x)^j.

Sweep the weighted construction (Definition 25) under A_poly and fit the
exponent.  Reported both raw and with the known additive Algorithm-A
overhead (R = 3 log_{d+1} n + 3, paid by every weight node) subtracted —
the adjusted fit is the asymptotically meaningful one at these sizes."""

import random

from harness import adjusted_average, record_table

from repro.algorithms import run_apoly
from repro.analysis import (
    alpha1_poly,
    alpha_vector_poly,
    efficiency_factor,
    fit_power_law,
    geometric_range,
)
from repro.constructions import build_weighted_construction
from repro.constructions.lowerbound import paper_lengths
from repro.lcl import Weighted25
from repro.local import random_ids

GRID = [(5, 2, 2), (9, 4, 2), (5, 2, 3)]


def run_point(n_target: int, delta: int, d: int, k: int, seed: int = 3):
    x = efficiency_factor(delta, d)
    lengths = paper_lengths(n_target // k, alpha_vector_poly(x, k))
    wi = build_weighted_construction(lengths, delta, n_target // k)
    ids = random_ids(wi.n, rng=random.Random(seed))
    tr = run_apoly(wi.graph, ids, delta, d, k)
    Weighted25(delta, d, k).verify(wi.graph, tr.outputs).raise_if_invalid()
    wfrac = len(wi.weight_nodes()) / wi.n
    return wi.n, tr.node_averaged(), adjusted_average(
        tr.node_averaged(), wi.n, d, wfrac
    )


def test_e04_thm2(benchmark):
    benchmark(run_point, 3_000, 5, 2, 2)
    rows = []
    fits = []
    for delta, d, k in GRID:
        x = efficiency_factor(delta, d)
        a1 = alpha1_poly(x, k)
        ns, avgs, adjs = [], [], []
        # top size reaches the million-node scale the shared-memory
        # substrate and array solvers target
        for n_target in geometric_range(4_000, 1_000_000, 6):
            n, avg, adj = run_point(n_target, delta, d, k)
            ns.append(n)
            avgs.append(avg)
            adjs.append(max(adj, 1e-9))
        raw_fit, _ = fit_power_law(ns, avgs)
        adj_fit, _ = fit_power_law(ns, adjs)
        fits.append((a1, raw_fit, adj_fit))
        rows.append(
            (f"D={delta},d={d},k={k}", f"{x:.3f}", f"{a1:.3f}",
             f"{raw_fit:.3f}", f"{adj_fit:.3f}")
        )
    record_table(
        "e04", "E4: Thm 2/3 — Pi^2.5 node-averaged exponent (fit over n)",
        ["params", "x", "alpha1 (pred)", "fit raw", "fit adj"], rows,
    )
    for a1, raw, adj in fits:
        # the adjusted exponent reproduces the predicted one within 30%
        assert abs(adj - a1) <= 0.3 * a1 + 0.05, (a1, raw, adj)
        # and the growth is genuinely polynomial (not log-like)
        assert raw >= 0.4 * a1, (a1, raw, adj)
