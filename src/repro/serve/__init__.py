"""Query front end over the content-addressed result store.

The expensive pipelines in this repro are build-once/query-many: the
Theorem-7 decision procedure and the node-averaged sweeps are pure
functions of their naming values, and :mod:`repro.store` persists every
result under a content address.  ``python -m repro.serve`` is the online
half of that split — it answers from the store in milliseconds:

* ``classify`` — the Theorem-7 node-averaged class of one LCL, named
  from the demo registry (:data:`repro.gap.problems.PROBLEMS`) or given
  as an inline extensional spec.  The problem is canonicalized exactly
  as the census does, so a census-populated store answers directly.
* ``curve`` — the node-averaged complexity curve of one algorithm on
  one family across sizes, assembled from stored sweep units and
  classified as flat / intermediate / linear growth.
* ``atlas`` — the published landscape atlas of one bounded problem
  space: every canonical black-white LCL mapped to its Figure-2 region
  (built and stored by ``python -m repro.gap.census --atlas --store``).
* ``stats`` — store introspection: hit/miss counters, per-kind entry
  counts and on-disk footprint.

Reads never compute.  A query whose key is absent exits with status 3
and says so — unless ``--build`` is given, which computes the missing
result through the normal pipeline (the same worker code the census and
sweeps run) and stores it, so the next query is a hit.  Served and
freshly built answers are **byte-identical**: the store carries exactly
the payload the pipelines emit.

::

    python -m repro.serve --store cas classify --problem edge_3coloring
    python -m repro.serve --store cas curve --family random_tree \
        --algorithm two_coloring --sizes 64,256 --build
    python -m repro.serve --store cas stats
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

__all__ = ["main"]

#: exit status for a query whose result is not in the store (and
#: ``--build`` was not given) — distinct from argparse's 2
EXIT_MISS = 3


def _classify(args: argparse.Namespace) -> int:
    from ..analysis.landscape import regions_for_verdict
    from ..gap.census import (
        ProblemSpec, canonical_encoding, decide_encoding, spec_from_problem,
        spec_name, verdict_key, _decode_verdict,
    )
    from ..gap.problems import PROBLEMS
    from ..store import ResultStore, canonical_json

    store = ResultStore(args.store)
    if args.problem is not None:
        factory = PROBLEMS.get(args.problem)
        if factory is None:
            print(f"unknown problem {args.problem!r}; known: "
                  f"{', '.join(sorted(PROBLEMS))}", file=sys.stderr)
            return 2
        name = args.problem
        spec = spec_from_problem(factory(), args.delta)
    else:
        try:
            raw = json.loads(args.spec)
            spec = ProblemSpec(
                int(raw["n_in"]), int(raw["n_out"]), int(raw["delta"]),
                frozenset(
                    tuple(sorted((int(i), int(o)) for i, o in ms))
                    for ms in raw["white"]
                ),
                frozenset(
                    tuple(sorted((int(i), int(o)) for i, o in ms))
                    for ms in raw["black"]
                ),
            )
        except (ValueError, KeyError, TypeError) as exc:
            print(f"bad --spec JSON: {exc}", file=sys.stderr)
            return 2
        name = "inline-spec"
    enc = canonical_encoding(spec)
    key = verdict_key(store, enc, args.ell, args.max_functions)
    payload = store.get(key)
    verdict = None if payload is None else _decode_verdict(payload)
    if verdict is None:
        if not args.build:
            print(f"miss: verdict for {spec_name(enc)} not in store "
                  f"(rerun with --build, or populate via "
                  f"python -m repro.gap.census --store)", file=sys.stderr)
            return EXIT_MISS
        decided = decide_encoding(enc, args.ell, args.max_functions)
        store.put(key, decided.to_payload())
        verdict = (decided.klass, decided.detail)
        print("computed and stored", file=sys.stderr)
    else:
        print("served from store", file=sys.stderr)
    klass, detail = verdict
    sys.stdout.write(canonical_json({
        "problem": name,
        "key": spec_name(enc),
        "verdict": klass,
        "detail": detail,
        "regions": [
            {"kind": r.kind, "low": r.low, "high": r.high,
             "source": r.source}
            for r in regions_for_verdict(klass)
        ],
    }))
    return 0


def _curve(args: argparse.Namespace) -> int:
    from ..families import get_family
    from ..gap.census import classify_growth
    from ..store import ResultStore, canonical_json
    from ..sweep import SweepRunner, get_algorithm, unit_key

    store = ResultStore(args.store)
    get_family(args.family)
    get_algorithm(args.algorithm)
    instances = args.instances or get_family(args.family).default_count
    if not args.build:
        missing = []
        for n in args.sizes:
            for index in range(instances):
                key = unit_key(store, args.family, n, args.seed, index,
                               args.algorithm, args.engine, args.id_mode,
                               args.check, args.samples)
                if key not in store:
                    missing.append((n, index))
        if missing:
            print(f"miss: {len(missing)} sweep unit(s) not in store, "
                  f"first {missing[0]} (rerun with --build, or populate "
                  f"via python -m repro.sweep --store)", file=sys.stderr)
            return EXIT_MISS
    runner = SweepRunner(
        workers=1, samples=args.samples, instances=args.instances,
        engine=args.engine, id_mode=args.id_mode, check=args.check,
        store=store,
    )
    payload = runner.run([args.family], list(args.sizes),
                         [args.algorithm], args.seed)
    if runner.last_cache["misses"] == 0:
        print("served from store", file=sys.stderr)
    else:
        print(f"computed and stored "
              f"({runner.last_cache['misses']} unit(s))", file=sys.stderr)
    points = [
        {"n": cell["n"], "node_averaged": cell["node_averaged"]["max"]}
        for cell in payload["cells"]
    ]
    growth = None
    if len(points) >= 2:
        growth = classify_growth(
            [(p["n"], p["node_averaged"]) for p in points]
        )
    sys.stdout.write(canonical_json({
        "family": args.family,
        "algorithm": args.algorithm,
        "spec": payload["spec"],
        "points": points,
        "growth": growth,
    }))
    return 0


def _atlas(args: argparse.Namespace) -> int:
    from ..gap.census import atlas_key, run_atlas
    from ..store import ResultStore, canonical_json

    store = ResultStore(args.store)
    key = atlas_key(store, args.max_labels, args.max_inputs, args.delta,
                    args.ell, args.max_functions)
    payload = store.get(key)
    if not (isinstance(payload, dict) and "atlas" in payload):
        if not args.build:
            print(f"miss: atlas for max-labels {args.max_labels} / "
                  f"delta {args.delta} not in store (rerun with --build, "
                  f"or publish via python -m repro.gap.census --atlas "
                  f"--store)", file=sys.stderr)
            return EXIT_MISS
        # build through the census pipeline with resume, so verdicts
        # already checkpointed in this store are reused, and the
        # complete atlas is published under the same key we just missed
        payload = run_atlas(
            max_labels=args.max_labels, delta=args.delta,
            max_inputs=args.max_inputs, ell=args.ell,
            max_functions=args.max_functions, workers=args.workers,
            store=store, resume=True,
        )
        print("computed and stored", file=sys.stderr)
    else:
        print("served from store", file=sys.stderr)
    sys.stdout.write(canonical_json(payload))
    return 0


def _stats(args: argparse.Namespace) -> int:
    from ..store import ResultStore, canonical_json

    sys.stdout.write(canonical_json(ResultStore(args.store).stats()))
    return 0


def _csv_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def main(argv: Optional[Sequence[str]] = None) -> int:
    from ..local.ids import ID_MODES
    from ..sweep import ENGINE_CHOICES

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Answer classification and complexity-curve queries "
        "from the content-addressed result store in milliseconds; "
        "--build computes and stores what is missing.",
    )
    parser.add_argument("--store", required=True, metavar="PATH",
                        help="result store directory (see docs/store.md)")
    sub = parser.add_subparsers(dest="command", required=True)

    classify = sub.add_parser(
        "classify",
        help="Theorem-7 node-averaged class of one LCL (exit 3 on a "
        "store miss without --build)",
    )
    which = classify.add_mutually_exclusive_group(required=True)
    which.add_argument("--problem", default=None,
                       help="demo problem name "
                       "(repro.gap.problems.PROBLEMS)")
    which.add_argument("--spec", default=None, metavar="JSON",
                       help='inline extensional spec: {"n_in", "n_out", '
                       '"delta", "white": [[[i,o],...],...], "black": ...}')
    classify.add_argument("--delta", type=int, default=2,
                          help="degree bound of the tree universe "
                          "(default: 2)")
    classify.add_argument("--ell", type=int, default=2,
                          help="compress path-length parameter "
                          "(default: 2)")
    classify.add_argument("--max-functions", type=int, default=4096,
                          help="DFS candidate budget (default: 4096)")
    classify.add_argument("--build", action="store_true",
                          help="on a miss, decide the problem and store "
                          "the verdict instead of exiting 3")
    classify.set_defaults(run=_classify)

    curve = sub.add_parser(
        "curve",
        help="node-averaged complexity curve of one algorithm on one "
        "family across sizes, from stored sweep units (exit 3 on any "
        "miss without --build)",
    )
    curve.add_argument("--family", required=True)
    curve.add_argument("--algorithm", required=True)
    curve.add_argument("--sizes", type=_csv_ints, default=[64, 256],
                       metavar="N[,N...]",
                       help="comma-separated sizes (default: 64,256)")
    curve.add_argument("--seed", type=int, default=0)
    curve.add_argument("--samples", type=int, default=3)
    curve.add_argument("--instances", type=int, default=None)
    curve.add_argument("--engine", choices=list(ENGINE_CHOICES),
                       default="auto")
    curve.add_argument("--id-mode", choices=sorted(ID_MODES),
                       default="random", dest="id_mode")
    # matches the sweep CLI default (no --check): stored units key on
    # the check flag, so the defaults must agree for CLI-populated
    # stores to answer CLI curve queries
    curve.add_argument("--check", action="store_true",
                       help="query/compute validity-checked units "
                       "(must match how the store was populated)")
    curve.add_argument("--build", action="store_true",
                       help="on misses, simulate the missing units and "
                       "store them instead of exiting 3")
    curve.set_defaults(run=_curve)

    atlas = sub.add_parser(
        "atlas",
        help="published landscape atlas of one bounded problem space "
        "(exit 3 on a store miss without --build)",
    )
    atlas.add_argument("--max-labels", type=int, default=2,
                       help="max |Sigma_out| of the atlas (default: 2)")
    atlas.add_argument("--max-inputs", type=int, default=1,
                       help="max |Sigma_in| of the atlas (default: 1)")
    atlas.add_argument("--delta", type=int, default=2,
                       help="degree bound of the tree universe "
                       "(default: 2)")
    atlas.add_argument("--ell", type=int, default=2,
                       help="compress path-length parameter (default: 2)")
    atlas.add_argument("--max-functions", type=int, default=4096,
                       help="DFS candidate budget (default: 4096)")
    atlas.add_argument("--workers", type=int, default=1,
                       help="worker processes for --build (default: 1)")
    atlas.add_argument("--build", action="store_true",
                       help="on a miss, run the census atlas pipeline "
                       "(reusing any checkpointed verdicts) and store "
                       "the atlas instead of exiting 3")
    atlas.set_defaults(run=_atlas)

    stats = sub.add_parser(
        "stats", help="store counters, per-kind entries and footprint",
    )
    stats.set_defaults(run=_stats)

    args = parser.parse_args(argv)
    return args.run(args)
