"""Adapted fast-decomposition solver for the d-free weight problem
(Section 8.1).

The paper adapts the Fast Decomposition Algorithm of [BBK+23a] to solve
the d-free weight problem with O(1) node-averaged complexity, O(log n)
worst case (Corollary 49), Copy components ``C(v)`` that are rooted trees
of diameter ``O(i_v)`` separated by Declines (Lemma 50), and — after the
reassignment of Lemma 52 — ``|C'(v)| <= 2 |C(v)|^{x'}`` with
``x' = log(D-d+1)/log(D-1)``.

**Substitution note** (see DESIGN.md): [BBK+23a]'s full marking machinery
(extra compress insertions, local-maximum bookkeeping) is not reproduced
line by line.  This module implements a simplified algorithm with the
same interface guarantees:

* a ``(1, 3, O(log n))`` rake-and-compress decomposition with the
  Observation-46 orientation (edges point from later-removed to
  earlier-removed nodes; compress interiors stay unoriented, which caps
  oriented-chain depth at the iteration index);
* input-``A`` nodes become Copy roots when their layer is assigned
  (iteration ``i_v``); their oriented span is collected, reassigned per
  Lemma 52 (each node declines up to ``d - pre(u)`` heaviest child
  subtrees, ``pre(u)`` counting the <= 2 pre-existing/unavoidable Decline
  neighbours of Lemma 48), borders are declined, everything outside
  A-spans declines at its own assignment iteration;
* per-node time: ``O(iteration at which the output became determined)``.

On the paper's workload family (balanced weight trees of Definition 25)
the unfinished-node count decays geometrically with the iteration index,
giving the O(1) node-averaged behaviour — bench E16 measures this.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lcl.dfree import A_INPUT, CONNECT, COPY, DECLINE, W_INPUT
from ..local import vec
from ..local.graph import Graph
from ..local.metrics import ExecutionTrace

__all__ = ["run_fast_dfree", "FastDFreeSolution", "CONNECT_RADIUS"]

CONNECT_RADIUS = 5
_ROUNDS_PER_ITER = 3


class FastDFreeSolution:
    """Outputs, per-node times, and Copy components of the fast solver."""

    def __init__(
        self,
        outputs: List[str],
        rounds: List[int],
        copy_component_of: Dict[int, List[int]],
        iterations: int,
    ) -> None:
        self.outputs = outputs
        self.rounds = rounds
        self.copy_component_of = copy_component_of
        self.iterations = iterations

    def as_trace(self) -> ExecutionTrace:
        return ExecutionTrace(
            rounds=list(self.rounds),
            outputs=list(self.outputs),
            algorithm="fast-dfree",
            meta={"iterations": self.iterations},
        )


def run_fast_dfree(graph: Graph, d: int, delta: Optional[int] = None) -> FastDFreeSolution:
    """Solve the d-free weight problem with the adapted fast decomposition.

    Requires ``d >= 2`` (Corollary 49's hypothesis; Lemma 48 gives each
    node at most 2 unavoidable Decline neighbours).
    """
    if d < 2:
        raise ValueError("the fast solver requires d >= 2 (Corollary 49)")
    n = graph.n
    outputs: List[Optional[str]] = [None] * n
    rounds = [0] * n
    a_nodes = [v for v in graph.nodes() if graph.input_of(v) == A_INPUT]
    for v in graph.nodes():
        if graph.input_of(v) not in (A_INPUT, W_INPUT):
            raise ValueError(f"node {v} has input {graph.input_of(v)!r}")

    # ---- Connect preprocessing: A-nodes within distance 5 --------------
    _mark_close_connects(graph, a_nodes, outputs)
    for v in graph.nodes():
        if outputs[v] == CONNECT:
            rounds[v] = CONNECT_RADIUS

    active_nodes = [v for v in graph.nodes() if outputs[v] is None]

    # ---- oriented (1, 3, L)-decomposition on the rest -------------------
    parent, iter_of, iters = _oriented_decomposition(graph, set(active_nodes))

    children: Dict[int, List[int]] = {v: [] for v in active_nodes}
    for v in active_nodes:
        p = parent.get(v)
        if p is not None:
            children[p].append(v)

    # ---- process A-nodes by assignment iteration ------------------------
    copy_component_of: Dict[int, List[int]] = {}
    pending = sorted(
        (v for v in a_nodes if outputs[v] is None),
        key=lambda v: (iter_of[v], v),
    )
    for v in pending:
        if outputs[v] is not None:
            continue  # swallowed by an earlier A-node's span
        span = _unassigned_span(v, children, outputs)
        t_base = _ROUNDS_PER_ITER * iter_of[v]
        kept = _lemma52_reassign(graph, v, span, children, outputs, d)
        # assign: kept -> Copy, rest of span -> Decline; borders -> Decline
        for u, depth in kept.items():
            outputs[u] = COPY
            rounds[u] = t_base + depth
        # declined span nodes and borders terminate at their *own*
        # assignment iteration: in [BBK+23a]'s machinery they are handled
        # by the local-maximum / compress-middle marking without waiting
        # for v (Corollary 47's geometric decay is over exactly these)
        for u in span:
            if outputs[u] is None and graph.input_of(u) != A_INPUT:
                outputs[u] = DECLINE
                rounds[u] = _ROUNDS_PER_ITER * iter_of[u] + 1
        for u in kept:
            for w in graph.neighbors(u):
                if outputs[w] is None and graph.input_of(w) != A_INPUT:
                    outputs[w] = DECLINE
                    rounds[w] = _ROUNDS_PER_ITER * iter_of[w] + 1
        copy_component_of[v] = sorted(kept)

    # ---- everything else declines at its own assignment time -----------
    for v in active_nodes:
        if outputs[v] is None:
            outputs[v] = DECLINE
            rounds[v] = _ROUNDS_PER_ITER * iter_of[v]

    return FastDFreeSolution(
        outputs=[o for o in outputs],  # type: ignore[misc]
        rounds=rounds,
        copy_component_of=copy_component_of,
        iterations=iters,
    )


def _mark_close_connects(
    graph: Graph, a_nodes: Sequence[int], outputs: List[Optional[str]]
) -> None:
    a_set = set(a_nodes)
    for src in a_nodes:
        dist = {src: 0}
        par: Dict[int, Optional[int]] = {src: None}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            if dist[u] == CONNECT_RADIUS:
                continue
            for w in graph.neighbors(u):
                if w not in dist:
                    dist[w] = dist[u] + 1
                    par[w] = u
                    queue.append(w)
        for other in dist:
            if other != src and other in a_set:
                node: Optional[int] = other
                while node is not None:
                    outputs[node] = CONNECT
                    node = par[node]


def _oriented_decomposition(
    graph: Graph, members: Set[int]
) -> Tuple[Dict[int, Optional[int]], Dict[int, int], int]:
    """Rake-compress (gamma=1, ell=3) restricted to ``members``.

    Returns (parent, iteration_of, iterations).  ``parent[v]`` is the
    unique alive neighbour at v's rake removal (edges oriented
    parent -> v per Observation 46); compress-chunk nodes get no parent,
    which caps oriented-chain depth by the iteration count.

    Dispatches to the flat-array peeling at sweep sizes; the per-node
    twin below is the differential oracle and no-numpy fallback.
    """
    if vec.use_vector_path(graph.n):
        return _oriented_decomposition_np(graph, members)
    return _oriented_decomposition_py(graph, members)


def _oriented_decomposition_np(
    graph: Graph, members: Set[int]
) -> Tuple[Dict[int, Optional[int]], Dict[int, int], int]:
    np = vec.np
    n = graph.n
    indptr, indices = vec.csr_arrays(graph)
    member = np.zeros(n, dtype=bool)
    if members:
        member[sorted(members)] = True
    deg = vec.induced_degrees(indptr, indices, member)
    alive = member.copy()
    parent_arr = np.full(n, -1, dtype=np.int64)
    iter_arr = np.zeros(n, dtype=np.int64)
    live = int(member.sum())

    def batch_remove(nodes_arr) -> None:
        nonlocal live
        alive[nodes_arr] = False
        _src, nbr = vec.expand_segments(indptr, indices, nodes_arr)
        targets = nbr[alive[nbr]]
        if targets.size:
            np.subtract.at(deg, targets, 1)
        live -= int(nodes_arr.size)

    i = 0
    while live:
        i += 1
        if i > n + 2:
            raise RuntimeError("oriented decomposition exceeded budget")
        # rake: removable nodes pair into a matching; drop larger handles
        low = alive & (deg <= 1)
        lo = np.nonzero(low)[0]
        if lo.size:
            src, nbr = vec.expand_segments(indptr, indices, lo)
            pair = low[nbr]
            chosen = low
            if pair.any():
                chosen = low.copy()
                chosen[np.maximum(src[pair], nbr[pair])] = False
            nodes = np.nonzero(chosen)[0]
            # orientation: a chosen node's unique alive non-chosen
            # neighbour (at most one, since its induced degree is <= 1)
            src, nbr = vec.expand_segments(indptr, indices, nodes)
            ok = alive[nbr] & ~chosen[nbr]
            parent_arr[src[ok]] = nbr[ok]
            iter_arr[nodes] = i
            batch_remove(nodes)
        if not live:
            break
        # compress: runs of >= 3 degree-2 nodes; interiors unoriented
        removed: List[int] = []
        for run in vec.member_paths(graph, alive & (deg == 2)):
            if len(run) >= 3:
                removed.extend(run)
        if removed:
            arr = np.array(removed, dtype=np.int64)
            iter_arr[arr] = i
            batch_remove(arr)

    parent: Dict[int, Optional[int]] = {}
    iter_of: Dict[int, int] = {}
    parents = parent_arr.tolist()
    iters = iter_arr.tolist()
    for v in np.nonzero(member)[0].tolist():
        p = parents[v]
        parent[v] = None if p == -1 else p
        iter_of[v] = iters[v]
    return parent, iter_of, i


def _oriented_decomposition_py(
    graph: Graph, members: Set[int]
) -> Tuple[Dict[int, Optional[int]], Dict[int, int], int]:
    alive = set(members)
    deg = {
        v: sum(1 for w in graph.neighbors(v) if w in members) for v in members
    }
    parent: Dict[int, Optional[int]] = {}
    iter_of: Dict[int, int] = {}
    i = 0
    while alive:
        i += 1
        if i > graph.n + 2:
            raise RuntimeError("oriented decomposition exceeded budget")
        # rake
        low = [v for v in sorted(alive) if deg[v] <= 1]
        chosen = set(low)
        for v in low:
            if v not in chosen:
                continue
            for w in graph.neighbors(v):
                if w in chosen and w > v:
                    chosen.discard(w)
        for v in sorted(chosen):
            alive_nbrs = [w for w in graph.neighbors(v) if w in alive and w != v]
            alive_nbrs = [w for w in alive_nbrs if w not in chosen]
            parent[v] = alive_nbrs[0] if alive_nbrs else None
            iter_of[v] = i
            alive.discard(v)
            for w in graph.neighbors(v):
                if w in alive:
                    deg[w] -= 1
        if not alive:
            break
        # compress: runs of >= 3 degree-2 nodes; interiors unoriented
        runs = _runs_of_degree2(graph, alive, deg)
        for run in runs:
            if len(run) < 3:
                continue
            for v in run:
                parent[v] = None
                iter_of[v] = i
                alive.discard(v)
            for v in run:
                for w in graph.neighbors(v):
                    if w in alive:
                        deg[w] -= 1
    return parent, iter_of, i


def _runs_of_degree2(graph: Graph, alive: Set[int], deg: Dict[int, int]) -> List[List[int]]:
    member = {v for v in alive if deg[v] == 2}
    runs: List[List[int]] = []
    seen: Set[int] = set()
    for start in sorted(member):
        if start in seen:
            continue
        comp = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for w in graph.neighbors(u):
                if w in member and w not in comp:
                    comp.add(w)
                    stack.append(w)
        seen |= comp
        ends = [u for u in sorted(comp)
                if sum(1 for w in graph.neighbors(u) if w in comp) <= 1]
        order = [min(ends)] if ends else [min(comp)]
        prev = None
        while True:
            nxt = [w for w in graph.neighbors(order[-1])
                   if w in comp and w != prev]
            if not nxt:
                break
            prev = order[-1]
            order.append(nxt[0])
        runs.append(order)
    return runs


def _unassigned_span(
    v: int, children: Dict[int, List[int]], outputs: List[Optional[str]]
) -> List[int]:
    """Nodes reachable from v along oriented (parent->child) edges that
    have no output yet — the raw ``C(v)`` of Lemma 50."""
    span = [v]
    stack = [v]
    seen = {v}
    while stack:
        u = stack.pop()
        for c in children.get(u, ()):
            if c not in seen and outputs[c] is None:
                seen.add(c)
                span.append(c)
                stack.append(c)
    return span


def _lemma52_reassign(
    graph: Graph,
    v: int,
    span: List[int],
    children: Dict[int, List[int]],
    outputs: List[Optional[str]],
    d: int,
) -> Dict[int, int]:
    """Lemma 52: prune the raw span to a Copy set of size
    ``O(|span|^{x'})`` while keeping every Copy node within its Decline
    budget.  Returns ``{kept node: depth from v}``.

    ``pre(u)`` counts neighbours that are already Decline or that are
    outside the span (borders, which will decline); each Copy node may
    decline up to ``d - pre(u)`` of its heaviest child subtrees.
    """
    span_set = set(span)
    size: Dict[int, int] = {u: 1 for u in span}
    has_a: Dict[int, bool] = {
        u: graph.input_of(u) == A_INPUT and u != v for u in span
    }
    stack = [(v, False)]
    while stack:
        u, done = stack.pop()
        if done:
            for c in children.get(u, ()):
                if c in span_set:
                    size[u] += size[c]
                    has_a[u] = has_a[u] or has_a[c]
            continue
        stack.append((u, True))
        for c in children.get(u, ()):
            if c in span_set:
                stack.append((c, False))

    kept: Dict[int, int] = {v: 0}
    queue = deque([v])
    while queue:
        u = queue.popleft()
        kids = [c for c in children.get(u, ()) if c in span_set]
        pre = sum(
            1
            for w in graph.neighbors(u)
            if (w not in span_set and outputs[w] in (None, DECLINE))
        )
        budget = max(0, d - pre)
        # decline the heaviest A-free child subtrees; subtrees containing
        # another A-node must stay Copy-connected (that node roots its own
        # component later and may never be declined)
        declinable = sorted(
            (c for c in kids if not has_a[c]), key=lambda c: -size[c]
        )
        declined = set(declinable[:budget])
        for c in kids:
            if c not in declined:
                kept[c] = kept[u] + 1
                queue.append(c)
    return kept
