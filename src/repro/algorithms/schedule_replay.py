"""Batched-engine wrappers that replay a centralized fast-forward schedule.

The weighted solvers (E4/E5 and their building blocks) are implemented as
centralized fast-forwards: one call computes the full ``ExecutionTrace`` —
per-node commit rounds and outputs — that the distributed algorithm would
produce.  :class:`ScheduleReplay` turns any such fast-forward into a
:class:`~repro.local.algorithm.BatchedAlgorithm`: the trace is computed
once on the first round and then committed incrementally, node ``v`` at
round ``rounds[v]``.  Because the engine starts at ``t = 0`` and commit
rounds are non-negative, the engine trace equals the fast-forward trace
exactly, which the engine-equivalence tests pin.

The wrappers never ask the :class:`~repro.local.frontier.BatchedViews`
for ball facts, so the lazy frontier scheduler performs **zero** BFS
steps — a replayed execution costs one centralized solve plus one flat
commit sweep per round, independent of the radius the underlying
algorithm would have needed.  This is what lets the ``10^6``-node sweeps
run the paper solvers under the engine contract (live-set bookkeeping,
double-commit detection, round budgets) at array speed.

Replay wrappers have no per-node ``decide``; running one on the
incremental or reference engine raises ``TypeError`` as for every
decide_batch-only algorithm.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..local.algorithm import BatchedAlgorithm
from ..local.graph import Graph
from ..local.metrics import ExecutionTrace

__all__ = [
    "ScheduleReplay",
    "replay_apoly",
    "replay_a35",
    "replay_weighted35",
    "replay_weight_augmented",
    "replay_fast_dfree",
    "replay_generic_phases",
]

FastForward = Callable[[Graph, List[int]], ExecutionTrace]


class ScheduleReplay(BatchedAlgorithm):
    """Replay a fast-forward schedule through the batched engine.

    ``fast_forward(graph, ids) -> ExecutionTrace`` is invoked lazily on
    the first ``decide_batch`` of each execution (``setup`` clears the
    cache, and the ids-identity check guards ``run_batch``'s
    one-instance-many-samples reuse); each round then commits exactly the
    nodes whose scheduled round has arrived.
    """

    def __init__(self, name: str, fast_forward: FastForward) -> None:
        self.name = name
        self._fast_forward = fast_forward
        self._ids: Optional[List[int]] = None
        self._trace: Optional[ExecutionTrace] = None

    def setup(self, graph: Graph, n: int) -> None:
        self._ids = None
        self._trace = None

    def _ensure(self, views) -> ExecutionTrace:
        if self._trace is None or self._ids is not views.ids:
            self._trace = self._fast_forward(views.graph, list(views.ids))
            self._ids = views.ids
        return self._trace

    def decide_batch(self, views, live, t: int):
        trace = self._ensure(views)
        rounds, outputs = trace.rounds, trace.outputs
        return [(v, outputs[v]) for v in live if rounds[v] <= t]

    def max_rounds_hint(self, n: int) -> int:
        # worst-case commit rounds of the wrapped solvers are O(n); leave
        # generous slack so the budget never truncates a valid schedule
        return 16 * n + 64


def replay_apoly(delta: int, d: int, k: int, **kw) -> ScheduleReplay:
    """Theorem 2's ``Pi^{2.5}`` solver as a batched algorithm."""
    from .weighted25 import run_apoly

    return ScheduleReplay(
        f"apoly-replay(delta={delta},d={d},k={k})",
        lambda graph, ids: run_apoly(graph, ids, delta, d, k, **kw),
    )


def replay_a35(delta: int, d: int, k: int, **kw) -> ScheduleReplay:
    """The Algorithm-A-weighted ``Pi^{3.5}`` baseline as a batched
    algorithm."""
    from .weighted25 import run_a35

    return ScheduleReplay(
        f"a35-replay(delta={delta},d={d},k={k})",
        lambda graph, ids: run_a35(graph, ids, delta, d, k, **kw),
    )


def replay_weighted35(delta: int, d: int, k: int, **kw) -> ScheduleReplay:
    """Theorem 5's ``Pi^{3.5}`` solver (fast d-free weight side) as a
    batched algorithm."""
    from .weighted35 import run_weighted35

    return ScheduleReplay(
        f"weighted35-replay(delta={delta},d={d},k={k})",
        lambda graph, ids: run_weighted35(graph, ids, delta, d, k, **kw),
    )


def replay_weight_augmented(k: int, **kw) -> ScheduleReplay:
    """Lemma 69's weight-augmented 2½-coloring solver as a batched
    algorithm."""
    from .labeling_solver import run_weight_augmented_solver

    return ScheduleReplay(
        f"weight-augmented-replay(k={k})",
        lambda graph, ids: run_weight_augmented_solver(graph, ids, k, **kw),
    )


def replay_fast_dfree(d: int, delta: Optional[int] = None) -> ScheduleReplay:
    """Corollary 49's d-free weight solver as a batched algorithm (the
    IDs are unused by the decomposition, as in the paper)."""
    from .fast_decomposition import run_fast_dfree

    return ScheduleReplay(
        f"fast-dfree-replay(d={d})",
        lambda graph, ids: run_fast_dfree(graph, d, delta).as_trace(),
    )


def replay_generic_phases(
    k: int,
    variant: str = "2.5",
    gammas: Optional[Sequence[int]] = None,
    **kw,
) -> ScheduleReplay:
    """The generic phase algorithm as a batched algorithm.  With
    ``gammas=None`` the phase schedule defaults per instance from
    ``graph.n`` (Lemma 14's choices for the variant)."""
    from .generic_phases import (
        default_gammas_25,
        default_gammas_35,
        run_generic_fast_forward,
    )

    def fast_forward(graph: Graph, ids: List[int]) -> ExecutionTrace:
        gs = gammas
        if gs is None:
            gs = (
                default_gammas_25(graph.n, k)
                if variant == "2.5"
                else default_gammas_35(graph.n, k)
            )
        return run_generic_fast_forward(graph, ids, k, gs, variant, **kw)

    return ScheduleReplay(f"generic-phases-replay(k={k},{variant})", fast_forward)
