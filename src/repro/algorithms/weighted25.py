"""A_poly: the algorithm for ``Pi^{2.5}_{Delta,d,k}`` (Section 7.1).

Composition of the two substrates:

* active nodes run the generic phase algorithm (Section 4.1) on their
  components with ``gamma_i = n^{alpha_i}``, the Lemma-33 exponents at
  ``x = log(Delta-1-d)/log(Delta-1)``;
* weight nodes solve the d-free weight problem with Algorithm A (every
  weight node adjacent to an active node takes input ``A``); ``Connect``
  and ``Decline`` nodes terminate at ``R = 3*ceil(log_{d+1} n) + 3``;
* each Copy component ``C(u)`` (one ``A``-node ``u`` per component,
  Observation 39) waits for an active neighbour ``v`` of ``u`` to commit,
  then floods ``v``'s output through the component as the secondary
  output — node ``w`` commits at ``max(R, T_v + 1) + dist_{C}(u, w)``.

Theorem 2: the node-averaged complexity is ``O(n^{alpha_1})``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

from ..analysis.landscape import alpha_vector_poly, efficiency_factor
from ..lcl.dfree import A_INPUT, CONNECT as DF_CONNECT, COPY as DF_COPY, W_INPUT
from ..lcl.levels import compute_levels
from ..lcl.weighted import ACTIVE, WEIGHT, connect, copy_of, decline
from ..local.graph import Graph
from ..local.metrics import ExecutionTrace
from .dfree_solver import run_algorithm_a
from .generic_phases import run_generic_fast_forward
from ..analysis.mathutil import log_star

__all__ = ["apoly_gammas", "run_weighted_solver", "run_apoly", "run_a35"]


def apoly_gammas(n: int, delta: int, d: int, k: int, regime: str = "poly") -> List[int]:
    """The phase parameters of A_poly (polynomial regime,
    ``gamma_i = n^{alpha_i}``) or of the Section-8.2 algorithm
    (``gamma_i = (log* n)^{alpha_i}`` with the relaxed ``x'``)."""
    if regime == "poly":
        x = efficiency_factor(delta, d)
        base = float(n)
    elif regime == "logstar":
        from ..analysis.landscape import alpha_vector_logstar, efficiency_factor_relaxed

        x = efficiency_factor_relaxed(delta, d)
        base = float(max(2, log_star(n)))
        return [
            max(2, int(round(base**a))) for a in alpha_vector_logstar(x, k)
        ]
    else:
        raise ValueError("regime must be 'poly' or 'logstar'")
    return [max(2, int(round(base**a))) for a in alpha_vector_poly(x, k)]


def run_weighted_solver(
    graph: Graph,
    ids: Sequence[int],
    delta: int,
    d: int,
    k: int,
    variant: str = "2.5",
    gammas: Optional[Sequence[int]] = None,
    id_exponent: int = 3,
) -> ExecutionTrace:
    """Solve ``Pi^Z_{Delta,d,k}`` on a graph with Active/Weight inputs.

    ``variant='2.5'`` is A_poly (Theorem 2); ``variant='3.5'`` is the
    Section-8.2 composition with the ``log*``-regime gammas and relaxed
    efficiency ``x'`` (Theorem 5) — here both use Algorithm A for the
    weight side; the dedicated O(1)-node-averaged weight machinery lives
    in :mod:`repro.algorithms.fast_decomposition` and is exercised by the
    Pi^{3.5} benchmarks for comparison.
    """
    n = graph.n
    active = [v for v in graph.nodes() if graph.input_of(v) == ACTIVE]
    weight = [v for v in graph.nodes() if graph.input_of(v) == WEIGHT]
    if gammas is None:
        regime = "poly" if variant == "2.5" else "logstar"
        gammas = apoly_gammas(n, delta, d, k, regime)

    rounds = [0] * n
    outputs: List = [None] * n

    # ---- active side: generic phase algorithm ------------------------
    if active:
        levels = compute_levels(graph, k, restrict=active)
        tr = run_generic_fast_forward(
            graph, ids, k, gammas, variant,
            id_exponent=id_exponent, levels=levels, restrict=active,
        )
        for v in active:
            rounds[v] = tr.rounds[v]
            outputs[v] = tr.outputs[v]

    # ---- weight side: Algorithm A on the weight forest ---------------
    if weight:
        active_set = set(active)
        sub, remap = graph.induced_subgraph(weight)
        inv = {new: old for old, new in remap.items()}
        dfree_inputs = [
            A_INPUT
            if any(w in active_set for w in graph.neighbors(inv[new]))
            else W_INPUT
            for new in sub.nodes()
        ]
        sub = sub.with_inputs(dfree_inputs)
        sol = run_algorithm_a(sub, d, n_global=n)
        R = sol.rounds

        for new in sub.nodes():
            old = inv[new]
            lab = sol.outputs[new]
            if lab == DF_CONNECT:
                outputs[old] = connect()
                rounds[old] = R
            elif lab != DF_COPY:
                outputs[old] = decline()
                rounds[old] = R

        # Copy components: flood the adopted active output
        for a_new, comp in sol.copy_component_of.items():
            if not comp:
                continue
            u = inv[a_new]
            candidates = [
                w for w in graph.neighbors(u) if w in active_set
            ]
            assert candidates, "Copy A-node without an active neighbour"
            v = min(candidates, key=lambda w: (rounds[w], ids[w]))
            secondary = outputs[v]
            start = max(R, rounds[v] + 1)
            dist = _component_distances(sub, a_new, set(comp))
            for w_new in comp:
                old = inv[w_new]
                outputs[old] = copy_of(secondary)
                rounds[old] = start + dist[w_new]

    missing = [v for v in graph.nodes() if outputs[v] is None]
    if missing:
        raise RuntimeError(f"weighted solver left {len(missing)} nodes unlabeled")
    return ExecutionTrace(
        rounds=rounds,
        outputs=outputs,
        algorithm=f"a_poly-{variant}",
        meta={"gammas": list(gammas), "dfree_rounds": R if weight else 0},
    )


def run_apoly(graph, ids, delta, d, k, **kw) -> ExecutionTrace:
    """Theorem 2's algorithm for ``Pi^{2.5}_{Delta,d,k}``."""
    return run_weighted_solver(graph, ids, delta, d, k, "2.5", **kw)


def run_a35(graph, ids, delta, d, k, **kw) -> ExecutionTrace:
    """The Section-8.2-style composition for ``Pi^{3.5}_{Delta,d,k}``
    using Algorithm A for the weight side (baseline; the O(1)-averaged
    weight solver is in :mod:`repro.algorithms.weighted35`)."""
    return run_weighted_solver(graph, ids, delta, d, k, "3.5", **kw)


def _component_distances(graph: Graph, source: int, comp: set) -> Dict[int, int]:
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w in comp and w not in dist:
                dist[w] = dist[u] + 1
                queue.append(w)
    return dist
