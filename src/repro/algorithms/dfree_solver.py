"""Algorithm A for the d-free weight problem (Section 7).

Given a forest with inputs ``A`` (weight nodes touching an active node) and
``W``, with ``L = ceil(log_{d+1} n)``:

* every node on a path of length <= ``2L + 2`` between two ``A``-nodes
  outputs ``Connect``;
* every remaining ``A``-node ``v`` takes its radius-``(L+1)`` ball
  ``U^_v``, forces the frontier (distance exactly ``L+1``) to ``Decline``,
  and assigns ``Copy``/``Decline`` inside so that ``v`` copies, every
  ``Copy`` node has at most ``d`` ``Decline`` neighbours, and the number
  of ``Copy`` nodes is minimum (paper property 5);
* everything else declines.

All nodes decide after ``R = 3L + 3`` rounds (worst case O(log n),
Corollary 38).  Two assignment procedures are provided:

* :func:`astar_assignment` — the sequential ``A*`` of Lemma 37's proof
  (decline the ``d`` heaviest subtrees under every Copy node), which
  witnesses feasibility and the Lemma 40 bound
  ``|U^_Copy| <= 6 |U^|^x`` with ``x = log(D-1-d)/log(D-1)``;
* :func:`optimal_copy_assignment` — an exact tree DP minimizing the Copy
  count (never worse than ``A*``, so the Lemma 40 bound transfers).
  The DP minimum is also the quantity Lemma 23 lower-bounds by ``w^x``
  on balanced trees — bench E8 measures exactly this.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lcl.dfree import A_INPUT, CONNECT, COPY, DECLINE, W_INPUT
from ..local.algorithm import CONTINUE, LocalAlgorithm, View
from ..local.graph import Graph

__all__ = [
    "dfree_radius",
    "run_algorithm_a",
    "astar_assignment",
    "optimal_copy_assignment",
    "DFreeSolution",
    "DFreeAlgorithmA",
]

_INF = float("inf")


def dfree_radius(n: int, d: int) -> Tuple[int, int]:
    """``(L, R) = (ceil(log_{d+1} n), 3L + 3)``."""
    if n < 1 or d < 1:
        raise ValueError("need n >= 1 and d >= 1")
    L = max(1, math.ceil(math.log(max(2, n), d + 1)))
    return L, 3 * L + 3


@dataclass
class DFreeSolution:
    """Output of Algorithm A plus bookkeeping for the Pi^Z solvers."""

    outputs: List[str]
    rounds: int                      # common termination round R = 3L + 3
    L: int
    copy_component_of: Dict[int, List[int]]
    # for each A-node v that outputs Copy: the connected Copy-component
    # around it (a subtree of its radius-L ball, Observation 39)


def run_algorithm_a(
    graph: Graph,
    d: int,
    n_global: Optional[int] = None,
    optimal: bool = True,
) -> DFreeSolution:
    """Run Algorithm A on a d-free instance (inputs ``A``/``W``).

    ``n_global`` is the network size used for the radius schedule (defaults
    to ``graph.n``; the Pi^Z solvers pass the full network size).
    ``optimal=True`` uses the exact DP; ``False`` uses the sequential A*.
    """
    n = n_global if n_global is not None else graph.n
    L, R = dfree_radius(n, d)
    outputs: List[Optional[str]] = [None] * graph.n
    a_nodes = [v for v in graph.nodes() if graph.input_of(v) == A_INPUT]
    for v in graph.nodes():
        if graph.input_of(v) not in (A_INPUT, W_INPUT):
            raise ValueError(f"node {v} has input {graph.input_of(v)!r}")

    _mark_connect_paths(graph, a_nodes, 2 * L + 2, outputs)

    copy_component_of: Dict[int, List[int]] = {}
    for v in a_nodes:
        if outputs[v] == CONNECT:
            continue
        ball = graph.ball(v, L + 1)
        frontier = {u for u, dist in ball.items() if dist == L + 1}
        assign = (optimal_copy_assignment if optimal else astar_assignment)(
            graph, v, set(ball), frontier, d
        )
        for u, lab in assign.items():
            if outputs[u] is None:
                outputs[u] = lab
        copy_component_of[v] = _copy_component(graph, v, assign)

    for v in graph.nodes():
        if outputs[v] is None:
            outputs[v] = DECLINE
    return DFreeSolution(
        outputs=[o for o in outputs],  # type: ignore[misc]
        rounds=R,
        L=L,
        copy_component_of=copy_component_of,
    )


def _mark_connect_paths(
    graph: Graph, a_nodes: Sequence[int], max_len: int, outputs: List[Optional[str]]
) -> None:
    """Mark every node on a path of length <= max_len between two A-nodes."""
    a_set = set(a_nodes)
    indptr, indices = graph.adjacency()
    for src in a_nodes:
        dist = {src: 0}
        parent: Dict[int, Optional[int]] = {src: None}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            if dist[u] == max_len:
                continue
            for i in range(indptr[u], indptr[u + 1]):
                w = indices[i]
                if w not in dist:
                    dist[w] = dist[u] + 1
                    parent[w] = u
                    queue.append(w)
        for other in dist:
            if other != src and other in a_set:
                node: Optional[int] = other
                while node is not None:
                    outputs[node] = CONNECT
                    node = parent[node]


def _copy_component(graph: Graph, v: int, assign: Dict[int, str]) -> List[int]:
    """The connected component of Copy nodes containing ``v``."""
    if assign.get(v) != COPY:
        return []
    comp = {v}
    stack = [v]
    while stack:
        u = stack.pop()
        for w in graph.neighbors(u):
            if w not in comp and assign.get(w) == COPY:
                comp.add(w)
                stack.append(w)
    return sorted(comp)


class DFreeAlgorithmA(LocalAlgorithm):
    """Algorithm A as a simulator algorithm: every node commits its
    ``Copy``/``Decline``/``Connect`` label at the common round
    ``R = 3L + 3``.

    The per-round behaviour (``CONTINUE`` until ``R``, commit at ``R``)
    is what the engines execute and compare; the decision rule itself
    uses the standard simulation shortcut — the paper proves every output
    of Algorithm A is a function of the radius-``R`` ball (Corollary 38:
    Connect paths have length ``<= 2L + 2``, assignment balls radius
    ``L + 1``), so the wrapper computes the centralized solution once per
    execution and reads each node's label out of it instead of re-deriving
    it ball by ball.  Deterministic in the IDs-free sense: the solution
    depends only on the topology and inputs, never on the ID assignment.
    """

    def __init__(self, d: int, optimal: bool = True) -> None:
        self.d = d
        self.optimal = optimal
        self.name = f"dfree-algorithm-a-d{d}"
        self._R = 0
        self._solution: Optional[DFreeSolution] = None
        self._solution_graph: Optional[Graph] = None

    def setup(self, graph: Graph, n: int) -> None:
        self._R = dfree_radius(n, self.d)[1]
        # the solution is a pure function of the (immutable) topology and
        # inputs — never of the IDs — so the memo survives across the ID
        # samples of a run_batch and only drops on a new graph
        if self._solution_graph is not graph:
            self._solution = None
            self._solution_graph = graph

    def _solve(self, graph: Graph, n: int) -> DFreeSolution:
        if self._solution is None:
            self._solution = run_algorithm_a(
                graph, self.d, n_global=n, optimal=self.optimal
            )
        return self._solution

    def decide(self, view: View, n: int):
        if view.round < self._R:
            return CONTINUE
        return self._solve(view.graph, n).outputs[view.center]

    def decide_batch(self, views, live, t: int):
        """Batched form: one centralized solve, then the whole live set
        commits at once when the schedule fires."""
        if t < self._R:
            return []
        outputs = self._solve(views.graph, views.n).outputs
        return [(v, outputs[v]) for v in live]

    def max_rounds_hint(self, n: int) -> int:
        return dfree_radius(n, self.d)[1] + 4


# ----------------------------------------------------------------------
# sequential A* (Lemma 37)
# ----------------------------------------------------------------------
def astar_assignment(
    graph: Graph, root: int, ball: Set[int], frontier: Set[int], d: int
) -> Dict[int, str]:
    """The Lemma-37 procedure: root copies; every Copy node declines its
    ``min(d, #children)`` heaviest child subtrees and copies the rest."""
    children, order = _rooted(graph, root, ball)
    subtree_size = {u: 1 for u in ball}
    for u in reversed(order):
        for c in children[u]:
            subtree_size[u] += subtree_size[c]

    assign: Dict[int, str] = {}

    def decline_subtree(u: int) -> None:
        stack = [u]
        while stack:
            x = stack.pop()
            assign[x] = DECLINE
            stack.extend(children[x])

    assign[root] = COPY
    queue = deque([root])
    while queue:
        u = queue.popleft()
        kids = sorted(children[u], key=lambda c: -subtree_size[c])
        budget = min(d, len(kids))
        for c in kids[:budget]:
            decline_subtree(c)
        for c in kids[budget:]:
            assign[c] = COPY
            queue.append(c)
    # frontier must decline; A* guarantees this when the ball radius is
    # >= log_{d+1} of the ball size (Lemma 37) — enforce defensively
    for u in frontier:
        if assign.get(u) == COPY:
            raise AssertionError("A* pushed Copy onto the ball frontier")
    return assign


# ----------------------------------------------------------------------
# exact DP (property 5: minimum number of Copy nodes)
# ----------------------------------------------------------------------
def optimal_copy_assignment(
    graph: Graph, root: int, ball: Set[int], frontier: Set[int], d: int
) -> Dict[int, str]:
    """Minimum-Copy assignment on the ball rooted at ``root``.

    Constraints: root copies; frontier declines; a Copy node has at most
    ``d`` Decline neighbours.  ``cost[u][lab][pd]`` = min copies in the
    subtree of ``u`` given ``u``'s label and whether its parent declines.
    """
    children, order = _rooted(graph, root, ball)
    cost: Dict[int, Dict[str, Dict[bool, float]]] = {}
    choice: Dict[int, Dict[str, Dict[bool, Tuple[int, ...]]]] = {}

    for u in reversed(order):
        cost[u] = {COPY: {}, DECLINE: {}}
        choice[u] = {COPY: {}, DECLINE: {}}
        kids = children[u]
        for pd in (False, True):
            # u declines: children unconstrained at u, but see pd=True
            total = 0.0
            for c in kids:
                total += min(cost[c][COPY][True], cost[c][DECLINE][True])
            cost[u][DECLINE][pd] = total
            # u copies
            if u in frontier and u != root:
                cost[u][COPY][pd] = _INF
                choice[u][COPY][pd] = ()
                continue
            budget = d - (1 if pd else 0)
            forced = [c for c in kids if cost[c][COPY][False] == _INF]
            optional = [c for c in kids if cost[c][COPY][False] < _INF]
            if len(forced) > budget:
                cost[u][COPY][pd] = _INF
                choice[u][COPY][pd] = ()
                continue
            declined: List[int] = list(forced)
            total = 1.0
            total += sum(cost[c][DECLINE][False] for c in forced)
            total += sum(cost[c][COPY][False] for c in optional)
            deltas = sorted(
                (cost[c][DECLINE][False] - cost[c][COPY][False], c)
                for c in optional
            )
            for delta, c in deltas:
                if len(declined) >= budget or delta >= 0:
                    break
                total += delta
                declined.append(c)
            cost[u][COPY][pd] = total
            choice[u][COPY][pd] = tuple(declined)

    if cost[root][COPY][False] == _INF:
        raise AssertionError("no feasible assignment with Copy at the root")

    assign: Dict[int, str] = {}
    stack: List[Tuple[int, str, bool]] = [(root, COPY, False)]
    while stack:
        u, lab, pd = stack.pop()
        assign[u] = lab
        if lab == DECLINE:
            for c in children[u]:
                best = (
                    COPY
                    if cost[c][COPY][True] <= cost[c][DECLINE][True]
                    else DECLINE
                )
                stack.append((c, best, True))
        else:
            declined = set(choice[u][COPY][pd])
            for c in children[u]:
                stack.append((c, DECLINE if c in declined else COPY, False))
    return assign


def _rooted(
    graph: Graph, root: int, ball: Set[int]
) -> Tuple[Dict[int, List[int]], List[int]]:
    """Children lists and a BFS order of the ball viewed as a tree rooted
    at ``root``."""
    children: Dict[int, List[int]] = {u: [] for u in ball}
    order = [root]
    seen = {root}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w in ball and w not in seen:
                seen.add(w)
                children[u].append(w)
                order.append(w)
                queue.append(w)
    return children, order
