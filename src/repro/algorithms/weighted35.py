"""The generic algorithm for ``Pi^{3.5}_{Delta,d,k}`` (Section 8.2,
Theorem 5).

Composition:

* active nodes run the generic phase algorithm (variant 3.5) with
  ``gamma_i = (log* n)^{alpha_i}``, the Lemma-36 exponents evaluated at
  the *relaxed* efficiency ``x' = log(Delta-d+1)/log(Delta-1)`` — this is
  what makes the upper bound ``O((log* n)^{alpha_1(x')})`` instead of the
  lower bound's ``alpha_1(x)``;
* weight nodes run the adapted fast-decomposition d-free solver
  (:mod:`repro.algorithms.fast_decomposition`): Decline/Connect nodes
  terminate at O(1) node-averaged time (Corollary 49), Copy components
  ``C'(v)`` have size ``O(|C(v)|^{x'})`` (Lemma 52);
* each Copy component floods the output of an active neighbour of its
  root as secondary output once that active node has committed.

Requires ``d >= 3`` and ``Delta >= d + 3`` (Theorem 5's hypotheses; the
fast solver itself needs ``d >= 2``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence

from ..lcl.dfree import A_INPUT, CONNECT as DF_CONNECT, COPY as DF_COPY, W_INPUT
from ..lcl.levels import compute_levels
from ..lcl.weighted import ACTIVE, WEIGHT, connect, copy_of, decline
from ..local.graph import Graph
from ..local.metrics import ExecutionTrace
from .fast_decomposition import run_fast_dfree
from .generic_phases import run_generic_fast_forward
from .weighted25 import apoly_gammas

__all__ = ["run_weighted35"]


def run_weighted35(
    graph: Graph,
    ids: Sequence[int],
    delta: int,
    d: int,
    k: int,
    gammas: Sequence[int] = None,
    id_exponent: int = 3,
) -> ExecutionTrace:
    """Theorem 5's algorithm for ``Pi^{3.5}_{Delta,d,k}``."""
    if d < 3 or delta < d + 3:
        raise ValueError("Theorem 5 requires d >= 3 and Delta >= d + 3")
    n = graph.n
    active = [v for v in graph.nodes() if graph.input_of(v) == ACTIVE]
    weight = [v for v in graph.nodes() if graph.input_of(v) == WEIGHT]
    if gammas is None:
        gammas = apoly_gammas(n, delta, d, k, "logstar")

    rounds = [0] * n
    outputs: List = [None] * n

    if active:
        levels = compute_levels(graph, k, restrict=active)
        tr = run_generic_fast_forward(
            graph, ids, k, gammas, "3.5",
            id_exponent=id_exponent, levels=levels, restrict=active,
        )
        for v in active:
            rounds[v] = tr.rounds[v]
            outputs[v] = tr.outputs[v]

    if weight:
        active_set = set(active)
        sub, remap = graph.induced_subgraph(weight)
        inv = {new: old for old, new in remap.items()}
        dfree_inputs = [
            A_INPUT
            if any(w in active_set for w in graph.neighbors(inv[new]))
            else W_INPUT
            for new in sub.nodes()
        ]
        sub = sub.with_inputs(dfree_inputs)
        sol = run_fast_dfree(sub, d, delta)

        for new in sub.nodes():
            old = inv[new]
            lab = sol.outputs[new]
            if lab == DF_CONNECT:
                outputs[old] = connect()
                rounds[old] = sol.rounds[new]
            elif lab != DF_COPY:
                outputs[old] = decline()
                rounds[old] = sol.rounds[new]

        for a_new, comp in sol.copy_component_of.items():
            if not comp:
                continue
            u = inv[a_new]
            candidates = [w for w in graph.neighbors(u) if w in active_set]
            assert candidates, "Copy root without an active neighbour"
            v = min(candidates, key=lambda w: (rounds[w], ids[w]))
            secondary = outputs[v]
            start = max(sol.rounds[a_new], rounds[v] + 1)
            dist = _component_distances(sub, a_new, set(comp))
            for w_new in comp:
                old = inv[w_new]
                outputs[old] = copy_of(secondary)
                rounds[old] = start + dist[w_new]

    missing = [v for v in graph.nodes() if outputs[v] is None]
    if missing:
        raise RuntimeError(f"weighted35 left {len(missing)} nodes unlabeled")
    return ExecutionTrace(
        rounds=rounds,
        outputs=outputs,
        algorithm="weighted35-fast",
        meta={"gammas": list(gammas)},
    )


def _component_distances(graph: Graph, source: int, comp: set) -> Dict[int, int]:
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w in comp and w not in dist:
                dist[w] = dist[u] + 1
                queue.append(w)
    return dist
