"""The generic phase algorithm for k-hierarchical 2½-/3½-coloring
(Section 4.1).

Phases ``i = 1..k-1`` with parameters ``gamma_1..gamma_{k-1}``:

* *fixing paths of level i*: among the not-yet-terminated nodes, each
  maximal path of level-``i`` nodes of length (node count) ``>= gamma_i``
  outputs ``D``; shorter paths see themselves entirely and 2-colour
  canonically (``W``/``B`` alternating from the smaller-ID endpoint).
  Decisions land ``2 * gamma_i`` rounds into the phase (the paper's charge).
* *E-propagation*: nodes of level ``> i`` adjacent to a lower-level node
  labeled ``W/B/E`` output ``E``; iterated (< k steps, one round each).

Phase ``k``: surviving level-``k`` paths are 2-coloured in linear time
(variant 2.5) or 3-coloured with Cole–Vishkin mapped onto ``R/G/Y``
(variant 3.5).  Level-``(k+1)`` nodes output ``E`` as soon as they know
their level.

Two executors with identical ``(T_v, output)`` semantics:

* :func:`run_generic_fast_forward` — centralized replay of the schedule
  (used for large-``n`` benchmarks);
* :class:`GenericPhaseColoring` — a faithful message-passing LOCAL
  state machine (tests assert it agrees with the fast-forward).

The round schedule both follow: levels are known at round ``k + 2``
(``k+1`` peeling exchanges plus one level-announcement exchange);
``S_1 = k + 2``; phase ``i`` decides at ``S_i + 2*gamma_i``; its
E-propagation occupies the next ``k + 1`` rounds, so
``S_{i+1} = S_i + 2*gamma_i + k + 2``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..lcl.hierarchical import B, D, E, W, COLORS_3
from ..lcl.levels import compute_levels
from ..local import vec
from ..local.graph import Graph
from ..local.ids import id_space_size
from ..local.metrics import ExecutionTrace
from .symmetry_breaking import cv_total_rounds, three_color_path

__all__ = [
    "phase_schedule",
    "default_gammas_25",
    "default_gammas_35",
    "run_generic_fast_forward",
]


def phase_schedule(k: int, gammas: Sequence[int]) -> List[int]:
    """Start rounds ``S_1..S_k`` of the phases."""
    if len(gammas) != k - 1:
        raise ValueError("need exactly k-1 gamma values")
    starts = [k + 2]
    for g in gammas:
        starts.append(starts[-1] + 2 * g + k + 2)
    return starts


def default_gammas_25(n: int, k: int, alpha1: Optional[float] = None) -> List[int]:
    """``gamma_i = n^{alpha_i}`` with ``alpha_i = (2-x)^{i-1} alpha_1``;
    the unweighted problem is the ``x = 0`` case (``gamma_i = t^{2^{i-1}}``
    for ``t = n^{1/(2^k - 1)}``, Lemma 14's choice)."""
    from ..analysis.landscape import alpha1_poly

    # alpha_i = (2 - x)^{i-1} * alpha_1; the unweighted default is x = 0,
    # where the ratio between consecutive exponents is exactly 2.
    a1 = alpha1 if alpha1 is not None else alpha1_poly(0.0, k)
    gammas = []
    a = a1
    for _ in range(k - 1):
        gammas.append(max(2, int(round(n**a))))
        a *= 2.0
    return gammas


def default_gammas_35(n: int, k: int) -> List[int]:
    """``gamma_i = t^{2^{i-1}}`` for ``t = (log* n)^{1/2^{k-1}}``
    (Lemma 14)."""
    from ..analysis.mathutil import log_star

    t = max(2.0, float(log_star(n))) ** (1.0 / 2 ** (k - 1))
    return [max(2, int(round(t ** (2 ** (i - 1))))) for i in range(1, k)]


# ----------------------------------------------------------------------
# fast-forward executor
# ----------------------------------------------------------------------
def run_generic_fast_forward(
    graph: Graph,
    ids: Sequence[int],
    k: int,
    gammas: Sequence[int],
    variant: str = "2.5",
    id_exponent: int = 3,
    levels: Optional[Sequence[int]] = None,
    restrict: Optional[Sequence[int]] = None,
    time_offset: int = 0,
) -> ExecutionTrace:
    """Centralized replay of the generic phase algorithm.

    ``restrict`` runs the algorithm on an induced node subset (used by the
    weighted solvers on active components); nodes outside get ``T_v = 0``
    and output ``None``.  ``time_offset`` shifts all commit times (for
    embedding into a larger execution).
    """
    n = graph.n
    if variant not in ("2.5", "3.5"):
        raise ValueError("variant must be '2.5' or '3.5'")
    member = [True] * n if restrict is None else _member_mask(n, restrict)
    if levels is None:
        levels = compute_levels(
            graph, k, restrict=None if restrict is None else restrict
        )

    starts = phase_schedule(k, gammas)
    rounds = [0] * n
    outputs: List = [None] * n
    alive = [member[v] for v in range(n)]
    meta: Dict = {"phase_starts": list(starts), "remaining_after_phase": {}}

    # level-(k+1) nodes: E as soon as the level is known
    for v in range(n):
        if member[v] and levels[v] == k + 1:
            _commit(v, E, k + 2 + time_offset, rounds, outputs, alive)

    for i in range(1, k):
        gamma = gammas[i - 1]
        decide_at = starts[i - 1] + 2 * gamma
        for path in _alive_level_paths(graph, levels, alive, i):
            if len(path) >= gamma:
                for v in path:
                    _commit(v, D, decide_at + time_offset, rounds, outputs, alive)
            else:
                for v, col in zip(path, _canonical_2coloring(path, ids)):
                    _commit(v, col, decide_at + time_offset, rounds, outputs, alive)
        _propagate_exempt(
            graph, levels, alive, rounds, outputs, k,
            start_time=decide_at + 1 + time_offset,
        )
        meta["remaining_after_phase"][i] = sum(alive)

    # phase k
    s_k = starts[k - 1]
    space = id_space_size(max(2, n), id_exponent)
    for path in _alive_level_paths(graph, levels, alive, k):
        if variant == "2.5":
            colors = _canonical_2coloring(path, ids)
            m = len(path)
            for idx, (v, col) in enumerate(zip(path, colors)):
                # endpoint-flags travel with the gathered segments, so a
                # node knows its whole path after exactly ecc exchanges
                ecc = max(idx, m - 1 - idx)
                _commit(v, col, s_k + ecc + time_offset, rounds, outputs, alive)
        else:
            cv_colors, t_cv = three_color_path([ids[v] for v in path], space)
            for v, c in zip(path, cv_colors):
                _commit(
                    v, COLORS_3[c], s_k + t_cv + time_offset, rounds, outputs, alive
                )
    _propagate_exempt(
        graph, levels, alive, rounds, outputs, k,
        start_time=s_k + 1 + time_offset, allow_level_k_plus=True,
    )
    meta["remaining_after_phase"][k] = sum(alive)

    stranded = [v for v in range(n) if alive[v]]
    if stranded:
        raise RuntimeError(f"generic algorithm left {len(stranded)} nodes alive")
    return ExecutionTrace(
        rounds=rounds, outputs=outputs,
        algorithm=f"generic-phases-{variant}", meta=meta,
    )


def _member_mask(n: int, restrict: Sequence[int]) -> List[bool]:
    mask = [False] * n
    for v in restrict:
        mask[v] = True
    return mask


def _commit(v, label, t, rounds, outputs, alive) -> None:
    assert alive[v], f"double commit at node {v}"
    rounds[v] = t
    outputs[v] = label
    alive[v] = False


def _alive_level_paths(
    graph: Graph, levels: Sequence[int], alive: Sequence[bool], i: int
) -> List[List[int]]:
    """Maximal paths of alive level-``i`` nodes, in path order.

    At sweep sizes the member mask goes through
    :func:`repro.local.vec.member_paths` (same component order, same
    path orientation); the per-node tracer below is the differential
    twin and the no-numpy fallback.
    """
    if vec.use_vector_path(graph.n):
        np = vec.np
        member = np.array(alive, dtype=bool) & (
            np.array(levels, dtype=np.int64) == i
        )
        try:
            return vec.member_paths(graph, member)
        except ValueError:
            raise AssertionError(f"level-{i} alive component is not a path")
    return _alive_level_paths_py(graph, levels, alive, i)


def _alive_level_paths_py(
    graph: Graph, levels: Sequence[int], alive: Sequence[bool], i: int
) -> List[List[int]]:
    members = {v for v in graph.nodes() if alive[v] and levels[v] == i}
    paths: List[List[int]] = []
    seen: set = set()
    indptr, indices = graph.adjacency()

    def same(v: int) -> List[int]:
        return [w for w in indices[indptr[v]:indptr[v + 1]] if w in members]

    for v in sorted(members):
        if v in seen:
            continue
        comp = {v}
        stack = [v]
        while stack:
            u = stack.pop()
            for w in same(u):
                if w not in comp:
                    comp.add(w)
                    stack.append(w)
        degs = {u: sum(1 for w in same(u) if w in comp) for u in comp}
        assert all(d <= 2 for d in degs.values()), (
            f"level-{i} alive component is not a path"
        )
        ends = [u for u in sorted(comp) if degs[u] <= 1]
        order = [min(ends)]
        prev = None
        while True:
            nxt = [w for w in same(order[-1]) if w != prev and w in comp]
            if not nxt:
                break
            prev = order[-1]
            order.append(nxt[0])
        seen.update(comp)
        paths.append(order)
    return paths


def _canonical_2coloring(path: Sequence[int], ids: Sequence[int]) -> List[str]:
    """``W/B`` alternation anchored at the endpoint with the smaller ID."""
    if ids[path[0]] <= ids[path[-1]]:
        first = 0
    else:
        first = (len(path) - 1) % 2
    return [W if (idx - first) % 2 == 0 else B for idx in range(len(path))]


def _propagate_exempt(
    graph: Graph,
    levels: Sequence[int],
    alive: List[bool],
    rounds: List[int],
    outputs: List,
    k: int,
    start_time: int,
    allow_level_k_plus: bool = False,
) -> None:
    """Iterated E-assignment: an alive node of level ``2..k`` with a
    lower-level neighbour labeled ``W/B/E`` outputs ``E``; one step per
    round, at most ``k`` steps (levels strictly increase along chains)."""
    if vec.use_vector_path(graph.n):
        _propagate_exempt_np(
            graph, levels, alive, rounds, outputs, k, start_time
        )
        return
    _propagate_exempt_py(graph, levels, alive, rounds, outputs, k, start_time)


def _propagate_exempt_np(
    graph: Graph,
    levels: Sequence[int],
    alive: List[bool],
    rounds: List[int],
    outputs: List,
    k: int,
    start_time: int,
) -> None:
    """Vectorized stepping: each round gathers the eligible nodes' incident
    edges once instead of scanning every node's neighbourhood in Python.
    Commits still go through ``_commit`` so the caller's list state stays
    the source of truth."""
    np = vec.np
    n = graph.n
    indptr, indices = vec.csr_arrays(graph)
    lv = np.array(levels, dtype=np.int64)
    elig = np.array(alive, dtype=bool) & (lv >= 2) & (lv <= k)
    trig = np.zeros(n, dtype=bool)
    trig[[v for v in range(n) if outputs[v] in (W, B, E)]] = True
    step = 0
    while True:
        candidates = np.nonzero(elig)[0]
        if candidates.size == 0:
            break
        src, nbr = vec.expand_segments(indptr, indices, candidates)
        hit = trig[nbr] & (lv[nbr] > 0) & (lv[nbr] < lv[src])
        newly = np.unique(src[hit])
        if newly.size == 0:
            break
        for v in newly.tolist():
            _commit(v, E, start_time + step, rounds, outputs, alive)
        elig[newly] = False
        trig[newly] = True
        step += 1
        assert step <= k + 1, "E-propagation exceeded its window"


def _propagate_exempt_py(
    graph: Graph,
    levels: Sequence[int],
    alive: List[bool],
    rounds: List[int],
    outputs: List,
    k: int,
    start_time: int,
) -> None:
    indptr, indices = graph.adjacency()
    step = 0
    while True:
        newly = []
        for v in graph.nodes():
            if not alive[v]:
                continue
            lv = levels[v]
            if lv < 2 or lv > k:
                continue
            for i in range(indptr[v], indptr[v + 1]):
                w = indices[i]
                if 0 < levels[w] < lv and outputs[w] in (W, B, E):
                    newly.append(v)
                    break
        if not newly:
            break
        for v in newly:
            _commit(v, E, start_time + step, rounds, outputs, alive)
        step += 1
        assert step <= k + 1, "E-propagation exceeded its window"
