"""Baseline algorithms for comparisons.

* :class:`WaitForWholeGraph` — the trivial worst-case-optimal solver:
  every node gathers the entire graph and computes a canonical solution
  centrally (``T_v = ecc(v) + 1``).  Every LCL admits it; its
  node-averaged complexity is Theta(diameter), the upper anchor against
  which the paper's algorithms are compared.
* :func:`run_naive_weighted25` — solves ``Pi^{2.5}`` by having every
  weight node wait for the full active solution before copying:
  node-averaged Theta(worst case), the "no Decline" strawman from the
  paper's introduction (Section 1.2).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Sequence

from ..lcl.weighted import ACTIVE, WEIGHT, copy_of, decline
from ..local.algorithm import CONTINUE, LocalAlgorithm, View
from ..local.graph import Graph
from ..local.metrics import ExecutionTrace
from .generic_phases import run_generic_fast_forward
from ..lcl.levels import compute_levels

__all__ = ["WaitForWholeGraph", "run_naive_weighted25"]


class WaitForWholeGraph(LocalAlgorithm):
    """Gather everything, then apply a canonical centralized solver."""

    name = "wait-for-whole-graph"

    def __init__(self, solve: Callable[[Graph, Sequence[int]], list]) -> None:
        """``solve(graph, ids) -> outputs`` is the centralized rule; it is
        evaluated identically by every node once it sees the whole
        component."""
        self._solve = solve
        self._cache: dict = {}
        self._comp_of: Optional[List[int]] = None
        self._comp_graph: Optional[Graph] = None

    def setup(self, graph: Graph, n: int) -> None:
        # the solve memo depends on the IDs, so it resets every run; the
        # component map is topology-only and survives across the ID
        # samples of a run_batch, dropping only on a new graph
        self._cache = {}
        if self._comp_graph is not graph:
            self._comp_of = None
            self._comp_graph = graph

    def decide(self, view: View, n: int):
        if len(view.nodes()) < n and not view.sees_whole_component():
            return CONTINUE
        # memoize per component (keyed by its smallest handle): every node
        # of a component masks IDs outside it identically, but distinct
        # components see distinct ID vectors and need their own solve
        key = min(view.nodes())
        if key not in self._cache:
            ids = [view.id_of(u) if view.contains(u) else 0 for u in range(n)]
            self._cache[key] = self._solve(view.graph, ids)
        return self._cache[key][view.center]

    def decide_batch(self, views, live, t: int):
        """Batched form: readiness comes straight from the scheduler's flat
        completeness/size arrays, and the per-component solve memo is
        shared with :meth:`decide` (a node commits exactly when its ball
        provably covers its component, so the masked ID vector the
        per-node path builds from its ball equals the component mask)."""
        n = views.n
        ready = views.ready(live)
        if not len(ready):
            return []
        if self._comp_of is None:
            self._comp_of = [0] * n
            for comp in views.graph.connected_components():
                # comp[0] is the smallest handle in the component — the
                # same key min(view.nodes()) yields in the per-node path
                for u in comp:
                    self._comp_of[u] = comp[0]
        comp_of, ids = self._comp_of, views.ids
        decided = []
        for v in ready.tolist():
            key = comp_of[v]
            if key not in self._cache:
                masked = [ids[u] if comp_of[u] == key else 0 for u in range(n)]
                self._cache[key] = self._solve(views.graph, masked)
            decided.append((v, self._cache[key][v]))
        return decided

    def max_rounds_hint(self, n: int) -> int:
        return n + 2


def run_naive_weighted25(
    graph: Graph, ids: Sequence[int], delta: int, d: int, k: int,
    gammas=None,
) -> ExecutionTrace:
    """Strawman for ``Pi^{2.5}``: every weight node copies (no Declines),
    so outputs must flood through entire weight trees — per-node times are
    active-time + distance, which drags the average up to the worst case
    (this is the 'grave error' discussed in Section 1.2)."""
    from .weighted25 import apoly_gammas

    n = graph.n
    active = [v for v in graph.nodes() if graph.input_of(v) == ACTIVE]
    weight = set(graph.nodes()) - set(active)
    if gammas is None:
        gammas = apoly_gammas(n, delta, d, k, "poly")

    rounds = [0] * n
    outputs: List = [None] * n
    if active:
        levels = compute_levels(graph, k, restrict=active)
        tr = run_generic_fast_forward(
            graph, ids, k, gammas, "2.5", levels=levels, restrict=active
        )
        for v in active:
            rounds[v] = tr.rounds[v]
            outputs[v] = tr.outputs[v]

    # flood every weight component from its active attachment points
    indptr, indices = graph.adjacency()
    active_set = set(active)
    seen = set()
    for w in sorted(weight):
        if w in seen:
            continue
        comp = [w]
        seen.add(w)
        stack = [w]
        while stack:
            u = stack.pop()
            for i in range(indptr[u], indptr[u + 1]):
                x = indices[i]
                if x in weight and x not in seen:
                    seen.add(x)
                    comp.append(x)
                    stack.append(x)
        sources = [
            (u, a)
            for u in comp
            for a in indices[indptr[u]:indptr[u + 1]]
            if a in active_set
        ]
        if not sources:
            for u in comp:
                outputs[u] = decline()
                rounds[u] = 1
            continue
        src, anchor = min(sources, key=lambda p: (rounds[p[1]], ids[p[1]]))
        secondary = outputs[anchor]
        start = rounds[anchor] + 1
        dist = {src: 0}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            for i in range(indptr[u], indptr[u + 1]):
                x = indices[i]
                if x in weight and x not in dist:
                    dist[x] = dist[u] + 1
                    queue.append(x)
        for u in comp:
            outputs[u] = copy_of(secondary)
            rounds[u] = start + dist[u]
    return ExecutionTrace(
        rounds=rounds, outputs=outputs, algorithm="naive-weighted25", meta={}
    )
