"""Symmetry breaking on paths: Cole–Vishkin 3-coloring and canonical
2-coloring.

These are the two primitives of the generic phase algorithm (Section 4.1):
phase ``k`` of 3½-coloring 3-colours the surviving level-``k`` paths in
``O(log* n)`` rounds [Lin92], and phase ``k`` of 2½-coloring 2-colours them
in linear time (2-coloring needs to see the whole path — this is what makes
2½-coloring polynomially hard and gives the ``Theta(n)`` node-averaged
baseline of Corollary 60 / experiment E12).

Cole–Vishkin needs an out-degree-1 orientation, but orienting path edges
toward the larger ID gives out-degree up to 2 (local minima point both
ways).  We therefore use the standard forest decomposition: rank each
node's outgoing edges by target ID, obtaining two forests ``F1``/``F2``
with out-degree <= 1 each; run the CV bit-trick on both forests in
parallel to 6 colours, shed to 3 colours per forest, and finally shed the
9 composite colours down to 3 on the path.  Total rounds:
``cv_iterations(space) + 9``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..local.algorithm import CONTINUE, LocalAlgorithm, View
from ..local.graph import Graph
from ..local.ids import id_space_size
from ..local.message import MessageAlgorithm, NodeInfo

__all__ = [
    "cv_iterations",
    "cv_total_rounds",
    "cv_step",
    "three_color_path",
    "ColeVishkin3Coloring",
    "CanonicalTwoColoring",
    "two_coloring_fast_forward",
]

_SHED_ROUNDS = 9  # 3 per-forest rounds (6 -> 3) + 6 composite rounds (9 -> 3)

#: lowest colour of {0, 1, 2} present in an availability bitmask — the
#: vectorized ``next(c for c in (0, 1, 2) if c not in used)``; index 0
#: (no colour free) cannot occur on degree-<=2 neighbourhoods.
_LOWEST_FREE = np.array([-1, 0, 1, 0, 2, 0, 1, 0], dtype=np.int64)


# ----------------------------------------------------------------------
# schedule and pure steps
# ----------------------------------------------------------------------
def cv_iterations(space: int) -> int:
    """Bit-trick iterations to reach <= 6 colours from labels in
    ``{0..space}`` — the deterministic schedule every node derives from
    ``n`` (this is where the ``log*`` comes from)."""
    if space < 1:
        raise ValueError("space must be >= 1")
    k = space + 1
    iters = 0
    while k > 6:
        bits = max(1, math.ceil(math.log2(k)))
        k = 2 * bits
        iters += 1
    return iters


def cv_total_rounds(space: int) -> int:
    """Iterations plus the nine colour-shedding rounds."""
    return cv_iterations(space) + _SHED_ROUNDS


def cv_step(label: int, parent_label: Optional[int]) -> int:
    """One Cole–Vishkin iteration: ``2*i + bit_i(label)`` for the least bit
    position ``i`` where ``label`` differs from the parent's label; roots
    keep ``<0, bit_0>``."""
    if parent_label is None:
        return label & 1
    diff = label ^ parent_label
    assert diff != 0, "CV step requires distinct adjacent labels"
    i = (diff & -diff).bit_length() - 1
    return 2 * i + ((label >> i) & 1)


def _forest_parents(ids: Sequence[int], neighbors: Sequence[Sequence[int]]):
    """Per-forest parent of each node: outgoing (larger-ID) neighbours
    ranked ascending; rank 0 -> F1, rank 1 -> F2.  Returns two parent
    arrays (entries are node indices or None)."""
    p1: List[Optional[int]] = []
    p2: List[Optional[int]] = []
    for i, nbrs in enumerate(neighbors):
        larger = sorted((j for j in nbrs if ids[j] > ids[i]), key=lambda j: ids[j])
        p1.append(larger[0] if len(larger) >= 1 else None)
        p2.append(larger[1] if len(larger) >= 2 else None)
    return p1, p2


def three_color_path(ids: Sequence[int], space: int) -> Tuple[List[int], int]:
    """Fast-forward Cole–Vishkin on one path (IDs given in path order).

    Returns ``(colors, rounds)``: a proper 3-coloring in {0,1,2} plus the
    common per-node round count ``cv_total_rounds(space)``.  Exactly the
    procedure :class:`ColeVishkin3Coloring` runs distributedly; tests
    assert agreement.
    """
    m = len(ids)
    if m == 0:
        return [], 0
    if len(set(ids)) != m:
        raise ValueError("IDs on a path must be distinct")
    neighbors = [[j for j in (i - 1, i + 1) if 0 <= j < m] for i in range(m)]
    p1, p2 = _forest_parents(ids, neighbors)
    labels1 = list(ids)
    labels2 = list(ids)
    for _ in range(cv_iterations(space)):
        labels1 = [
            cv_step(labels1[i], labels1[p1[i]] if p1[i] is not None else None)
            for i in range(m)
        ]
        labels2 = [
            cv_step(labels2[i], labels2[p2[i]] if p2[i] is not None else None)
            for i in range(m)
        ]
    # per-forest shedding 5, 4, 3 (forest degree <= 2 on a path)
    forest_nbrs = [_forest_neighbor_lists(p, m) for p in (p1, p2)]
    for color in (5, 4, 3):
        labels1 = _shed(labels1, forest_nbrs[0], color, (0, 1, 2))
        labels2 = _shed(labels2, forest_nbrs[1], color, (0, 1, 2))
    composite = [3 * a + b for a, b in zip(labels1, labels2)]
    for color in (8, 7, 6, 5, 4, 3):
        composite = _shed(composite, neighbors, color, (0, 1, 2))
    assert all(composite[i] != composite[j] for i in range(m) for j in neighbors[i])
    assert all(0 <= c <= 2 for c in composite)
    return composite, cv_total_rounds(space)


def _forest_neighbor_lists(parent: Sequence[Optional[int]], m: int) -> List[List[int]]:
    nbrs: List[List[int]] = [[] for _ in range(m)]
    for child, par in enumerate(parent):
        if par is not None:
            nbrs[child].append(par)
            nbrs[par].append(child)
    return nbrs


def _shed(
    labels: List[int],
    neighbors: Sequence[Sequence[int]],
    color: int,
    palette: Tuple[int, ...],
) -> List[int]:
    """One shedding round: nodes holding ``color`` recolour greedily into
    ``palette`` avoiding neighbours' current labels (degree < len(palette)
    guarantees a free colour; two ``color`` nodes are never adjacent)."""
    out = list(labels)
    for v, lab in enumerate(labels):
        if lab == color:
            used = {labels[w] for w in neighbors[v]}
            out[v] = next(c for c in palette if c not in used)
    return out


# ----------------------------------------------------------------------
# distributed Cole-Vishkin (message passing)
# ----------------------------------------------------------------------
class _CVState:
    __slots__ = ("vid", "l1", "l2", "nbr_vids", "p1", "p2", "composite")

    def __init__(self, vid: int) -> None:
        self.vid = vid
        self.l1 = vid
        self.l2 = vid
        self.nbr_vids: Optional[Tuple[int, ...]] = None
        self.p1: Optional[int] = None  # index into the neighbour list
        self.p2: Optional[int] = None
        self.composite: Optional[int] = None


class ColeVishkin3Coloring(MessageAlgorithm):
    """Distributed 3-coloring of paths (max degree 2) in O(log* n) rounds.

    All nodes follow the fixed schedule derived from the ID space
    ``{1..n^c}`` and commit simultaneously at ``cv_total_rounds(n^c)`` —
    node-averaged equals worst case, which is optimal up to constants for
    3-coloring on paths (Lemma 16 / [Feu17]).

    Messages carry ``(vid, l1, l2, parent1_vid, parent2_vid)`` so that
    nodes can identify their children per forest during shedding.
    """

    name = "cole-vishkin-3coloring"

    def __init__(self, id_exponent: int = 3) -> None:
        self.id_exponent = id_exponent
        self._iters = 0
        self._total = 0
        self._bstate: Optional[dict] = None

    def setup(self, graph: Graph, n: int) -> None:
        if graph.max_degree() > 2:
            raise ValueError("Cole-Vishkin path coloring requires max degree 2")
        space = id_space_size(n, self.id_exponent)
        self._iters = cv_iterations(space)
        self._total = self._iters + _SHED_ROUNDS
        self._bstate = None  # per-execution batched state

    def init_state(self, info: NodeInfo, n: int) -> _CVState:
        return _CVState(info.vid)

    def message(self, state: _CVState, t: int):
        p1_vid = (
            state.nbr_vids[state.p1]
            if state.nbr_vids is not None and state.p1 is not None
            else None
        )
        p2_vid = (
            state.nbr_vids[state.p2]
            if state.nbr_vids is not None and state.p2 is not None
            else None
        )
        return (state.vid, state.l1, state.l2, p1_vid, p2_vid,
                state.composite)

    def transition(self, state: _CVState, incoming: Sequence, t: int) -> _CVState:
        if state.nbr_vids is None:
            state.nbr_vids = tuple(msg[0] for msg in incoming)
            larger = sorted(
                (i for i, vid in enumerate(state.nbr_vids) if vid > state.vid),
                key=lambda i: state.nbr_vids[i],
            )
            state.p1 = larger[0] if len(larger) >= 1 else None
            state.p2 = larger[1] if len(larger) >= 2 else None

        if t < self._iters:
            pl1 = incoming[state.p1][1] if state.p1 is not None else None
            pl2 = incoming[state.p2][2] if state.p2 is not None else None
            state.l1 = cv_step(state.l1, pl1)
            state.l2 = cv_step(state.l2, pl2)
        elif t < self._iters + 3:
            color = 5 - (t - self._iters)
            state.l1 = self._shed_forest(state, incoming, forest=1, color=color)
            state.l2 = self._shed_forest(state, incoming, forest=2, color=color)
            if t == self._iters + 2:
                state.composite = 3 * state.l1 + state.l2
        elif t < self._total:
            color = 8 - (t - self._iters - 3)
            if state.composite == color:
                used = {msg[5] for msg in incoming}
                state.composite = next(c for c in (0, 1, 2) if c not in used)
        return state

    def _shed_forest(self, state: _CVState, incoming: Sequence, forest: int,
                     color: int) -> int:
        label = state.l1 if forest == 1 else state.l2
        if label != color:
            return label
        used = set()
        parent_idx = state.p1 if forest == 1 else state.p2
        if parent_idx is not None:
            used.add(incoming[parent_idx][forest])
        parent_slot = 3 if forest == 1 else 4
        for i, msg in enumerate(incoming):
            if msg[parent_slot] == state.vid:  # i is my child in this forest
                used.add(msg[forest])
        return next(c for c in (0, 1, 2) if c not in used)

    def decide(self, state: _CVState, t: int):
        if t >= self._total:
            return state.composite
        return CONTINUE

    def max_rounds_hint(self, n: int) -> int:
        return self._total + 4 if self._total else 64

    # ------------------------------------------------------------------
    # batched execution: the same schedule as flat array sweeps
    # ------------------------------------------------------------------
    def decide_batch(self, views, live, t: int):
        """Vectorized form for the batched engine: the per-node message
        state machine becomes five int64 arrays (two forest labels, two
        parent pointers, the composite) advanced by whole-array bit
        tricks, one round per call — same schedule, same labels, all
        nodes commit together at ``cv_total_rounds``.  Never touches the
        frontier scheduler (the CV schedule needs no ball facts), so a
        batched run does zero BFS work."""
        if t >= self._total:
            comp = self._bstate["comp"]
            return [(v, int(comp[v])) for v in live]
        st = self._bstate
        if st is None:
            st = self._bstate = self._batch_init(views)
        iters = self._iters
        if t < iters:
            self._batch_cv_step(st)
        elif t < iters + 3:
            color = 5 - (t - iters)
            for key, parent in (("l1", st["p1"]), ("l2", st["p2"])):
                st[key] = self._batch_shed_forest(st[key], parent, color)
            if t == iters + 2:
                st["comp"] = 3 * st["l1"] + st["l2"]
        else:
            color = 8 - (t - iters - 3)
            st["comp"] = self._batch_shed_composite(st, color)
        return []

    @staticmethod
    def _batch_init(views) -> dict:
        from ..local.frontier import csr_numpy

        graph, n = views.graph, views.n
        ids = np.asarray(views.ids, dtype=np.int64)
        # degree <= 2 (enforced by setup): pad adjacency to an (n, 2)
        # array, -1 marking missing slots
        ip, ix = csr_numpy(graph)
        deg = ip[1:] - ip[:-1]
        nbr = np.full((n, 2), -1, dtype=np.int64)
        has1 = deg >= 1
        nbr[has1, 0] = ix[ip[:-1][has1]]
        has2 = deg >= 2
        nbr[has2, 1] = ix[ip[:-1][has2] + 1]
        # forest parents: the (up to two) larger-ID neighbours, ranked
        # ascending by ID — identical to _forest_parents / transition()
        a, b = nbr[:, 0], nbr[:, 1]
        ia = np.where(a >= 0, ids[a], np.int64(-1))
        ib = np.where(b >= 0, ids[b], np.int64(-1))
        a_big, b_big = ia > ids, ib > ids
        both = a_big & b_big
        a_first = both & (ia < ib)
        b_first = both & ~a_first
        p1 = np.where(a_big & ~b_big, a, np.where(b_big & ~a_big, b, -1))
        p1 = np.where(a_first, a, np.where(b_first, b, p1))
        p2 = np.where(a_first, b, np.where(b_first, a, np.int64(-1)))
        return {"nbr": nbr, "p1": p1, "p2": p2,
                "l1": ids.copy(), "l2": ids.copy(), "comp": None}

    @staticmethod
    def _batch_cv_step(st: dict) -> None:
        """One Cole–Vishkin iteration on both forests at once (cv_step
        vectorized: lsb position via exact log2 of a power of two)."""
        for key, parent in (("l1", st["p1"]), ("l2", st["p2"])):
            lab = st[key]
            rooted = parent < 0
            diff = np.where(rooted, np.int64(1), lab ^ lab[parent])
            assert diff.all(), "CV step requires distinct adjacent labels"
            lsb = diff & -diff
            i = np.log2(lsb.astype(np.float64)).astype(np.int64)
            st[key] = np.where(rooted, lab & 1, 2 * i + ((lab >> i) & 1))

    @staticmethod
    def _batch_shed_forest(lab, parent, color: int):
        """One simultaneous per-forest shedding round: nodes holding
        ``color`` take the lowest colour in {0,1,2} absent from their
        forest neighbourhood (parent + children), from the pre-round
        labels — exactly ``_shed_forest``."""
        used = np.zeros(len(lab), dtype=np.int64)
        has_parent = parent >= 0
        used[has_parent] |= np.int64(1) << lab[parent[has_parent]]
        np.bitwise_or.at(
            used, parent[has_parent], np.int64(1) << lab[has_parent]
        )
        return np.where(lab == color, _LOWEST_FREE[~used & 7], lab)

    @staticmethod
    def _batch_shed_composite(st: dict, color: int):
        """One simultaneous composite shedding round over the real graph
        neighbourhoods (degree <= 2)."""
        comp, nbr = st["comp"], st["nbr"]
        used = np.zeros(len(comp), dtype=np.int64)
        for j in (0, 1):
            col = nbr[:, j]
            has = col >= 0
            used[has] |= np.int64(1) << comp[col[has]]
        return np.where(comp == color, _LOWEST_FREE[~used & 7], comp)


# ----------------------------------------------------------------------
# canonical 2-coloring (view based)
# ----------------------------------------------------------------------
class CanonicalTwoColoring(LocalAlgorithm):
    """Proper 2-coloring of forests: colour = parity of distance to the
    minimum-ID node of the component.

    A node must provably see its whole component before committing (the
    canonical root cannot be known earlier), so ``T_v = ecc(v) + 1``, or
    ``ecc(v)`` when the ball already counts all ``n`` nodes — the
    ``Theta(n)`` node-averaged baseline of Corollary 60.
    """

    name = "canonical-2coloring"

    def __init__(self) -> None:
        self._colors: Optional[List[int]] = None

    def setup(self, graph: Graph, n: int) -> None:
        self._colors = None  # per-execution memo (IDs change across runs)

    def decide(self, view: View, n: int):
        ball = view.nodes()
        if len(ball) < n and not view.sees_whole_component():
            return CONTINUE
        root = min(ball, key=view.id_of)
        return _tree_parity(view, root)

    def decide_batch(self, views, live, t: int):
        """Batched form: component-completeness comes from the scheduler's
        flat arrays, and each component's canonical coloring is computed
        once (one BFS from its min-ID root) instead of once per member —
        a node's commit-time ball *is* its component, so the per-node
        parity computation returns exactly these colours."""
        ready = views.ready(live)
        if not len(ready):
            return []
        if self._colors is None:
            graph, ids = views.graph, views.ids
            colors = [0] * views.n
            for _comp, _root, dist_root in _canonical_component_roots(
                graph, ids
            ):
                for w, d in dist_root.items():
                    colors[w] = d % 2
            self._colors = colors
        colors = self._colors
        return [(v, colors[v]) for v in ready.tolist()]

    def max_rounds_hint(self, n: int) -> int:
        return n + 2


def _tree_parity(view: View, root: int) -> int:
    """Parity of the tree distance from ``root`` to the view's centre."""
    from collections import deque

    ball = view.nodes()
    dist = {root: 0}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for w in view.neighbors(u):
            if w in ball and w not in dist:
                dist[w] = dist[u] + 1
                queue.append(w)
    return dist[view.center] % 2


def _canonical_component_roots(graph: Graph, ids: Sequence[int]):
    """Per component: ``(members, root, dist_from_root)`` with the root at
    the min-ID node — the one canonical rule every executor of the
    2-coloring (per-node, batched, fast-forward) derives its colors from
    (``color = dist % 2``)."""
    out = []
    for comp in graph.connected_components():
        root = min(comp, key=lambda v: ids[v])
        out.append((comp, root, _component_bfs(graph, root)))
    return out


def two_coloring_fast_forward(
    graph: Graph, ids: Sequence[int]
) -> Tuple[List[int], List[int]]:
    """Fast-forward of :class:`CanonicalTwoColoring`: ``(colors, rounds)``.

    ``T_v = ecc(v) + 1`` within its component, or ``ecc(v)`` when the
    component is the whole graph (the ball then provably counts all n
    nodes at radius ecc already).
    """
    n = graph.n
    colors = [0] * n
    rounds = [0] * n
    for comp, _root, dist_root in _canonical_component_roots(graph, ids):
        whole = len(comp) == n
        for v in comp:
            colors[v] = dist_root[v] % 2
        # On a tree, ecc(v) = max distance to either end of a diameter
        # (two-sweep BFS), so all eccentricities come from three passes.
        a = max(dist_root, key=dist_root.get)
        dist_a = _component_bfs(graph, a)
        b = max(dist_a, key=dist_a.get)
        dist_b = _component_bfs(graph, b)
        for v in comp:
            ecc = max(dist_a[v], dist_b[v])
            rounds[v] = ecc if whole else ecc + 1
    return colors, rounds


def _component_bfs(graph: Graph, source: int) -> dict:
    """Distances within ``source``'s component (a BFS cannot leave it)."""
    return {
        w: r for r, layer in enumerate(graph.bfs_layers([source])) for w in layer
    }
