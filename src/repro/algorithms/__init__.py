"""The paper's algorithms: upper bounds, decompositions, and baselines."""

from .baselines import WaitForWholeGraph, run_naive_weighted25
from .dfree_solver import (
    DFreeAlgorithmA,
    DFreeSolution,
    astar_assignment,
    dfree_radius,
    optimal_copy_assignment,
    run_algorithm_a,
)
from .fast_decomposition import FastDFreeSolution, run_fast_dfree
from .generic_message import GenericPhaseColoring
from .generic_phases import (
    default_gammas_25,
    default_gammas_35,
    phase_schedule,
    run_generic_fast_forward,
)
from .labeling_solver import (
    LabelingSolution,
    run_weight_augmented_solver,
    solve_hierarchical_labeling,
)
from .schedule_replay import (
    ScheduleReplay,
    replay_a35,
    replay_apoly,
    replay_fast_dfree,
    replay_generic_phases,
    replay_weight_augmented,
    replay_weighted35,
)
from .rake_compress import (
    Decomposition,
    Layer,
    RakeCompressLayering,
    gamma_for_k_layers,
    rake_compress,
    validate_decomposition,
)
from .symmetry_breaking import (
    CanonicalTwoColoring,
    ColeVishkin3Coloring,
    cv_iterations,
    cv_total_rounds,
    three_color_path,
    two_coloring_fast_forward,
)
from .weighted25 import apoly_gammas, run_a35, run_apoly, run_weighted_solver
from .weighted35 import run_weighted35

__all__ = [
    "WaitForWholeGraph",
    "run_naive_weighted25",
    "DFreeAlgorithmA",
    "DFreeSolution",
    "astar_assignment",
    "dfree_radius",
    "optimal_copy_assignment",
    "run_algorithm_a",
    "FastDFreeSolution",
    "run_fast_dfree",
    "GenericPhaseColoring",
    "default_gammas_25",
    "default_gammas_35",
    "phase_schedule",
    "run_generic_fast_forward",
    "LabelingSolution",
    "run_weight_augmented_solver",
    "solve_hierarchical_labeling",
    "ScheduleReplay",
    "replay_a35",
    "replay_apoly",
    "replay_fast_dfree",
    "replay_generic_phases",
    "replay_weight_augmented",
    "replay_weighted35",
    "Decomposition",
    "Layer",
    "RakeCompressLayering",
    "gamma_for_k_layers",
    "rake_compress",
    "validate_decomposition",
    "CanonicalTwoColoring",
    "ColeVishkin3Coloring",
    "cv_iterations",
    "cv_total_rounds",
    "three_color_path",
    "two_coloring_fast_forward",
    "apoly_gammas",
    "run_a35",
    "run_apoly",
    "run_weighted_solver",
    "run_weighted35",
]
