"""Faithful message-passing implementation of the generic phase algorithm.

Runs the exact protocol :func:`repro.algorithms.generic_phases.
run_generic_fast_forward` replays centrally — distributed level peeling,
per-phase path gathering with the paper's ``2*gamma_i`` charge,
E-propagation one hop per round, and (for 3½) an embedded Cole–Vishkin on
the surviving level-``k`` paths.  Tests assert the two executors produce
identical ``(T_v, output)`` maps.

Round schedule (shared with the fast-forward):

* transitions ``0..k-1``: peeling (level ``i`` fixed at transition
  ``i-1``; unassigned nodes become level ``k+1``);
* level-``(k+1)`` nodes commit ``E`` at round ``k+2``;
* phase ``i``: gathering starts at transition ``S_i - 1``; the output is
  fixed at transition ``S_i + 2*gamma_i - 1`` and committed at
  ``S_i + 2*gamma_i``;
* E-propagation: an alive node seeing a lower-level ``W/B/E`` neighbour
  fixes ``E`` immediately (one hop per round);
* phase ``k``: 2½ gathers the whole path (commit at ``S_k + ecc``);
  3½ runs Cole–Vishkin (commit at ``S_k + cv_total_rounds``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..lcl.hierarchical import B, COLORS_3, D, E, W
from ..local.algorithm import CONTINUE
from ..local.graph import Graph
from ..local.ids import id_space_size
from ..local.message import MessageAlgorithm, NodeInfo
from .symmetry_breaking import cv_iterations, cv_step
from .generic_phases import phase_schedule

__all__ = ["GenericPhaseColoring"]


class _State:
    __slots__ = (
        "vid", "handle", "neighbors", "degree",
        "level", "nbr_level", "out", "commit_at",
        "chains", "side_nbrs", "cv",
    )

    def __init__(self, info: NodeInfo) -> None:
        self.vid = info.vid
        self.handle = info.handle
        self.neighbors = info.neighbors
        self.degree = info.degree
        self.level: Optional[int] = None
        self.nbr_level: Dict[int, Optional[int]] = {}
        self.out = None
        self.commit_at: Optional[int] = None
        # phase gathering: per same-level alive neighbour handle ->
        # (segment of vids going away from that neighbour, closed flag)
        self.chains: Optional[Dict[int, Tuple[Tuple[int, ...], bool]]] = None
        self.side_nbrs: Optional[List[int]] = None
        self.cv: Optional[dict] = None


class GenericPhaseColoring(MessageAlgorithm):
    """Distributed generic phase algorithm for k-hierarchical Z-coloring."""

    def __init__(
        self,
        k: int,
        gammas: Sequence[int],
        variant: str = "2.5",
        id_exponent: int = 3,
    ) -> None:
        if variant not in ("2.5", "3.5"):
            raise ValueError("variant must be '2.5' or '3.5'")
        if len(gammas) != k - 1:
            raise ValueError("need exactly k-1 gamma values")
        self.k = k
        self.gammas = list(gammas)
        self.variant = variant
        self.id_exponent = id_exponent
        self.name = f"generic-phases-{variant}-message"
        self._starts = phase_schedule(k, gammas)
        self._cv_iters = 0
        self._replay: Optional[Dict[int, List[Tuple[int, str]]]] = None

    def setup(self, graph: Graph, n: int) -> None:
        self._cv_iters = cv_iterations(id_space_size(max(2, n), self.id_exponent))
        self._replay = None  # per-execution batched schedule

    # ------------------------------------------------------------------
    def init_state(self, info: NodeInfo, n: int) -> _State:
        return _State(info)

    def message(self, state: _State, t: int):
        # state.cv is mutated in place by transition(); snapshot it so the
        # broadcast reflects this round's state, not the receiver-side
        # mutations that happen later in the same simulator step.
        return {
            "h": state.handle,
            "vid": state.vid,
            "level": state.level,
            "out": state.out,
            "chains": state.chains,
            "cv": dict(state.cv) if state.cv is not None else None,
        }

    def decide(self, state: _State, t: int):
        if state.commit_at is not None and t >= state.commit_at:
            return state.out
        return CONTINUE

    def max_rounds_hint(self, n: int) -> int:
        return self._starts[-1] + 4 * n + self._cv_iters + 64

    def decide_batch(self, views, live, t: int):
        """Batched form: the whole-graph commit schedule is computed once
        and then emitted round by round from a ``round -> [(node, label)]``
        table.  On forests the schedule comes from the centralized
        fast-forward (which replays exactly this state machine — the two
        executors are differentially tested), replacing per-node chain
        gathering for every node and round.  On graphs with cycle
        components the fast-forward's level-path walk is undefined, but
        the state machine itself is not — there the schedule is derived
        from one global run of the message dynamics, exactly what the
        incremental engine executes, so the engines stay observationally
        identical on the algorithm's full input domain."""
        if self._replay is None:
            graph, ids = views.graph, views.ids
            if graph.is_forest():
                from .generic_phases import run_generic_fast_forward

                trace = run_generic_fast_forward(
                    graph, ids, self.k, self.gammas, self.variant,
                    id_exponent=self.id_exponent,
                )
                rounds, outs = trace.rounds, trace.outputs
            else:
                from ..local.message import run_message_dynamics

                rounds, outs = run_message_dynamics(
                    graph, self, list(ids), views.budget,
                    neighbor_lists=views.neighbor_lists(),
                )
            by_round: Dict[int, List[Tuple[int, str]]] = {}
            for v, (r, out) in enumerate(zip(rounds, outs)):
                by_round.setdefault(r, []).append((v, out))
            self._replay = by_round
        return self._replay.get(t, [])

    # ------------------------------------------------------------------
    def transition(self, state: _State, incoming: Sequence, t: int) -> _State:
        k = self.k
        by_handle = {msg["h"]: msg for msg in incoming}

        # --- peeling: level i fixed at transition i-1 ------------------
        if state.level is None:
            peeled = sum(1 for msg in incoming if msg["level"] is not None)
            if state.degree - peeled <= 2 and t <= k - 1:
                state.level = t + 1
            elif t == k - 1:
                state.level = k + 1
        for msg in incoming:
            if msg["level"] is not None:
                state.nbr_level[msg["h"]] = msg["level"]

        if state.out is not None:
            return state  # already fixed; keep relaying

        lv = state.level
        if lv is None:
            return state

        # --- level k+1: unconditional E (fixed at transition k+1 so the
        # output becomes visible exactly at its commit round k+2) --------
        if lv == k + 1:
            if state.commit_at is None and t >= k + 1:
                state.out = E
                state.commit_at = k + 2
            return state

        # --- E-propagation (always armed; triggers only in windows) ----
        if 2 <= lv <= k:
            for msg in incoming:
                nbl = state.nbr_level.get(msg["h"])
                if nbl is not None and 0 < nbl < lv and msg["out"] in (W, B, E):
                    state.out = E
                    state.commit_at = t + 1
                    return state

        # --- phase machinery for my own level --------------------------
        s_i = self._starts[lv - 1]
        if t < s_i - 1:
            return state

        if lv < k:
            self._phase_path(state, by_handle, t, s_i, self.gammas[lv - 1])
        elif self.variant == "2.5":
            self._phase_path(state, by_handle, t, s_i, None)
        else:
            self._phase_cv(state, by_handle, t, s_i)
        return state

    # ------------------------------------------------------------------
    def _alive_same_level(self, state: _State, by_handle) -> List[int]:
        out = []
        for h in state.neighbors:
            msg = by_handle.get(h)
            if (
                msg is not None
                and state.nbr_level.get(h) == state.level
                and msg["out"] is None
            ):
                out.append(h)
        return out

    def _phase_path(self, state: _State, by_handle, t: int, s_i: int,
                    gamma: Optional[int]) -> None:
        """Chain gathering and the coloring/D decision for a path phase.

        ``gamma=None`` means phase k of the 2.5 variant: gather the whole
        path and commit as soon as both sides are closed.
        """
        if state.chains is None:
            state.side_nbrs = self._alive_same_level(state, by_handle)
            assert len(state.side_nbrs) <= 2, "level path degree violation"
            state.chains = {}
        cap = gamma if gamma is not None else None

        new_chains: Dict[int, Tuple[Tuple[int, ...], bool]] = {}
        for h in state.side_nbrs:
            others = [o for o in state.side_nbrs if o != h]
            seg: Tuple[int, ...] = (state.vid,)
            closed = not others
            if others:
                o_msg = by_handle.get(others[0])
                o_chain = o_msg["chains"] if o_msg else None
                if o_chain and state.handle in o_chain:
                    ext, ext_closed = o_chain[state.handle]
                    seg = (state.vid,) + ext
                    closed = ext_closed
            if cap is not None and len(seg) > cap:
                seg = seg[:cap]
                closed = False
            new_chains[h] = (seg, closed)
        state.chains = new_chains

        # assemble my current view of the path
        segs = []
        for h in state.side_nbrs:
            msg = by_handle.get(h)
            ch = msg["chains"] if msg else None
            if ch and state.handle in ch:
                segs.append(ch[state.handle])
            else:
                segs.append(((), False))
        while len(segs) < 2:
            segs.append(((), True))
        (left, left_closed), (right, right_closed) = segs[0], segs[1]
        vids = tuple(reversed(left)) + (state.vid,) + right
        complete = left_closed and right_closed

        if gamma is not None:
            if t == s_i + 2 * gamma - 1:
                if complete and len(vids) < gamma:
                    state.out = _canonical_color(vids, len(left))
                else:
                    state.out = D
                state.commit_at = t + 1
        else:
            if complete and state.commit_at is None:
                state.out = _canonical_color(vids, len(left))
                state.commit_at = t + 1

    def _phase_cv(self, state: _State, by_handle, t: int, s_k: int) -> None:
        """Embedded Cole–Vishkin on the surviving level-k path (3.5)."""
        if state.cv is None:
            nbrs = self._alive_same_level(state, by_handle)
            larger = sorted(
                (h for h in nbrs if by_handle[h]["vid"] > state.vid),
                key=lambda h: by_handle[h]["vid"],
            )
            state.cv = {
                "l1": state.vid, "l2": state.vid,
                "p1": larger[0] if len(larger) >= 1 else None,
                "p2": larger[1] if len(larger) >= 2 else None,
                "nbrs": nbrs,
                "comp": None,
            }
            return  # initialized at transition s_k - 1; labels go out at s_k

        cv = state.cv
        j = t - s_k
        iters = self._cv_iters
        if j < iters:
            pl1 = by_handle[cv["p1"]]["cv"]["l1"] if cv["p1"] is not None else None
            pl2 = by_handle[cv["p2"]]["cv"]["l2"] if cv["p2"] is not None else None
            cv["l1"] = cv_step(cv["l1"], pl1)
            cv["l2"] = cv_step(cv["l2"], pl2)
        elif j < iters + 3:
            color = 5 - (j - iters)
            cv["l1"] = self._shed_forest(state, by_handle, 1, color)
            cv["l2"] = self._shed_forest(state, by_handle, 2, color)
            if j == iters + 2:
                cv["comp"] = 3 * cv["l1"] + cv["l2"]
        elif j < iters + 9:
            color = 8 - (j - iters - 3)
            if cv["comp"] == color:
                used = {
                    by_handle[h]["cv"]["comp"]
                    for h in cv["nbrs"]
                    if by_handle.get(h) and by_handle[h]["cv"]
                }
                cv["comp"] = next(c for c in (0, 1, 2) if c not in used)
            if j == iters + 8:
                state.out = COLORS_3[cv["comp"]]
                state.commit_at = t + 1

    def _shed_forest(self, state: _State, by_handle, forest: int, color: int) -> int:
        cv = state.cv
        key = "l1" if forest == 1 else "l2"
        label = cv[key]
        if label != color:
            return label
        used = set()
        parent = cv["p1"] if forest == 1 else cv["p2"]
        if parent is not None:
            used.add(by_handle[parent]["cv"][key])
        pkey = "p1" if forest == 1 else "p2"
        for h in cv["nbrs"]:
            msg = by_handle.get(h)
            if msg and msg["cv"] and msg["cv"][pkey] == state.handle:
                used.add(msg["cv"][key])
        return next(c for c in (0, 1, 2) if c not in used)


def _canonical_color(vids: Sequence[int], my_pos: int) -> str:
    """W/B alternation anchored at the smaller-ID endpoint (same rule as
    the fast-forward's ``_canonical_2coloring``)."""
    if vids[0] <= vids[-1]:
        first = 0
    else:
        first = (len(vids) - 1) % 2
    return W if (my_pos - first) % 2 == 0 else B
