"""Solvers for k-hierarchical labeling (Lemma 65) and the weight-augmented
2½-coloring (Lemma 69).

The labeling solver computes a ``(O(n^{1/k}), 4, k)``-decomposition and
translates it into labels exactly as in Lemma 65's proof: rake layer
``V^R_{i,j}`` nodes take ``R_i`` and orient to their unique higher-layer
neighbour; compress paths take ``C_i`` inside, their endpoints are
relabeled ``R_{i+1}`` pointing at their higher-layer neighbour, and the
interior nodes adjacent to an endpoint orient toward it.

Round accounting (used for the Theta(n^{1/k}) node-averaged measurements
of Lemma 69 / bench E10): each rake sublayer costs one round, each
compress layer costs ``2*ell`` rounds (path gathering); a node's label
time is the prefix cost up to its layer.

The weight-augmented solver roots each weight component's decomposition
at its (unique) active-adjacent node, which then points at the active
neighbour and copies its output (rule 3); secondaries propagate along the
orientation per the clarified rules of
:mod:`repro.lcl.labeling`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lcl.labeling import (
    SECONDARY_DECLINE,
    compress_label,
    rake_label,
)
from ..lcl.levels import compute_levels
from ..lcl.weighted import ACTIVE, WEIGHT
from ..local.graph import Graph
from ..local.metrics import ExecutionTrace
from .generic_phases import run_generic_fast_forward
from .rake_compress import Decomposition, Layer, gamma_for_k_layers, rake_compress

__all__ = ["solve_hierarchical_labeling", "run_weight_augmented_solver", "LabelingSolution"]

_ELL = 4


class LabelingSolution:
    """Labels, orientations and per-node times for a labeling instance."""

    def __init__(
        self,
        labels: Dict[int, str],
        out: Dict[int, Optional[int]],
        times: Dict[int, int],
        decomposition: Decomposition,
    ) -> None:
        self.labels = labels
        self.out = out
        self.times = times
        self.decomposition = decomposition

    def as_outputs(self, n: int) -> List:
        return [
            (self.labels[v], self.out[v]) if v in self.labels else None
            for v in range(n)
        ]


def solve_hierarchical_labeling(
    graph: Graph,
    k: int,
    members: Optional[Sequence[int]] = None,
    pinned: Sequence[int] = (),
    gamma: Optional[int] = None,
) -> LabelingSolution:
    """Lemma 65: solve k-hierarchical labeling in O(n^{1/k}) rounds.

    ``members`` restricts to an induced subgraph (handles stay global);
    ``pinned`` roots component decompositions at the given nodes.
    """
    if members is None:
        sub, remap = graph, {v: v for v in graph.nodes()}
    else:
        sub, remap = graph.induced_subgraph(members)
    inv = {new: old for old, new in remap.items()}

    g = gamma if gamma is not None else gamma_for_k_layers(max(2, sub.n), k, _ELL)
    dec = rake_compress(sub, g, _ELL, pinned=[remap[p] for p in pinned])
    if dec.num_iterations > k:
        raise ValueError(
            f"decomposition used {dec.num_iterations} iterations > k={k}; "
            "increase gamma"
        )

    labels: Dict[int, str] = {}
    out: Dict[int, Optional[int]] = {}

    # rake nodes: R_i pointing at the unique higher-layer neighbour
    for new in sub.nodes():
        layer = dec.layer_of[new]
        if layer.kind != "R":
            continue
        labels[inv[new]] = rake_label(layer.i)
        higher = [
            w for w in sub.neighbors(new) if dec.layer_of[w] > layer
        ]
        assert len(higher) <= 1, "rake node with two higher neighbours"
        out[inv[new]] = inv[higher[0]] if higher else None

    # compress paths: C_i interior, R_{i+1} endpoints
    for i, paths in dec.compress_paths.items():
        for path in paths:
            layer = Layer.compress(i)
            for idx, new in enumerate(path):
                old = inv[new]
                if idx in (0, len(path) - 1):
                    labels[old] = rake_label(i + 1)
                    higher = [
                        w for w in sub.neighbors(new) if dec.layer_of[w] > layer
                    ]
                    assert len(higher) == 1, "compress endpoint without higher nbr"
                    out[old] = inv[higher[0]]
                else:
                    labels[old] = compress_label(i)
                    if idx == 1:
                        out[old] = inv[path[0]]
                    elif idx == len(path) - 2:
                        out[old] = inv[path[-1]]
                    else:
                        out[old] = None
    # a 4-node path has interiors at idx 1 and 2 = len-2: idx==1 wins above;
    # re-point idx len-2 when it coincides with idx 1 is fine either way.

    times = _layer_times(dec, inv)
    return LabelingSolution(labels, out, times, dec)


def _layer_times(dec: Decomposition, inv: Dict[int, int]) -> Dict[int, int]:
    """Cumulative round at which each layer's nodes know their label."""
    present = sorted(set(dec.layer_of))
    cost_after: Dict[Layer, int] = {}
    t = 0
    for layer in present:
        t += 1 if layer.kind == "R" else 2 * _ELL
        cost_after[layer] = t
    return {inv[new]: cost_after[dec.layer_of[new]] for new in range(len(dec.layer_of))}


def run_weight_augmented_solver(
    graph: Graph,
    ids: Sequence[int],
    k: int,
    id_exponent: int = 3,
) -> ExecutionTrace:
    """Lemma 69's upper bound for weight-augmented 2½-coloring.

    Active nodes run the generic phase algorithm with
    ``gamma_i = n^{1/k}`` (the x = 1 exponents); weight components solve
    the labeling rooted at their active-adjacent node and flood
    secondaries along the orientation.
    """
    n = graph.n
    active = [v for v in graph.nodes() if graph.input_of(v) == ACTIVE]
    weight = [v for v in graph.nodes() if graph.input_of(v) == WEIGHT]
    rounds = [0] * n
    outputs: List = [None] * n

    if active:
        gammas = [max(2, int(round(n ** (1.0 / k))))] * (k - 1)
        levels = compute_levels(graph, k, restrict=active)
        tr = run_generic_fast_forward(
            graph, ids, k, gammas, "2.5",
            id_exponent=id_exponent, levels=levels, restrict=active,
        )
        for v in active:
            rounds[v] = tr.rounds[v]
            outputs[v] = tr.outputs[v]

    if weight:
        active_set = set(active)
        roots = []
        weight_set = set(weight)
        for comp_nodes in _weight_components(graph, weight_set):
            adjacent = [
                v
                for v in comp_nodes
                if any(w in active_set for w in graph.neighbors(v))
            ]
            if len(adjacent) > 1:
                raise ValueError(
                    "weight component with several active-adjacent nodes is "
                    "not supported by the Lemma 69 solver"
                )
            roots.extend(adjacent)

        sol = solve_hierarchical_labeling(graph, k, members=weight, pinned=roots)

        # secondary resolution along the orientation
        secondary: Dict[int, object] = {}
        sec_time: Dict[int, int] = {}

        def resolve(v: int) -> None:
            stack = [v]
            path = []
            while True:
                u = stack[-1]
                if u in secondary:
                    break
                a_nbrs = [w for w in graph.neighbors(u) if w in active_set]
                if a_nbrs:
                    a = min(a_nbrs, key=lambda w: ids[w])
                    secondary[u] = outputs[a]
                    sec_time[u] = rounds[a] + 1
                    sol.out[u] = a  # rule 3 orientation
                    break
                if sol.labels[u].startswith("C"):
                    secondary[u] = SECONDARY_DECLINE
                    sec_time[u] = sol.times[u]
                    break
                target = sol.out.get(u)
                if target is None or target not in weight_set:
                    secondary[u] = "E"  # free non-Decline choice for rake sinks
                    sec_time[u] = sol.times[u]
                    break
                path.append(u)
                stack.append(target)
            # unwind
            base = stack[-1]
            for u in reversed(path):
                secondary[u] = secondary[sol.out[u]]
                sec_time[u] = sec_time[sol.out[u]] + 1

        for v in weight:
            resolve(v)
        for v in weight:
            outputs[v] = (sol.labels[v], sol.out[v], secondary[v])
            rounds[v] = max(sol.times[v], sec_time[v])

    missing = [v for v in graph.nodes() if outputs[v] is None]
    if missing:
        raise RuntimeError(f"{len(missing)} nodes left unlabeled")
    return ExecutionTrace(
        rounds=rounds,
        outputs=outputs,
        algorithm="weight-augmented-2.5",
        meta={},
    )


def _weight_components(graph: Graph, weight_set: Set[int]) -> List[List[int]]:
    comps = []
    seen: Set[int] = set()
    for v in sorted(weight_set):
        if v in seen:
            continue
        comp = [v]
        seen.add(v)
        stack = [v]
        while stack:
            u = stack.pop()
            for w in graph.neighbors(u):
                if w in weight_set and w not in seen:
                    seen.add(w)
                    comp.append(w)
                    stack.append(w)
        comps.append(comp)
    return comps
