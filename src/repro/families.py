"""Seeded graph families for family-sup experiments.

The paper's node-averaged complexity is a supremum over a *graph family*
(``AVG_V(A) = max_{G in G} (1/|V|) sum_v T_v``, see
:mod:`repro.local.metrics`), but the seed repo could only build one
hand-picked instance per experiment.  This module provides reproducible
generators for the families the benchmarks sweep over:

* deterministic shapes — paths, cycles, grids, stars, complete binary
  trees — that yield one canonical instance per size;
* seeded random shapes — uniform random trees (Prüfer decode),
  bounded-degree random trees, caterpillars, spiders, random regular
  graphs (configuration model) — that yield many instances per
  ``(n, seed)``;
* deterministic non-tree constant-ish-degree shapes — hypercubes — that
  stress the checker kernel and sweeps away from the tree setting;
* disjoint-union compositions of any of the above (forests with small and
  single-node components, the shapes that stress ``run_batch`` caching).

Every instance is reproducible from ``(family name, n, seed, index)``
alone: instance ``index`` is built from a private ``random.Random`` seeded
by a stable digest of exactly those values, so a multiprocessing worker
(:mod:`repro.sweep`) can rebuild instance 7 without generating instances
0..6 and without shipping pickled graphs over IPC.

``FAMILIES`` is the registry the sweep CLI resolves names against; use
:func:`register_family` to add project-specific families (benchmarks
register their lower-bound constructions this way).
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .constructions.trees import random_tree as _random_attachment_tree
from .parallel import stable_seed
from .local.graph import (
    Graph,
    balanced_tree,
    cycle_graph,
    disjoint_union,
    grid_graph,
    path_graph,
    star_graph,
)

__all__ = [
    "Family",
    "FAMILIES",
    "get_family",
    "register_family",
    "union_family",
    "prufer_tree",
    "bounded_degree_tree",
    "caterpillar_tree",
    "spider_tree",
    "random_regular",
    "hypercube_graph",
    "weighted_construction_graph",
]


def _instance_seed(name: str, n: int, seed: int, index: int) -> int:
    """Stable cross-process seed for instance ``index`` of a family sweep
    (independent of ``PYTHONHASHSEED``, unlike built-in ``hash``)."""
    return stable_seed(name, n, seed, index)


@dataclass(frozen=True)
class Family:
    """A named, seeded graph family.

    ``build`` constructs one instance of target size ``n`` from a private
    RNG.  ``degree_bound`` is the declared maximum degree of every
    instance (``None`` = unbounded); generators must respect it — tests
    check.  ``default_count`` is how many instances one ``(n, seed)``
    sweep cell draws (1 for deterministic shapes).
    """

    name: str
    build: Callable[[int, random.Random], Graph]
    degree_bound: Optional[int] = None
    default_count: int = 1
    description: str = ""

    def instance(self, n: int, seed: int, index: int = 0) -> Graph:
        """Instance ``index`` of the ``(n, seed)`` draw — reproducible
        from the arguments alone."""
        if n < 1:
            raise ValueError("instance size must be >= 1")
        rng = random.Random(_instance_seed(self.name, n, seed, index))
        return self.build(n, rng)

    def instances(
        self, n: int, seed: int = 0, count: Optional[int] = None
    ) -> Iterator[Graph]:
        """Yield ``count`` (default ``default_count``) instances of target
        size ``n``."""
        if count is None:
            count = self.default_count
        for index in range(count):
            yield self.instance(n, seed, index)


# ----------------------------------------------------------------------
# random generators
# ----------------------------------------------------------------------
def prufer_tree(n: int, rng: random.Random) -> Graph:
    """A uniformly random labeled tree on ``n`` nodes via Prüfer decode."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if n == 1:
        return Graph(1, [])
    if n == 2:
        return Graph(2, [(0, 1)])
    seq = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in seq:
        degree[v] += 1
    edges: List[Tuple[int, int]] = []
    # min-heap of current leaves gives the canonical O(n log n) decode
    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in seq:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, v))
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    w = heapq.heappop(leaves)
    edges.append((u, w))
    return Graph(n, edges)


def bounded_degree_tree(n: int, rng: random.Random, delta: int = 3) -> Graph:
    """A random tree of maximum degree ``delta``: node ``v`` attaches to a
    uniformly random earlier node that still has degree ``< delta``
    (:func:`repro.constructions.trees.random_tree` with the family
    calling convention)."""
    if delta < 2:
        raise ValueError("delta must be >= 2")
    return _random_attachment_tree(n, max_degree=delta, rng=rng)


def caterpillar_tree(
    n: int, rng: random.Random, max_legs_per_node: int = 3
) -> Graph:
    """A random caterpillar: a spine path with up to ``max_legs_per_node``
    leaf legs per spine node (max degree ``2 + max_legs_per_node``)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    # spine long enough that the legs always fit under the per-node cap
    min_spine = max(1, -(-n // (1 + max_legs_per_node)))
    spine = n if n <= 2 else rng.randint(max(min_spine, max(1, n // 3)), n)
    edges = [(i, i + 1) for i in range(spine - 1)]
    capacity = [max_legs_per_node] * spine
    open_slots = list(range(spine))
    handle = spine
    for _ in range(n - spine):
        i = rng.randrange(len(open_slots))
        host = open_slots[i]
        edges.append((host, handle))
        handle += 1
        capacity[host] -= 1
        if capacity[host] == 0:
            open_slots[i] = open_slots[-1]
            open_slots.pop()
    return Graph(n, edges)


def spider_tree(n: int, rng: random.Random, max_legs: int = 8) -> Graph:
    """A random spider: one centre with up to ``max_legs`` paths hanging
    off it, the remaining ``n - 1`` nodes split randomly across legs."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if n <= 2:
        return path_graph(n)
    legs = rng.randint(2, min(max_legs, n - 1))
    # random composition of n-1 into `legs` positive parts
    cuts = sorted(rng.sample(range(1, n - 1), legs - 1)) if legs > 1 else []
    sizes = [b - a for a, b in zip([0] + cuts, cuts + [n - 1])]
    edges: List[Tuple[int, int]] = []
    handle = 1
    for size in sizes:
        prev = 0
        for _ in range(size):
            edges.append((prev, handle))
            prev = handle
            handle += 1
    return Graph(n, edges)


def random_regular(n: int, rng: random.Random, d: int = 3) -> Graph:
    """A random ``d``-regular simple graph via the configuration model.

    ``d`` stubs per node are paired uniformly at random; pairings with
    self-loops or parallel edges are rejected and redrawn (for constant
    ``d`` a pairing is simple with probability ``~exp(-(d^2-1)/4)``, so a
    handful of attempts suffice).  The target size is rounded up to the
    smallest feasible ``n' >= max(n, d+1)`` with ``n' * d`` even — like
    ``grid``, the built size may differ from the target.
    """
    if d < 2:
        raise ValueError("d must be >= 2")
    if n < 1:
        raise ValueError("n must be >= 1")
    size = max(n, d + 1)
    if (size * d) % 2:
        size += 1
    for _ in range(10_000):
        stubs = [v for v in range(size) for _ in range(d)]
        rng.shuffle(stubs)
        edges = []
        seen = set()
        simple = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            key = (u, v) if u < v else (v, u)
            if u == v or key in seen:
                simple = False
                break
            seen.add(key)
            edges.append(key)
        if simple:
            return Graph(size, edges)
    raise RuntimeError(  # pragma: no cover - probability ~0
        f"no simple {d}-regular pairing found for n={size}"
    )


def hypercube_graph(dim: int) -> Graph:
    """The ``dim``-dimensional hypercube ``Q_dim``: ``2^dim`` nodes,
    neighbours differ in exactly one bit."""
    if dim < 0:
        raise ValueError("dim must be >= 0")
    n = 1 << dim
    edges = [
        (v, v | (1 << b))
        for v in range(n)
        for b in range(dim)
        if not v & (1 << b)
    ]
    return Graph(n, edges)


# ----------------------------------------------------------------------
# deterministic shapes (the rng parameter is part of the uniform builder
# signature and is deliberately unused)
# ----------------------------------------------------------------------
def _build_path(n: int, rng: random.Random) -> Graph:
    return path_graph(n)


def _build_cycle(n: int, rng: random.Random) -> Graph:
    return cycle_graph(max(3, n))


def _build_star(n: int, rng: random.Random) -> Graph:
    return star_graph(max(1, n - 1))


def _build_complete_binary(n: int, rng: random.Random) -> Graph:
    """The largest complete binary tree with at most ``max(3, n)`` nodes."""
    height = max(1, (max(3, n) + 1).bit_length() - 2)
    return balanced_tree(2, height)


def _build_grid(n: int, rng: random.Random) -> Graph:
    """The most-square grid with at most ``n`` nodes."""
    rows = max(1, math.isqrt(n))
    return grid_graph(rows, max(1, n // rows))


def _build_hypercube(n: int, rng: random.Random) -> Graph:
    """The largest hypercube with at most ``max(2, n)`` nodes."""
    return hypercube_graph(max(2, n).bit_length() - 1)


# ----------------------------------------------------------------------
# paper constructions as families (deterministic: one instance per size)
# ----------------------------------------------------------------------
def weighted_construction_graph(
    n: int, delta: int, d: int, k: int, regime: str
) -> Graph:
    """The Theorem-2/5 weighted lower-bound construction at target size
    ``n``, with the exponent vector the benchmarks use for the regime
    (``alpha_vector_poly`` for ``'poly'``, ``alpha_vector_logstar`` for
    ``'logstar'``).  The built size tracks, but need not equal, ``n`` —
    the grid-family convention."""
    from .analysis import (
        alpha_vector_logstar,
        alpha_vector_poly,
        efficiency_factor_relaxed,
    )
    from .constructions import build_weighted_construction
    from .constructions.lowerbound import paper_lengths

    per_level = max(4, n // k)
    if regime == "poly":
        x = math.log(delta - d + 1) / math.log(delta - 1)
        lengths = paper_lengths(per_level, alpha_vector_poly(x, k))
    else:
        xp = efficiency_factor_relaxed(delta, d)
        lengths = paper_lengths(
            per_level, alpha_vector_logstar(xp, k), "logstar"
        )
    return build_weighted_construction(
        lengths, delta, weight_per_level=per_level
    ).graph


def _build_weighted25_d5k2(n: int, rng: random.Random) -> Graph:
    return weighted_construction_graph(n, delta=5, d=2, k=2, regime="poly")


def _build_weighted35_d6k2(n: int, rng: random.Random) -> Graph:
    return weighted_construction_graph(n, delta=6, d=3, k=2, regime="logstar")


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
FAMILIES: Dict[str, Family] = {}


def register_family(family: Family, overwrite: bool = False) -> Family:
    """Add ``family`` to the registry used by name lookups (CLI, sweep
    workers).  Re-registering an existing name requires ``overwrite``."""
    if not overwrite and family.name in FAMILIES:
        raise ValueError(f"family {family.name!r} already registered")
    FAMILIES[family.name] = family
    return family


def get_family(name: str) -> Family:
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown family {name!r}; known: {sorted(FAMILIES)}"
        ) from None


def union_family(
    name: str,
    members: Sequence[Family],
    weights: Optional[Sequence[int]] = None,
    default_count: int = 4,
) -> Family:
    """A family of disjoint unions: one instance takes one instance from
    each member (sizes split ``weights``-proportionally, default evenly)
    and composes them.  The degree bound is the max of the members'
    bounds (unbounded if any member is unbounded)."""
    if not members:
        raise ValueError("union_family needs at least one member")
    if weights is None:
        weights = [1] * len(members)
    if len(weights) != len(members) or any(w < 1 for w in weights):
        raise ValueError("weights must be positive, one per member")
    total = sum(weights)
    bounds = [m.degree_bound for m in members]
    bound = None if any(b is None for b in bounds) else max(bounds)

    def build(n: int, rng: random.Random) -> Graph:
        parts = []
        for member, w in zip(members, weights):
            size = max(1, n * w // total)
            parts.append(member.build(size, rng))
        return disjoint_union(parts)

    return Family(
        name=name,
        build=build,
        degree_bound=bound,
        default_count=default_count,
        description="disjoint union of "
        + ", ".join(m.name for m in members),
    )


_RANDOM_TREE = Family(
    "random_tree", prufer_tree, degree_bound=None, default_count=4,
    description="uniform random labeled tree (Prüfer decode)",
)
_BOUNDED_TREE = Family(
    "bounded_tree_d3",
    lambda n, rng: bounded_degree_tree(n, rng, delta=3),
    degree_bound=3, default_count=4,
    description="random attachment tree with max degree 3",
)
_CATERPILLAR = Family(
    "caterpillar", caterpillar_tree, degree_bound=5, default_count=4,
    description="random spine-plus-legs caterpillar (<= 3 legs per node)",
)
_SPIDER = Family(
    "spider", spider_tree, degree_bound=8, default_count=4,
    description="centre with up to 8 random-length legs",
)
_RANDOM_REGULAR = Family(
    "random_regular_d3",
    lambda n, rng: random_regular(n, rng, d=3),
    degree_bound=3, default_count=4,
    description="random 3-regular simple graph (configuration model)",
)

for _family in (
    Family("path", _build_path, degree_bound=2,
           description="the path 0-1-...-(n-1)"),
    Family("cycle", _build_cycle, degree_bound=2,
           description="the n-cycle (n >= 3)"),
    Family("star", _build_star, degree_bound=None,
           description="one centre with n-1 leaves"),
    Family("complete_binary_tree", _build_complete_binary, degree_bound=3,
           description="largest complete binary tree with <= n nodes"),
    Family("grid", _build_grid, degree_bound=4,
           description="most-square grid with <= n nodes"),
    Family("hypercube", _build_hypercube, degree_bound=None,
           description="largest hypercube with <= n nodes"),
    Family("weighted25_d5k2", _build_weighted25_d5k2, degree_bound=None,
           description="Theorem-2 weighted construction, Pi^{2.5} at "
           "(delta, d, k) = (5, 2, 2), poly regime"),
    Family("weighted35_d6k2", _build_weighted35_d6k2, degree_bound=None,
           description="Theorem-5 weighted construction, Pi^{3.5} at "
           "(delta, d, k) = (6, 3, 2), log* regime"),
    _RANDOM_TREE,
    _BOUNDED_TREE,
    _CATERPILLAR,
    _SPIDER,
    _RANDOM_REGULAR,
    union_family(
        "random_forest", [_RANDOM_TREE, _BOUNDED_TREE, _SPIDER]
    ),
    union_family(
        "fragmented_forest",
        [_BOUNDED_TREE, Family("singleton", lambda n, rng: Graph(1, []),
                               degree_bound=0),
         _CATERPILLAR],
        weights=[8, 1, 8],
        default_count=4,
    ),
):
    register_family(_family)
del _family
