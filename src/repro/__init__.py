"""repro — Node-averaged complexity of LCLs on bounded-degree trees.

A full reproduction of "Completing the Node-Averaged Complexity Landscape of
LCLs on Trees" (PODC 2024): a LOCAL-model simulator, every problem family
the paper defines, the paper's algorithms and lower-bound constructions, the
landscape formulas, and the Section-11 decidability machinery.

Quickstart::

    from repro.local import LocalSimulator, path_graph, random_ids
    from repro.algorithms import ColeVishkin3Coloring

    g = path_graph(1000)
    trace = LocalSimulator().run(g, ColeVishkin3Coloring(), random_ids(g.n))
    print(trace.node_averaged(), trace.worst_case())

``LocalSimulator`` executes all algorithm formulations (view-based,
message-passing and batched) on a flat-CSR graph core.  It defaults to
the per-node incremental engine; pass ``engine="batched"`` to execute
one vectorized round over all live nodes at once (algorithms with
``decide_batch``, ~10x at large ``n``), or ``engine="reference"`` for
the recompute-everything-from-the-view oracle when cross-checking
semantics.  Use ``run_batch`` to sweep many ID assignments over one
topology.
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    algorithms,
    analysis,
    constructions,
    families,
    gap,
    lcl,
    local,
)

# repro.sweep is importable but not imported eagerly: it doubles as the
# ``python -m repro.sweep`` CLI, and runpy warns when the module it is
# about to execute was already pulled in by the package import.

__all__ = [
    "algorithms",
    "analysis",
    "constructions",
    "families",
    "gap",
    "lcl",
    "local",
    "__version__",
]
