"""Landscape theory, exponent formulas, and measurement utilities."""

from .landscape import (
    ProblemParams,
    Region,
    alpha1_logstar,
    alpha1_poly,
    alpha_vector_logstar,
    alpha_vector_poly,
    efficiency_factor,
    efficiency_factor_relaxed,
    find_logstar_problem,
    find_poly_problem,
    invert_alpha1,
    landscape_regions,
    params_for_rational_x,
    regions_for_verdict,
)
from .mathutil import (
    fit_power_law,
    fit_power_law_loglogstar,
    geometric_range,
    log_star,
    log_star_float,
)

__all__ = [
    "ProblemParams",
    "Region",
    "alpha1_logstar",
    "alpha1_poly",
    "alpha_vector_logstar",
    "alpha_vector_poly",
    "efficiency_factor",
    "efficiency_factor_relaxed",
    "find_logstar_problem",
    "find_poly_problem",
    "invert_alpha1",
    "landscape_regions",
    "params_for_rational_x",
    "regions_for_verdict",
    "fit_power_law",
    "fit_power_law_loglogstar",
    "geometric_range",
    "log_star",
    "log_star_float",
]
