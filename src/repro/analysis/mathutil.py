"""Mathematical helpers: iterated logarithm, exponent fitting, shape checks.

``log*`` is the number of times ``log2`` must be applied before the value
drops to at most 1 — the complexity unit of Linial's colouring lower bound
and of the paper's whole sub-``log* n`` regime.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = ["log_star", "log_star_float", "fit_power_law", "fit_power_law_loglogstar"]


def log_star(n: float, base: float = 2.0) -> int:
    """Iterated logarithm: min k such that log applied k times gives <= 1."""
    if n < 0:
        raise ValueError("log* undefined for negative values")
    count = 0
    x = n  # keep big ints un-floated; math.log handles them exactly
    while x > 1.0:
        x = math.log(x, base)
        count += 1
    return count


def log_star_float(n: float, base: float = 2.0) -> float:
    """A smoothed log*: integer part plus the fractional last step.

    Useful for fitting because plain log* is a step function that takes
    only ~5 distinct values for any practical n.
    """
    if n < 0:
        raise ValueError("log* undefined for negative values")
    count = 0.0
    x = float(n)
    while x > 2.0:
        x = math.log(x, base)
        count += 1.0
    if x > 1.0:
        count += math.log(x, base)
    return count


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit of ``y = C * x^alpha``; returns ``(alpha, C)``.

    Fitted in log-log space.  All values must be positive.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching samples")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mx = sum(lx) / n
    my = sum(ly) / n
    sxx = sum((a - mx) ** 2 for a in lx)
    if sxx == 0:
        raise ValueError("x values must not all be equal")
    sxy = sum((a - mx) * (b - my) for a, b in zip(lx, ly))
    alpha = sxy / sxx
    log_c = my - alpha * mx
    return alpha, math.exp(log_c)


def fit_power_law_loglogstar(
    ns: Sequence[float], ys: Sequence[float]
) -> Tuple[float, float]:
    """Fit ``y = C * (log* n)^alpha`` using the smoothed log*.

    Returns ``(alpha, C)``.  This is the shape the paper's sub-``log*``
    regime predicts; with practical n, ``log* n`` spans only a few values,
    so treat fitted exponents as indicative of *ordering*, not as precise.
    """
    xs = [log_star_float(n) for n in ns]
    return fit_power_law(xs, ys)


def geometric_range(lo: int, hi: int, points: int) -> List[int]:
    """``points`` roughly geometrically spaced integers in ``[lo, hi]``."""
    if points < 2 or lo < 1 or hi <= lo:
        raise ValueError("need points >= 2 and 1 <= lo < hi")
    ratio = (hi / lo) ** (1.0 / (points - 1))
    values = []
    for i in range(points):
        v = int(round(lo * ratio**i))
        if not values or v > values[-1]:
            values.append(v)
    return values
