"""The node-averaged complexity landscape: exponent formulas and regions.

This module encodes the paper's quantitative results as executable formulas:

* the efficiency factor ``x = log(D-d-1)/log(D-1)`` of weight trees
  (Lemma 23) and its relaxed variant ``x' = log(D-d+1)/log(D-1)`` (Lemma 52);
* the optimal exponents ``alpha_1`` in the polynomial regime (Lemma 33) and
  the ``log*`` regime (Lemma 36), plus the full ``alpha_i`` vectors;
* the parameter searches of Lemma 58 (polynomial density / Theorem 1) and
  Theorem 6 via Lemma 62 (``log*`` density with an ``epsilon`` gap);
* the landscape *regions* of Figure 1 (before) and Figure 2 (after).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

__all__ = [
    "efficiency_factor",
    "efficiency_factor_relaxed",
    "alpha1_poly",
    "alpha1_logstar",
    "alpha_vector_poly",
    "alpha_vector_logstar",
    "invert_alpha1",
    "params_for_rational_x",
    "find_poly_problem",
    "find_logstar_problem",
    "Region",
    "landscape_regions",
    "regions_for_verdict",
]


# ----------------------------------------------------------------------
# efficiency factors (Lemma 23 / Lemma 52)
# ----------------------------------------------------------------------
def efficiency_factor(delta: int, d: int) -> float:
    """``x = log(delta-d-1) / log(delta-1)`` — Lemma 23.

    Fraction of weight nodes in a balanced ``delta``-regular tree that must
    copy the active node's output: ``w^x`` out of ``w``.
    Requires ``delta >= d + 3`` (so the numerator argument is >= 2).
    """
    if delta < d + 3:
        raise ValueError("need delta >= d + 3")
    return math.log(delta - d - 1) / math.log(delta - 1)


def efficiency_factor_relaxed(delta: int, d: int) -> float:
    """``x' = log(delta-d+1) / log(delta-1)`` — the upper-bound factor of
    Theorem 5 (what the adapted fast-decomposition algorithm achieves)."""
    if delta < d + 3:
        raise ValueError("need delta >= d + 3")
    return math.log(delta - d + 1) / math.log(delta - 1)


# ----------------------------------------------------------------------
# optimal exponents (Lemma 33 / Lemma 36)
# ----------------------------------------------------------------------
def alpha1_poly(x: float, k: int) -> float:
    """``alpha_1 = 1 / sum_{j=0}^{k-1} (2-x)^j`` — Lemma 33.

    The node-averaged complexity of ``Pi^{2.5}_{delta,d,k}`` is
    ``Theta(n^{alpha_1})`` (Theorems 2 and 3).  At ``x=0`` this degenerates
    to the unweighted ``1/(2^k - 1)`` of [BBK+23b]; at ``x=1`` it equals the
    worst-case exponent ``1/k``.
    """
    _check_xk(x, k)
    return 1.0 / sum((2.0 - x) ** j for j in range(k))


def alpha1_logstar(x: float, k: int) -> float:
    """``alpha_1 = 1 / (1 + (1-x) sum_{j=0}^{k-2} (2-x)^j)`` — Lemma 36.

    Lower-bound exponent of ``Pi^{3.5}_{delta,d,k}`` over ``log* n``
    (Theorem 4); the upper bound (Theorem 5) is the same formula at ``x'``.
    """
    _check_xk(x, k)
    return 1.0 / (1.0 + (1.0 - x) * sum((2.0 - x) ** j for j in range(k - 1)))


def _check_xk(x: float, k: int) -> None:
    if not 0.0 <= x <= 1.0:
        raise ValueError("x must be in [0, 1]")
    if k < 1:
        raise ValueError("k must be >= 1")


def alpha_vector_poly(x: float, k: int) -> List[float]:
    """The optimal ``(alpha_1, ..., alpha_{k-1})`` of Lemma 33.

    ``alpha_i = (2 - x) * alpha_{i-1}``; path lengths in the lower-bound
    construction are ``l_i = n^{alpha_i}``.  A ``k = 1`` problem has no
    path levels, so the vector is empty.
    """
    return _alpha_vector(alpha1_poly(x, k), x, k)


def alpha_vector_logstar(x: float, k: int) -> List[float]:
    """The optimal ``(alpha_1, ..., alpha_{k-1})`` of Lemma 36
    (lengths ``l_i = (log* n)^{alpha_i}``); empty at ``k = 1``."""
    return _alpha_vector(alpha1_logstar(x, k), x, k)


def _alpha_vector(a1: float, x: float, k: int) -> List[float]:
    out: List[float] = []
    for _ in range(k - 1):
        out.append(a1)
        a1 = (2.0 - x) * a1
    return out


def invert_alpha1(target: float, k: int, regime: str = "poly") -> float:
    """Numerically invert ``alpha_1`` (both regimes are strictly increasing
    and continuous on [0,1] — Lemmas 57 and 61).  Returns the ``x`` with
    ``alpha_1(x) = target``; raises if target is outside the range."""
    fn = alpha1_poly if regime == "poly" else alpha1_logstar
    lo_v, hi_v = fn(0.0, k), fn(1.0, k)
    if not lo_v <= target <= hi_v:
        raise ValueError(
            f"target {target} outside [{lo_v}, {hi_v}] = alpha1([0,1]) for k={k}"
        )
    lo, hi = 0.0, 1.0
    for _ in range(200):
        mid = (lo + hi) / 2
        if fn(mid, k) < target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


# ----------------------------------------------------------------------
# parameter search (Lemma 58, Lemma 62)
# ----------------------------------------------------------------------
def params_for_rational_x(p: int, q: int, scale: int = 1) -> Tuple[int, int]:
    """Realize the efficiency factor ``x = p/q`` exactly (Lemma 58 / 62).

    Choose ``delta = 2^{cq} + 1`` and ``d = 2^{cq} - 2^{cp}`` with
    ``c = scale``; then ``x = log(delta-d-1)/log(delta-1) = p/q``.
    Larger ``scale`` shrinks the gap ``x' - x`` (Lemma 62).
    Returns ``(delta, d)``.
    """
    if not 0 < p < q:
        raise ValueError("need 0 < p < q")
    if scale < 1:
        raise ValueError("scale must be >= 1")
    delta = 2 ** (scale * q) + 1
    d = 2 ** (scale * q) - 2 ** (scale * p)
    assert delta >= d + 3
    return delta, d


@dataclass
class ProblemParams:
    """A concrete LCL from the weighted family realizing a target exponent."""

    regime: str           # "poly" (Pi^{2.5}) or "logstar" (Pi^{3.5})
    delta: int
    d: int
    k: int
    x: float              # exact efficiency factor
    x_relaxed: float      # x' (only meaningful for logstar upper bound)
    exponent_lower: float  # alpha_1(x)
    exponent_upper: float  # alpha_1(x) for poly (tight); alpha_1(x') for logstar

    def describe(self) -> str:
        base = "n" if self.regime == "poly" else "log* n"
        return (
            f"Pi^{{{'2.5' if self.regime == 'poly' else '3.5'}}}_"
            f"{{D={self.delta},d={self.d},k={self.k}}}: node-averaged in "
            f"[Omega(({base})^{self.exponent_lower:.4f}), "
            f"O(({base})^{self.exponent_upper:.4f})]"
        )


def _rational_between(x1: float, x2: float, max_den: int = 4096) -> Fraction:
    """A small-denominator rational strictly inside (x1, x2)."""
    if not 0.0 < x1 < x2 < 1.0:
        raise ValueError("need 0 < x1 < x2 < 1")
    for den in range(2, max_den + 1):
        num_lo = math.floor(x1 * den) + 1
        num_hi = math.ceil(x2 * den) - 1
        for num in range(num_lo, num_hi + 1):
            if 0 < num < den and x1 < num / den < x2:
                return Fraction(num, den)
    raise ValueError(f"no rational with denominator <= {max_den} in ({x1},{x2})")


def find_poly_problem(r1: float, r2: float) -> ProblemParams:
    """Theorem 1 / Lemma 58: an LCL with node-averaged Theta(n^c),
    ``r1 < c < r2``, for ``0 < r1 < r2 <= 1/2``.

    Picks ``k`` with ``[1/(2^k - 1), 1/k]`` overlapping ``(r1, r2)``, then a
    rational ``x`` realizing a ``c`` inside the window.
    """
    if not 0.0 < r1 < r2 <= 0.5:
        raise ValueError("need 0 < r1 < r2 <= 1/2")
    for k in range(2, 64):
        lo, hi = 1.0 / (2**k - 1), 1.0 / k
        wlo, whi = max(r1, lo), min(r2, hi)
        if wlo < whi:
            x1 = invert_alpha1(wlo, k, "poly") if wlo > lo else 1e-9
            x2 = invert_alpha1(whi, k, "poly") if whi < hi else 1 - 1e-9
            frac = _rational_between(max(x1, 1e-6), min(x2, 1 - 1e-6))
            delta, d = params_for_rational_x(frac.numerator, frac.denominator)
            x = efficiency_factor(delta, d)
            c = alpha1_poly(x, k)
            return ProblemParams(
                regime="poly", delta=delta, d=d, k=k, x=x,
                x_relaxed=efficiency_factor_relaxed(delta, d),
                exponent_lower=c, exponent_upper=c,
            )
    raise ValueError(f"no k found for window ({r1}, {r2})")


def find_logstar_problem(r1: float, r2: float, eps: float) -> ProblemParams:
    """Theorem 6 via Lemma 62: an LCL with node-averaged complexity between
    ``Omega((log* n)^c)`` and ``O((log* n)^{c+eps})`` with ``r1 <= c <= r2``.

    Scales ``delta, d`` (Lemma 62) until ``alpha_1(x') - alpha_1(x) < eps``.
    """
    if not 0.0 < r1 < r2 < 1.0:
        raise ValueError("need 0 < r1 < r2 < 1")
    if eps <= 0:
        raise ValueError("eps must be positive")
    for k in range(2, 64):
        # alpha1_logstar ranges over [1/2^{k-1}, 1) as x goes 0 -> 1.
        # (The paper's Lemma 61 states 1/(2^k - 1), copied from the
        # polynomial regime; the formula itself gives 1/2^{k-1}, which is
        # also what Theorem 11's unweighted bound requires at x = 0.)
        lo, hi = 1.0 / 2 ** (k - 1), 1.0
        wlo, whi = max(r1, lo), min(r2, hi)
        if wlo < whi:
            x1 = invert_alpha1(wlo, k, "logstar") if wlo > lo else 1e-9
            x2 = invert_alpha1(whi, k, "logstar") if whi < hi else 1 - 1e-9
            frac = _rational_between(max(x1, 1e-6), min(x2, 1 - 1e-6))
            for scale in range(1, 24):
                delta, d = params_for_rational_x(
                    frac.numerator, frac.denominator, scale
                )
                x = efficiency_factor(delta, d)
                xr = efficiency_factor_relaxed(delta, d)
                c_lo = alpha1_logstar(x, k)
                c_hi = alpha1_logstar(xr, k)
                if c_hi - c_lo < eps and c_hi <= r2 + eps:
                    return ProblemParams(
                        regime="logstar", delta=delta, d=d, k=k, x=x,
                        x_relaxed=xr, exponent_lower=c_lo, exponent_upper=c_hi,
                    )
            raise ValueError("could not close the x'-x gap (increase scale cap)")
    raise ValueError(f"no k found for window ({r1}, {r2})")


# ----------------------------------------------------------------------
# landscape regions (Figures 1 and 2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Region:
    """One region of the landscape: an achievable point/band or a gap."""

    kind: str        # "point" | "dense" | "gap"
    low: str         # human-readable bound expressions
    high: str
    source: str      # theorem/citation establishing the region
    note: str = ""


def landscape_regions(after: bool = True) -> List[Region]:
    """The deterministic node-averaged landscape on bounded-degree trees.

    ``after=False`` reproduces Figure 1 (state before this paper),
    ``after=True`` Figure 2 (complete landscape).
    """
    before = [
        Region("point", "1", "1", "trivial", "O(1) problems"),
        Region("point", "log* n", "log* n", "[BBK+23b]",
               "e.g. 3-coloring trees in O(log* n) averaged"),
        Region("gap", "omega(log* n)", "n^{o(1)}", "[BBK+23b]",
               "no LCL in this range"),
        Region("dense", "n^{1/(2^k-1)}", "n^{1/(2^k-1)}", "[BBK+23b]",
               "points from k-hierarchical 2.5-coloring"),
        Region("point", "n", "n", "2-coloring", "linear problems"),
    ]
    if not after:
        return before
    return [
        Region("point", "1", "1", "trivial + Thm 7 decidability",
               "O(1) node-averaged; membership decidable"),
        Region("gap", "omega(1)", "(log* n)^{o(1)}", "Theorem 7",
               "no deterministic LCL in this range"),
        Region("dense", "(log* n)^{Omega(1)}", "o(log* n)", "Theorem 6",
               "infinitely dense: Pi^{3.5}_{D,d,k} within any [c, c+eps]"),
        Region("point", "log* n", "log* n", "Cor. 10 / [BBK+23b]",
               "k=1 hierarchical 3.5-coloring"),
        Region("gap", "omega(log* n)", "n^{o(1)}", "[BBK+23b]",
               "unchanged"),
        Region("dense", "n^{Omega(1)}", "sqrt(n)", "Theorem 1 + Lemma 69",
               "infinitely dense incl. Theta(n^{1/k}) endpoints"),
        Region("gap", "omega(sqrt(n))", "o(n)", "Corollary 60",
               "no LCL in this range"),
        Region("point", "n", "n", "2-coloring + Cor. 60", "linear problems"),
    ]


def regions_for_verdict(klass: str) -> List[Region]:
    """The Figure-2 regions a Theorem-7 verdict is compatible with —
    what the problem-space census (:mod:`repro.gap.census`) records next
    to each decided problem.

    * ``"O(1)"`` — exactly the constant point (membership is decidable);
    * ``"logstar-regime"`` — the Theorem-6 dense band together with the
      ``log* n`` point (the verdict gives ``(log* n)^{Omega(1)}`` and
      ``O(log* n)``, nothing finer);
    * ``"no-good-function"`` — outside the ``log*`` regime entirely: the
      polynomial dense band or the linear point (gaps excluded — no LCL
      lives in them).
    """
    regions = landscape_regions(after=True)
    if klass == "O(1)":
        wanted = {"1"}
    elif klass == "logstar-regime":
        wanted = {"(log* n)^{Omega(1)}", "log* n"}
    elif klass == "no-good-function":
        wanted = {"n^{Omega(1)}", "n"}
    else:
        raise ValueError(f"unknown verdict class {klass!r}")
    return [r for r in regions if r.low in wanted and r.kind != "gap"]
