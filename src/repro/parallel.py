"""Shared determinism and fan-out helpers for parallel runners.

Both the family sweeps (:mod:`repro.sweep`) and the problem-space census
(:mod:`repro.gap.census`) follow the same discipline: every random draw
is derived from a **stable digest** of the values that name the work unit
(never from built-in ``hash``, which is salted per process), tasks are
mapped over a ``fork`` multiprocessing pool, and results are re-assembled
in task order — so the emitted JSON is **byte-identical at every worker
count** and parallelism only changes wall-clock time.

* :func:`stable_seed` — a 64-bit seed from a blake2b digest of the parts
  joined with ``"|"`` (exactly the digest the sweep and family layers
  have always used, now shared).
* :func:`stable_digest` — the same digest as a short hex string, for
  deterministic artifact names.
* :func:`fork_map` — ordered ``pool.map`` over a fork-context pool,
  falling back to an in-process loop at ``workers=1`` and failing loudly
  on platforms without ``fork`` (spawn workers re-import fresh registries,
  so dynamically registered families/algorithms/problems would vanish
  mid-run).  A task that raises surfaces as :class:`ForkTaskError`
  naming the failing task (its label) and embedding the worker
  traceback — not the opaque pickled traceback pools give by default.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import traceback
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

__all__ = ["stable_seed", "stable_digest", "fork_map", "ForkTaskError"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def _digest(parts: Sequence[object], size: int) -> bytes:
    return hashlib.blake2b(
        "|".join(str(p) for p in parts).encode(), digest_size=size
    ).digest()


def stable_seed(*parts: object) -> int:
    """A cross-process, ``PYTHONHASHSEED``-independent 64-bit seed derived
    from ``parts`` (joined with ``"|"`` and hashed with blake2b)."""
    return int.from_bytes(_digest(parts, 8), "big")


def stable_digest(*parts: object, size: int = 8) -> str:
    """The :func:`stable_seed` digest of ``parts`` as ``2 * size`` hex
    characters — deterministic short names for derived artifacts."""
    return _digest(parts, size).hex()


class ForkTaskError(RuntimeError):
    """A :func:`fork_map` task raised inside a worker.

    The message names the failing task — the ``label`` the caller
    supplied, or a truncated ``repr`` of the task — and embeds the
    worker-side traceback as text, because a pool re-raises worker
    exceptions in the parent with the *parent's* (useless) stack.  The
    exception pickles cleanly across the pool boundary: everything it
    carries is in the message string.
    """


def _task_label(task: object, label: Optional[Callable[[object], str]]) -> str:
    text = repr(task) if label is None else str(label(task))
    return text if len(text) <= 200 else text[:197] + "..."


def _call_labeled(packed: Tuple[Callable, object, str]):
    """The actual pool worker: run one task, converting any failure into
    a :class:`ForkTaskError` that names the task.  Module-level so it
    pickles by reference (the PAR001 discipline applies to fork_map's
    own internals too)."""
    fn, task, label = packed
    try:
        return fn(task)
    except ForkTaskError:
        raise
    except Exception as exc:
        raise ForkTaskError(
            f"fork_map task [{label}] failed: "
            f"{type(exc).__name__}: {exc}\n"
            f"--- worker traceback ---\n{traceback.format_exc().rstrip()}"
        ) from exc


def fork_map(
    fn: Callable[[_T], _R],
    tasks: Sequence[_T],
    workers: int,
    chunk_denominator: int = 4,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[object, ...] = (),
    label: Optional[Callable[[_T], str]] = None,
    on_result: Optional[Callable[[int], None]] = None,
) -> List[_R]:
    """Map ``fn`` over ``tasks`` preserving task order.

    ``workers=1`` (or a single task) runs in-process — multiprocessing is
    never imported into the execution path, no pool is created, and the
    ``initializer`` (if any) runs once in the calling process so the
    executor-local state it sets up (e.g. shared-memory graph attachments)
    is visible exactly as it would be in a worker.  Otherwise the tasks
    fan over a fork-context pool — ``pool.map``, never ``imap_unordered``,
    because deterministic aggregates require results in task order.  Fork
    workers inherit the parent's registries, so dynamically registered
    families/algorithms/problems stay resolvable by name.

    ``on_result`` (if given) is called **in the parent**, in task order,
    with the count of completed tasks after each one finishes — the
    progress hook.  The pool path switches from ``pool.map`` to the
    ordered ``pool.imap`` so completions surface incrementally; results
    still arrive in task order, so aggregates stay byte-identical and the
    callback neither crosses the pool boundary nor needs to pickle.

    A task that raises surfaces as :class:`ForkTaskError` whose message
    names the task — ``label(task)`` when the caller supplies a labeller
    (it runs in the parent, so it need not pickle), a truncated ``repr``
    otherwise — and embeds the worker traceback.  The workers=1 path
    raises the identical wrapper, so error handling is worker-count
    independent.

    ``tasks`` is materialized once if not already a ``list``/``tuple``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not isinstance(tasks, (list, tuple)):
        tasks = list(tasks)
    packed = [(fn, t, _task_label(t, label)) for t in tasks]
    if workers == 1 or len(tasks) <= 1:
        if initializer is not None:
            initializer(*initargs)
        out: List[_R] = []
        for p in packed:
            out.append(_call_labeled(p))
            if on_result is not None:
                on_result(len(out))
        return out
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        # spawn workers re-import a fresh registry, so dynamically
        # registered entries would vanish mid-run — fail loudly instead
        # of crashing deep inside pool.map
        raise RuntimeError(
            "parallel runs need a fork-capable platform (spawn workers "
            "cannot see dynamically registered families/algorithms/"
            "problems); use workers=1"
        )
    processes = min(workers, len(tasks))
    chunksize = max(1, len(tasks) // (processes * chunk_denominator))
    with ctx.Pool(
        processes=processes, initializer=initializer, initargs=initargs
    ) as pool:
        if on_result is None:
            return pool.map(_call_labeled, packed, chunksize=chunksize)
        results: List[_R] = []
        for res in pool.imap(_call_labeled, packed, chunksize=chunksize):
            results.append(res)
            on_result(len(results))
        return results
