"""LOCAL model substrate: graphs, identifiers, views, simulator, metrics."""

from .algorithm import CONTINUE, BallStore, LocalAlgorithm, View
from .graph import (
    Graph,
    balanced_tree,
    cycle_graph,
    disjoint_union,
    from_networkx,
    grid_graph,
    path_graph,
    star_graph,
    to_networkx,
)
from .ids import id_space_size, random_ids, sequential_ids, validate_ids
from .message import MessageAlgorithm, MessageSimulator, NodeInfo, run_message_dynamics
from .metrics import ExecutionTrace, node_averaged, worst_case
from .simulator import ENGINES, LocalSimulator, SimulationError

__all__ = [
    "CONTINUE",
    "BallStore",
    "LocalAlgorithm",
    "View",
    "Graph",
    "balanced_tree",
    "cycle_graph",
    "disjoint_union",
    "from_networkx",
    "grid_graph",
    "path_graph",
    "star_graph",
    "to_networkx",
    "id_space_size",
    "random_ids",
    "sequential_ids",
    "validate_ids",
    "MessageAlgorithm",
    "MessageSimulator",
    "NodeInfo",
    "run_message_dynamics",
    "ExecutionTrace",
    "node_averaged",
    "worst_case",
    "ENGINES",
    "LocalSimulator",
    "SimulationError",
]
