"""LOCAL model substrate: graphs, identifiers, views, simulator, metrics."""

from .algorithm import BatchedAlgorithm, CONTINUE, BallStore, LocalAlgorithm, View
from .frontier import BatchedViews, FrontierScheduler
from .graph import (
    Graph,
    balanced_tree,
    cycle_graph,
    disjoint_union,
    from_networkx,
    grid_graph,
    path_graph,
    star_graph,
    to_networkx,
)
from .ids import (
    ID_MODES,
    IdMode,
    bit_reversal_ids,
    boundary_clustered_ids,
    descending_ids,
    id_space_size,
    make_ids,
    random_ids,
    sequential_ids,
    validate_ids,
)
from .message import MessageAlgorithm, MessageSimulator, NodeInfo, run_message_dynamics
from .metrics import ExecutionTrace, node_averaged, worst_case
from .simulator import ENGINES, LocalSimulator, SimulationError

__all__ = [
    "CONTINUE",
    "BallStore",
    "BatchedAlgorithm",
    "BatchedViews",
    "FrontierScheduler",
    "LocalAlgorithm",
    "View",
    "Graph",
    "balanced_tree",
    "cycle_graph",
    "disjoint_union",
    "from_networkx",
    "grid_graph",
    "path_graph",
    "star_graph",
    "to_networkx",
    "ID_MODES",
    "IdMode",
    "bit_reversal_ids",
    "boundary_clustered_ids",
    "descending_ids",
    "id_space_size",
    "make_ids",
    "random_ids",
    "sequential_ids",
    "validate_ids",
    "MessageAlgorithm",
    "MessageSimulator",
    "NodeInfo",
    "run_message_dynamics",
    "ExecutionTrace",
    "node_averaged",
    "worst_case",
    "ENGINES",
    "LocalSimulator",
    "SimulationError",
]
