"""LOCAL model substrate: graphs, identifiers, views, simulator, metrics."""

from .algorithm import CONTINUE, LocalAlgorithm, View
from .graph import (
    Graph,
    balanced_tree,
    from_networkx,
    path_graph,
    star_graph,
    to_networkx,
)
from .ids import id_space_size, random_ids, sequential_ids
from .message import MessageAlgorithm, MessageSimulator, NodeInfo
from .metrics import ExecutionTrace, node_averaged, worst_case
from .simulator import LocalSimulator, SimulationError

__all__ = [
    "CONTINUE",
    "LocalAlgorithm",
    "View",
    "Graph",
    "balanced_tree",
    "from_networkx",
    "path_graph",
    "star_graph",
    "to_networkx",
    "id_space_size",
    "random_ids",
    "sequential_ids",
    "MessageAlgorithm",
    "MessageSimulator",
    "NodeInfo",
    "ExecutionTrace",
    "node_averaged",
    "worst_case",
    "LocalSimulator",
    "SimulationError",
]
