"""LOCAL model substrate: graphs, identifiers, views, simulator, metrics."""

from .algorithm import CONTINUE, BallStore, LocalAlgorithm, View
from .graph import (
    Graph,
    balanced_tree,
    from_networkx,
    path_graph,
    star_graph,
    to_networkx,
)
from .ids import id_space_size, random_ids, sequential_ids
from .message import MessageAlgorithm, MessageSimulator, NodeInfo, run_message_dynamics
from .metrics import ExecutionTrace, node_averaged, worst_case
from .simulator import ENGINES, LocalSimulator, SimulationError

__all__ = [
    "CONTINUE",
    "BallStore",
    "LocalAlgorithm",
    "View",
    "Graph",
    "balanced_tree",
    "from_networkx",
    "path_graph",
    "star_graph",
    "to_networkx",
    "id_space_size",
    "random_ids",
    "sequential_ids",
    "MessageAlgorithm",
    "MessageSimulator",
    "NodeInfo",
    "run_message_dynamics",
    "ExecutionTrace",
    "node_averaged",
    "worst_case",
    "ENGINES",
    "LocalSimulator",
    "SimulationError",
]
