"""Identifier assignments for LOCAL algorithms.

In the LOCAL model, nodes carry unique identifiers from a polynomial ID space
``{1, ..., n^c}``.  Deterministic algorithms may depend on these IDs (this is
exactly what the paper's lower-bound arguments manipulate), so the choice of
assignment is part of the experiment design:

* :func:`sequential_ids` — IDs ``1..n`` in node-handle order (best case for
  symmetry breaking, useful as a sanity baseline);
* :func:`random_ids` — uniformly random injection into ``{1..n^c}`` (the
  standard adversarial-free setting for measuring upper bounds);
* adversarial assignments — the node-averaged measure is a sup over ID
  assignments as well as topology, so sweeps probe structured worst cases:
  :func:`descending_ids` (IDs strictly decreasing in handle order — on
  canonical paths every edge points backwards, the classic bad case for
  greedy orientations), :func:`bit_reversal_ids` (handles ranked by their
  bit-reversed value — destroys the correlation between handle distance
  and ID distance that random assignments keep on average), and
  :func:`boundary_clustered_ids` (smallest IDs alternate between the two
  ends of the handle range — clusters extreme IDs at path/cycle
  boundaries, where root/parent election rules are most sensitive);
* :data:`ID_MODES` / :func:`make_ids` — the named registry sweeps expose
  as an axis (``python -m repro.sweep --id-mode ...``);
* :func:`id_space_size` — the canonical ID space size ``n^c``;
* :func:`validate_ids` — the uniqueness/positivity check every simulator
  entry point applies to caller-supplied assignments.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, NamedTuple, Optional

from ..parallel import stable_seed

__all__ = [
    "sequential_ids",
    "random_ids",
    "descending_ids",
    "bit_reversal_ids",
    "boundary_clustered_ids",
    "IdMode",
    "ID_MODES",
    "make_ids",
    "validate_ids",
    "id_space_size",
    "IdAssignment",
]

IdAssignment = List[int]


def id_space_size(n: int, c: int = 3) -> int:
    """The canonical polynomial ID space size ``n^c`` (``c >= 1``)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if c < 1:
        raise ValueError("c must be >= 1")
    return n**c


def sequential_ids(n: int) -> IdAssignment:
    """IDs ``1..n`` in node-handle order."""
    return list(range(1, n + 1))


def random_ids(
    n: int,
    c: int = 3,
    rng: Optional[random.Random] = None,
) -> IdAssignment:
    """A uniformly random injective ID assignment from ``{1..n^c}``.

    Uses rejection sampling without materialising the ID space: draws are
    retried on collision, which is cheap because the space is ``n^c >= n^3``
    times larger than the sample (expected extra draws are ``O(1/n)``).

    Without an explicit ``rng`` the assignment is a deterministic function
    of ``(n, c)`` (DET001: unseeded entropy is banned in library code).
    """
    rng = rng or random.Random(stable_seed("repro.local.ids.random_ids", n, c))
    space = id_space_size(n, c)
    chosen: set = set()
    ids: List[int] = []
    while len(ids) < n:
        x = rng.randint(1, space)
        if x not in chosen:
            chosen.add(x)
            ids.append(x)
    return ids


def descending_ids(n: int) -> IdAssignment:
    """IDs ``n..1`` in node-handle order (strictly decreasing)."""
    return list(range(n, 0, -1))


def bit_reversal_ids(n: int) -> IdAssignment:
    """Handles ranked by the bit-reversal of their binary representation.

    Handle ``v`` is written in ``ceil(log2 n)`` bits, the bits are
    reversed, and IDs ``1..n`` are assigned by ascending reversed value
    (ties — only possible through the shared zero — broken by handle).
    Nearby handles land far apart in ID order and vice versa, the standard
    decorrelation permutation.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    bits = max(1, (n - 1).bit_length())
    order = sorted(
        range(n),
        key=lambda v: (int(format(v, f"0{bits}b")[::-1], 2), v),
    )
    ids = [0] * n
    for rank, v in enumerate(order):
        ids[v] = rank + 1
    return ids


def boundary_clustered_ids(n: int) -> IdAssignment:
    """Small IDs clustered at the two ends of the handle range.

    IDs are dealt alternately to the lowest and highest unassigned
    handles: handle 0 gets 1, handle ``n-1`` gets 2, handle 1 gets 3, ...
    so the extreme (small) IDs sit on the boundary nodes of canonical
    paths/cycles and the largest IDs in the middle.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    ids = [0] * n
    lo, hi, next_id = 0, n - 1, 1
    while lo <= hi:
        ids[lo] = next_id
        next_id += 1
        lo += 1
        if lo <= hi:
            ids[hi] = next_id
            next_id += 1
            hi -= 1
    return ids


class IdMode(NamedTuple):
    """A registered ID-assignment mode.

    ``deterministic`` declares whether ``fn`` ignores the rng (same
    assignment on every call for a given ``n``) — consumers like the
    sweep use it to collapse redundant samples, so a mode that consumes
    the rng must say ``deterministic=False`` or aggregates over it will
    silently lose their independent draws.
    """

    fn: Callable[[int, Optional[random.Random]], IdAssignment]
    deterministic: bool


#: Named ID-assignment modes, the sweep axis.
ID_MODES: Dict[str, IdMode] = {
    "random": IdMode(lambda n, rng=None: random_ids(n, rng=rng),
                     deterministic=False),
    "sequential": IdMode(lambda n, rng=None: sequential_ids(n),
                         deterministic=True),
    "descending": IdMode(lambda n, rng=None: descending_ids(n),
                         deterministic=True),
    "bit_reversal": IdMode(lambda n, rng=None: bit_reversal_ids(n),
                           deterministic=True),
    "boundary_clustered": IdMode(lambda n, rng=None: boundary_clustered_ids(n),
                                 deterministic=True),
}


def get_id_mode(mode: str) -> IdMode:
    """Look up a registered mode; ``KeyError`` with the known names."""
    try:
        return ID_MODES[mode]
    except KeyError:
        raise KeyError(
            f"unknown id mode {mode!r}; known: {sorted(ID_MODES)}"
        ) from None


def make_ids(
    mode: str, n: int, rng: Optional[random.Random] = None
) -> IdAssignment:
    """Build an ID assignment by mode name (see :data:`ID_MODES`)."""
    return get_id_mode(mode).fn(n, rng)


def validate_ids(ids: IdAssignment, space: Optional[int] = None) -> None:
    """Raise ``ValueError`` unless ``ids`` are positive, unique, in range."""
    if len(set(ids)) != len(ids):
        raise ValueError("IDs must be unique")
    for x in ids:
        if x < 1:
            raise ValueError("IDs must be >= 1")
        if space is not None and x > space:
            raise ValueError(f"ID {x} exceeds ID space {space}")
