"""Identifier assignments for LOCAL algorithms.

In the LOCAL model, nodes carry unique identifiers from a polynomial ID space
``{1, ..., n^c}``.  Deterministic algorithms may depend on these IDs (this is
exactly what the paper's lower-bound arguments manipulate), so the choice of
assignment is part of the experiment design:

* :func:`sequential_ids` — IDs ``1..n`` in node-handle order (best case for
  symmetry breaking, useful as a sanity baseline);
* :func:`random_ids` — uniformly random injection into ``{1..n^c}`` (the
  standard adversarial-free setting for measuring upper bounds);
* :func:`id_space_size` — the canonical ID space size ``n^c``;
* :func:`validate_ids` — the uniqueness/positivity check every simulator
  entry point applies to caller-supplied assignments.
"""

from __future__ import annotations

import random
from typing import List, Optional

__all__ = [
    "sequential_ids",
    "random_ids",
    "validate_ids",
    "id_space_size",
    "IdAssignment",
]

IdAssignment = List[int]


def id_space_size(n: int, c: int = 3) -> int:
    """The canonical polynomial ID space size ``n^c`` (``c >= 1``)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if c < 1:
        raise ValueError("c must be >= 1")
    return n**c


def sequential_ids(n: int) -> IdAssignment:
    """IDs ``1..n`` in node-handle order."""
    return list(range(1, n + 1))


def random_ids(
    n: int,
    c: int = 3,
    rng: Optional[random.Random] = None,
) -> IdAssignment:
    """A uniformly random injective ID assignment from ``{1..n^c}``.

    Uses rejection sampling without materialising the ID space: draws are
    retried on collision, which is cheap because the space is ``n^c >= n^3``
    times larger than the sample (expected extra draws are ``O(1/n)``).
    """
    rng = rng or random.Random()
    space = id_space_size(n, c)
    chosen: set = set()
    ids: List[int] = []
    while len(ids) < n:
        x = rng.randint(1, space)
        if x not in chosen:
            chosen.add(x)
            ids.append(x)
    return ids


def validate_ids(ids: IdAssignment, space: Optional[int] = None) -> None:
    """Raise ``ValueError`` unless ``ids`` are positive, unique, in range."""
    if len(set(ids)) != len(ids):
        raise ValueError("IDs must be unique")
    for x in ids:
        if x < 1:
            raise ValueError("IDs must be >= 1")
        if space is not None and x > space:
            raise ValueError(f"ID {x} exceeds ID space {space}")
