"""Synchronous LOCAL-model simulator (full-information formulation).

Rounds proceed ``t = 0, 1, 2, ...``.  In round ``t`` every node that has not
yet committed is handed its radius-``t`` view (see
:class:`repro.local.algorithm.View`) and may commit an output.  All decisions
within a round are simultaneous: a commit at round ``t`` is visible to a node
at distance ``delta`` only from round ``t + delta`` on.  ``T_v`` is the round
at which ``v`` commits.

This is the *reference* executor: exact LOCAL semantics, no shortcuts.  The
structured algorithms in :mod:`repro.algorithms` additionally ship
"fast-forward" executors that compute the same ``(T_v, output)`` map
centrally for large-``n`` benchmarking; tests assert they agree with this
simulator.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .algorithm import CONTINUE, LocalAlgorithm, View
from .graph import Graph
from .ids import sequential_ids, validate_ids
from .metrics import ExecutionTrace

__all__ = ["LocalSimulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when an execution exceeds its round budget."""


class LocalSimulator:
    """Execute a :class:`LocalAlgorithm` on a graph with given IDs."""

    def __init__(self, max_rounds: Optional[int] = None) -> None:
        self._max_rounds = max_rounds

    def run(
        self,
        graph: Graph,
        algorithm: LocalAlgorithm,
        ids: Optional[Sequence[int]] = None,
    ) -> ExecutionTrace:
        n = graph.n
        if n == 0:
            raise ValueError("cannot run on the empty graph")
        id_list: List[int] = list(ids) if ids is not None else sequential_ids(n)
        if len(id_list) != n:
            raise ValueError("ids length must equal n")
        validate_ids(id_list)

        algorithm.setup(graph, n)
        budget = self._max_rounds
        if budget is None:
            budget = algorithm.max_rounds_hint(n)

        commit_round: List[Optional[int]] = [None] * n
        outputs: List = [None] * n
        live = set(range(n))

        t = 0
        while live:
            if t > budget:
                raise SimulationError(
                    f"{algorithm.name}: exceeded round budget {budget} "
                    f"with {len(live)} nodes still running"
                )
            decided = []
            for v in live:
                view = View(graph, v, t, id_list, commit_round, outputs)
                decision = algorithm.decide(view, n)
                if decision is not CONTINUE:
                    decided.append((v, decision))
            # Commits are simultaneous: apply after all decisions this round.
            for v, label in decided:
                commit_round[v] = t
                outputs[v] = label
                live.discard(v)
            t += 1

        rounds = [r for r in commit_round if r is not None]
        assert len(rounds) == n
        return ExecutionTrace(
            rounds=list(rounds),
            outputs=outputs,
            algorithm=algorithm.name,
            meta={"ids": id_list},
        )
