"""Synchronous LOCAL-model simulator with pluggable execution engines.

Rounds proceed ``t = 0, 1, 2, ...``.  In round ``t`` every node that has not
yet committed is handed its radius-``t`` view (see
:class:`repro.local.algorithm.View`) and may commit an output.  All decisions
within a round are simultaneous: a commit at round ``t`` is visible to a node
at distance ``delta`` only from round ``t + delta`` on.  ``T_v`` is the round
at which ``v`` commits.

Engines
-------
:class:`LocalSimulator` accepts ``engine="batched"``,
``engine="incremental"`` (the default) or ``engine="reference"``.  All
three produce identical ``(T_v, output)`` maps —
``tests/test_engine_equivalence.py`` asserts this over a corpus of graphs,
algorithms and ID assignments — but they trade transparency for speed:

* ``reference`` — the executable definition of the model.  Every round,
  every live node's radius-``t`` ball is re-extracted from scratch and (for
  message-passing algorithms) the node's state is re-derived by simulating
  the message dynamics *inside the ball only*, restricted to the causal
  cone.  No state is carried between rounds, so nothing can leak: this is
  the oracle to cross-check against whenever engine behaviour is in doubt,
  and the right engine for new-algorithm debugging.  Cost:
  Θ(Σ_t live_t · |ball_t|) and worse — effectively cubic on paths.
* ``incremental`` — the per-node production engine.  Each live node owns a
  :class:`repro.local.algorithm.BallStore` that grows by exactly one BFS
  frontier layer per round (amortized O(edges in the final ball) per node),
  and views become thin windows over the store.  Message-passing algorithms
  are advanced through one shared global execution of their state machine —
  the standard equivalence between the message-passing and full-information
  formulations, exploited instead of re-derived per node.
* ``batched`` — the vectorized production engine.  One
  :class:`repro.local.frontier.FrontierScheduler` grows *all* live balls
  together (one flat CSR sweep per round instead of ``n`` dict BFS loops)
  and algorithms implementing ``decide_batch(views, live, t)`` (see
  :class:`repro.local.algorithm.BatchedAlgorithm`) decide over the whole
  live set at once with array-level operations.  Algorithms without
  ``decide_batch`` still run unmodified: view algorithms through a
  per-node adapter over the shared scheduler, message algorithms through
  the same global dynamics as ``incremental`` (one shared state machine
  *is* the batched execution of a message algorithm).

The structured algorithms in :mod:`repro.algorithms` additionally ship
"fast-forward" executors that compute the same ``(T_v, output)`` map
centrally for large-``n`` benchmarking; tests assert they agree with this
simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .algorithm import CONTINUE, BallStore, LocalAlgorithm, View
from .graph import Graph
from .ids import sequential_ids, validate_ids
from .metrics import ExecutionTrace

__all__ = ["LocalSimulator", "SimulationError", "ENGINES", "resolve_auto_engine"]

#: Recognised engine names, fastest first.
ENGINES = ("batched", "incremental", "reference")


class SimulationError(RuntimeError):
    """Raised when an execution exceeds its round budget."""


def _has_decide_batch(algorithm) -> bool:
    """The dispatch predicate shared by :meth:`LocalSimulator._run` and
    :func:`resolve_auto_engine`: whether the algorithm natively supports
    the batched engine's whole-live-set protocol."""
    return callable(getattr(algorithm, "decide_batch", None))


def resolve_auto_engine(algorithm) -> str:
    """The engine an ``"auto"`` policy should pick for ``algorithm``.

    The single source of truth for auto-selection (``repro.sweep`` defers
    here): ``"batched"`` when the algorithm benefits from the batched
    engine — it implements ``decide_batch``, or it is a message algorithm
    (whose shared global dynamics already are the batched execution) —
    and ``"incremental"`` otherwise.
    """
    from .message import MessageAlgorithm  # deferred: message.py imports us

    if _has_decide_batch(algorithm) or isinstance(algorithm, MessageAlgorithm):
        return "batched"
    return "incremental"


class LocalSimulator:
    """Execute a LOCAL algorithm on a graph with given IDs.

    Accepts both algorithm formulations: a view-based
    :class:`~repro.local.algorithm.LocalAlgorithm` or a message-passing
    :class:`~repro.local.message.MessageAlgorithm` (the two are equivalent
    in the LOCAL model, and this simulator is the single entry point for
    either).

    Engine contract
    ---------------
    ``engine="batched"``, ``engine="incremental"`` and
    ``engine="reference"`` must be observationally identical: same
    ``(T_v, output)`` maps, same view contents (including dict iteration
    order of ``View.nodes()`` — the batched frontier scheduler reproduces
    per-node BFS layer order exactly), same ``SimulationError``
    behaviour.  Whatever the fast engines carry across rounds (ball
    stores, the shared frontier pool, global message execution, batched
    label arrays) is purely a cache of what the reference engine would
    recompute.  Use ``reference`` as the cross-check oracle whenever an
    algorithm misuses the view API (e.g. retains views across rounds) or
    when validating a new engine/algorithm pairing; use ``batched`` for
    large-``n`` work on algorithms that implement ``decide_batch``; use
    ``incremental`` everywhere else.
    """

    def __init__(
        self, max_rounds: Optional[int] = None, engine: str = "incremental"
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self._max_rounds = max_rounds
        self.engine = engine

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def run(
        self,
        graph: Graph,
        algorithm,
        ids: Optional[Sequence[int]] = None,
    ) -> ExecutionTrace:
        """Execute ``algorithm`` once and return its :class:`ExecutionTrace`."""
        return self._run(graph, algorithm, ids, atlas=None)

    def run_batch(
        self,
        graph: Graph,
        algorithm,
        id_samples: Sequence[Sequence[int]],
    ) -> List[ExecutionTrace]:
        """Run ``algorithm`` on one graph under many ID assignments.

        The common shape in ``benchmarks/`` and ``analysis``: fixed
        topology, sampled IDs.  Topology-only setup is shared across the
        batch: on the incremental engine, view algorithms reuse each
        node's BFS layer decomposition (later runs fill their ball dicts
        from cached layers instead of re-scanning edges) and message
        algorithms reuse the per-node neighbour lists.  Per-run work that
        depends on the IDs — the dynamics themselves, the dist fills —
        is still paid per sample.  ``algorithm.setup`` is invoked per
        run; algorithms must reset any per-execution caches there.
        """
        batch_cache: Dict = {}
        return [
            self._run(graph, algorithm, ids, atlas=batch_cache)
            for ids in id_samples
        ]

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _run(
        self,
        graph: Graph,
        algorithm,
        ids: Optional[Sequence[int]],
        # shared per-batch topology cache: ("layers", v) -> BFS layers for
        # node v (view engine), "neighbors" -> per-node adjacency tuples
        # (message engine); None outside run_batch
        atlas: Optional[Dict] = None,
    ) -> ExecutionTrace:
        from .message import MessageAlgorithm  # deferred: message.py imports us

        n = graph.n
        if n == 0:
            raise ValueError("cannot run on the empty graph")
        id_list: List[int] = list(ids) if ids is not None else sequential_ids(n)
        if len(id_list) != n:
            raise ValueError("ids length must equal n")
        validate_ids(id_list)

        algorithm.setup(graph, n)
        budget = self._max_rounds
        if budget is None:
            budget = algorithm.max_rounds_hint(n)

        has_batch = _has_decide_batch(algorithm)
        has_decide = callable(getattr(algorithm, "decide", None))
        if isinstance(algorithm, MessageAlgorithm):
            if self.engine == "reference":
                runner = _run_message_reference
            elif self.engine == "batched" and has_batch:
                runner = _run_view_batched
            else:
                # one shared global state machine is already the batched
                # execution of a message algorithm
                runner = _run_message_incremental
        elif self.engine == "batched":
            runner = _run_view_batched
        elif not has_decide and has_batch:
            raise TypeError(
                f"{algorithm.name} only implements decide_batch; "
                f"run it with engine='batched'"
            )
        elif self.engine == "reference":
            runner = _run_view_reference
        else:
            runner = _run_view_incremental
        commit_round, outputs = runner(graph, algorithm, id_list, budget, atlas)

        rounds = [r for r in commit_round if r is not None]
        assert len(rounds) == n
        return ExecutionTrace(
            rounds=rounds,
            outputs=outputs,
            algorithm=algorithm.name,
            meta={"ids": id_list, "engine": self.engine},
        )


def _budget_check(algorithm, t: int, budget: int, live) -> None:
    if t > budget:
        raise SimulationError(
            f"{algorithm.name}: exceeded round budget {budget} "
            f"with {len(live)} nodes still running"
        )


# ----------------------------------------------------------------------
# view-based engines
# ----------------------------------------------------------------------
def _apply_commits(decided, t, commit_round, outputs, live, committed):
    """Simultaneous commits: record them in the shared commit-flag array,
    then drop committed nodes from the (sorted) live list with one flag
    scan — no per-round set construction, no re-sort (commits only ever
    remove).  ``committed`` is a ``bytearray`` the batched engine's
    frontier scheduler shares zero-copy, so flagged centres drop out of
    the flat frontier on its next sweep."""
    n = len(committed)
    for v, label in decided:
        if not 0 <= v < n:
            # guard against negative indices silently aliasing node n-1
            raise SimulationError(
                f"commit for out-of-range node {v!r} (round {t})"
            )
        if committed[v]:
            raise SimulationError(f"node {v} committed twice (round {t})")
        committed[v] = 1
        commit_round[v] = t
        outputs[v] = label
    return [v for v in live if not committed[v]]


def _run_view_reference(graph, algorithm, id_list, budget, atlas):
    """Exact recompute-every-round semantics: every live node's ball is
    re-extracted from scratch each round.  The cross-check oracle."""
    n = graph.n
    commit_round: List[Optional[int]] = [None] * n
    outputs: List = [None] * n
    committed = bytearray(n)
    live = list(range(n))

    t = 0
    while live:
        _budget_check(algorithm, t, budget, live)
        decided = []
        for v in live:
            view = View(graph, v, t, id_list, commit_round, outputs)
            decision = algorithm.decide(view, n)
            if decision is not CONTINUE:
                decided.append((v, decision))
        if decided:
            live = _apply_commits(
                decided, t, commit_round, outputs, live, committed
            )
        t += 1
    return commit_round, outputs


def _run_view_incremental(graph, algorithm, id_list, budget, atlas):
    """Grow each live node's ball by one BFS layer per round; views are
    thin windows over the per-node :class:`BallStore`."""
    n = graph.n
    commit_round: List[Optional[int]] = [None] * n
    outputs: List = [None] * n
    committed = bytearray(n)
    live = list(range(n))
    if atlas is None:
        stores = {v: BallStore(graph, v) for v in range(n)}
    else:
        stores = {
            v: BallStore(graph, v, layers=atlas.setdefault(("layers", v), [[v]]))
            for v in range(n)
        }

    t = 0
    while live:
        _budget_check(algorithm, t, budget, live)
        decided = []
        for v in live:
            store = stores[v]
            store.grow_to(t)
            view = View(graph, v, t, id_list, commit_round, outputs, store=store)
            decision = algorithm.decide(view, n)
            if decision is not CONTINUE:
                decided.append((v, decision))
        if decided:
            live = _apply_commits(
                decided, t, commit_round, outputs, live, committed
            )
            for v, _label in decided:
                del stores[v]
        t += 1
    return commit_round, outputs


class _PerNodeBatchAdapter:
    """Run an unmodified per-node ``decide`` under the batched engine.

    The fallback path of the engine contract: views are materialized one
    node at a time over the shared frontier scheduler's layer pool, so an
    existing :class:`~repro.local.algorithm.LocalAlgorithm` observes
    exactly the store-backed views the incremental engine would hand it.
    """

    __slots__ = ("_algorithm", "name")

    def __init__(self, algorithm) -> None:
        self._algorithm = algorithm
        self.name = algorithm.name

    def decide_batch(self, views, live, t):
        n = views.n
        decide = self._algorithm.decide
        decided = []
        for v in live:
            decision = decide(views.view_of(v), n)
            if decision is not CONTINUE:
                decided.append((v, decision))
        return decided


def _run_view_batched(graph, algorithm, id_list, budget, atlas):
    """One decide pass for *all* live nodes per round: balls grow through
    a shared :class:`~repro.local.frontier.FrontierScheduler` (flat CSR
    sweeps over the whole live frontier) instead of per-node dict stores,
    and the algorithm decides over the entire live set at once via
    ``decide_batch`` — per-node algorithms are wrapped in
    :class:`_PerNodeBatchAdapter`."""
    from .frontier import BatchedViews, FrontierScheduler

    n = graph.n
    commit_round: List[Optional[int]] = [None] * n
    outputs: List = [None] * n
    committed = bytearray(n)
    live = list(range(n))
    scheduler = FrontierScheduler(graph, committed, atlas=atlas)
    views = BatchedViews(
        graph, id_list, commit_round, outputs, scheduler, budget=budget
    )
    if _has_decide_batch(algorithm):
        batched = algorithm
    elif callable(getattr(algorithm, "decide", None)):
        batched = _PerNodeBatchAdapter(algorithm)
    else:
        raise TypeError(
            f"{algorithm.name} implements neither decide nor decide_batch"
        )

    t = 0
    while live:
        _budget_check(algorithm, t, budget, live)
        views.round = t
        decided = list(batched.decide_batch(views, live, t))
        if decided:
            live = _apply_commits(
                decided, t, commit_round, outputs, live, committed
            )
            for v, _label in decided:
                views.drop(v)
        t += 1
    return commit_round, outputs


# ----------------------------------------------------------------------
# message-passing engines
# ----------------------------------------------------------------------
def _run_message_incremental(graph, algorithm, id_list, budget, atlas):
    """One shared global execution of the message state machine — the
    full-information and message-passing formulations are equivalent, so
    the engine advances the global dynamics instead of re-deriving each
    node's state from its ball."""
    from .message import run_message_dynamics

    neighbor_lists = None
    if atlas is not None:
        neighbor_lists = atlas.get("neighbors")
        if neighbor_lists is None:
            neighbor_lists = [graph.neighbors(v) for v in graph.nodes()]
            atlas["neighbors"] = neighbor_lists
    return run_message_dynamics(
        graph, algorithm, id_list, budget, neighbor_lists=neighbor_lists
    )


def _run_message_reference(graph, algorithm, id_list, budget, atlas):
    """Full-information oracle for message algorithms: each round, each
    live node's state is re-derived from its radius-``t`` ball alone by
    simulating the message dynamics inside the ball, restricted to the
    causal cone (a node at distance ``d`` is advanced only through round
    ``t - d``, exactly the prefix its messages can influence the centre
    by round ``t``)."""
    n = graph.n
    commit_round: List[Optional[int]] = [None] * n
    outputs: List = [None] * n
    committed = bytearray(n)
    live = list(range(n))

    t = 0
    while live:
        _budget_check(algorithm, t, budget, live)
        decided = []
        for v in live:
            dist = graph.ball(v, t)
            decision = _message_decision_from_ball(
                graph, algorithm, id_list, n, v, t, dist
            )
            if decision is not CONTINUE:
                decided.append((v, decision))
        if decided:
            live = _apply_commits(
                decided, t, commit_round, outputs, live, committed
            )
        t += 1
    return commit_round, outputs


def _message_decision_from_ball(graph, algorithm, id_list, n, center, t, dist):
    """Re-derive ``center``'s round-``t`` decision from its ball.

    Nodes at distance ``d`` contribute exactly their first ``t - d``
    state-machine rounds (their later states cannot causally reach the
    centre).  Every node gets its true ``NodeInfo`` — a frontier node's
    round-0 broadcast encodes its full local knowledge in the message
    model, so truncating its neighbour list would diverge from the
    global dynamics.  Frontier nodes never *receive* under the causal
    cone (a node at distance ``d`` is only transitioned through round
    ``t - d``, and ``d = t`` means zero transitions), and every
    transitioned node's neighbours lie inside the ball, so all incoming
    message lists are complete and correctly aligned.
    """
    from .message import NodeInfo

    members = list(dist)
    neighbor_lists = {u: graph.neighbors(u) for u in members}
    states = {
        u: algorithm.init_state(
            NodeInfo(u, id_list[u], graph.degree(u), graph.input_of(u),
                     neighbor_lists[u]),
            n,
        )
        for u in members
    }
    for s in range(t):
        horizon = t - s
        msgs = {
            u: algorithm.message(states[u], s)
            for u in members
            if dist[u] <= horizon
        }
        for u in members:
            if dist[u] <= horizon - 1:
                states[u] = algorithm.transition(
                    states[u], [msgs[w] for w in neighbor_lists[u]], s
                )
    return algorithm.decide(states[center], t)
