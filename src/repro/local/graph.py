"""Tree and graph substrate for the LOCAL model.

The paper works on bounded-degree trees (and paths as a special case).  This
module provides an immutable adjacency-list graph with:

* integer node handles ``0..n-1`` (distinct from the *identifiers* used by
  LOCAL algorithms, see :mod:`repro.local.ids`),
* per-node input labels (the LCL input alphabet),
* radius-``r`` ball extraction (the basic LOCAL primitive),
* constructors for paths, stars, balanced trees and conversions from
  :mod:`networkx`.

Everything downstream (the simulator, problem checkers, constructions) is
built on :class:`Graph`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Graph",
    "path_graph",
    "star_graph",
    "balanced_tree",
    "from_networkx",
    "to_networkx",
]


class Graph:
    """An undirected simple graph with adjacency lists and node inputs.

    Parameters
    ----------
    n:
        Number of nodes; node handles are ``0..n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops and duplicates are rejected.
    inputs:
        Optional per-node input labels (any hashable), defaults to ``None``
        for every node.
    """

    __slots__ = ("_n", "_adj", "_inputs", "_m")

    def __init__(
        self,
        n: int,
        edges: Iterable[Tuple[int, int]],
        inputs: Optional[Sequence] = None,
    ) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        adj: List[List[int]] = [[] for _ in range(n)]
        seen = set()
        m = 0
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u},{v}) out of range for n={n}")
            if u == v:
                raise ValueError(f"self-loop at {u}")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise ValueError(f"duplicate edge {key}")
            seen.add(key)
            adj[u].append(v)
            adj[v].append(u)
            m += 1
        self._n = n
        self._adj = adj
        self._m = m
        if inputs is None:
            self._inputs = [None] * n
        else:
            if len(inputs) != n:
                raise ValueError("inputs length must equal n")
            self._inputs = list(inputs)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def nodes(self) -> range:
        return range(self._n)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        return tuple(self._adj[v])

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def max_degree(self) -> int:
        return max((len(a) for a in self._adj), default=0)

    def input_of(self, v: int):
        return self._inputs[v]

    def inputs(self) -> List:
        return list(self._inputs)

    def edges(self) -> Iterator[Tuple[int, int]]:
        for u in range(self._n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def with_inputs(self, inputs: Sequence) -> "Graph":
        """Return a copy of this graph with different input labels."""
        return Graph(self._n, list(self.edges()), inputs)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def is_tree(self) -> bool:
        """True iff the graph is connected and acyclic (n>=1)."""
        if self._n == 0:
            return False
        if self._m != self._n - 1:
            return False
        return self.is_connected()

    def is_forest(self) -> bool:
        comps = self.connected_components()
        return self._m == self._n - len(comps)

    def is_connected(self) -> bool:
        if self._n == 0:
            return False
        seen = self._bfs_reach(0)
        return len(seen) == self._n

    def _bfs_reach(self, start: int) -> set:
        seen = {start}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for w in self._adj[u]:
                if w not in seen:
                    seen.add(w)
                    queue.append(w)
        return seen

    def connected_components(self) -> List[List[int]]:
        seen = [False] * self._n
        comps: List[List[int]] = []
        for s in range(self._n):
            if seen[s]:
                continue
            comp = [s]
            seen[s] = True
            queue = deque([s])
            while queue:
                u = queue.popleft()
                for w in self._adj[u]:
                    if not seen[w]:
                        seen[w] = True
                        comp.append(w)
                        queue.append(w)
            comps.append(comp)
        return comps

    # ------------------------------------------------------------------
    # balls and distances
    # ------------------------------------------------------------------
    def ball(self, v: int, radius: int) -> Dict[int, int]:
        """Return ``{node: distance}`` for all nodes within ``radius`` of v."""
        dist = {v: 0}
        queue = deque([v])
        while queue:
            u = queue.popleft()
            du = dist[u]
            if du == radius:
                continue
            for w in self._adj[u]:
                if w not in dist:
                    dist[w] = du + 1
                    queue.append(w)
        return dist

    def bfs_distances(self, sources: Iterable[int]) -> List[Optional[int]]:
        """Multi-source BFS distance from ``sources`` to every node."""
        dist: List[Optional[int]] = [None] * self._n
        queue = deque()
        for s in sources:
            if dist[s] is None:
                dist[s] = 0
                queue.append(s)
        while queue:
            u = queue.popleft()
            for w in self._adj[u]:
                if dist[w] is None:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return dist

    def eccentricity(self, v: int) -> int:
        dist = self.bfs_distances([v])
        return max(d for d in dist if d is not None)

    def induced_subgraph(self, nodes: Iterable[int]) -> Tuple["Graph", Dict[int, int]]:
        """Induced subgraph; returns (subgraph, old->new node map)."""
        nodes = sorted(set(nodes))
        remap = {old: new for new, old in enumerate(nodes)}
        edges = [
            (remap[u], remap[v])
            for u in nodes
            for v in self._adj[u]
            if u < v and v in remap
        ]
        inputs = [self._inputs[old] for old in nodes]
        return Graph(len(nodes), edges, inputs), remap

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------
def path_graph(n: int, inputs: Optional[Sequence] = None) -> Graph:
    """A path on ``n`` nodes: 0 - 1 - ... - (n-1)."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)], inputs)


def star_graph(leaves: int) -> Graph:
    """A star: node 0 is the centre, nodes 1..leaves are leaves."""
    return Graph(leaves + 1, [(0, i) for i in range(1, leaves + 1)])


def balanced_tree(fanout: int, height: int) -> Graph:
    """A rooted balanced tree with the given fan-out and height (root = 0).

    Every internal node has exactly ``fanout`` children; leaves are at depth
    ``height``.  The *degree* of internal non-root nodes is ``fanout + 1``.
    """
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    edges = []
    frontier = [0]
    next_handle = 1
    for _ in range(height):
        new_frontier = []
        for parent in frontier:
            for _ in range(fanout):
                edges.append((parent, next_handle))
                new_frontier.append(next_handle)
                next_handle += 1
        frontier = new_frontier
    return Graph(next_handle, edges)


def from_networkx(nx_graph) -> Graph:
    """Convert a networkx graph (any hashable node names) to :class:`Graph`.

    Node input labels are taken from the ``"input"`` node attribute if set.
    """
    nodes = list(nx_graph.nodes())
    remap = {name: i for i, name in enumerate(nodes)}
    edges = [(remap[u], remap[v]) for u, v in nx_graph.edges()]
    inputs = [nx_graph.nodes[name].get("input") for name in nodes]
    return Graph(len(nodes), edges, inputs)


def to_networkx(graph: Graph):
    """Convert to a networkx graph, storing inputs as node attributes."""
    import networkx as nx

    g = nx.Graph()
    for v in graph.nodes():
        g.add_node(v, input=graph.input_of(v))
    g.add_edges_from(graph.edges())
    return g
