"""Tree and graph substrate for the LOCAL model.

The paper works on bounded-degree trees (and paths as a special case).  This
module provides an immutable graph stored in *compressed sparse row* (CSR)
form with:

* integer node handles ``0..n-1`` (distinct from the *identifiers* used by
  LOCAL algorithms, see :mod:`repro.local.ids`),
* per-node input labels (the LCL input alphabet),
* radius-``r`` ball extraction and layered BFS (the basic LOCAL primitives),
* constructors for paths, stars, balanced trees and conversions from
  :mod:`networkx`.

The CSR layout is a pair of flat integer arrays: ``indptr`` of length
``n + 1`` and ``indices`` of length ``2m``, where the neighbours of node
``v`` are ``indices[indptr[v]:indptr[v+1]]``.  Degrees and neighbour scans
are O(1)/O(deg) slice operations with no per-node Python list overhead,
which is what makes the incremental view engine in
:mod:`repro.local.simulator` and the checker scans in :mod:`repro.lcl`
cheap.  Neighbour order matches edge-insertion order (exactly the order the
old adjacency-list build produced), so all BFS traversals are reproducible
across the refactor.

Everything downstream (the simulator, problem checkers, constructions) is
built on :class:`Graph`.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

try:  # numpy accelerates construction; every path has a pure-Python twin
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is part of the baked image
    _np = None

__all__ = [
    "Graph",
    "path_graph",
    "star_graph",
    "cycle_graph",
    "grid_graph",
    "balanced_tree",
    "disjoint_union",
    "from_networkx",
    "to_networkx",
]

#: array typecode for CSR arrays — signed 64-bit so node counts are never
#: a constraint in practice.
_CSR_TYPECODE = "q"

#: below this edge count the per-edge Python build is faster than paying
#: numpy's fixed costs — and it is also the differential oracle the
#: vectorized path is pinned against in the tests.
_VECTOR_MIN_EDGES = 256


def _validate_edge_arrays(n: int, eu, ev) -> None:
    """Vectorized twin of the per-edge validation loop.

    Raises exactly the error the sequential loop would raise first: for
    each failure category the first offending edge index is computed, and
    the earliest index wins (with the loop's range -> self-loop ->
    duplicate priority on ties, since the loop checks a single edge in
    that order).
    """
    first: List[Tuple[int, int, ValueError]] = []
    bad = (eu < 0) | (eu >= n) | (ev < 0) | (ev >= n)
    if bad.any():
        k = int(_np.argmax(bad))
        first.append((k, 0, ValueError(
            f"edge ({int(eu[k])},{int(ev[k])}) out of range for n={n}")))
    loops = eu == ev
    if loops.any():
        k = int(_np.argmax(loops))
        first.append((k, 1, ValueError(f"self-loop at {int(eu[k])}")))
    lo = _np.minimum(eu, ev)
    hi = _np.maximum(eu, ev)
    # for in-range endpoints the packed key is collision-free; any packed
    # collision involving out-of-range garbage is masked by the range
    # error, whose edge index is necessarily no later
    key = lo * _np.int64(max(n, 1) + 1) + hi
    order = _np.argsort(key, kind="stable")
    sorted_key = key[order]
    dup_pos = _np.nonzero(sorted_key[1:] == sorted_key[:-1])[0]
    if dup_pos.size:
        k = int(order[dup_pos + 1].min())
        first.append((k, 2, ValueError(
            f"duplicate edge {(int(lo[k]), int(hi[k]))}")))
    if first:
        first.sort(key=lambda item: (item[0], item[1]))
        raise first[0][2]


def _csr_from_edge_arrays(n: int, eu, ev) -> Tuple["array", "array"]:
    """CSR fill from endpoint arrays, preserving edge-insertion neighbour
    order (each edge ``k`` contributes ``u->v`` before ``v->u``, exactly
    like the sequential cursor fill)."""
    m = int(eu.shape[0])
    src = _np.empty(2 * m, dtype=_np.int64)
    dst = _np.empty(2 * m, dtype=_np.int64)
    src[0::2] = eu
    src[1::2] = ev
    dst[0::2] = ev
    dst[1::2] = eu
    order = _np.argsort(src, kind="stable")
    indptr_np = _np.zeros(n + 1, dtype=_np.int64)
    _np.cumsum(_np.bincount(src, minlength=n), out=indptr_np[1:])
    indptr = array(_CSR_TYPECODE)
    indptr.frombytes(indptr_np.tobytes())
    indices = array(_CSR_TYPECODE)
    indices.frombytes(dst[order].tobytes())
    return indptr, indices


class Graph:
    """An undirected simple graph in CSR form with per-node inputs.

    Parameters
    ----------
    n:
        Number of nodes; node handles are ``0..n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops and duplicates are rejected.
    inputs:
        Optional per-node input labels (any hashable), defaults to ``None``
        for every node.
    """

    __slots__ = ("_n", "_m", "_indptr", "_indices", "_inputs")

    def __init__(
        self,
        n: int,
        edges: Iterable[Tuple[int, int]],
        inputs: Optional[Sequence] = None,
    ) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        if not isinstance(edges, (list, tuple)):
            edges = list(edges)
        if _np is not None and len(edges) >= _VECTOR_MIN_EDGES:
            pairs = _np.asarray(edges, dtype=_np.int64)
            self._init_from_arrays(n, pairs[:, 0], pairs[:, 1], inputs)
            return
        edge_list: List[Tuple[int, int]] = []
        seen = set()
        degree = [0] * n
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u},{v}) out of range for n={n}")
            if u == v:
                raise ValueError(f"self-loop at {u}")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise ValueError(f"duplicate edge {key}")
            seen.add(key)
            edge_list.append((u, v))
            degree[u] += 1
            degree[v] += 1

        indptr = array(_CSR_TYPECODE, [0] * (n + 1))
        for v in range(n):
            indptr[v + 1] = indptr[v] + degree[v]
        indices = array(_CSR_TYPECODE, [0] * (2 * len(edge_list)))
        cursor = list(indptr[:n])
        for u, v in edge_list:
            indices[cursor[u]] = v
            cursor[u] += 1
            indices[cursor[v]] = u
            cursor[v] += 1

        self._n = n
        self._m = len(edge_list)
        self._indptr = indptr
        self._indices = indices
        self._inputs = self._coerce_inputs(n, inputs)

    def _init_from_arrays(self, n: int, eu, ev, inputs: Optional[Sequence]) -> None:
        _validate_edge_arrays(n, eu, ev)
        self._indptr, self._indices = _csr_from_edge_arrays(n, eu, ev)
        self._n = n
        self._m = int(eu.shape[0])
        self._inputs = self._coerce_inputs(n, inputs)

    @staticmethod
    def _coerce_inputs(n: int, inputs: Optional[Sequence]) -> List:
        if inputs is None:
            return [None] * n
        if len(inputs) != n:
            raise ValueError("inputs length must equal n")
        return list(inputs)

    @classmethod
    def from_arrays(
        cls,
        n: int,
        edge_u,
        edge_v,
        inputs: Optional[Sequence] = None,
        validate: bool = True,
    ) -> "Graph":
        """Vectorized constructor from flat endpoint arrays.

        Produces exactly the same graph as
        ``Graph(n, zip(edge_u, edge_v), inputs)`` — same CSR layout, same
        neighbour order, same validation errors — but in O(m log m) numpy
        time instead of per-edge Python, which is what makes building
        n=10^6 instances cheap.  ``validate=False`` skips the
        duplicate/range scan for trusted deterministic builders.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if _np is None:  # pragma: no cover - numpy is part of the image
            return cls(n, list(zip(edge_u, edge_v)), inputs)
        eu = _np.ascontiguousarray(edge_u, dtype=_np.int64).ravel()
        ev = _np.ascontiguousarray(edge_v, dtype=_np.int64).ravel()
        if eu.shape[0] != ev.shape[0]:
            raise ValueError("edge endpoint arrays must have equal length")
        if validate:
            _validate_edge_arrays(n, eu, ev)
        g = object.__new__(cls)
        g._indptr, g._indices = _csr_from_edge_arrays(n, eu, ev)
        g._n = n
        g._m = int(eu.shape[0])
        g._inputs = cls._coerce_inputs(n, inputs)
        return g

    @classmethod
    def from_csr_buffers(
        cls,
        n: int,
        m: int,
        indptr_buf,
        indices_buf,
        inputs: Optional[Sequence] = None,
        copy_inputs: bool = True,
    ) -> "Graph":
        """Zero-copy attach to externally owned CSR buffers.

        ``indptr_buf``/``indices_buf`` are buffer objects (e.g. slices of
        a ``multiprocessing.shared_memory`` block) holding ``n + 1`` and
        ``2 * m`` native int64 values.  The graph aliases them through
        ``memoryview.cast("q")`` — indexing still yields plain Python
        ints, so downstream consumers cannot tell the difference from the
        ``array('q')`` backing — and the caller keeps ownership: the
        buffers must outlive the graph.  ``copy_inputs=False`` stores the
        ``inputs`` sequence by reference (it must be immutable and
        support ``len``/indexing), which lets shared-memory attaches skip
        materializing n-element label lists.

        The views are sealed read-only (``memoryview.toreadonly``):
        attached buffers are typically mapped concurrently by sibling
        workers, so a store through this graph would race every process
        sharing the segment (SHM001) — writers must go through the
        owning pool, never an attach.
        """
        indptr = memoryview(indptr_buf).toreadonly().cast(_CSR_TYPECODE)
        indices = memoryview(indices_buf).toreadonly().cast(_CSR_TYPECODE)
        if len(indptr) != n + 1 or len(indices) != 2 * m:
            raise ValueError("CSR buffer sizes do not match (n, m)")
        g = object.__new__(cls)
        g._n = n
        g._m = m
        g._indptr = indptr
        g._indices = indices
        if inputs is not None and not copy_inputs:
            if len(inputs) != n:
                raise ValueError("inputs length must equal n")
            g._inputs = inputs
        else:
            g._inputs = cls._coerce_inputs(n, inputs)
        return g

    @classmethod
    def _from_csr(
        cls,
        n: int,
        m: int,
        indptr: "array",
        indices: "array",
        inputs: Sequence,
    ) -> "Graph":
        """Share already-validated CSR arrays (graphs are immutable, so
        aliasing them between instances is safe)."""
        g = object.__new__(cls)
        g._n = n
        g._m = m
        g._indptr = indptr
        g._indices = indices
        g._inputs = list(inputs)
        return g

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def nodes(self) -> range:
        return range(self._n)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        indptr = self._indptr
        return tuple(self._indices[indptr[v]:indptr[v + 1]])

    def adjacency(self) -> Tuple["array", "array"]:
        """The raw CSR pair ``(indptr, indices)``.

        The neighbours of ``v`` are ``indices[indptr[v]:indptr[v+1]]``.
        This is the fast primitive for radius-``r`` checker scans and
        fast-forward executors; callers must treat both arrays as
        read-only.
        """
        return self._indptr, self._indices

    def degree(self, v: int) -> int:
        return self._indptr[v + 1] - self._indptr[v]

    def max_degree(self) -> int:
        indptr = self._indptr
        return max(
            (indptr[v + 1] - indptr[v] for v in range(self._n)), default=0
        )

    def input_of(self, v: int):
        return self._inputs[v]

    def inputs(self) -> List:
        return list(self._inputs)

    def edges(self) -> Iterator[Tuple[int, int]]:
        indptr, indices = self._indptr, self._indices
        for u in range(self._n):
            for i in range(indptr[u], indptr[u + 1]):
                v = indices[i]
                if u < v:
                    yield (u, v)

    def with_inputs(self, inputs: Sequence) -> "Graph":
        """Return a copy of this graph with different input labels."""
        if len(inputs) != self._n:
            raise ValueError("inputs length must equal n")
        return Graph._from_csr(
            self._n, self._m, self._indptr, self._indices, inputs
        )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def is_tree(self) -> bool:
        """True iff the graph is connected and acyclic (n>=1)."""
        if self._n == 0:
            return False
        if self._m != self._n - 1:
            return False
        return self.is_connected()

    def is_forest(self) -> bool:
        comps = self.connected_components()
        return self._m == self._n - len(comps)

    def is_connected(self) -> bool:
        if self._n == 0:
            return False
        reached = 0
        for layer in self.bfs_layers([0]):
            reached += len(layer)
        return reached == self._n

    def connected_components(self) -> List[List[int]]:
        indptr, indices = self._indptr, self._indices
        seen = bytearray(self._n)
        comps: List[List[int]] = []
        for s in range(self._n):
            if seen[s]:
                continue
            comp = [s]
            seen[s] = 1
            head = 0
            while head < len(comp):
                u = comp[head]
                head += 1
                for i in range(indptr[u], indptr[u + 1]):
                    w = indices[i]
                    if not seen[w]:
                        seen[w] = 1
                        comp.append(w)
            comps.append(comp)
        return comps

    # ------------------------------------------------------------------
    # balls and distances
    # ------------------------------------------------------------------
    def ball(self, v: int, radius: int) -> Dict[int, int]:
        """Return ``{node: distance}`` for all nodes within ``radius`` of v."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        dist = {v: 0}
        for r, layer in enumerate(self.bfs_layers([v])):
            if r > 0:
                for w in layer:
                    dist[w] = r
            # break after *consuming* layer ``radius`` so the generator
            # never scans the frontier's edges for the layer beyond it
            if r == radius:
                break
        return dist

    def bfs_layers(self, sources: Iterable[int]) -> Iterator[List[int]]:
        """Yield BFS layers from ``sources``: layer 0 is the (deduplicated)
        sources, layer ``r`` the nodes at distance exactly ``r``.

        Stops after the last non-empty layer.  This is the growth primitive
        behind :class:`repro.local.algorithm.BallStore`: one layer per
        LOCAL round.
        """
        indptr, indices = self._indptr, self._indices
        seen = {}
        layer: List[int] = []
        for s in sources:
            if s not in seen:
                seen[s] = True
                layer.append(s)
        while layer:
            yield layer
            nxt: List[int] = []
            for u in layer:
                for i in range(indptr[u], indptr[u + 1]):
                    w = indices[i]
                    if w not in seen:
                        seen[w] = True
                        nxt.append(w)
            layer = nxt

    def bfs_distances(self, sources: Iterable[int]) -> List[Optional[int]]:
        """Multi-source BFS distance from ``sources`` to every node."""
        dist: List[Optional[int]] = [None] * self._n
        for r, layer in enumerate(self.bfs_layers(sources)):
            for w in layer:
                dist[w] = r
        return dist

    def eccentricity(self, v: int) -> int:
        ecc = 0
        for r, _layer in enumerate(self.bfs_layers([v])):
            ecc = r
        return ecc

    def induced_subgraph(self, nodes: Iterable[int]) -> Tuple["Graph", Dict[int, int]]:
        """Induced subgraph; returns (subgraph, old->new node map)."""
        nodes = sorted(set(nodes))
        remap = {old: new for new, old in enumerate(nodes)}
        indptr, indices = self._indptr, self._indices
        edges = [
            (remap[u], remap[v])
            for u in nodes
            for v in indices[indptr[u]:indptr[u + 1]]
            if u < v and v in remap
        ]
        inputs = [self._inputs[old] for old in nodes]
        return Graph(len(nodes), edges, inputs), remap

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------
def path_graph(n: int, inputs: Optional[Sequence] = None) -> Graph:
    """A path on ``n`` nodes: 0 - 1 - ... - (n-1)."""
    if _np is not None and n >= 2:
        heads = _np.arange(n - 1, dtype=_np.int64)
        return Graph.from_arrays(n, heads, heads + 1, inputs, validate=False)
    return Graph(n, [(i, i + 1) for i in range(n - 1)], inputs)


def star_graph(leaves: int) -> Graph:
    """A star: node 0 is the centre, nodes 1..leaves are leaves."""
    if _np is not None and leaves >= 1:
        spokes = _np.arange(1, leaves + 1, dtype=_np.int64)
        return Graph.from_arrays(
            leaves + 1, _np.zeros(leaves, dtype=_np.int64), spokes,
            validate=False,
        )
    return Graph(leaves + 1, [(0, i) for i in range(1, leaves + 1)])


def cycle_graph(n: int, inputs: Optional[Sequence] = None) -> Graph:
    """A cycle on ``n >= 3`` nodes: 0 - 1 - ... - (n-1) - 0."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    if _np is not None:
        heads = _np.arange(n, dtype=_np.int64)
        return Graph.from_arrays(n, heads, (heads + 1) % n, inputs,
                                 validate=False)
    edges = [(i, i + 1) for i in range(n - 1)] + [(n - 1, 0)]
    return Graph(n, edges, inputs)


def grid_graph(rows: int, cols: int) -> Graph:
    """A ``rows x cols`` grid; node ``(r, c)`` has handle ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    if _np is not None:
        v_all = _np.arange(rows * cols, dtype=_np.int64)
        right = v_all[v_all % cols != cols - 1]
        down = v_all[v_all < (rows - 1) * cols]
        # the loop build emits, per node in row-major order, its right
        # edge then its down edge — replay that order via a stable sort
        # on (node, kind) so neighbour order stays byte-identical
        order = _np.argsort(
            _np.concatenate((2 * right, 2 * down + 1)), kind="stable"
        )
        us = _np.concatenate((right, down))[order]
        vs = _np.concatenate((right + 1, down + cols))[order]
        return Graph.from_arrays(rows * cols, us, vs, validate=False)
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(rows * cols, edges)


def disjoint_union(graphs: Sequence[Graph]) -> Graph:
    """The disjoint union of ``graphs``; handles of graph ``i`` are offset
    by the total size of graphs ``0..i-1``, inputs are preserved."""
    if not graphs:
        raise ValueError("disjoint_union needs at least one graph")
    edges: List[Tuple[int, int]] = []
    inputs: List = []
    offset = 0
    for g in graphs:
        edges.extend((u + offset, v + offset) for u, v in g.edges())
        inputs.extend(g.inputs())
        offset += g.n
    return Graph(offset, edges, inputs)


def balanced_tree(fanout: int, height: int) -> Graph:
    """A rooted balanced tree with the given fan-out and height (root = 0).

    Every internal node has exactly ``fanout`` children; leaves are at depth
    ``height``.  The *degree* of internal non-root nodes is ``fanout + 1``.
    """
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    total = sum(fanout ** d for d in range(height + 1))
    if _np is not None and total >= 2:
        # handles are assigned in BFS order, so node k >= 1 hangs off
        # parent (k - 1) // fanout and the loop emits edges in child order
        children = _np.arange(1, total, dtype=_np.int64)
        return Graph.from_arrays(
            total, (children - 1) // fanout, children, validate=False
        )
    edges = []
    frontier = [0]
    next_handle = 1
    for _ in range(height):
        new_frontier = []
        for parent in frontier:
            for _ in range(fanout):
                edges.append((parent, next_handle))
                new_frontier.append(next_handle)
                next_handle += 1
        frontier = new_frontier
    return Graph(next_handle, edges)


def from_networkx(nx_graph) -> Graph:
    """Convert a networkx graph (any hashable node names) to :class:`Graph`.

    Node input labels are taken from the ``"input"`` node attribute if set.
    """
    nodes = list(nx_graph.nodes())
    remap = {name: i for i, name in enumerate(nodes)}
    edges = [(remap[u], remap[v]) for u, v in nx_graph.edges()]
    inputs = [nx_graph.nodes[name].get("input") for name in nodes]
    return Graph(len(nodes), edges, inputs)


def to_networkx(graph: Graph):
    """Convert to a networkx graph, storing inputs as node attributes."""
    import networkx as nx

    g = nx.Graph()
    for v in graph.nodes():
        g.add_node(v, input=graph.input_of(v))
    g.add_edges_from(graph.edges())
    return g
