"""Message-passing formulation of the LOCAL model.

Complements the full-information view simulator: algorithms are synchronous
state machines that broadcast one (unbounded) message per round.  Round
semantics match :mod:`repro.local.simulator` exactly:

* at round ``t`` a node has processed ``t`` message exchanges and may commit
  (``T_v = t``); a round-0 commit uses only the node's own initial state;
* committed nodes *keep relaying* (their state machine continues to run,
  its committed output frozen) — in LOCAL, information flows through
  terminated nodes, and several of the paper's algorithms rely on that.

Both executors return :class:`repro.local.metrics.ExecutionTrace`, so
metrics and benchmarks are agnostic to the formulation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .algorithm import CONTINUE
from .graph import Graph
from .metrics import ExecutionTrace
from .simulator import LocalSimulator, SimulationError

__all__ = [
    "MessageAlgorithm",
    "MessageSimulator",
    "NodeInfo",
    "run_message_dynamics",
]


class NodeInfo:
    """Static per-node information available at initialization."""

    __slots__ = ("handle", "vid", "degree", "input", "neighbors")

    def __init__(self, handle: int, vid: int, degree: int, input_label,
                 neighbors: Tuple[int, ...]) -> None:
        self.handle = handle
        self.vid = vid
        self.degree = degree
        self.input = input_label
        #: global handles of neighbours, aligned with incoming-message order
        self.neighbors = neighbors


class MessageAlgorithm:
    """Synchronous message-passing LOCAL algorithm.

    Subclasses implement the four hooks below.  States are arbitrary
    objects; messages are arbitrary (the LOCAL model does not bound them).
    """

    name: str = "message-algorithm"

    def setup(self, graph: Graph, n: int) -> None:
        """Global precomputation from ``n`` alone (round schedules etc.)."""

    def init_state(self, info: NodeInfo, n: int):
        raise NotImplementedError

    def message(self, state, t: int):
        """The broadcast message of a node in state ``state`` at round ``t``."""
        raise NotImplementedError

    def transition(self, state, incoming: Sequence, t: int):
        """New state after receiving ``incoming`` (one message per neighbour,
        aligned with ``NodeInfo.neighbors``) at round ``t``."""
        raise NotImplementedError

    def decide(self, state, t: int):
        """Output label to commit at round ``t``, or :data:`CONTINUE`."""
        raise NotImplementedError

    def max_rounds_hint(self, n: int) -> int:
        return 4 * n + 64


def run_message_dynamics(
    graph: Graph,
    algorithm: MessageAlgorithm,
    id_list: Sequence[int],
    budget: int,
    neighbor_lists: Optional[List[Tuple[int, ...]]] = None,
) -> Tuple[List[Optional[int]], List]:
    """Advance the global message state machine until every node commits.

    The shared core of :class:`MessageSimulator` and the incremental
    message engine of :class:`repro.local.simulator.LocalSimulator`.
    Assumes ``algorithm.setup`` has already run and the IDs are valid;
    returns ``(commit_round, outputs)`` or raises :class:`SimulationError`
    past ``budget`` rounds.  ``neighbor_lists`` lets batched callers
    reuse the per-node adjacency tuples across runs.
    """
    n = graph.n
    if neighbor_lists is None:
        neighbor_lists = [graph.neighbors(v) for v in graph.nodes()]
    states = [
        algorithm.init_state(
            NodeInfo(v, id_list[v], graph.degree(v), graph.input_of(v),
                     neighbor_lists[v]),
            n,
        )
        for v in graph.nodes()
    ]
    commit_round: List[Optional[int]] = [None] * n
    outputs: List = [None] * n
    # commit-flag array + sorted live list, same shape as the view engines'
    # _apply_commits: flag writes during the decide scan, one flag-filter
    # rebuild per deciding round — no per-round set churn
    committed = bytearray(n)
    live = list(range(n))

    t = 0
    while live:
        if t > budget:
            raise SimulationError(
                f"{algorithm.name}: exceeded round budget {budget} "
                f"with {len(live)} nodes still running"
            )
        decided = False
        for v in live:
            decision = algorithm.decide(states[v], t)
            if decision is not CONTINUE:
                commit_round[v] = t
                outputs[v] = decision
                committed[v] = 1
                decided = True
        if decided:
            live = [v for v in live if not committed[v]]
        if not live:
            break
        msgs = [algorithm.message(states[v], t) for v in graph.nodes()]
        states = [
            algorithm.transition(
                states[v], [msgs[w] for w in neighbor_lists[v]], t
            )
            for v in graph.nodes()
        ]
        t += 1

    return commit_round, outputs


class MessageSimulator:
    """Execute a :class:`MessageAlgorithm`; same accounting as the view
    simulator.

    A thin compatibility front for :class:`~repro.local.simulator.
    LocalSimulator`, which runs both algorithm formulations; delegating
    keeps the two entry points from drifting apart — in particular the
    traces carry the same ``meta`` keys (``"ids"``, ``"engine"``), so
    tooling that reads ``trace.meta["engine"]`` works on either.
    """

    def __init__(self, max_rounds: Optional[int] = None) -> None:
        self._max_rounds = max_rounds

    def run(
        self,
        graph: Graph,
        algorithm: MessageAlgorithm,
        ids: Optional[Sequence[int]] = None,
    ) -> ExecutionTrace:
        if not isinstance(algorithm, MessageAlgorithm):
            raise TypeError(
                f"MessageSimulator runs MessageAlgorithms, got {type(algorithm)!r}"
            )
        return LocalSimulator(max_rounds=self._max_rounds).run(
            graph, algorithm, ids
        )
