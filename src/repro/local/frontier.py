"""Shared frontier scheduler for the batched execution engine.

The incremental engine grows one :class:`~repro.local.algorithm.BallStore`
per live node — ``n`` independent dict structures, each advanced by a
Python BFS loop every round.  The batched engine replaces them with **one**
scheduler that grows *all* live balls together: the round-``r`` frontier of
every live centre lives in two flat int64 arrays ``(centers, nodes)``
(grouped by centre), and one vectorized CSR sweep per round expands every
frontier at once.

Deduplication uses the standard two-layer BFS identity on undirected
graphs: a neighbour of a node at distance ``r`` is at distance ``r-1``,
``r`` or ``r+1``, so a candidate is new iff its ``(center, node)`` key is
in neither the current nor the previous layer — no per-centre visited sets
are needed.  First-occurrence order within the candidate stream matches the
per-node BFS exactly (centres grouped in layer order, neighbours in CSR
order), so the layers the scheduler writes back into the shared layer pool
are byte-identical to what ``BallStore`` would have produced on its own.

The layer pool is the same ``("layers", v)`` atlas structure
``LocalSimulator.run_batch`` shares across ID samples: layer ``r`` of
centre ``v`` is a plain list of nodes at distance exactly ``r``, a pure
function of the topology.  A batched run therefore reuses (and extends)
layers cached by earlier runs on any engine, and vice versa.

Growth is **lazy**: the scheduler only sweeps when something actually asks
for ball facts at the current round.  Algorithms whose ``decide_batch``
works from the graph directly (e.g. the vectorized Cole–Vishkin) never
trigger a single BFS step.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .algorithm import BallStore, View
from .graph import Graph

__all__ = ["FrontierScheduler", "BatchedViews", "csr_numpy"]

_EMPTY = np.empty(0, dtype=np.int64)


def _readonly(arr: np.ndarray) -> np.ndarray:
    """A zero-copy view that raises on writes (mutating shared engine
    state would silently corrupt every later round, so make it loud —
    the same sealing philosophy as the read-only ``View`` ball)."""
    view = arr.view()
    view.flags.writeable = False
    return view


def csr_numpy(graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
    """Zero-copy read-only int64 views over the graph's CSR ``array('q')``
    pair — the shared entry point for vectorized code (the frontier
    scheduler, ``decide_batch`` implementations) that wants the adjacency
    as numpy arrays.
    """
    indptr, indices = graph.adjacency()
    ip = np.frombuffer(indptr, dtype=np.int64)
    ix = np.frombuffer(indices, dtype=np.int64) if len(indices) else _EMPTY
    return _readonly(ip), _readonly(ix)


class FrontierScheduler:
    """Grow the radius-``t`` balls of all live centres in lockstep.

    Parameters
    ----------
    graph:
        The (immutable) CSR graph.
    committed:
        The engine's commit-flag ``bytearray`` (length ``n``).  Viewed
        zero-copy as uint8: a centre whose flag is set simply drops out of
        the flat frontier on the next sweep — committed balls stop growing
        exactly as the incremental engine stops calling ``grow_to``.
    atlas:
        Optional cross-run topology cache (``run_batch``'s dict).  Layers
        are read from and written to ``atlas[("layers", v)]`` so batched,
        incremental and adapter-backed runs share one BFS.

    Attributes
    ----------
    radius:
        Radius every live ball has been grown to.
    complete:
        Bool array; ``complete[v]`` iff ``v``'s BFS exhausted its component
        strictly inside the current radius (the ``BallStore.complete``
        truth value, computed for all centres at once).
    ball_size:
        Int64 array of current ball cardinalities (frozen once a centre
        commits or completes).
    """

    def __init__(
        self, graph: Graph, committed: bytearray, atlas: Optional[Dict] = None
    ) -> None:
        n = graph.n
        self._graph = graph
        self._n = n
        self._indptr, self._indices = csr_numpy(graph)
        self._committed = np.frombuffer(committed, dtype=np.uint8)
        self._atlas = atlas
        self._pools: Optional[List[List[List[int]]]] = None
        self._pool_len: Optional[np.ndarray] = None
        self.radius = 0
        self.complete = np.zeros(n, dtype=bool)
        self.ball_size = np.ones(n, dtype=np.int64)
        # layer `radius` of every still-growing centre, grouped by centre
        self._cur_c = np.arange(n, dtype=np.int64)
        self._cur_v = np.arange(n, dtype=np.int64)
        # sorted (center * n + node) keys of the current / previous layer,
        # the only state the two-layer dedup needs
        self._cur_keys = self._cur_c * n + self._cur_v
        self._prev_keys = _EMPTY

    # ------------------------------------------------------------------
    def pool(self, v: int) -> List[List[int]]:
        """Centre ``v``'s layer list (shared with ``BallStore`` windows)."""
        self._materialize_pools()
        return self._pools[v]

    def _materialize_pools(self) -> None:
        if self._pools is not None:
            return
        n = self._n
        if self._atlas is None:
            self._pools = [[[v]] for v in range(n)]
        else:
            setdefault = self._atlas.setdefault
            self._pools = [setdefault(("layers", v), [[v]]) for v in range(n)]
        self._pool_len = np.array(
            [len(p) for p in self._pools], dtype=np.int64
        )

    # ------------------------------------------------------------------
    def grow_to(self, t: int) -> None:
        """Advance every live ball to radius ``t`` (no-op if already there)."""
        while self.radius < t:
            self._step()

    def _step(self) -> None:
        n = self._n
        self._materialize_pools()
        r = self.radius + 1
        cur_c, cur_v = self._cur_c, self._cur_v
        if len(cur_c):
            # committed centres leave the flat frontier permanently
            keep = self._committed[cur_c] == 0
            if not keep.all():
                cur_c, cur_v = cur_c[keep], cur_v[keep]
        if len(cur_c) == 0:
            self._cur_c = self._cur_v = _EMPTY
            self._prev_keys, self._cur_keys = self._cur_keys, _EMPTY
            self.radius = r
            return

        pools, pool_len = self._pools, self._pool_len
        cached_entry = pool_len[cur_c] > r
        parts_c: List[np.ndarray] = []
        parts_v: List[np.ndarray] = []

        # --- cached centres: layer r is already in the pool --------------
        if cached_entry.any():
            for c in np.unique(cur_c[cached_entry]).tolist():
                layer = pools[c][r]
                if layer:
                    parts_c.append(np.full(len(layer), c, dtype=np.int64))
                    parts_v.append(np.asarray(layer, dtype=np.int64))

        # --- uncached centres: one vectorized CSR expansion --------------
        uncached = ~cached_entry
        if uncached.any():
            src_c, src_v = cur_c[uncached], cur_v[uncached]
            indptr, indices = self._indptr, self._indices
            deg = indptr[src_v + 1] - indptr[src_v]
            total = int(deg.sum())
            if total:
                reps = np.repeat(np.arange(len(src_v)), deg)
                offs = np.arange(total, dtype=np.int64) - np.repeat(
                    np.cumsum(deg) - deg, deg
                )
                cand_v = indices[indptr[src_v][reps] + offs]
                cand_c = src_c[reps]
                keys = cand_c * n + cand_v
                seen = np.isin(keys, self._cur_keys) | np.isin(
                    keys, self._prev_keys
                )
                first = np.zeros(len(keys), dtype=bool)
                first[np.unique(keys, return_index=True)[1]] = True
                fresh = first & ~seen
                new_c, new_v = cand_c[fresh], cand_v[fresh]
            else:
                new_c = new_v = _EMPTY
            # write the expanded layers back into the shared pool,
            # preserving the stream (= per-node BFS) order
            if len(new_c):
                cut = np.flatnonzero(np.diff(new_c)) + 1
                starts = np.concatenate(([0], cut))
                for start, group in zip(starts, np.split(new_v, cut)):
                    c = int(new_c[start])
                    pools[c].append(group.tolist())
                    pool_len[c] = r + 1
                parts_c.append(new_c)
                parts_v.append(new_v)
                grew = new_c[starts]
            else:
                grew = _EMPTY
            # uncached centres with an empty new layer: record it (the
            # BallStore convention appends the empty layer too) — they
            # turn complete below
            for c in np.setdiff1d(np.unique(src_c), grew).tolist():
                pools[c].append([])
                pool_len[c] = r + 1

        # --- merge, regroup by centre, update the flat state -------------
        if parts_c:
            nc = np.concatenate(parts_c)
            nv = np.concatenate(parts_v)
            if len(parts_c) > 1:
                order = np.argsort(nc, kind="stable")
                nc, nv = nc[order], nv[order]
        else:
            nc = nv = _EMPTY
        if len(nc):
            self.ball_size += np.bincount(nc, minlength=n)
        done = np.setdiff1d(np.unique(cur_c), nc)
        if len(done):
            self.complete[done] = True
        self._prev_keys = self._cur_keys
        self._cur_keys = np.sort(nc * n + nv) if len(nc) else _EMPTY
        self._cur_c, self._cur_v = nc, nv
        self.radius = r


class BatchedViews:
    """What a ``decide_batch`` implementation sees each round.

    One object per execution, re-pointed at the current round by the
    engine.  It exposes the scheduler's flat per-centre ball facts
    (``complete_mask``/``ball_sizes`` — treat both arrays as read-only)
    for array-level decisions, and materializes ordinary radius-``t``
    :class:`~repro.local.algorithm.View` windows on demand for the
    per-node fallback adapter.  All accessors grow the shared frontier
    lazily, so algorithms that never ask for ball facts never pay for a
    single BFS step.
    """

    __slots__ = ("graph", "n", "ids", "round", "budget", "commit_round",
                 "outputs", "_scheduler", "_stores")

    def __init__(
        self,
        graph: Graph,
        ids: List[int],
        commit_round: List[Optional[int]],
        outputs: List,
        scheduler: FrontierScheduler,
        budget: int = 0,
    ) -> None:
        self.graph = graph
        self.n = graph.n
        self.ids = ids
        self.round = 0
        #: the engine's round budget for this execution — algorithms that
        #: run an inner simulation (schedule-replay fallbacks) must bound
        #: it by this, not by their own hint, so SimulationError behaviour
        #: matches the per-node engines under a caller-supplied max_rounds
        self.budget = budget
        self.commit_round = commit_round
        self.outputs = outputs
        self._scheduler = scheduler
        self._stores: Dict[int, BallStore] = {}

    # -- flat ball facts ----------------------------------------------
    def _grown(self) -> FrontierScheduler:
        self._scheduler.grow_to(self.round)
        return self._scheduler

    def complete_mask(self) -> np.ndarray:
        """``mask[v]`` iff ``v``'s ball provably contains its whole
        component (``View.sees_whole_component`` for every centre at
        once).  Read-only (writes raise); only meaningful for live
        centres."""
        return _readonly(self._grown().complete)

    def ball_sizes(self) -> np.ndarray:
        """Current ball cardinalities, ``|ball(v, t)|`` per centre.
        Read-only (writes raise); frozen for committed centres."""
        return _readonly(self._grown().ball_size)

    def neighbor_lists(self) -> List[Tuple[int, ...]]:
        """Per-node adjacency tuples, cached across a ``run_batch``
        through the same ``"neighbors"`` atlas entry the message engines
        share — for ``decide_batch`` implementations that run an inner
        message simulation."""
        atlas = self._scheduler._atlas
        graph = self.graph
        if atlas is None:
            return [graph.neighbors(v) for v in graph.nodes()]
        neighbor_lists = atlas.get("neighbors")
        if neighbor_lists is None:
            neighbor_lists = [graph.neighbors(v) for v in graph.nodes()]
            atlas["neighbors"] = neighbor_lists
        return neighbor_lists

    def ready(self, live) -> np.ndarray:
        """The live nodes whose ball provably covers their component —
        the batched form of the canonical per-node guard
        ``len(view.nodes()) == n or view.sees_whole_component()``, in one
        array expression over the whole live set."""
        scheduler = self._grown()
        la = np.fromiter(live, dtype=np.int64, count=len(live))
        return la[(scheduler.ball_size[la] == self.n)
                  | scheduler.complete[la]]

    # -- per-node fallback --------------------------------------------
    def view_of(self, v: int) -> View:
        """The ordinary radius-``t`` :class:`View` of live node ``v``,
        windowed over the shared layer pool."""
        scheduler = self._grown()
        store = self._stores.get(v)
        if store is None:
            store = BallStore(self.graph, v, layers=scheduler.pool(v))
            self._stores[v] = store
        store.grow_to(self.round)
        return View(self.graph, v, self.round, self.ids, self.commit_round,
                    self.outputs, store=store)

    def drop(self, v: int) -> None:
        """Release node ``v``'s materialized store after it commits."""
        self._stores.pop(v, None)
