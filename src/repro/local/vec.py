"""Shared numpy sweeps over CSR graphs for the array-form solver ports.

The centralized solvers (levels, generic phases, rake-and-compress, the
oriented fast decomposition) all iterate the same three primitives:
count neighbours inside a node subset, expand a node subset to its
incident directed edges, and trace the maximal paths induced by a subset
whose induced degree is at most 2.  This module provides those primitives
as flat numpy passes over the graph's CSR arrays so the solvers scale to
``n = 10^6`` — each caller keeps its per-node Python twin as the
differential oracle (and as the fallback when numpy is unavailable).

Dispatch convention: a caller uses the vector path when
``HAVE_NUMPY and n >= VEC_MIN_NODES`` — reference ``vec.VEC_MIN_NODES``
through the module (not a ``from``-import) so tests can pin it to 0 and
force the vector path onto the small differential corpus.
"""

from __future__ import annotations

from typing import List, Tuple

try:  # pragma: no cover - exercised by presence/absence of numpy
    import numpy as np
except ImportError:  # pragma: no cover - numpy is part of the toolchain
    np = None

from .graph import Graph

__all__ = [
    "HAVE_NUMPY",
    "VEC_MIN_NODES",
    "csr_arrays",
    "expand_segments",
    "induced_degrees",
    "member_paths",
]

HAVE_NUMPY = np is not None

#: below this node count the per-node Python paths win on constant factors
VEC_MIN_NODES = 256


def use_vector_path(n: int) -> bool:
    """The dispatch predicate every ported solver shares."""
    return HAVE_NUMPY and n >= VEC_MIN_NODES


def csr_arrays(graph: Graph):
    """The graph's CSR pair as zero-copy int64 numpy views."""
    indptr, indices = graph.adjacency()
    return (
        np.frombuffer(indptr, dtype=np.int64),
        np.frombuffer(indices, dtype=np.int64),
    )


def expand_segments(indptr, indices, nodes):
    """All directed edges out of ``nodes``: ``(src, nbr)`` arrays with
    ``src`` repeated per degree and neighbours in CSR order."""
    lens = indptr[nodes + 1] - indptr[nodes]
    total = int(lens.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    shift = np.concatenate(([0], np.cumsum(lens)[:-1]))
    gather = np.arange(total, dtype=np.int64) + np.repeat(
        indptr[nodes] - shift, lens
    )
    return np.repeat(nodes, lens), indices[gather]


def induced_degrees(indptr, indices, member):
    """Per-node count of neighbours inside the boolean ``member`` mask
    (defined for every node, members or not), via one cumsum difference."""
    counts = np.zeros(len(indices) + 1, dtype=np.int64)
    np.cumsum(member[indices], out=counts[1:])
    return counts[indptr[1:]] - counts[indptr[:-1]]


def _walk(v: int, prev: int, nb1: List[int], nb2: List[int]) -> List[int]:
    """Follow the path from ``v`` away from ``prev`` to its end."""
    out = [v]
    cur, pr = v, prev
    while True:
        a = nb1[cur]
        nxt = a if a != pr else nb2[cur]
        if nxt == -1:
            break
        out.append(nxt)
        pr = cur
        cur = nxt
    return out


def member_paths(graph: Graph, member) -> List[List[int]]:
    """Maximal paths induced by the boolean ``member`` mask.

    Components are returned in ascending order of their smallest member;
    each path is ordered from its smaller endpoint — exactly the
    convention of the per-node tracers in :mod:`repro.lcl.levels`,
    :mod:`repro.algorithms.generic_phases` and
    :mod:`repro.algorithms.rake_compress`.  Raises ``ValueError`` when a
    member has more than two member neighbours (the component is not a
    path); cycles cannot occur on the forest inputs the callers pass.
    """
    indptr, indices = csr_arrays(graph)
    nodes = np.nonzero(member)[0]
    if nodes.size == 0:
        return []
    src, nbr = expand_segments(indptr, indices, nodes)
    keep = member[nbr]
    src, nbr = src[keep], nbr[keep]
    counts = np.bincount(src, minlength=graph.n)[nodes]
    if counts.size and int(counts.max()) > 2:
        raise ValueError("member component is not a path")
    nb = np.full((graph.n, 2), -1, dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(src.size, dtype=np.int64) - np.repeat(starts, counts)
    nb[src, within] = nbr
    nb1 = nb[:, 0].tolist()
    nb2 = nb[:, 1].tolist()

    seen = bytearray(graph.n)
    paths: List[List[int]] = []
    for v in nodes.tolist():
        if seen[v]:
            continue
        a, b = nb1[v], nb2[v]
        if a == -1:
            order = [v]
        elif b == -1:
            walk = _walk(v, -1, nb1, nb2)
            order = walk if v <= walk[-1] else walk[::-1]
        else:
            walk_a = _walk(v, b, nb1, nb2)
            walk_b = _walk(v, a, nb1, nb2)
            if walk_a[-1] <= walk_b[-1]:
                order = walk_a[::-1] + walk_b[1:]
            else:
                order = walk_b[::-1] + walk_a[1:]
        for u in order:
            seen[u] = 1
        paths.append(order)
    return paths
