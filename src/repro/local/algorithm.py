"""Algorithm API for the LOCAL model: ball views and the algorithm protocol.

A LOCAL algorithm, in the equivalent *full-information* formulation, is a
function from the radius-``t`` view of a node to a decision: after ``t``
synchronous rounds a node knows exactly the topology, identifiers, inputs and
(causally visible) committed outputs within distance ``t`` of itself, and
either commits an output label or continues.  The number of rounds a node
needs before committing is its individual complexity ``T_v``; the paper's
node-averaged complexity is the average of these (see
:mod:`repro.local.metrics`).

Causality of outputs: if node ``u`` commits at round ``s``, a node at
distance ``delta`` learns this at round ``s + delta`` — views expose exactly
that and nothing more.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from .graph import Graph

__all__ = ["CONTINUE", "View", "LocalAlgorithm"]


class _Continue:
    """Sentinel decision: the node has not committed yet."""

    _instance: Optional["_Continue"] = None

    def __new__(cls) -> "_Continue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "CONTINUE"


CONTINUE = _Continue()


class View:
    """The radius-``t`` knowledge of a node in the LOCAL model.

    Node handles inside a view are the global graph handles for convenience
    of simulation; algorithms must only *use* the exposed information (IDs,
    inputs, topology, visible outputs) — this is the standard simulation
    shortcut and does not change round counts.
    """

    __slots__ = ("graph", "center", "round", "_dist", "_ids", "_inputs",
                 "_commit_round", "_outputs")

    def __init__(
        self,
        graph: Graph,
        center: int,
        t: int,
        ids: List[int],
        commit_round: List[Optional[int]],
        outputs: List,
    ) -> None:
        self.graph = graph
        self.center = center
        self.round = t
        self._dist = graph.ball(center, t)
        self._ids = ids
        self._commit_round = commit_round
        self._outputs = outputs

    # -- topology ------------------------------------------------------
    def nodes(self) -> Dict[int, int]:
        """``{node: distance}`` of all nodes in the ball."""
        return self._dist

    def contains(self, u: int) -> bool:
        return u in self._dist

    def distance(self, u: int) -> int:
        return self._dist[u]

    def neighbors(self, u: int) -> Tuple[int, ...]:
        """Neighbours of ``u`` as known in the view.

        Fully known for nodes at distance ``< t``; for frontier nodes (at
        distance exactly ``t``) only the neighbours inside the ball are
        visible.
        """
        if self._dist[u] < self.round:
            return self.graph.neighbors(u)
        return tuple(w for w in self.graph.neighbors(u) if w in self._dist)

    def degree_known(self, u: int) -> bool:
        """Whether the full degree of ``u`` is visible."""
        return self._dist[u] < self.round

    def sees_whole_component(self) -> bool:
        """True iff the view provably contains the whole component."""
        for u, d in self._dist.items():
            if d >= self.round:
                return False
            for w in self.graph.neighbors(u):
                if w not in self._dist:
                    return False
        return True

    # -- labels --------------------------------------------------------
    def id_of(self, u: int) -> int:
        return self._ids[u]

    def input_of(self, u: int):
        return self.graph.input_of(u)

    def output_of(self, u: int):
        """The committed output of ``u`` if causally visible, else None.

        A commit at round ``s`` by a node at distance ``delta`` is visible
        at rounds ``>= s + delta``.
        """
        s = self._commit_round[u]
        if s is None:
            return None
        if s + self._dist[u] <= self.round:
            return self._outputs[u]
        return None

    def has_output(self, u: int) -> bool:
        return self.output_of(u) is not None


class LocalAlgorithm:
    """Base class for LOCAL algorithms in the full-information formulation.

    Subclasses implement :meth:`decide`; the simulator calls it once per
    round per still-running node.  ``n`` (the network size) is provided, as
    is standard in the LOCAL model.
    """

    #: Human-readable algorithm name for traces and reports.
    name: str = "local-algorithm"

    def setup(self, graph: Graph, n: int) -> None:
        """Called once before the execution starts (global parameters only).

        May precompute values every node could compute from ``n`` alone
        (e.g. phase lengths ``gamma_i``); must not inspect the topology.
        """

    def decide(self, view: View, n: int):
        """Return an output label to commit, or :data:`CONTINUE`.

        Must be a deterministic function of the view (plus ``n``).
        """
        raise NotImplementedError

    def max_rounds_hint(self, n: int) -> int:
        """Upper bound on rounds; the simulator errors beyond this."""
        return 4 * n + 64
