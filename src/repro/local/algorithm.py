"""Algorithm API for the LOCAL model: ball views and the algorithm protocol.

A LOCAL algorithm, in the equivalent *full-information* formulation, is a
function from the radius-``t`` view of a node to a decision: after ``t``
synchronous rounds a node knows exactly the topology, identifiers, inputs and
(causally visible) committed outputs within distance ``t`` of itself, and
either commits an output label or continues.  The number of rounds a node
needs before committing is its individual complexity ``T_v``; the paper's
node-averaged complexity is the average of these (see
:mod:`repro.local.metrics`).

Causality of outputs: if node ``u`` commits at round ``s``, a node at
distance ``delta`` learns this at round ``s + delta`` — views expose exactly
that and nothing more.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from .graph import Graph

__all__ = ["CONTINUE", "BallStore", "View", "LocalAlgorithm", "BatchedAlgorithm"]


class _Continue:
    """Sentinel decision: the node has not committed yet."""

    _instance: Optional["_Continue"] = None

    def __new__(cls) -> "_Continue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "CONTINUE"


CONTINUE = _Continue()


class BallStore:
    """Incrementally grown radius-``t`` ball around one node.

    The reference simulator re-extracts each live node's ball from scratch
    every round — Θ(Σ_t |ball_t|) per node.  A ``BallStore`` instead grows
    the ball by exactly one BFS frontier layer per round, so the total work
    per node over an entire execution is O(edges inside the final ball):
    amortized O(1) per (node, round) on bounded-degree trees.

    ``dist`` is the live ``{node: distance}`` mapping; after
    ``grow_to(t)`` it equals ``graph.ball(center, t)`` including dict
    insertion order (layer by layer, neighbours in CSR order), so a
    :class:`View` windowed over it is indistinguishable from a freshly
    extracted one.

    ``layers`` may be shared between stores of the same center on the same
    graph (see :meth:`repro.local.simulator.LocalSimulator.run_batch`):
    layer ``r`` is the list of nodes at distance exactly ``r``, a pure
    function of the topology, so repeated runs over many ID assignments
    reuse the BFS instead of redoing it.
    """

    __slots__ = ("graph", "center", "radius", "dist", "_layers", "_indptr",
                 "_indices", "_complete")

    def __init__(
        self, graph: Graph, center: int, layers: Optional[List[List[int]]] = None
    ) -> None:
        self.graph = graph
        self.center = center
        self.radius = 0
        self.dist: Dict[int, int] = {center: 0}
        if layers is None:
            layers = [[center]]
        self._layers = layers
        self._indptr, self._indices = graph.adjacency()
        self._complete = False

    def grow_to(self, t: int) -> Dict[int, int]:
        """Expand the ball to radius ``t`` and return the ``dist`` map."""
        if t < 0:
            raise ValueError(f"radius must be non-negative, got {t}")
        dist = self.dist
        layers = self._layers
        while self.radius < t and not self._complete:
            r = self.radius + 1
            if r < len(layers):
                layer = layers[r]
                for w in layer:
                    dist[w] = r
            else:
                indptr, indices = self._indptr, self._indices
                layer = []
                for u in layers[r - 1]:
                    for i in range(indptr[u], indptr[u + 1]):
                        w = indices[i]
                        if w not in dist:
                            dist[w] = r
                            layer.append(w)
                layers.append(layer)
            if not layer:
                self._complete = True
            self.radius = r
        return dist

    @property
    def complete(self) -> bool:
        """Whether the BFS has exhausted the component strictly inside the
        current radius — i.e. the grown ball provably contains the whole
        component (the O(1) answer to ``View.sees_whole_component``)."""
        return self._complete


class View:
    """The radius-``t`` knowledge of a node in the LOCAL model.

    Node handles inside a view are the global graph handles for convenience
    of simulation; algorithms must only *use* the exposed information (IDs,
    inputs, topology, visible outputs) — this is the standard simulation
    shortcut and does not change round counts.

    ``store`` lets the simulator supply an already-grown ball (a
    :class:`BallStore` at radius ``t``), making the view a thin window
    over it; without one the ball is extracted from scratch — the
    reference engine's behaviour.  A store-backed view is only valid for
    the round the store was grown to; algorithms must not retain views
    across rounds.
    """

    __slots__ = ("graph", "center", "round", "_dist", "_store", "_ids",
                 "_inputs", "_commit_round", "_outputs")

    def __init__(
        self,
        graph: Graph,
        center: int,
        t: int,
        ids: List[int],
        commit_round: List[Optional[int]],
        outputs: List,
        store: Optional[BallStore] = None,
    ) -> None:
        self.graph = graph
        self.center = center
        self.round = t
        self._store = store
        ball = store.dist if store is not None else graph.ball(center, t)
        # read-only on both engines: mutating the ball would silently
        # corrupt every later round of a store-backed node, so make the
        # misuse raise identically everywhere
        self._dist = MappingProxyType(ball)
        self._ids = ids
        self._commit_round = commit_round
        self._outputs = outputs

    # -- topology ------------------------------------------------------
    def nodes(self) -> Mapping[int, int]:
        """``{node: distance}`` of all nodes in the ball (read-only)."""
        return self._dist

    def contains(self, u: int) -> bool:
        return u in self._dist

    def distance(self, u: int) -> int:
        return self._dist[u]

    def neighbors(self, u: int) -> Tuple[int, ...]:
        """Neighbours of ``u`` as known in the view.

        Fully known for nodes at distance ``< t``; for frontier nodes (at
        distance exactly ``t``) only the neighbours inside the ball are
        visible.
        """
        if self._dist[u] < self.round:
            return self.graph.neighbors(u)
        return tuple(w for w in self.graph.neighbors(u) if w in self._dist)

    def degree_known(self, u: int) -> bool:
        """Whether the full degree of ``u`` is visible."""
        return self._dist[u] < self.round

    def sees_whole_component(self) -> bool:
        """True iff the view provably contains the whole component."""
        if self._store is not None:
            # the store's BFS frontier emptied strictly inside radius t —
            # same truth value as the scan below, in O(1)
            return self._store.complete
        for u, d in self._dist.items():
            if d >= self.round:
                return False
            for w in self.graph.neighbors(u):
                if w not in self._dist:
                    return False
        return True

    # -- labels --------------------------------------------------------
    def id_of(self, u: int) -> int:
        """The identifier of ``u``; raises ``KeyError`` outside the ball.

        Raising (rather than answering from the global arrays) is what
        keeps the view sound: a radius-``t`` view that answered ID queries
        about nodes beyond distance ``t`` would let an algorithm cheat the
        LOCAL model without either engine noticing.
        """
        if u not in self._dist:
            raise KeyError(u)
        return self._ids[u]

    def input_of(self, u: int):
        """The input label of ``u``; raises ``KeyError`` outside the ball."""
        if u not in self._dist:
            raise KeyError(u)
        return self.graph.input_of(u)

    def output_of(self, u: int):
        """The committed output of ``u`` if causally visible, else None.

        A commit at round ``s`` by a node at distance ``delta`` is visible
        at rounds ``>= s + delta``.  Raises ``KeyError`` outside the ball:
        answering None there while raising for committed nodes would let
        an algorithm distinguish the two — an out-of-horizon signal.
        """
        delta = self._dist[u]
        s = self._commit_round[u]
        if s is None:
            return None
        if s + delta <= self.round:
            return self._outputs[u]
        return None

    def has_output(self, u: int) -> bool:
        return self.output_of(u) is not None


class LocalAlgorithm:
    """Base class for LOCAL algorithms in the full-information formulation.

    Subclasses implement :meth:`decide`; the simulator calls it once per
    round per still-running node.  ``n`` (the network size) is provided, as
    is standard in the LOCAL model.
    """

    #: Human-readable algorithm name for traces and reports.
    name: str = "local-algorithm"

    def setup(self, graph: Graph, n: int) -> None:
        """Called once before the execution starts (global parameters only).

        May precompute values every node could compute from ``n`` alone
        (e.g. phase lengths ``gamma_i``); must not inspect the topology.
        """

    def decide(self, view: View, n: int):
        """Return an output label to commit, or :data:`CONTINUE`.

        Must be a deterministic function of the view (plus ``n``).
        """
        raise NotImplementedError

    def max_rounds_hint(self, n: int) -> int:
        """Upper bound on rounds; the simulator errors beyond this."""
        return 4 * n + 64


class BatchedAlgorithm:
    """Base class for algorithms that decide over the whole live set at once.

    The batched engine (``LocalSimulator(engine="batched")``) calls
    :meth:`decide_batch` once per round with the full live set instead of
    calling ``decide`` once per live node, which lets implementations work
    at array level (numpy sweeps over flat per-node state) rather than
    per-node Python.  The observational contract is unchanged: the commits
    returned must be exactly those the per-node formulation would make, so
    traces are engine-independent.

    Any object exposing a ``decide_batch`` method satisfies the protocol —
    the ported structured algorithms add it next to their existing
    ``decide``/message hooks, so one instance runs on every engine.  This
    base class is for *pure* batched algorithms with no per-node form;
    those run only under ``engine="batched"``.
    """

    #: Human-readable algorithm name for traces and reports.
    name: str = "batched-algorithm"

    def setup(self, graph: Graph, n: int) -> None:
        """Called once before the execution starts (global parameters only);
        must also reset any per-execution caches (``run_batch`` reuses one
        instance across many ID samples)."""

    def decide_batch(self, views, live, t: int):
        """Return this round's commits as an iterable of ``(node, label)``.

        ``views`` is a :class:`repro.local.frontier.BatchedViews` exposing
        the shared ball facts and per-node view materialization; ``live``
        is the sorted list of not-yet-committed nodes.  Must only commit
        live nodes, and each at most once.  Returning an empty iterable
        means every live node continues.
        """
        raise NotImplementedError

    def max_rounds_hint(self, n: int) -> int:
        """Upper bound on rounds; the simulator errors beyond this."""
        return 4 * n + 64
