"""Execution traces and the node-averaged complexity measure.

The paper (Section 2) defines the node-averaged complexity of an algorithm
``A`` on a graph family ``G`` as::

    AVG_V(A) = max_{G in G}  (1/|V|) * sum_{v in V(G)} T_v^G(A)

where ``T_v`` is the round at which ``v`` terminates.  An
:class:`ExecutionTrace` records the per-node ``T_v`` and outputs of one run;
aggregation over families/sweeps happens in the benchmark harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["ExecutionTrace", "node_averaged", "worst_case"]


def node_averaged(rounds: Sequence[int]) -> float:
    """Average of per-node termination rounds (the paper's measure)."""
    if not rounds:
        raise ValueError("empty execution")
    return sum(rounds) / len(rounds)


def worst_case(rounds: Sequence[int]) -> int:
    """Maximum per-node termination round (classic worst-case measure)."""
    if not rounds:
        raise ValueError("empty execution")
    return max(rounds)


@dataclass
class ExecutionTrace:
    """Result of executing a LOCAL algorithm on one instance.

    Attributes
    ----------
    rounds:
        ``rounds[v]`` is the round at which node ``v`` committed (``T_v``).
    outputs:
        ``outputs[v]`` is the committed output label of node ``v``.
    algorithm:
        Name of the executed algorithm.
    meta:
        Free-form instrumentation (phase boundaries, layer counts, ...).
    """

    rounds: List[int]
    outputs: List
    algorithm: str = "unknown"
    meta: Dict = field(default_factory=dict)
    # cached sorted rounds for percentile queries; traces are effectively
    # frozen once the simulator returns them, so no invalidation is needed
    _ordered: Optional[List[int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n(self) -> int:
        return len(self.rounds)

    def node_averaged(self) -> float:
        return node_averaged(self.rounds)

    def worst_case(self) -> int:
        return worst_case(self.rounds)

    def total_rounds(self) -> int:
        """Sum of individual termination times (the paper's charging unit)."""
        return sum(self.rounds)

    def percentile(self, q: float) -> int:
        """q-th percentile of per-node rounds, 0 <= q <= 100.

        The sort is paid once per trace and cached (traces are frozen
        after construction), so repeated percentile queries — sweep
        aggregations ask for many per trace — are O(1) lookups.
        """
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if self._ordered is None:
            self._ordered = sorted(self.rounds)
        ordered = self._ordered
        idx = min(len(ordered) - 1, max(0, math.ceil(q / 100 * len(ordered)) - 1))
        return ordered[idx]

    def percentiles(self, qs: Sequence[float]) -> List[int]:
        """Bulk accessor: the percentile for each ``q`` in ``qs``, one
        shared sort for all of them."""
        return [self.percentile(q) for q in qs]

    def rounds_of(self, nodes: Sequence[int]) -> List[int]:
        return [self.rounds[v] for v in nodes]

    def averaged_over(self, nodes: Sequence[int]) -> float:
        """Node-averaged complexity restricted to a node subset."""
        picked = self.rounds_of(nodes)
        return node_averaged(picked)

    def summary(self) -> Dict[str, float]:
        median, p99 = self.percentiles((50, 99))
        return {
            "n": float(self.n),
            "node_averaged": self.node_averaged(),
            "worst_case": float(self.worst_case()),
            "median": float(median),
            "p99": float(p99),
        }
