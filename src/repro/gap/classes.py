"""Label-sets, classes, and the ``g`` computation (Definitions 73-74).

In the generic solver a *label-set* ``L`` is the set of output labels that
an edge could still carry so that the subtree hanging below it remains
completable.  For a single node (rake step) the next label-set is

    g(v) = { l : exists l_i in L_i with the multiset
             {(in_out_edge, l)} u {(in_i, l_i)} allowed at v }.

For a short path with two outgoing edges (compress step) the *maximal
class* is captured by the relation ``R`` of feasible endpoint label
pairs, and an *independent class* is exactly a non-empty combinatorial
rectangle ``S1 x S2`` contained in ``R``: independence (Definition 73)
says any mix of allowed endpoint choices stays feasible, which for two
outgoing edges is precisely the rectangle property.  The function
``f_{Pi,k}`` of Definition 74 is therefore a choice of rectangle for
every maximal class; :mod:`repro.gap.testing` enumerates these choices.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..lcl.blackwhite import BLACK, WHITE, BlackWhiteLCL

__all__ = [
    "LabelSet",
    "GapCache",
    "g_single_node",
    "leaf_label_sets",
    "node_feasible",
    "path_relation",
    "maximal_rectangles",
]

LabelSet = FrozenSet


def node_feasible(
    problem: BlackWhiteLCL,
    color: str,
    fixed: Sequence[Tuple[object, object]],
    free: Sequence[Tuple[object, LabelSet]],
) -> bool:
    """Is there a choice from the free edges' label-sets making the node
    constraint hold together with the fixed (input, output) pairs?"""
    pools = [[(inp, lab) for lab in ls] for inp, ls in free]
    for combo in itertools.product(*pools):
        if problem.allows(color, list(fixed) + list(combo)):
            return True
    return False


def g_single_node(
    problem: BlackWhiteLCL,
    color: str,
    incoming: Sequence[Tuple[object, LabelSet]],
    out_input,
) -> LabelSet:
    """Definition 74, single-node case: the label-set of the outgoing edge."""
    good = set()
    for lab in problem.sigma_out:
        if node_feasible(problem, color, [(out_input, lab)], incoming):
            good.add(lab)
    return frozenset(good)


def leaf_label_sets(problem: BlackWhiteLCL, color: str) -> Dict[object, LabelSet]:
    """Label-sets ``g(v)`` of leaves, per outgoing-edge input label."""
    return {
        inp: g_single_node(problem, color, [], inp)
        for inp in problem.sigma_in
    }


def path_relation(
    problem: BlackWhiteLCL,
    colors: Sequence[str],
    edge_inputs: Sequence,
    pendant: Sequence[Sequence[Tuple[object, LabelSet]]],
    out_inputs: Tuple[object, object],
) -> FrozenSet[Tuple[object, object]]:
    """The maximal class of a compress path as a relation.

    ``colors[i]`` is the colour of path node ``i``; ``edge_inputs[j]`` is
    the input of the edge between nodes ``j`` and ``j+1``;
    ``pendant[i]`` lists (input, label-set) of the pendant incoming edges
    at node ``i``; ``out_inputs`` are the inputs of the two outgoing edges
    at the path's endpoints.  Returns all feasible (left-out, right-out)
    output pairs, via a sweep DP along the path.
    """
    m = len(colors)
    assert len(edge_inputs) == m - 1 and len(pendant) == m
    relation: Set[Tuple[object, object]] = set()
    for left in problem.sigma_out:
        # reachable[l] = set of labels on edge (i, i+1) consistent so far
        reachable: Set = set()
        for lab in problem.sigma_out:
            fixed = [(out_inputs[0], left)]
            if m == 1:
                break
            fixed.append((edge_inputs[0], lab))
            if node_feasible(problem, colors[0], fixed, pendant[0]):
                reachable.add(lab)
        if m == 1:
            for right in problem.sigma_out:
                if node_feasible(
                    problem, colors[0],
                    [(out_inputs[0], left), (out_inputs[1], right)],
                    pendant[0],
                ):
                    relation.add((left, right))
            continue
        for i in range(1, m - 1):
            nxt: Set = set()
            for prev_lab in reachable:
                for lab in problem.sigma_out:
                    fixed = [(edge_inputs[i - 1], prev_lab), (edge_inputs[i], lab)]
                    if node_feasible(problem, colors[i], fixed, pendant[i]):
                        nxt.add(lab)
            reachable = nxt
            if not reachable:
                break
        for prev_lab in reachable:
            for right in problem.sigma_out:
                fixed = [(edge_inputs[m - 2], prev_lab), (out_inputs[1], right)]
                if node_feasible(problem, colors[m - 1], fixed, pendant[m - 1]):
                    relation.add((left, right))
    return frozenset(relation)


class GapCache:
    """Per-problem compile cache for the Section-11 machinery.

    One Theorem-7 decision runs the testing procedure once per candidate
    function, and every run recomputes the same ``g`` label-sets, path
    relations, and feasibility checks from scratch.  All of those are
    pure functions of the problem, so — mirroring the per-graph compile
    cache of :class:`repro.lcl.kernel.CompiledChecker` — a ``GapCache``
    computes each distinct query once and shares it across every testing
    run of the decision (and across the maximal-rectangle enumeration,
    keyed per canonical relation).

    ``memoize=False`` keeps the exact same interface but computes every
    query directly — the baseline the decider benchmark compares against.
    Queries are keyed on the (hashable) argument tuples; results are
    independent of argument order wherever the underlying functions are,
    so cache hits can never change a verdict — only the work done to
    reach it (pinned by the equivalence tests).
    """

    def __init__(self, problem: BlackWhiteLCL, memoize: bool = True) -> None:
        self.problem = problem
        self.memoize = memoize
        self._feasible: Dict = {}
        self._g: Dict = {}
        self._leaf: Dict = {}
        self._relations: Dict = {}
        self._rectangles: Dict = {}
        #: whole-rake-closure memo, filled by the testing procedure: the
        #: closure is a pure function of (entries, delta) and identical
        #: across all DFS candidates that share a choice prefix
        self.rake: Dict = {}

    # -- cached entry points -------------------------------------------
    def node_feasible(self, color, fixed, free) -> bool:
        if not self.memoize:
            return node_feasible(self.problem, color, fixed, free)
        key = (color, tuple(fixed), tuple(free))
        hit = self._feasible.get(key)
        if hit is None:
            hit = self._feasible[key] = node_feasible(
                self.problem, color, fixed, free
            )
        return hit

    def g_single_node(self, color, incoming, out_input) -> LabelSet:
        if not self.memoize:
            return g_single_node(self.problem, color, incoming, out_input)
        key = (color, tuple(incoming), out_input)
        hit = self._g.get(key)
        if hit is None:
            hit = self._g[key] = g_single_node(
                self.problem, color, incoming, out_input
            )
        return hit

    def leaf_label_sets(self, color) -> Dict[object, LabelSet]:
        if not self.memoize:
            return leaf_label_sets(self.problem, color)
        hit = self._leaf.get(color)
        if hit is None:
            hit = self._leaf[color] = leaf_label_sets(self.problem, color)
        return hit

    def path_relation(
        self, colors, edge_inputs, pendant, out_inputs
    ) -> FrozenSet[Tuple[object, object]]:
        if not self.memoize:
            return path_relation(
                self.problem, colors, edge_inputs, pendant, out_inputs
            )
        key = (
            tuple(colors), tuple(edge_inputs),
            tuple(tuple(p) for p in pendant), tuple(out_inputs),
        )
        hit = self._relations.get(key)
        if hit is None:
            hit = self._relations[key] = path_relation(
                self.problem, colors, edge_inputs, pendant, out_inputs
            )
        return hit

    def maximal_rectangles(self, relation) -> List[Tuple[LabelSet, LabelSet]]:
        if not self.memoize:
            return maximal_rectangles(relation)
        hit = self._rectangles.get(relation)
        if hit is None:
            hit = self._rectangles[relation] = maximal_rectangles(relation)
        return hit


def maximal_rectangles(
    relation: FrozenSet[Tuple[object, object]]
) -> List[Tuple[LabelSet, LabelSet]]:
    """All maximal non-empty rectangles ``S1 x S2`` inside the relation —
    the candidate independent classes of Definition 73."""
    if not relation:
        return []
    lefts = sorted({a for a, _ in relation}, key=repr)
    rects: List[Tuple[LabelSet, LabelSet]] = []
    seen: Set[Tuple[LabelSet, LabelSet]] = set()
    # grow from every subset of left labels that share right-compatibility
    for r in range(1, len(lefts) + 1):
        for combo in itertools.combinations(lefts, r):
            rights = None
            for a in combo:
                row = {b for x, b in relation if x == a}
                rights = row if rights is None else rights & row
            if not rights:
                continue
            key = (frozenset(combo), frozenset(rights))
            if key in seen:
                continue
            seen.add(key)
            rects.append(key)
    # keep only maximal ones
    maximal = []
    for s1, s2 in rects:
        dominated = any(
            (s1 <= t1 and s2 <= t2) and (s1, s2) != (t1, t2)
            for t1, t2 in rects
        )
        if not dominated:
            maximal.append((s1, s2))
    return maximal
