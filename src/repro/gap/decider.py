"""Deciders for the Section-11 results.

* :func:`find_good_function` — enumerate rectangle choices (there are
  finitely many candidate functions ``f_{Pi,infinity}``) and return one
  that passes the testing procedure, or ``None``.  Existence of a good
  function characterizes ``O(log* n)`` node-averaged solvability
  [BBK+23a]; non-existence puts the problem in the polynomial regime.
* :func:`is_constant_good` — Definition 80: a good function is
  *constant-good* if its compress problem ``Pi'`` (Definition 77) is
  O(1)-solvable on paths.  We decide this with the homogeneous-label
  criterion: a single output ``l*`` that (i) lies in every reachable
  label-set (so label-set-constrained edges may carry it) and (ii) keeps
  every path node feasible when both path edges carry ``l*``, for every
  reachable pendant combination.  The criterion is sound in general and
  complete for the inputless radius-1 problems used in the Theorem-7
  demos (an O(1) algorithm on anonymous long paths is forced to be
  order-invariant, hence homogeneous far from endpoints).
* :func:`decide_node_averaged_class` — Theorem 7's decision: ``O(1)``
  iff some constant-good function exists; otherwise the problem sits at
  ``(log* n)^{Omega(1)}`` or above (good function but none constant-good),
  or outside the ``log*`` regime entirely (no good function).

Performance
-----------
The census (:mod:`repro.gap.census`) decides whole enumerated problem
spaces, so the search is engineered like the verification kernel:

* one :class:`~repro.gap.classes.GapCache` per decision memoizes the
  ``g``/relation/feasibility queries and the maximal rectangles per
  canonical relation across every testing run of the DFS (disable with
  ``memoize=False`` — the benchmark baseline);
* the candidate-function DFS keeps **one** live choice dict and a
  trail/undo stack instead of copying the dict per branch;
* :func:`decide_node_averaged_class` makes a **single** DFS pass with
  the kernel's early-exit discipline: it remembers the first plain-good
  function it meets and stops the moment a constant-good one appears,
  instead of running one full search per question.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..lcl.blackwhite import BLACK, WHITE, BlackWhiteLCL
from .classes import GapCache
from .testing import (
    Entry,
    RectangleChooser,
    TestOutcome,
    UnseenRelation,
    run_testing_procedure,
)

__all__ = [
    "find_good_function",
    "is_constant_good",
    "decide_node_averaged_class",
    "GapVerdict",
]

SearchResult = Optional[Tuple[RectangleChooser, TestOutcome]]


def _search_functions(
    problem: BlackWhiteLCL,
    delta: int,
    ell: int,
    max_functions: int,
    cache: GapCache,
    require_constant: bool,
) -> Tuple[SearchResult, SearchResult]:
    """Depth-first search over the finite function space.

    Functions are built lazily: whenever the testing procedure meets a
    relation with no assigned rectangle, we branch over its maximal
    rectangles.  The branch state is one shared choice dict plus a trail
    of ``(relation, remaining-rectangles)`` frames; backtracking undoes
    the top assignment in place instead of copying the dict per branch.

    Returns ``(constant_good, good)``: the first constant-good candidate
    met (``None`` unless ``require_constant``) and the first plain-good
    one.  Stops at the first good candidate when ``require_constant`` is
    false, at the first *constant*-good one otherwise.
    """
    chooser = RectangleChooser()
    choices = chooser.choices
    trail: List[Tuple[object, Iterator]] = []
    first_good: SearchResult = None
    tried = 0
    while tried < max_functions:
        tried += 1
        dead_branch = False
        try:
            outcome = run_testing_procedure(
                problem, chooser, delta, ell, cache=cache
            )
        except UnseenRelation as unseen:
            rects = cache.maximal_rectangles(unseen.relation)
            if rects:
                rest = iter(rects)
                choices[unseen.relation] = next(rest)
                trail.append((unseen.relation, rest))
                continue
            dead_branch = True  # empty class: no rectangle to try
        if not dead_branch and outcome.good:
            witness = RectangleChooser(choices)  # frozen snapshot
            if first_good is None:
                first_good = (witness, outcome)
                if not require_constant:
                    return None, first_good
            if require_constant and is_constant_good(
                problem, chooser, outcome, delta=delta, cache=cache
            ):
                return (witness, outcome), first_good
        # backtrack: advance the deepest frame with rectangles left
        while trail:
            relation, rest = trail[-1]
            nxt = next(rest, None)
            if nxt is None:
                del choices[relation]
                trail.pop()
            else:
                choices[relation] = nxt
                break
        else:
            break  # every branch explored
    return None, first_good


def find_good_function(
    problem: BlackWhiteLCL,
    delta: int = 2,
    ell: int = 2,
    max_functions: int = 4096,
    require_constant_good: bool = False,
    cache: Optional[GapCache] = None,
) -> SearchResult:
    """Search the finite function space for a good ``f_{Pi,infinity}``
    (the first constant-good one with ``require_constant_good``)."""
    if cache is None:
        cache = GapCache(problem)
    const, good = _search_functions(
        problem, delta, ell, max_functions, cache, require_constant_good
    )
    return const if require_constant_good else good


def is_constant_good(
    problem: BlackWhiteLCL,
    chooser: RectangleChooser,
    outcome: TestOutcome,
    delta: int = 2,
    cache: Optional[GapCache] = None,
) -> bool:
    """Definition 80 via the homogeneous-label criterion (see module
    docstring).

    ``delta`` bounds node degrees exactly as in the testing procedure: at
    ``delta = 2`` an interior path node already has both its edges, so no
    pendant fits (extensional ``delta = 2`` problems — the census space —
    reject every degree-3 multiset); for larger ``delta`` each node takes
    up to one reachable pendant, mirroring ``_pendant_options``.
    """
    if cache is None:
        cache = GapCache(problem, memoize=False)
    reachable_sets = [e[2] for e in outcome.entries]
    for lab in problem.sigma_out:
        if any(lab not in ls for ls in reachable_sets):
            continue
        ok = True
        for color in (WHITE, BLACK):
            for inp in problem.sigma_in:
                # interior path node with both edges labeled lab, plus any
                # reachable pendant of the opposite colour (or none) when
                # the degree bound leaves room for one
                pendant_pool: List[List[Entry]] = [[]]
                if delta > 2:
                    pendant_pool += [
                        [(e[1], e[2])]
                        for e in outcome.entries
                        if e[0] == (BLACK if color == WHITE else WHITE)
                    ]
                for pend in pendant_pool:
                    if not cache.node_feasible(
                        color, [(inp, lab), (inp, lab)], pend,
                    ):
                        ok = False
                        break
                if not ok:
                    break
            if not ok:
                break
        if ok:
            return True
    return False


@dataclass
class GapVerdict:
    """Outcome of the Theorem-7 decision for one problem."""

    problem: str
    klass: str          # "O(1)" | "logstar-regime" | "no-good-function"
    witness: Optional[RectangleChooser]
    detail: str

    def __str__(self) -> str:
        return f"{self.problem}: {self.klass} ({self.detail})"

    def to_payload(self) -> dict:
        """The store payload of this verdict: exactly the fields the
        census atlas carries per problem — a pure function of the
        canonical encoding and the decider parameters, so the census
        checkpoint/resume protocol (:mod:`repro.gap.census`) can serve
        it back byte-identically."""
        return {"klass": self.klass, "detail": self.detail}


def decide_node_averaged_class(
    problem: BlackWhiteLCL, delta: int = 2, ell: int = 2,
    max_functions: int = 4096, memoize: bool = True,
) -> GapVerdict:
    """Theorem 7: decide whether the deterministic node-averaged
    complexity is O(1); the gap makes everything else ``(log* n)^{Omega(1)}``
    or beyond.

    One DFS pass answers both questions: the search stops as soon as a
    constant-good function appears (O(1)) and otherwise remembers the
    first plain-good one (logstar regime).  ``memoize=False`` disables
    the shared :class:`~repro.gap.classes.GapCache` — same verdict,
    every query recomputed (the benchmark baseline).
    """
    cache = GapCache(problem, memoize=memoize)
    const, good = _search_functions(
        problem, delta, ell, max_functions, cache, require_constant=True
    )
    if const is not None:
        return GapVerdict(
            problem.name, "O(1)", const[0],
            "constant-good function found; node-averaged O(1)",
        )
    if good is not None:
        return GapVerdict(
            problem.name, "logstar-regime", good[0],
            "good function exists but none constant-good: complexity is "
            "(log* n)^{Omega(1)} and O(log* n) node-averaged "
            "(Theorem 7 gap: nothing lives in omega(1)..(log* n)^{o(1)})",
        )
    return GapVerdict(
        problem.name, "no-good-function", None,
        "no good f_{Pi,infinity}: outside the log* regime (polynomial or "
        "unsolvable)",
    )
