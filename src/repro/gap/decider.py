"""Deciders for the Section-11 results.

* :func:`find_good_function` — enumerate rectangle choices (there are
  finitely many candidate functions ``f_{Pi,infinity}``) and return one
  that passes the testing procedure, or ``None``.  Existence of a good
  function characterizes ``O(log* n)`` node-averaged solvability
  [BBK+23a]; non-existence puts the problem in the polynomial regime.
* :func:`is_constant_good` — Definition 80: a good function is
  *constant-good* if its compress problem ``Pi'`` (Definition 77) is
  O(1)-solvable on paths.  We decide this with the homogeneous-label
  criterion: a single output ``l*`` that (i) lies in every reachable
  label-set (so label-set-constrained edges may carry it) and (ii) keeps
  every path node feasible when both path edges carry ``l*``, for every
  reachable pendant combination.  The criterion is sound in general and
  complete for the inputless radius-1 problems used in the Theorem-7
  demos (an O(1) algorithm on anonymous long paths is forced to be
  order-invariant, hence homogeneous far from endpoints).
* :func:`decide_node_averaged_class` — Theorem 7's decision: ``O(1)``
  iff some constant-good function exists; otherwise the problem sits at
  ``(log* n)^{Omega(1)}`` or above (good function but none constant-good),
  or outside the ``log*`` regime entirely (no good function).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..lcl.blackwhite import BLACK, WHITE, BlackWhiteLCL
from .classes import maximal_rectangles, node_feasible
from .testing import (
    Entry,
    RectangleChooser,
    TestOutcome,
    UnseenRelation,
    run_testing_procedure,
)

__all__ = [
    "find_good_function",
    "is_constant_good",
    "decide_node_averaged_class",
    "GapVerdict",
]


def find_good_function(
    problem: BlackWhiteLCL,
    delta: int = 2,
    ell: int = 2,
    max_functions: int = 4096,
    require_constant_good: bool = False,
) -> Optional[Tuple[RectangleChooser, TestOutcome]]:
    """Search the finite function space for a good ``f_{Pi,infinity}``.

    Functions are built lazily: whenever the testing procedure meets a
    relation with no assigned rectangle, we branch over its maximal
    rectangles (depth-first)."""
    stack: List[Dict] = [{}]
    tried = 0
    while stack and tried < max_functions:
        choices = stack.pop()
        tried += 1
        chooser = RectangleChooser(choices)
        try:
            outcome = run_testing_procedure(problem, chooser, delta, ell)
        except UnseenRelation as unseen:
            rects = maximal_rectangles(unseen.relation)
            if not rects:
                continue  # this branch dies: empty class
            for rect in rects:
                branched = dict(choices)
                branched[unseen.relation] = rect
                stack.append(branched)
            continue
        if outcome.good:
            if require_constant_good and not is_constant_good(
                problem, chooser, outcome
            ):
                continue
            return chooser, outcome
    return None


def is_constant_good(
    problem: BlackWhiteLCL,
    chooser: RectangleChooser,
    outcome: TestOutcome,
) -> bool:
    """Definition 80 via the homogeneous-label criterion (see module
    docstring)."""
    reachable_sets = [e[2] for e in outcome.entries]
    for lab in problem.sigma_out:
        if any(lab not in ls for ls in reachable_sets):
            continue
        ok = True
        for color in (WHITE, BLACK):
            for inp in problem.sigma_in:
                # interior path node with both edges labeled lab, plus any
                # reachable pendant of the opposite colour (or none)
                pendant_pool = [[]] + [
                    [(e[1], e[2])]
                    for e in outcome.entries
                    if e[0] == (BLACK if color == WHITE else WHITE)
                ]
                for pend in pendant_pool:
                    if not node_feasible(
                        problem, color,
                        [(inp, lab), (inp, lab)], pend,
                    ):
                        ok = False
                        break
                if not ok:
                    break
            if not ok:
                break
        if ok:
            return True
    return False


@dataclass
class GapVerdict:
    """Outcome of the Theorem-7 decision for one problem."""

    problem: str
    klass: str          # "O(1)" | "logstar-regime" | "no-good-function"
    witness: Optional[RectangleChooser]
    detail: str

    def __str__(self) -> str:
        return f"{self.problem}: {self.klass} ({self.detail})"


def decide_node_averaged_class(
    problem: BlackWhiteLCL, delta: int = 2, ell: int = 2
) -> GapVerdict:
    """Theorem 7: decide whether the deterministic node-averaged
    complexity is O(1); the gap makes everything else ``(log* n)^{Omega(1)}``
    or beyond."""
    const = find_good_function(problem, delta, ell, require_constant_good=True)
    if const is not None:
        return GapVerdict(
            problem.name, "O(1)", const[0],
            "constant-good function found; node-averaged O(1)",
        )
    good = find_good_function(problem, delta, ell)
    if good is not None:
        return GapVerdict(
            problem.name, "logstar-regime", good[0],
            "good function exists but none constant-good: complexity is "
            "(log* n)^{Omega(1)} and O(log* n) node-averaged "
            "(Theorem 7 gap: nothing lives in omega(1)..(log* n)^{o(1)})",
        )
    return GapVerdict(
        problem.name, "no-good-function", None,
        "no good f_{Pi,infinity}: outside the log* regime (polynomial or "
        "unsolvable)",
    )
