"""Partition-refinement canonical forms and orderly enumeration for the
problem-space census.

The census's original combinatorial core brute-forced all
``n_in! * n_out! * 2`` symmetry transforms per problem (rebuilding nested
tuples for each) and materialized every ``(white, black)`` subset pair of
the space before deduplicating by collision counting.  This module
replaces both halves with a canonical-first pipeline:

* **Masked canonical forms** (:func:`canonical_encoding`) — a spec's
  constraint sets are packed into bit masks over the tuple-lex-ranked
  multiset list of its ``(n_in, n_out, delta)`` signature, the symmetry
  group acts through precomputed rank-permutation tables
  (:class:`CanonicalContext`), and the lexicographically least orbit
  member is found by an early-abort scan.  The output is pinned
  observationally identical to the legacy brute force — kept as
  :func:`legacy_canonical_encoding`, the differential oracle — by the
  property tests (the entire max-labels-2 space plus randomized
  transform fuzzing).
* **Partition refinement** (:func:`refine_partition`) — input and output
  label classes are refined by iterated incidence signatures over the
  allowed multisets.  Any spec automorphism must respect the refined
  cells, so stabilizer searches collapse from the full permutation group
  to the (usually trivial) stuck-cell group
  (:func:`stabilizer_order`), and orbit sizes come from
  orbit--stabilizer — ``group order / stabilizer order``
  (:func:`orbit_size`) — instead of collision counting.  For tiny
  groups a direct table scan is cheaper than refining, so
  :func:`stabilizer_order` switches to the stuck-cell search once the
  full group outgrows the refinement overhead (``force_refinement``
  pins both paths equal in the tests).
* **Orderly enumeration** (:func:`iter_space`) — walk every spec of the
  bounded space in canonical order and emit exactly the specs that are
  their own canonical form: one representative per orbit, emitted
  already sorted, with O(tables) streaming memory instead of a
  materialized space.  Rejection is the early-abort canonicity test
  (:meth:`CanonicalContext.is_canonical`): any transform producing a
  lexicographically smaller image disqualifies the spec.

:mod:`repro.gap.census` builds on this module and re-exports the shared
types (:class:`ProblemSpec`, :data:`Multiset`, :data:`Encoding`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from math import factorial
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "Multiset",
    "Encoding",
    "ProblemSpec",
    "enumerate_multisets",
    "CanonicalContext",
    "get_context",
    "mask_less",
    "canonical_encoding",
    "legacy_canonical_encoding",
    "refine_partition",
    "stuck_cell_perms",
    "stabilizer_order",
    "orbit_size",
    "iter_space",
]

#: a constraint multiset: the sorted tuple of (input-index, output-index)
#: pairs incident to one node
Multiset = Tuple[Tuple[int, int], ...]

Encoding = Tuple  # nested-tuple canonical encoding of a ProblemSpec


@dataclass(frozen=True)
class ProblemSpec:
    """An extensional black-white LCL: the allowed pair multisets per
    colour, over index alphabets ``0..n_in-1`` / ``0..n_out-1`` and node
    degrees ``1..delta``."""

    n_in: int
    n_out: int
    delta: int
    white: FrozenSet[Multiset]
    black: FrozenSet[Multiset]

    def encode(self) -> Encoding:
        """A deterministic nested-tuple encoding (sortable, picklable)."""
        return (
            self.n_in, self.n_out, self.delta,
            tuple(sorted(self.white)), tuple(sorted(self.black)),
        )


#: (n_in, n_out, delta) -> multiset list; the list is recomputed in hot
#: loops (enumeration, spec_to_problem probing, spec_from_problem) so it
#: is memoized once per alphabet signature and returned immutable
_MULTISETS: Dict[Tuple[int, int, int], Tuple[Multiset, ...]] = {}


def enumerate_multisets(
    n_in: int, n_out: int, delta: int,
) -> Tuple[Multiset, ...]:
    """All pair multisets of sizes ``1..delta`` in deterministic
    (size-major) order; memoized per ``(n_in, n_out, delta)``."""
    key = (n_in, n_out, delta)
    cached = _MULTISETS.get(key)
    if cached is None:
        pairs = [(i, o) for i in range(n_in) for o in range(n_out)]
        out: List[Multiset] = []
        for size in range(1, delta + 1):
            out.extend(itertools.combinations_with_replacement(pairs, size))
        cached = _MULTISETS[key] = tuple(out)
    return cached


def mask_less(a: int, b: int) -> bool:
    """Sorted-tuple-lex order on rank *sets* encoded as bit masks.

    With bit ``r`` standing for the rank-``r`` multiset, the sorted tuple
    of a mask's ranks compares exactly like the sorted tuple of its
    multisets (ranks are assigned in tuple-lex order).  The comparison
    reduces to the lowest differing bit: whoever owns it is smaller,
    unless the other side has nothing at or above it — then the other
    side is a strict prefix and wins.
    """
    if a == b:
        return False
    low = (a ^ b) & -(a ^ b)
    if a & low:
        return (b >> low.bit_length()) != 0
    return (a >> low.bit_length()) == 0


def _pair_less(aw: int, ab: int, bw: int, bb: int) -> bool:
    """``(white, black)`` mask pairs under the encoding's lex order."""
    if aw != bw:
        return mask_less(aw, bw)
    return mask_less(ab, bb)


def _mask_bits(mask: int) -> Tuple[int, ...]:
    bits: List[int] = []
    while mask:
        low = mask & -mask
        bits.append(low.bit_length() - 1)
        mask ^= low
    return tuple(bits)


#: build 2^m-entry mask-remap tables only while the total entry count
#: stays modest; beyond it transforms apply per set bit
_TABLE_ENTRY_BUDGET = 1 << 22
#: below this full-group size a direct stabilizer scan beats refining
_STUCK_SCAN_THRESHOLD = 24
#: refuse to stream spaces whose mask range cannot be ordered in memory
_ITER_MASK_LIMIT = 1 << 22


class CanonicalContext:
    """Precomputed symmetry machinery for one ``(n_in, n_out, delta)``
    alphabet signature: the tuple-lex-ranked multiset list, every
    input/output permutation pair as a rank permutation, and (space
    permitting) full ``2^m`` mask-remap tables so applying a transform to
    a constraint set is a single lookup.  Obtain instances through
    :func:`get_context` (one per signature, cached)."""

    def __init__(self, n_in: int, n_out: int, delta: int) -> None:
        self.n_in, self.n_out, self.delta = n_in, n_out, delta
        self.ranked: Tuple[Multiset, ...] = tuple(
            sorted(enumerate_multisets(n_in, n_out, delta))
        )
        self.m = len(self.ranked)
        self.rank_of: Dict[Multiset, int] = {
            ms: r for r, ms in enumerate(self.ranked)
        }
        # every (input-perm, output-perm) pair as a rank permutation;
        # itertools.permutations yields the identity first, so index 0 is
        # the identity transform (asserted below)
        self.perms: List[Tuple[int, ...]] = []
        self.perm_index: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], int] = {}
        for pi_in in itertools.permutations(range(n_in)):
            for pi_out in itertools.permutations(range(n_out)):
                tau = tuple(
                    self.rank_of[tuple(sorted(
                        (pi_in[i], pi_out[o]) for i, o in ms
                    ))]
                    for ms in self.ranked
                )
                self.perm_index[(pi_in, pi_out)] = len(self.perms)
                self.perms.append(tau)
        assert self.perms[0] == tuple(range(self.m))
        #: order of the full symmetry group (perm pairs x colour swap)
        self.group_order = 2 * len(self.perms)
        self.tables: Optional[List[List[int]]] = None
        if (1 << self.m) * len(self.perms) <= _TABLE_ENTRY_BUDGET:
            tables = []
            for tau in self.perms:
                bit = [1 << t for t in tau]
                table = [0] * (1 << self.m)
                for mask in range(1, 1 << self.m):
                    low = mask & -mask
                    table[mask] = table[mask ^ low] | bit[low.bit_length() - 1]
                tables.append(table)
            self.tables = tables
        self._ordered_masks: Optional[Tuple[int, ...]] = None

    # -- mask <-> spec plumbing ---------------------------------------
    def mask_from_multisets(self, allowed) -> int:
        """The bit mask of a constraint set (iterable of multisets)."""
        mask = 0
        for ms in allowed:
            mask |= 1 << self.rank_of[ms]
        return mask

    def spec_masks(self, spec: ProblemSpec) -> Tuple[int, int]:
        return (self.mask_from_multisets(spec.white),
                self.mask_from_multisets(spec.black))

    def encoding_from_masks(self, wmask: int, bmask: int) -> Encoding:
        """The legacy-shaped nested-tuple encoding of a mask pair."""
        # plain loops, not genexprs: this runs once per emitted canonical
        # form and genexpr frames leave reference-cycle garbage behind,
        # which would make the streaming enumeration's memory high-water
        # track the space size instead of staying flat
        ranked = self.ranked
        white = []
        mask = wmask
        while mask:
            low = mask & -mask
            white.append(ranked[low.bit_length() - 1])
            mask ^= low
        black = []
        mask = bmask
        while mask:
            low = mask & -mask
            black.append(ranked[low.bit_length() - 1])
            mask ^= low
        return (self.n_in, self.n_out, self.delta,
                tuple(white), tuple(black))

    def apply(self, idx: int, mask: int) -> int:
        """Apply transform ``idx`` (a rank permutation) to a mask."""
        if self.tables is not None:
            return self.tables[idx][mask]
        tau = self.perms[idx]
        out = 0
        while mask:
            low = mask & -mask
            out |= 1 << tau[low.bit_length() - 1]
            mask ^= low
        return out

    @property
    def ordered_masks(self) -> Tuple[int, ...]:
        """All ``2^m`` masks in the encoding's tuple-lex order — the walk
        order of the orderly enumeration (built lazily)."""
        if self._ordered_masks is None:
            if (1 << self.m) > _ITER_MASK_LIMIT:
                raise ValueError(
                    f"cannot order {1 << self.m} masks "
                    f"(m={self.m}); the space is too large to stream"
                )
            self._ordered_masks = tuple(
                sorted(range(1 << self.m), key=_mask_bits)
            )
        return self._ordered_masks

    # -- canonical forms ----------------------------------------------
    def canonical_masks(self, wmask: int, bmask: int) -> Tuple[int, int]:
        """The lex-least ``(white, black)`` mask pair over the full
        symmetry orbit (label permutations x colour swap)."""
        best_w, best_b = wmask, bmask
        if _pair_less(bmask, wmask, best_w, best_b):
            best_w, best_b = bmask, wmask
        tables = self.tables
        for idx in range(1, len(self.perms)):
            if tables is not None:
                table = tables[idx]
                tw, tb = table[wmask], table[bmask]
            else:
                tw, tb = self.apply(idx, wmask), self.apply(idx, bmask)
            if _pair_less(tw, tb, best_w, best_b):
                best_w, best_b = tw, tb
            if _pair_less(tb, tw, best_w, best_b):
                best_w, best_b = tb, tw
        return best_w, best_b

    def perm_canonical_masks(self, wmask: int, bmask: int) -> Tuple[int, int]:
        """Lex-least mask pair over label permutations only (no colour
        swap) — two specs are swap-isomorphic iff the perm-canonical form
        of one equals the perm-canonical form of the other's swap."""
        best_w, best_b = wmask, bmask
        tables = self.tables
        for idx in range(1, len(self.perms)):
            if tables is not None:
                table = tables[idx]
                tw, tb = table[wmask], table[bmask]
            else:
                tw, tb = self.apply(idx, wmask), self.apply(idx, bmask)
            if _pair_less(tw, tb, best_w, best_b):
                best_w, best_b = tw, tb
        return best_w, best_b

    def is_canonical(self, wmask: int, bmask: int) -> bool:
        """The orderly-enumeration rejection rule: a spec survives iff it
        *is* its own canonical form — iff no transform produces a
        lexicographically smaller image.  Rejects abort at the first
        smaller image (for most specs the very first comparison, the
        un-permuted colour swap)."""
        if _pair_less(bmask, wmask, wmask, bmask):
            return False
        tables = self.tables
        for idx in range(1, len(self.perms)):
            if tables is not None:
                table = tables[idx]
                tw, tb = table[wmask], table[bmask]
            else:
                tw, tb = self.apply(idx, wmask), self.apply(idx, bmask)
            if (_pair_less(tw, tb, wmask, bmask)
                    or _pair_less(tb, tw, wmask, bmask)):
                return False
        return True


_CONTEXTS: Dict[Tuple[int, int, int], CanonicalContext] = {}


def get_context(n_in: int, n_out: int, delta: int) -> CanonicalContext:
    """The cached :class:`CanonicalContext` of one alphabet signature."""
    key = (n_in, n_out, delta)
    ctx = _CONTEXTS.get(key)
    if ctx is None:
        ctx = _CONTEXTS[key] = CanonicalContext(n_in, n_out, delta)
    return ctx


def canonical_encoding(spec: ProblemSpec) -> Encoding:
    """The lexicographically smallest encoding over the symmetry orbit —
    the (only) canonicalization path of the census, pinned equal to
    :func:`legacy_canonical_encoding` by the property tests."""
    ctx = get_context(spec.n_in, spec.n_out, spec.delta)
    wmask, bmask = ctx.spec_masks(spec)
    return ctx.encoding_from_masks(*ctx.canonical_masks(wmask, bmask))


# ----------------------------------------------------------------------
# partition refinement
# ----------------------------------------------------------------------
def refine_partition(
    ctx: CanonicalContext, wmask: int, bmask: int,
    symmetric: bool = False,
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Refine the input/output label alphabets by iterated incidence
    signatures over the allowed multisets.

    Each round computes, per allowed multiset, the tuple (colour flags,
    sorted member classes) and, per label, the sorted tuple of the
    signatures of its occurrences (with multiplicity); labels are
    re-classed by signature until a fixpoint.  The class vectors are
    isomorphism-invariant: every automorphism of the spec maps each cell
    onto itself, so stabilizer searches need only permute within cells
    (the *stuck-cell group*).

    With ``symmetric=True`` the colour flags are the *unordered*
    white/black membership pair, making the partition invariant under
    colour-swapping isomorphisms as well — the cell constraint for the
    swap-part stabilizer search (a permutation mapping ``(white, black)``
    onto ``(black, white)`` must also respect these coarser cells).

    Returns ``(input classes, output classes)`` as class-id vectors
    (labels share a class id iff no signature separates them).
    """
    n_in, n_out = ctx.n_in, ctx.n_out
    in_cls: List[int] = [0] * n_in
    out_cls: List[int] = [0] * n_out
    ranked = ctx.ranked
    members = [
        r for r in range(ctx.m)
        if (wmask >> r) & 1 or (bmask >> r) & 1
    ]
    flags: Dict[int, Tuple[int, int]] = {}
    for r in members:
        wbit, bbit = (wmask >> r) & 1, (bmask >> r) & 1
        if symmetric and wbit > bbit:
            wbit, bbit = bbit, wbit
        flags[r] = (wbit, bbit)
    while True:
        in_occ: List[List[Tuple]] = [[] for _ in range(n_in)]
        out_occ: List[List[Tuple]] = [[] for _ in range(n_out)]
        for r in members:
            ms = ranked[r]
            sig = (
                flags[r],
                tuple(sorted((in_cls[i], out_cls[o]) for i, o in ms)),
            )
            for i, o in ms:
                in_occ[i].append(sig)
                out_occ[o].append(sig)
        new_in = _re_class(in_cls, in_occ)
        new_out = _re_class(out_cls, out_occ)
        if new_in == in_cls and new_out == out_cls:
            return tuple(in_cls), tuple(out_cls)
        in_cls, out_cls = new_in, new_out


def _re_class(old: List[int], occurrences: List[List[Tuple]]) -> List[int]:
    """New class ids from (old class, sorted occurrence signatures)."""
    sigs = [
        (old[label], tuple(sorted(occ)))
        for label, occ in enumerate(occurrences)
    ]
    order = {sig: idx for idx, sig in enumerate(sorted(set(sigs)))}
    return [order[sig] for sig in sigs]


def stuck_cell_perms(classes: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """All label permutations that move labels only within their
    refinement cell — the stuck-cell group of one alphabet."""
    cells: Dict[int, List[int]] = {}
    for label, cls in enumerate(classes):
        cells.setdefault(cls, []).append(label)
    ordered = [cells[c] for c in sorted(cells)]
    for choice in itertools.product(
        *(itertools.permutations(cell) for cell in ordered)
    ):
        pi = [0] * len(classes)
        for cell, images in zip(ordered, choice):
            for src, dst in zip(cell, images):
                pi[src] = dst
        yield tuple(pi)


def stuck_cell_order(classes: Sequence[int]) -> int:
    """Order of the stuck-cell group: the product of ``|cell|!``."""
    sizes: Dict[int, int] = {}
    for cls in classes:
        sizes[cls] = sizes.get(cls, 0) + 1
    order = 1
    for size in sizes.values():
        order *= factorial(size)
    return order


def stabilizer_order(
    ctx: CanonicalContext, wmask: int, bmask: int,
    force_refinement: bool = False,
) -> int:
    """Order of the spec's stabilizer inside the full symmetry group.

    The permutation part is found by scanning only the stuck-cell group
    of the refined partition (automorphisms cannot mix cells); for tiny
    full groups the direct table scan is cheaper than refining, so the
    stuck-cell search engages once the group outgrows
    ``_STUCK_SCAN_THRESHOLD`` (``force_refinement`` pins both paths in
    the tests).  The colour-swap part doubles the stabilizer exactly
    when the swapped spec is label-permutation-isomorphic to the spec
    (the swap stabilizer elements are then one coset of the permutation
    stabilizer).
    """
    n_perms = len(ctx.perms)
    refined = force_refinement or n_perms > _STUCK_SCAN_THRESHOLD
    stab = 0
    if refined:
        in_cls, out_cls = refine_partition(ctx, wmask, bmask)
        perm_index = ctx.perm_index
        for pi_in in stuck_cell_perms(in_cls):
            for pi_out in stuck_cell_perms(out_cls):
                idx = perm_index[(pi_in, pi_out)]
                if (ctx.apply(idx, wmask) == wmask
                        and ctx.apply(idx, bmask) == bmask):
                    stab += 1
    else:
        tables = ctx.tables
        for idx in range(n_perms):
            if tables is not None:
                table = tables[idx]
                tw, tb = table[wmask], table[bmask]
            else:
                tw, tb = ctx.apply(idx, wmask), ctx.apply(idx, bmask)
            if tw == wmask and tb == bmask:
                stab += 1
    if wmask == bmask:
        swap_iso = True
    elif refined:
        # a colour-swapping isomorphism must respect the symmetrized
        # refinement cells, so this search too stays inside a stuck-cell
        # group instead of rescanning the full permutation group
        sym_in, sym_out = refine_partition(ctx, wmask, bmask,
                                           symmetric=True)
        perm_index = ctx.perm_index
        swap_iso = False
        for pi_in in stuck_cell_perms(sym_in):
            for pi_out in stuck_cell_perms(sym_out):
                idx = perm_index[(pi_in, pi_out)]
                if (ctx.apply(idx, wmask) == bmask
                        and ctx.apply(idx, bmask) == wmask):
                    swap_iso = True
                    break
            if swap_iso:
                break
    else:
        swap_iso = (
            ctx.perm_canonical_masks(bmask, wmask)
            == ctx.perm_canonical_masks(wmask, bmask)
        )
    return stab * (2 if swap_iso else 1)


def orbit_size(
    ctx: CanonicalContext, wmask: int, bmask: int,
    force_refinement: bool = False,
) -> int:
    """Orbit size via orbit--stabilizer: ``group order / stabilizer
    order`` — the number of raw specs that canonicalize onto this one,
    computed without ever visiting them."""
    return ctx.group_order // stabilizer_order(
        ctx, wmask, bmask, force_refinement=force_refinement
    )


# ----------------------------------------------------------------------
# orderly enumeration
# ----------------------------------------------------------------------
def iter_space(
    max_labels: int,
    delta: int,
    max_inputs: int = 1,
    tick: Optional[Callable[[int], None]] = None,
    tick_every: int = 8192,
) -> Iterator[Tuple[Encoding, int]]:
    """Stream the canonical problems of the bounded space in sorted
    order.

    Walks every ``(white, black)`` mask pair of every alphabet signature
    in the encoding's tuple-lex order and yields ``(encoding, orbit
    size)`` exactly for the specs that are their own canonical form
    (:meth:`CanonicalContext.is_canonical`) — one representative per
    orbit, already sorted, never materializing the raw space.  ``tick``
    (if given) is called with the running raw-spec count every
    ``tick_every`` specs — the census progress hook.
    """
    raw_seen = 0
    for n_in in range(1, max_inputs + 1):
        for n_out in range(1, max_labels + 1):
            ctx = get_context(n_in, n_out, delta)
            masks = ctx.ordered_masks
            is_canonical = ctx.is_canonical
            for wmask in masks:
                for bmask in masks:
                    raw_seen += 1
                    if tick is not None and raw_seen % tick_every == 0:
                        tick(raw_seen)
                    if is_canonical(wmask, bmask):
                        yield (
                            ctx.encoding_from_masks(wmask, bmask),
                            orbit_size(ctx, wmask, bmask),
                        )
    if tick is not None:
        tick(raw_seen)


# ----------------------------------------------------------------------
# the legacy brute force — kept only as the differential oracle
# ----------------------------------------------------------------------
def _legacy_transforms(n_in: int, n_out: int):
    """The symmetry group: input perms x output perms x colour swap."""
    for pi_in in itertools.permutations(range(n_in)):
        for pi_out in itertools.permutations(range(n_out)):
            for swap in (False, True):
                yield pi_in, pi_out, swap


def legacy_canonical_encoding(spec: ProblemSpec) -> Encoding:
    """The original brute force: remap the constraint sets under every
    transform of the full group and keep the lexicographically smallest
    encoding.  Retired from the census pipeline — this is the
    differential oracle the property tests and the canonicalization
    benchmark pin :func:`canonical_encoding` against."""
    def remap(allowed: FrozenSet[Multiset], pi_in, pi_out) -> Tuple:
        return tuple(sorted(
            tuple(sorted((pi_in[i], pi_out[o]) for i, o in ms))
            for ms in allowed
        ))

    best: Optional[Encoding] = None
    for pi_in, pi_out, swap in _legacy_transforms(spec.n_in, spec.n_out):
        w = remap(spec.white, pi_in, pi_out)
        b = remap(spec.black, pi_in, pi_out)
        if swap:
            w, b = b, w
        cand = (spec.n_in, spec.n_out, spec.delta, w, b)
        if best is None or cand < best:
            best = cand
    return best
