"""The testing procedure (Algorithm 1, Section 11.6).

Given a black-white LCL and a candidate function ``f`` (a rectangle
choice per maximal compress class, see :mod:`repro.gap.classes`), the
procedure closes the set of *reachable label-sets* under

* **rake combination** (steps 2a/2b): any multiset of up to ``Delta``
  reachable subtrees glued below a fresh node — with an outgoing edge
  (producing a new label-set via ``g``) or without one (a feasibility
  check: an empty maximal class disqualifies ``f``);
* **compress combination** (step 2f): any path of length ``ell..2*ell``
  whose pendant edges carry reachable label-sets; its relation is mapped
  through ``f`` to an independent rectangle, producing the two endpoint
  label-sets.

``f`` is *good* if no empty label-set or empty class is ever produced;
the closure is finite (label-sets live in ``2^{Sigma_out}``), so the
procedure terminates.  Reachable entries are tagged with the colour of
the subtree root and the input on the outgoing edge.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..lcl.blackwhite import BLACK, WHITE, BlackWhiteLCL
from .classes import GapCache, LabelSet

__all__ = ["Entry", "RectangleChooser", "TestOutcome", "run_testing_procedure"]

Entry = Tuple[str, object, LabelSet]  # (root color, outgoing-edge input, label-set)

Relation = FrozenSet[Tuple[object, object]]


def _entry_key(e: Entry) -> Tuple[str, str, List[str]]:
    """Total deterministic order for entries.  Label-sets are frozensets
    (no total order, hashseed-dependent iteration), so compare their
    sorted string forms (DET004: set order must not reach results)."""
    return (str(e[0]), str(e[1]), sorted(str(x) for x in e[2]))


def _opp(color: str) -> str:
    return BLACK if color == WHITE else WHITE


class RectangleChooser:
    """A candidate ``f_{Pi,k}``: maps each maximal class (keyed by its
    relation) to an independent rectangle.  ``choices`` may be partial;
    :class:`UnseenRelation` signals the enumerating decider to branch."""

    def __init__(self, choices: Optional[Dict[Relation, Tuple[LabelSet, LabelSet]]] = None):
        self.choices: Dict[Relation, Tuple[LabelSet, LabelSet]] = dict(choices or {})

    def choose(self, relation: Relation) -> Tuple[LabelSet, LabelSet]:
        if relation not in self.choices:
            raise UnseenRelation(relation)
        return self.choices[relation]


class UnseenRelation(Exception):
    def __init__(self, relation: Relation) -> None:
        super().__init__(f"no rectangle chosen for relation {set(relation)}")
        self.relation = relation


@dataclass
class TestOutcome:
    good: bool
    reason: str
    entries: Set[Entry] = field(default_factory=set)
    relations: Set[Relation] = field(default_factory=set)
    iterations: int = 0


def run_testing_procedure(
    problem: BlackWhiteLCL,
    chooser: RectangleChooser,
    delta: int = 2,
    ell: int = 2,
    max_iterations: int = 64,
    combo_budget: int = 200_000,
    cache: Optional[GapCache] = None,
) -> TestOutcome:
    """Run Algorithm 1 until the reachable set stabilizes.

    ``delta`` bounds node degrees in the assembled trees (``delta = 2``
    is the path universe, which is where the Theorem-7 demos live);
    larger ``delta`` enumerates pendant combinations and can be costly.

    ``cache`` shares the problem's :class:`GapCache` across runs — one
    decision runs this procedure once per candidate function, and the
    ``g``/relation/feasibility queries repeat almost verbatim between
    candidates.  The budget accounting counts enumerated combinations,
    not computed ones, so cached and uncached runs return identical
    outcomes.
    """
    if cache is None:
        cache = GapCache(problem, memoize=False)
    entries: Set[Entry] = set()
    for color in (WHITE, BLACK):
        for inp, ls in cache.leaf_label_sets(color).items():
            if not ls:
                return TestOutcome(False, f"leaf of color {color} has empty g")
            entries.add((color, inp, ls))

    relations: Set[Relation] = set()
    budget = combo_budget

    for iteration in range(1, max_iterations + 1):
        before = len(entries)

        # ---- rake closure (2a-2c) ------------------------------------
        # the closure is a pure function of (entries, delta), so the
        # cache replays it for every DFS candidate sharing this state;
        # the recorded combination count keeps budget accounting (and
        # with it every outcome) identical to an uncached run
        status = _rake_closure(cache, entries, delta, budget)
        combos = status[-1]
        if status[0] == "budget" or budget < combos:
            return TestOutcome(False, "combination budget exceeded")
        budget -= combos
        if status[0] == "fail":
            return TestOutcome(
                False, status[1], set(status[2]), relations, iteration,
            )
        entries = set(status[1])

        # ---- compress step (2f) --------------------------------------
        new_from_compress: Set[Entry] = set()
        for length in range(ell, 2 * ell + 1):
            for first_color in (WHITE, BLACK):
                colors = [
                    first_color if i % 2 == 0 else _opp(first_color)
                    for i in range(length)
                ]
                pendant_options = _pendant_options(entries, colors, delta)
                for pendants in pendant_options:
                    for edge_inp in problem.sigma_in:
                        edge_inputs = [edge_inp] * (length - 1)
                        for out_inp in problem.sigma_in:
                            budget -= len(problem.sigma_out) ** 2
                            if budget < 0:
                                return TestOutcome(False, "combination budget exceeded")
                            rel = cache.path_relation(
                                colors, edge_inputs, pendants,
                                (out_inp, out_inp),
                            )
                            relations.add(rel)
                            if not rel:
                                return TestOutcome(
                                    False,
                                    f"empty compress relation (length {length})",
                                    entries, relations, iteration,
                                )
                            s1, s2 = chooser.choose(rel)
                            if not s1 or not s2:
                                return TestOutcome(
                                    False, "chooser returned an empty rectangle",
                                    entries, relations, iteration,
                                )
                            new_from_compress.add((colors[0], out_inp, frozenset(s1)))
                            new_from_compress.add((colors[-1], out_inp, frozenset(s2)))
        entries |= new_from_compress

        if len(entries) == before:
            return TestOutcome(True, "stabilized", entries, relations, iteration)

    return TestOutcome(False, "did not stabilize", entries, relations, max_iterations)


def _rake_closure(
    cache: GapCache, entries: Set[Entry], delta: int, limit: int
):
    """The rake fixpoint (steps 2a-2c) with whole-result memoization.

    Returns ``("ok", closed-entries, combos)``, ``("fail", reason,
    entries-at-failure, combos)`` or ``("budget", combos)`` where
    ``combos`` is exactly the number of budget units an uncached
    enumeration would consume up to the same outcome — the caller
    charges them in one step, so cached and uncached runs exhaust the
    budget at identical points.  ``limit`` (the remaining budget) aborts
    the computation mid-enumeration just like the pre-cache inline loop;
    aborted closures are *not* cached — a complete result is valid for
    every budget via the ``combos`` comparison, a truncated one only for
    the budget that truncated it.
    """
    key = (frozenset(entries), delta)
    store = cache.rake if cache.memoize else None
    if store is not None:
        hit = store.get(key)
        if hit is not None:
            return hit
    result = _compute_rake_closure(cache, entries, delta, limit)
    if store is not None and result[0] != "budget":
        store[key] = result
    return result


def _compute_rake_closure(
    cache: GapCache, start: Set[Entry], delta: int, limit: int
):
    problem = cache.problem
    entries = set(start)
    combos = 0
    while True:
        added = False
        for color in (WHITE, BLACK):
            child_entries = sorted(
                (e for e in entries if e[0] == _opp(color)), key=_entry_key)
            # 2a: no outgoing edge, 1..delta children
            for x in range(1, delta + 1):
                for combo in itertools.combinations_with_replacement(
                    child_entries, x
                ):
                    combos += 1
                    if combos > limit:
                        return ("budget", combos)
                    incoming = [(e[1], e[2]) for e in combo]
                    if not cache.node_feasible(color, [], incoming):
                        return (
                            "fail",
                            f"empty maximal class at a degree-{x} {color} node",
                            frozenset(entries), combos,
                        )
            # 2b: outgoing edge, 0..delta-1 children
            for x in range(0, delta):
                for combo in itertools.combinations_with_replacement(
                    child_entries, x
                ):
                    incoming = [(e[1], e[2]) for e in combo]
                    for out_inp in problem.sigma_in:
                        combos += 1
                        if combos > limit:
                            return ("budget", combos)
                        ls = cache.g_single_node(color, incoming, out_inp)
                        if not ls:
                            return (
                                "fail",
                                f"empty label-set g at a {color} node",
                                frozenset(entries), combos,
                            )
                        entry = (color, out_inp, ls)
                        if entry not in entries:
                            entries.add(entry)
                            added = True
        if not added:
            return ("ok", frozenset(entries), combos)


def _pendant_options(
    entries: Set[Entry], colors: Sequence[str], delta: int
) -> List[List[List[Tuple[object, LabelSet]]]]:
    """Pendant (input, label-set) combinations per path node.

    For ``delta = 2`` paths have no pendants; for larger delta each node
    independently takes up to ``delta - 2`` pendants from the reachable
    entries of the opposite colour.  To keep enumeration bounded, nodes
    take at most one pendant each here (sufficient to exercise pendant
    effects; documented approximation of the full closure).
    """
    if delta <= 2:
        return [[[] for _ in colors]]
    options: List[List[List[Tuple[object, LabelSet]]]] = []
    per_node_choices = []
    for c in colors:
        child = sorted((e for e in entries if e[0] == _opp(c)),
                       key=_entry_key)
        per_node_choices.append([[]] + [[(e[1], e[2])] for e in child])
    for combo in itertools.product(*per_node_choices):
        options.append([list(p) for p in combo])
    return options
