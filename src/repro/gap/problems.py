"""Concrete black-white LCLs for the Section-11 demos and tests.

Each sits in a different region of the node-averaged landscape:

* :func:`free_labeling` — every labeling allowed: O(1), and the decider
  finds a constant-good function;
* :func:`all_equal` — all incident outputs equal: O(1) (homogeneous);
* :func:`edge_3coloring` — adjacent edges differ, 3 labels: worst case
  Theta(log* n) on paths; a good function exists but no constant-good
  one — by Theorem 7 its node-averaged complexity is >= (log* n)^{Omega(1)};
* :func:`edge_2coloring` — adjacent edges differ, 2 labels: Theta(n);
  the testing procedure rejects every function (singleton label-sets
  collide at a final node).
"""

from __future__ import annotations

from ..lcl.blackwhite import BlackWhiteLCL

__all__ = ["free_labeling", "all_equal", "edge_3coloring", "edge_2coloring",
           "PROBLEMS", "within_bounds"]

_IN = ("-",)  # single dummy input label


def free_labeling() -> BlackWhiteLCL:
    return BlackWhiteLCL(
        "free-labeling", _IN, (0, 1),
        lambda pairs: True,
        lambda pairs: True,
    )


def all_equal() -> BlackWhiteLCL:
    def same(pairs):
        outs = {o for _, o in pairs}
        return len(outs) <= 1

    return BlackWhiteLCL("all-equal", _IN, (0, 1), same, same)


def _proper(pairs) -> bool:
    outs = [o for _, o in pairs]
    return len(outs) == len(set(outs))


def edge_3coloring() -> BlackWhiteLCL:
    """Proper edge coloring with 3 colors (on paths: 3-coloring the line
    graph, the Linial Theta(log* n) problem)."""
    return BlackWhiteLCL("edge-3coloring", _IN, (1, 2, 3), _proper, _proper)


def edge_2coloring() -> BlackWhiteLCL:
    """Proper edge coloring with 2 colors: Theta(n) on paths."""
    return BlackWhiteLCL("edge-2coloring", _IN, (1, 2), _proper, _proper)


def within_bounds(
    problem: BlackWhiteLCL, max_labels: int, max_inputs: int = 1,
) -> bool:
    """Whether a problem's alphabets fit inside census/atlas enumeration
    bounds — e.g. the landmark filter of the landscape atlas (problems
    outside the bounds cannot appear in the enumerated space)."""
    return (len(problem.sigma_in) <= max_inputs
            and len(problem.sigma_out) <= max_labels)


#: name → factory registry of the concrete demo problems, so CLIs
#: (notably ``python -m repro.serve classify --problem``) can resolve
#: them by name
PROBLEMS = {
    "free_labeling": free_labeling,
    "all_equal": all_equal,
    "edge_3coloring": edge_3coloring,
    "edge_2coloring": edge_2coloring,
}
