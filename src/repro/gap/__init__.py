"""Section-11 machinery: classes, testing procedure, Theorem-7 decider."""

from .classes import (
    GapCache,
    g_single_node,
    leaf_label_sets,
    maximal_rectangles,
    node_feasible,
    path_relation,
)
from .decider import (
    GapVerdict,
    decide_node_averaged_class,
    find_good_function,
    is_constant_good,
)
from .problems import all_equal, edge_2coloring, edge_3coloring, free_labeling
from .testing import RectangleChooser, TestOutcome, run_testing_procedure

__all__ = [
    "GapCache",
    "g_single_node",
    "leaf_label_sets",
    "maximal_rectangles",
    "node_feasible",
    "path_relation",
    "GapVerdict",
    "decide_node_averaged_class",
    "find_good_function",
    "is_constant_good",
    "all_equal",
    "edge_2coloring",
    "edge_3coloring",
    "free_labeling",
    "RectangleChooser",
    "TestOutcome",
    "run_testing_procedure",
]
