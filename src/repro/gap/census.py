"""Problem-space census: Theorem 7 over *every* small black-white LCL.

The paper's headline decidability result (Theorem 7) is a per-problem
decision procedure; this module scales it into a landscape workload in
the spirit of Figures 1/2 and [BBK+23b]'s density results — classify an
**entire enumerated problem space** at once:

1. **Enumerate** every :class:`~repro.lcl.blackwhite.BlackWhiteLCL`
   with ``|Sigma_in| <= max_inputs``, ``|Sigma_out| <= max_labels`` and
   constraints given extensionally as the allowed multisets of
   ``(input, output)`` pairs of sizes ``1..delta`` (the degree bound of
   the tree universe the testing procedure explores) — **streamed** by
   the orderly enumeration of :func:`repro.gap.canonical.iter_space`,
   which yields exactly one representative per symmetry orbit (output
   and input label permutations, white/black swap) in sorted order with
   orbit sizes from orbit--stabilizer, never materializing the raw
   space.
2. **Decide** each canonical problem with
   :func:`~repro.gap.decider.decide_node_averaged_class`, fanned over a
   ``fork`` pool with the same task-order aggregation discipline as
   :class:`~repro.sweep.SweepRunner`: the JSON payload is
   **byte-identical at every worker count**.
4. **Cross-validate**: problems with a registered empirical witness (a
   :data:`repro.sweep.ALGORITHMS` entry solving the node-form problem on
   a witness family) are swept through the existing
   ``SweepRunner``/checker-kernel path, the node-averaged growth across
   sizes is classified as ``flat`` / ``intermediate`` / ``linear``, and
   the census gates on the verdict agreeing with the measured class
   (an ``O(1)`` verdict must coincide with flat growth).

Verdicts are mapped onto the Figure-2 landscape regions via
:func:`repro.analysis.landscape.regions_for_verdict`.  ``--atlas`` emits
the landscape-atlas payload instead: every canonical problem of the
bounded space mapped to its Figure-2 region — the paper's Figure 2,
computed rather than drawn — storable and servable through
``python -m repro.serve atlas``.

CLI
---
::

    python -m repro.gap.census --max-labels 2 --delta 2 --workers 4
    python -m repro.gap.census --max-labels 3 --delta 2 --atlas \
        --store cas --out atlas.json

Exits nonzero if any cross-validated verdict disagrees with its measured
growth class (or a witness sweep produced an invalid labeling).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..analysis.landscape import regions_for_verdict
from ..lcl.blackwhite import BLACK, WHITE, BlackWhiteLCL
from ..parallel import fork_map, stable_digest
from ..store import ResultStore, StoreKey, as_store, atomic_write_text
from .canonical import (
    Encoding,
    Multiset,
    ProblemSpec,
    canonical_encoding,
    enumerate_multisets,
    get_context,
    iter_space,
    legacy_canonical_encoding,
)
from .decider import decide_node_averaged_class
from .problems import (
    PROBLEMS,
    all_equal,
    edge_2coloring,
    edge_3coloring,
    free_labeling,
    within_bounds,
)

__all__ = [
    "ProblemSpec",
    "enumerate_multisets",
    "enumerate_space",
    "canonical_encoding",
    "legacy_canonical_encoding",
    "spec_to_problem",
    "spec_from_problem",
    "decide_encoding",
    "verdict_key",
    "atlas_key",
    "CrossCheck",
    "CROSS_CHECKS",
    "classify_growth",
    "VERDICT_GROWTH_AGREEMENT",
    "run_census",
    "census_json",
    "run_atlas",
    "atlas_json",
    "main",
]


def _decode(encoding: Encoding) -> ProblemSpec:
    n_in, n_out, delta, white, black = encoding
    return ProblemSpec(n_in, n_out, delta,
                       frozenset(white), frozenset(black))


def spec_name(encoding: Encoding) -> str:
    """Deterministic digest name for a canonical problem."""
    n_in, n_out, delta = encoding[0], encoding[1], encoding[2]
    return f"bw{n_in}x{n_out}d{delta}-{stable_digest(encoding, size=6)}"


def spec_to_problem(spec: ProblemSpec) -> BlackWhiteLCL:
    """Materialize the spec as a :class:`BlackWhiteLCL` whose constraints
    are membership in the allowed multiset sets (degree > ``delta`` or an
    empty neighbourhood is disallowed — the census universe is trees of
    maximum degree ``delta``)."""
    in_index = {i: i for i in range(spec.n_in)}
    out_index = {o: o for o in range(spec.n_out)}

    def predicate(allowed: FrozenSet[Multiset]):
        def check(pairs: Tuple) -> bool:
            try:
                ms = tuple(sorted(
                    (in_index[i], out_index[o]) for i, o in pairs
                ))
            except (KeyError, TypeError):
                return False  # off-alphabet label
            return ms in allowed
        return check

    return BlackWhiteLCL(
        spec_name(spec.encode()),
        tuple(range(spec.n_in)),
        tuple(range(spec.n_out)),
        predicate(spec.white),
        predicate(spec.black),
    )


def spec_from_problem(problem: BlackWhiteLCL, delta: int = 2) -> ProblemSpec:
    """Extract the extensional spec of any black-white LCL by probing its
    constraint predicates on every multiset of sizes ``1..delta`` —
    the bridge from the predicate-style registry problems
    (:mod:`repro.gap.problems`) into the census space."""
    n_in, n_out = len(problem.sigma_in), len(problem.sigma_out)
    allowed = {WHITE: set(), BLACK: set()}
    for ms in enumerate_multisets(n_in, n_out, delta):
        pairs = [(problem.sigma_in[i], problem.sigma_out[o]) for i, o in ms]
        for color in (WHITE, BLACK):
            if problem.allows(color, pairs):
                allowed[color].add(ms)
    return ProblemSpec(n_in, n_out, delta,
                       frozenset(allowed[WHITE]), frozenset(allowed[BLACK]))


# ----------------------------------------------------------------------
# enumeration
# ----------------------------------------------------------------------
def space_size(max_labels: int, delta: int, max_inputs: int = 1) -> int:
    """Raw problem count before canonicalization."""
    total = 0
    for n_in in range(1, max_inputs + 1):
        for n_out in range(1, max_labels + 1):
            m = len(enumerate_multisets(n_in, n_out, delta))
            total += (1 << m) ** 2
    return total


def enumerate_space(
    max_labels: int, delta: int, max_inputs: int = 1,
) -> Tuple[List[Encoding], Dict[Encoding, int], int]:
    """Materialized view of the orderly enumeration
    (:func:`repro.gap.canonical.iter_space`) for callers that want the
    whole space at once.

    Returns ``(canonical encodings sorted, orbit sizes, raw count)``:
    each canonical encoding represents its isomorphism class, and
    ``orbit[enc]`` counts the raw problems that collapse onto it (via
    orbit--stabilizer — no raw spec is ever visited).  The census itself
    consumes the generator directly and never builds these structures.
    """
    encodings: List[Encoding] = []
    orbit: Dict[Encoding, int] = {}
    for enc, size in iter_space(max_labels, delta, max_inputs):
        encodings.append(enc)
        orbit[enc] = size
    return encodings, orbit, space_size(max_labels, delta, max_inputs)


# ----------------------------------------------------------------------
# deciding (the fanned-out worker) and the verdict store
# ----------------------------------------------------------------------
def decide_encoding(
    encoding: Encoding, ell: int = 2, max_functions: int = 4096,
):
    """Decide one canonical problem from its encoding: rebuild the
    problem and run the Theorem-7 procedure.  Shared by the census
    workers and :mod:`repro.serve` (``classify --build``)."""
    problem = spec_to_problem(_decode(encoding))
    return decide_node_averaged_class(
        problem, delta=encoding[2], ell=ell, max_functions=max_functions,
    )


def verdict_key(
    store: ResultStore, encoding: Encoding, ell: int, max_functions: int,
) -> StoreKey:
    """The content address of one census verdict — the canonical problem
    form plus every decider parameter the verdict depends on.  Shared
    with :mod:`repro.serve`, which must reconstruct exactly these keys
    to answer classification queries."""
    return store.key("census-verdict", encoding, ell, max_functions)


def _decode_verdict(payload: object) -> Optional[Tuple[str, str]]:
    """Validate a stored verdict payload; ``None`` (→ recompute) on any
    shape surprise."""
    if not isinstance(payload, dict):
        return None
    klass, detail = payload.get("klass"), payload.get("detail")
    if not isinstance(klass, str) or not isinstance(detail, str):
        return None
    return klass, detail


def _decide_task(task: Tuple[Encoding, int, int]) -> Tuple[str, str]:
    """One canonical problem: rebuild it from its encoding inside the
    worker (nothing but tuples crosses the pool boundary — the
    :class:`SweepRunner` discipline) and decide its Theorem-7 class."""
    encoding, ell, max_functions = task
    verdict = decide_encoding(encoding, ell, max_functions)
    return verdict.klass, verdict.detail


def _task_spec_label(task: Tuple[Encoding, int, int]) -> str:
    return f"census decide {spec_name(task[0])}"


def _decide_shard(
    task: Tuple[Tuple[Encoding, ...], int, int, str, str],
) -> List[Tuple[str, str]]:
    """One store shard: decide every encoding in the shard, writing each
    verdict through the store **as soon as it is decided** — the
    checkpoint that makes a killed census resumable.  Each worker opens
    its own :class:`ResultStore` handle (same root/salt; concurrent
    writers are safe because every write is atomic and the shards —
    split by canonical-form digest — never share a key)."""
    encodings, ell, max_functions, root, salt = task
    store = ResultStore(root, salt=salt)
    out: List[Tuple[str, str]] = []
    for enc in encodings:
        verdict = decide_encoding(enc, ell, max_functions)
        store.put(verdict_key(store, enc, ell, max_functions),
                  verdict.to_payload())
        out.append((verdict.klass, verdict.detail))
    return out


def _shard_spec_label(
    task: Tuple[Tuple[Encoding, ...], int, int, str, str],
) -> str:
    encodings = task[0]
    return (f"census shard of {len(encodings)} problem(s) "
            f"starting {spec_name(encodings[0])}")


# ----------------------------------------------------------------------
# empirical cross-validation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrossCheck:
    """Pairs a census problem with a registered sweep algorithm solving
    its node-form equivalent on a witness family.  The node-averaged
    growth of the algorithm across ``sizes`` is the empirical anchor the
    Theorem-7 verdict must agree with."""

    name: str
    problem: Callable[[], BlackWhiteLCL]
    algorithm: str
    family: str = "path"
    sizes: Tuple[int, ...] = (64, 512)


def _register_census_algorithms() -> None:
    """Register the O(1) empirical witness used by the cross-checks."""
    from ..local.metrics import ExecutionTrace
    from ..sweep import ALGORITHMS, AlgorithmSpec, register_algorithm

    if "constant_labeling_ff" in ALGORITHMS:
        return

    def constant_ff(graph, ids):
        return ExecutionTrace(rounds=[0] * graph.n, outputs=[0] * graph.n,
                              algorithm="constant-labeling-ff")

    register_algorithm(AlgorithmSpec(
        "constant_labeling_ff", fast_forward=constant_ff,
        description="radius-0 constant labeling — the O(1) census witness",
    ))


#: the built-in cross-checks; ``edge-3coloring`` only enters a census
#: whose bounds cover three output labels
CROSS_CHECKS: Tuple[CrossCheck, ...] = (
    CrossCheck("free-labeling", free_labeling, "constant_labeling_ff"),
    CrossCheck("all-equal", all_equal, "constant_labeling_ff"),
    CrossCheck("edge-2coloring", edge_2coloring, "two_coloring"),
    CrossCheck("edge-3coloring", edge_3coloring, "cole_vishkin"),
)

#: which measured growth classes each Theorem-7 verdict tolerates: O(1)
#: demands flat curves; the logstar regime is indistinguishable from flat
#: at feasible sizes but must not look linear; no-good-function problems
#: (polynomial regime or worse) must visibly grow
VERDICT_GROWTH_AGREEMENT: Dict[str, Tuple[str, ...]] = {
    "O(1)": ("flat",),
    "logstar-regime": ("flat", "intermediate"),
    "no-good-function": ("intermediate", "linear"),
}


def classify_growth(points: Sequence[Tuple[int, float]]) -> str:
    """``flat`` / ``intermediate`` / ``linear`` from (n, node-averaged)
    measurements at increasing sizes."""
    if len(points) < 2:
        raise ValueError("need measurements at >= 2 sizes")
    (n0, a0), (n1, a1) = points[0], points[-1]
    if n1 <= n0:
        raise ValueError("sizes must increase")
    ratio = a1 / max(a0, 1.0)
    if ratio <= 2.0:
        return "flat"
    if ratio >= (n1 / n0) / 2.0:
        return "linear"
    return "intermediate"


def _cross_validate(
    checks: Sequence[CrossCheck],
    verdicts: Dict[Encoding, str],
    delta: int,
    workers: int,
) -> List[Dict]:
    """Run each applicable check's witness sweep (validity-checked
    through the compiled kernel) and compare growth vs. verdict."""
    from ..sweep import SweepRunner

    _register_census_algorithms()
    results: List[Dict] = []
    for check in checks:
        problem = check.problem()
        enc = canonical_encoding(spec_from_problem(problem, delta))
        klass = verdicts.get(enc)
        if klass is None:
            continue  # outside the enumerated bounds
        payload = SweepRunner(
            workers=workers, samples=1, instances=1, check=True,
        ).run([check.family], list(check.sizes), [check.algorithm], seed=0)
        points = [
            (cell["n"], cell["node_averaged"]["max"])
            for cell in payload["cells"]
        ]
        violations = sum(
            cell["validity"]["violations"]
            for cell in payload["cells"]
            if cell["validity"] is not None
        )
        growth = classify_growth(points)
        results.append({
            "problem": check.name,
            "key": spec_name(enc),
            "verdict": klass,
            "algorithm": check.algorithm,
            "family": check.family,
            "points": [{"n": n, "node_averaged": a} for n, a in points],
            "growth": growth,
            "violations": violations,
            "agrees": (
                growth in VERDICT_GROWTH_AGREEMENT[klass]
                and violations == 0
            ),
        })
    return results


# ----------------------------------------------------------------------
# progress reporting
# ----------------------------------------------------------------------
class _ProgressReporter:
    """The ``--progress`` line: periodic
    ``census progress: enumerated=... canonical=... decided=.../...
    store-hits=... elapsed=...s`` on **stderr**.  Observability only —
    nothing it touches reaches the JSON payload or the store, so the
    byte-identity contracts are unaffected whether progress is on or
    off."""

    def __init__(self, enabled: bool, interval: float = 2.0) -> None:
        self.enabled = enabled
        self.interval = interval
        self.enumerated = 0
        self.kept = 0
        self.decided = 0
        self.pending = 0
        self.store_hits = 0
        if enabled:
            # lint: allow(DET003) progress timestamps feed stderr only, never a payload or the store
            self._start = self._last = time.monotonic()

    def emit(self, force: bool = False) -> None:
        if not self.enabled:
            return
        # lint: allow(DET003) stderr-only progress clock
        now = time.monotonic()
        if not force and now - self._last < self.interval:
            return
        self._last = now
        print(
            f"census progress: enumerated={self.enumerated} "
            f"canonical={self.kept} decided={self.decided}/{self.pending} "
            f"store-hits={self.store_hits} elapsed={now - self._start:.1f}s",
            file=sys.stderr,
        )

    def on_raw(self, raw: int) -> None:
        """Streaming-enumeration tick: raw specs walked so far."""
        self.enumerated = raw
        self.emit()

    def on_decided(self, count: int) -> None:
        """Decide-phase tick (the ``fork_map`` ``on_result`` hook)."""
        self.decided = count
        self.emit()


# ----------------------------------------------------------------------
# the census
# ----------------------------------------------------------------------
#: store-path shards are split into chunks of this many problems so the
#: pool load-balances and progress ticks stay fine-grained; chunking is
#: invisible in the payload (results re-keyed by encoding)
_SHARD_CHUNK = 256


def _decide_space(
    max_labels: int,
    delta: int,
    max_inputs: int,
    ell: int,
    max_functions: int,
    workers: int,
    max_problems: Optional[int],
    store: Optional[ResultStore],
    resume: bool,
    stats_out: Optional[Dict[str, int]],
    reporter: _ProgressReporter,
) -> Tuple[List[Encoding], Dict[Encoding, int], int, bool,
           Dict[Encoding, Tuple[str, str]]]:
    """The shared enumerate→resume→decide pipeline behind
    :func:`run_census` and :func:`run_atlas`.

    Streams the orderly enumeration (stopping after ``max_problems``
    canonical forms, the sorted prefix), reads resumable verdicts back
    from the store, and fans the rest over ``fork_map`` — digest-sharded
    into the store checkpoints when one is given.  Returns ``(canonical
    encodings, orbit sizes, raw count, truncated, verdict map)``.
    """
    if max_labels < 1 or max_inputs < 1:
        raise ValueError("max_labels and max_inputs must be >= 1")
    if delta < 2:
        raise ValueError("delta must be >= 2")
    if resume and store is None:
        raise ValueError("resume requires a store")

    encodings: List[Encoding] = []
    orbit: Dict[Encoding, int] = {}
    truncated = False
    stream = iter_space(max_labels, delta, max_inputs,
                        tick=reporter.on_raw if reporter.enabled else None)
    for enc, size in stream:
        if max_problems is not None and len(encodings) >= max_problems:
            truncated = True
            stream.close()
            break
        encodings.append(enc)
        orbit[enc] = size
        reporter.kept = len(encodings)
    raw = space_size(max_labels, delta, max_inputs)
    reporter.enumerated = raw
    reporter.emit(force=True)

    decided_map: Dict[Encoding, Tuple[str, str]] = {}
    if store is not None and resume:
        for enc in encodings:
            payload = store.get(verdict_key(store, enc, ell, max_functions))
            verdict = None if payload is None else _decode_verdict(payload)
            if verdict is not None:
                decided_map[enc] = verdict
    pending = [enc for enc in encodings if enc not in decided_map]
    if stats_out is not None:
        stats_out["reused"] = len(encodings) - len(pending)
        stats_out["computed"] = len(pending)
    reporter.store_hits = len(encodings) - len(pending)
    reporter.pending = len(pending)

    on_result = reporter.on_decided if reporter.enabled else None
    if store is not None and pending:
        # shard by canonical-form digest so concurrent workers never
        # write the same key and a shard's checkpoints survive a kill;
        # each shard is split into chunks for load balancing (chunks of
        # one shard share its digest class, so the key-disjointness
        # argument is untouched)
        shards: Dict[int, List[Encoding]] = {}
        for enc in pending:
            k = verdict_key(store, enc, ell, max_functions)
            shards.setdefault(int(k.digest, 16) % max(1, workers),
                              []).append(enc)
        shard_tasks = []
        for i in sorted(shards):
            encs = shards[i]
            for start in range(0, len(encs), _SHARD_CHUNK):
                shard_tasks.append((
                    tuple(encs[start:start + _SHARD_CHUNK]),
                    ell, max_functions, store.root, store.salt,
                ))
        if on_result is not None:
            sizes = [len(t[0]) for t in shard_tasks]
            done = [0]
            for idx, size in enumerate(sizes):
                done.append(done[idx] + size)
            counter = _ChunkCounter(done, reporter)
            shard_results = fork_map(_decide_shard, shard_tasks, workers,
                                     label=_shard_spec_label,
                                     on_result=counter.on_task)
        else:
            shard_results = fork_map(_decide_shard, shard_tasks, workers,
                                     label=_shard_spec_label)
        for (encs, _ell, _mf, _root, _salt), results in zip(
                shard_tasks, shard_results):
            for enc, verdict in zip(encs, results):
                decided_map[enc] = verdict
    elif pending:
        tasks = [(enc, ell, max_functions) for enc in pending]
        decided = fork_map(_decide_task, tasks, workers,
                           label=_task_spec_label, on_result=on_result)
        for enc, verdict in zip(pending, decided):
            decided_map[enc] = verdict
    reporter.decided = len(pending)
    reporter.emit(force=True)
    return encodings, orbit, raw, truncated, decided_map


class _ChunkCounter:
    """Translate completed-chunk counts into completed-problem counts
    for the progress line (runs in the parent; nothing pickles)."""

    def __init__(self, cumulative: List[int],
                 reporter: _ProgressReporter) -> None:
        self._cumulative = cumulative
        self._reporter = reporter

    def on_task(self, tasks_done: int) -> None:
        self._reporter.on_decided(self._cumulative[tasks_done])


def run_census(
    max_labels: int = 2,
    delta: int = 2,
    max_inputs: int = 1,
    ell: int = 2,
    max_functions: int = 4096,
    workers: int = 1,
    max_problems: Optional[int] = None,
    cross_validate: bool = True,
    store: object = None,
    resume: bool = False,
    stats_out: Optional[Dict[str, int]] = None,
    progress: bool = False,
) -> Dict:
    """Enumerate, canonicalize, decide and cross-validate the space.

    Returns a JSON-serializable payload that is byte-identical for every
    ``workers`` value (see :func:`census_json`).  ``max_problems``
    deterministically truncates the canonical list (recorded in the
    spec) for smoke runs over spaces that would otherwise be too big —
    the truncation is a prefix of the sorted canonical stream, so a
    truncated run's checkpoints are exactly the full run's first entries.

    ``store`` (a :class:`repro.store.ResultStore`, a path, or ``None``)
    checkpoints every verdict the moment it is decided, with workers
    sharded by canonical-form digest so no two workers touch the same
    key.  ``resume`` additionally reads already-decided verdicts back
    from the store before fanning out, so a killed census continues from
    its checkpoints instead of restarting.  The payload is byte-identical
    with the store absent, cold, or resumed; reuse counts go into
    ``stats_out`` (``{"reused": ..., "computed": ...}``), never into the
    payload.  ``progress`` prints a periodic stderr status line and is
    equally payload-invisible.
    """
    reporter = _ProgressReporter(progress)
    encodings, orbit, raw, truncated, decided_map = _decide_space(
        max_labels, delta, max_inputs, ell, max_functions, workers,
        max_problems, as_store(store), resume, stats_out, reporter,
    )

    verdicts: Dict[Encoding, str] = {}
    problems: List[Dict] = []
    counts: Dict[str, int] = {}
    for enc in encodings:
        klass, detail = decided_map[enc]
        verdicts[enc] = klass
        counts[klass] = counts.get(klass, 0) + 1
        problems.append({
            "key": spec_name(enc),
            "inputs": enc[0],
            "outputs": enc[1],
            "allowed_white": len(enc[3]),
            "allowed_black": len(enc[4]),
            "orbit": orbit[enc],
            "verdict": klass,
            "detail": detail,
        })

    cross = (
        _cross_validate(CROSS_CHECKS, verdicts, delta, workers)
        if cross_validate else []
    )

    return {
        "spec": {
            "max_labels": max_labels,
            "max_inputs": max_inputs,
            "delta": delta,
            "ell": ell,
            "max_functions": max_functions,
            "raw_problems": raw,
            "canonical_problems": len(encodings),
            "max_problems": max_problems,
            "truncated": truncated,
            "cross_validate": cross_validate,
            # deliberately no worker count: the payload must be
            # byte-identical for any parallelism level
        },
        "problems": problems,
        "summary": {
            "verdicts": counts,
            "regions": {
                klass: [
                    {"kind": r.kind, "low": r.low, "high": r.high,
                     "source": r.source}
                    for r in regions_for_verdict(klass)
                ]
                for klass in sorted(counts)
            },
        },
        "cross_validation": cross,
    }


def census_json(**kwargs) -> str:
    """The census payload as canonical JSON (sorted keys, 2-space indent,
    trailing newline) — the byte-comparable artifact."""
    return json.dumps(run_census(**kwargs), sort_keys=True, indent=2) + "\n"


# ----------------------------------------------------------------------
# the landscape atlas
# ----------------------------------------------------------------------
def atlas_key(
    store: ResultStore,
    max_labels: int,
    max_inputs: int,
    delta: int,
    ell: int,
    max_functions: int,
) -> StoreKey:
    """The content address of one published landscape atlas — the
    enumeration bounds plus every decider parameter the verdicts depend
    on.  Shared with :mod:`repro.serve` (``atlas``), which reconstructs
    exactly this key to answer atlas queries.  Only **complete** atlases
    are stored under it (a truncated smoke atlas would shadow the real
    one)."""
    return store.key(
        "census-atlas", max_labels, max_inputs, delta, ell, max_functions,
    )


def run_atlas(
    max_labels: int = 2,
    delta: int = 2,
    max_inputs: int = 1,
    ell: int = 2,
    max_functions: int = 4096,
    workers: int = 1,
    max_problems: Optional[int] = None,
    store: object = None,
    resume: bool = False,
    stats_out: Optional[Dict[str, int]] = None,
    progress: bool = False,
) -> Dict:
    """The landscape atlas: every canonical black-white LCL of the
    bounded space mapped to its Figure-2 region — the paper's Figure 2,
    computed rather than drawn.

    Shares the full enumerate→decide pipeline (and therefore the store
    checkpoints, resume semantics, truncation and byte-identity
    contracts) with :func:`run_census`, but emits the publishable
    artifact: per problem the exact constraint sets as bit masks over
    the tuple-lex-ranked multiset list (``white_mask``/``black_mask`` —
    the compact lossless form), the orbit size, the verdict, and the
    verdict→Figure-2-region map; plus *landmarks* locating the named
    registry problems (:data:`repro.gap.problems.PROBLEMS`) inside the
    atlas.  When a ``store`` is given and the atlas is complete (not
    truncated), the payload is also published under :func:`atlas_key`
    for ``python -m repro.serve atlas``.
    """
    store = as_store(store)
    reporter = _ProgressReporter(progress)
    encodings, orbit, raw, truncated, decided_map = _decide_space(
        max_labels, delta, max_inputs, ell, max_functions, workers,
        max_problems, store, resume, stats_out, reporter,
    )

    problems: Dict[str, Dict] = {}
    counts: Dict[str, int] = {}
    raw_counts: Dict[str, int] = {}
    for enc in encodings:
        klass, _detail = decided_map[enc]
        counts[klass] = counts.get(klass, 0) + 1
        raw_counts[klass] = raw_counts.get(klass, 0) + orbit[enc]
        ctx = get_context(enc[0], enc[1], enc[2])
        key = spec_name(enc)
        if key in problems:  # pragma: no cover - 48-bit digest collision
            raise RuntimeError(f"atlas key collision: {key}")
        problems[key] = {
            "inputs": enc[0],
            "outputs": enc[1],
            "white_mask": ctx.mask_from_multisets(enc[3]),
            "black_mask": ctx.mask_from_multisets(enc[4]),
            "orbit": orbit[enc],
            "verdict": klass,
        }

    landmarks: Dict[str, Dict] = {}
    for name, factory in sorted(PROBLEMS.items()):
        problem = factory()
        if not within_bounds(problem, max_labels, max_inputs):
            continue  # outside the atlas bounds
        enc = canonical_encoding(spec_from_problem(problem, delta))
        key = spec_name(enc)
        if key not in problems:
            continue  # truncated smoke atlas that stopped before it
        landmarks[name] = {
            "key": key,
            "verdict": problems[key]["verdict"],
        }

    payload = {
        "atlas": {
            "max_labels": max_labels,
            "max_inputs": max_inputs,
            "delta": delta,
            "ell": ell,
            "max_functions": max_functions,
            "raw_problems": raw,
            "canonical_problems": len(encodings),
            # a budget that did not bite is normalized away: the stored
            # payload must be a pure function of the atlas key, which
            # does not (and must not) include the budget
            "max_problems": max_problems if truncated else None,
            "truncated": truncated,
            # deliberately no worker count: the payload must be
            # byte-identical for any parallelism level
        },
        "regions": {
            klass: {
                "problems": counts[klass],
                "raw_problems": raw_counts[klass],
                "figure2": [
                    {"kind": r.kind, "low": r.low, "high": r.high,
                     "source": r.source}
                    for r in regions_for_verdict(klass)
                ],
            }
            for klass in sorted(counts)
        },
        "landmarks": landmarks,
        "problems": problems,
    }
    if store is not None and not truncated:
        # lint: allow(STORE002) workers/progress/resume/stats plumbing cannot reach payload bytes (CI byte-compares workers 1 vs 4), the max_problems budget is normalized away above, and truncated atlases are never stored
        store.put(
            atlas_key(store, max_labels, max_inputs, delta, ell,
                      max_functions),
            payload,
        )
    return payload


def atlas_json(**kwargs) -> str:
    """The atlas payload as canonical JSON (sorted keys, 2-space indent,
    trailing newline) — the byte-comparable published artifact."""
    return json.dumps(run_atlas(**kwargs), sort_keys=True, indent=2) + "\n"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gap.census",
        description="Enumerate every small black-white LCL up to symmetry, "
        "decide each one's Theorem-7 node-averaged class in parallel, and "
        "cross-validate the verdicts against empirical family sweeps.",
    )
    parser.add_argument("--max-labels", type=int, default=2,
                        help="max |Sigma_out| to enumerate (default: 2)")
    parser.add_argument("--max-inputs", type=int, default=1,
                        help="max |Sigma_in| to enumerate (default: 1)")
    parser.add_argument("--delta", type=int, default=2,
                        help="degree bound of the tree universe (default: 2)")
    parser.add_argument("--ell", type=int, default=2,
                        help="compress path-length parameter (default: 2)")
    parser.add_argument("--max-functions", type=int, default=4096,
                        help="DFS candidate budget per problem "
                        "(default: 4096)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (default: 1)")
    parser.add_argument("--max-problems", type=int, default=None,
                        help="deterministically truncate the canonical "
                        "problem list (smoke runs on big spaces)")
    parser.add_argument("--no-cross-validate", action="store_true",
                        help="skip the empirical witness sweeps")
    parser.add_argument("--atlas", action="store_true",
                        help="emit the landscape-atlas payload (every "
                        "canonical problem mapped to its Figure-2 "
                        "region, with registry-problem landmarks) "
                        "instead of the full census; skips "
                        "cross-validation; with --store a complete "
                        "atlas is also published for "
                        "'python -m repro.serve atlas'")
    parser.add_argument("--progress", action="store_true",
                        help="periodic progress line on stderr "
                        "(enumerated / canonical / decided / "
                        "store-hits, elapsed); never written into the "
                        "JSON payload")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="content-addressed result store directory: "
                        "checkpoint every verdict the moment it is "
                        "decided (workers sharded by canonical-form "
                        "digest); the JSON payload is byte-identical "
                        "with or without a store")
    parser.add_argument("--resume", action="store_true",
                        help="reuse verdicts already checkpointed in "
                        "--store instead of recomputing them — a killed "
                        "census continues where it stopped")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write JSON here instead of stdout")
    args = parser.parse_args(argv)
    if args.resume and not args.store:
        parser.error("--resume requires --store")

    stats: Dict[str, int] = {}
    common = dict(
        max_labels=args.max_labels, delta=args.delta,
        max_inputs=args.max_inputs, ell=args.ell,
        max_functions=args.max_functions, workers=args.workers,
        max_problems=args.max_problems,
        store=args.store, resume=args.resume, stats_out=stats,
        progress=args.progress,
    )
    if args.atlas:
        text = atlas_json(**common)
    else:
        text = census_json(
            cross_validate=not args.no_cross_validate, **common,
        )
    if args.store:
        print(f"store: reused={stats['reused']} "
              f"computed={stats['computed']}", file=sys.stderr)
    payload = json.loads(text)
    if args.out:
        atomic_write_text(args.out, text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)

    if args.atlas:
        spec = payload["atlas"]
        counts = {k: v["problems"] for k, v in payload["regions"].items()}
        summary = (
            f"atlas: {spec['raw_problems']} problems -> "
            f"{spec['canonical_problems']} canonical; regions: "
            + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        )
        print(summary, file=sys.stderr)
        if args.store and spec["truncated"]:
            print("atlas: truncated smoke run NOT published to the store",
                  file=sys.stderr)
        return 0

    spec = payload["spec"]
    counts = payload["summary"]["verdicts"]
    summary = (
        f"census: {spec['raw_problems']} problems -> "
        f"{spec['canonical_problems']} canonical; verdicts: "
        + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    )
    print(summary, file=sys.stderr)
    disagreements = [
        c for c in payload["cross_validation"] if not c["agrees"]
    ]
    for c in payload["cross_validation"]:
        status = "ok" if c["agrees"] else "DISAGREES"
        print(
            f"cross-validation [{status}]: {c['problem']} verdict "
            f"{c['verdict']} vs measured {c['growth']} growth "
            f"({c['algorithm']} on {c['family']})",
            file=sys.stderr,
        )
    return 1 if disagreements else 0


if __name__ == "__main__":
    sys.exit(main())
