"""Content-addressed result store: the offline-build/online-query core.

Everything expensive in this repro is build-once/query-many — sweep
cells and census verdicts are pure functions of a handful of naming
values (family, size, seed, algorithm spec, canonical problem form).
:class:`ResultStore` turns those names into **content addresses** via
:func:`repro.parallel.stable_digest` and persists each result as one
small canonical-JSON file, so every pipeline that hits the store becomes
incremental: reruns read, only new work simulates, and a killed run
resumes from what it already decided.

Layout
------
::

    <root>/manifest.json                 # {"format": 1, "salt": "..."}
    <root>/objects/<kind>/ab/cd/<digest>.json

Entries fan out two hex levels below their *kind* (``sweep-unit``,
``census-verdict``, ...) so directories stay small at millions of
entries and ``stats()`` can count per kind without reading payloads.

Durability and invalidation
---------------------------
* Every write goes through :func:`atomic_write_text` — serialize fully,
  write to a same-directory temp file, ``fsync``, then ``os.replace``.
  A killed writer leaves the target either absent or complete, never
  truncated.
* Keys digest the store's ``salt`` (a code-version string) along with
  the naming parts, and the manifest records it: opening a store whose
  manifest carries a different salt drops the stale objects — a schema
  bump invalidates cleanly instead of serving wrong-shaped payloads.
* A corrupted or truncated entry (interrupted copy, disk fault) is
  **treated as a miss** — recomputed and rewritten, never served.

Reads go through a small in-process LRU of canonical-JSON texts, so a
hot key costs one ``json.loads`` and no disk I/O; the LRU stores text,
not objects, so callers can never alias or mutate a cached payload.

Payload purity
--------------
Store payloads must be pure functions of their key: no wall-clock
timestamps, hostnames or process ids (lint rule ``STORE001`` extends
``DET003``'s intent to persisted artifacts).  A payload that embedded
the time it was computed would break the byte-identity contract between
cold and warm runs.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from collections import OrderedDict
from typing import Dict, NamedTuple, Optional, Union

from ..parallel import stable_digest

__all__ = [
    "CODE_SALT",
    "StoreKey",
    "ResultStore",
    "as_store",
    "canonical_json",
    "atomic_write_text",
    "atomic_write_json",
]

#: The code-version salt baked into every key digest and recorded in the
#: store manifest.  Bump it whenever a payload schema or the semantics
#: of a keyed computation change: old entries then never hit (the salt
#: is part of the digest) and are dropped on the next open (the manifest
#: no longer matches).
CODE_SALT = "store-v1"

#: on-disk wrapper format version (independent of the salt: the salt
#: names *payload* semantics, the format names the wrapper envelope)
_FORMAT = 1


class StoreKey(NamedTuple):
    """A content address: the entry's kind plus its hex digest."""

    kind: str
    digest: str


def canonical_json(payload: object) -> str:
    """Canonical JSON text (sorted keys, 2-space indent, trailing
    newline) — the byte-comparable serialization used everywhere a
    payload is persisted or compared."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def atomic_write_text(path: Union[str, os.PathLike], text: str) -> None:
    """Write ``text`` to ``path`` atomically.

    The text is written to a temp file in the target's directory,
    flushed and fsynced, then moved into place with ``os.replace`` —
    the only step that touches ``path``, and it is atomic on POSIX.  A
    writer killed at any point leaves the target either absent, or the
    previous complete version, or the new complete version; never a
    truncated hybrid.  On failure the temp file is removed.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".part")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: Union[str, os.PathLike], payload: object) -> str:
    """Serialize ``payload`` as canonical JSON and write it atomically;
    returns the written text (for callers that also emit it)."""
    text = canonical_json(payload)
    atomic_write_text(path, text)
    return text


class ResultStore:
    """A sharded on-disk content-addressed store with an in-process LRU.

    Parameters
    ----------
    root:
        Store directory (created if missing).
    salt:
        Code-version salt; part of every key digest and recorded in the
        manifest.  Opening a store written under a different salt drops
        the stale objects (see :data:`CODE_SALT`).
    lru_size:
        Entries kept in the in-process read cache (canonical-JSON
        texts, keyed by :class:`StoreKey`).
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        salt: str = CODE_SALT,
        lru_size: int = 4096,
    ) -> None:
        if lru_size < 1:
            raise ValueError("lru_size must be >= 1")
        self.root = os.path.abspath(os.fspath(root))
        self.salt = str(salt)
        self.lru_size = lru_size
        self._lru: "OrderedDict[StoreKey, str]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0
        os.makedirs(self.objects_root, exist_ok=True)
        self._reconcile_manifest()

    # ------------------------------------------------------------------
    @property
    def objects_root(self) -> str:
        return os.path.join(self.root, "objects")

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, "manifest.json")

    def _reconcile_manifest(self) -> None:
        """Adopt the store, dropping entries written under another salt
        or wrapper format (their keys can never be requested again —
        the salt is inside the digest — so they are dead weight)."""
        manifest: Optional[Dict] = None
        try:
            with open(self.manifest_path, encoding="utf-8") as fh:
                loaded = json.load(fh)
            if isinstance(loaded, dict):
                manifest = loaded
        except (OSError, ValueError):
            manifest = None
        if (manifest is not None and manifest.get("format") == _FORMAT
                and manifest.get("salt") == self.salt):
            return
        if os.listdir(self.objects_root):
            shutil.rmtree(self.objects_root)
            os.makedirs(self.objects_root, exist_ok=True)
        atomic_write_json(
            self.manifest_path, {"format": _FORMAT, "salt": self.salt}
        )

    # ------------------------------------------------------------------
    def key(self, kind: str, *parts: object) -> StoreKey:
        """The content address of ``parts`` under ``kind``.

        The digest covers the salt, the kind and every part (rendered
        through :func:`repro.parallel.stable_digest`, so it is stable
        across processes and ``PYTHONHASHSEED`` values).
        """
        if not kind or "/" in kind or kind.startswith("."):
            raise ValueError(f"invalid store kind {kind!r}")
        return StoreKey(
            kind, stable_digest("repro-store", self.salt, kind, *parts,
                                size=16)
        )

    def path_for(self, key: StoreKey) -> str:
        d = key.digest
        return os.path.join(self.objects_root, key.kind, d[:2], d[2:4],
                            f"{d}.json")

    # ------------------------------------------------------------------
    def get(self, key: StoreKey) -> Optional[object]:
        """The payload stored under ``key``, or ``None`` on a miss.

        A corrupted / truncated / mis-keyed entry counts as a miss (and
        bumps the ``corrupt`` counter) — it is never served, and the
        next :meth:`put` rewrites it.
        """
        text = self._lru.get(key)
        from_disk = text is None
        if from_disk:
            try:
                with open(self.path_for(key), encoding="utf-8") as fh:
                    text = fh.read()
            except OSError:
                self.misses += 1
                return None
        else:
            self._lru.move_to_end(key)
        payload = self._unwrap(text, key)
        if payload is _CORRUPT:
            self._lru.pop(key, None)
            self.corrupt += 1
            self.misses += 1
            return None
        if from_disk:
            self._remember(key, text)
        self.hits += 1
        return payload

    def put(self, key: StoreKey, payload: object) -> StoreKey:
        """Persist ``payload`` under ``key`` (atomic write-to-temp +
        ``os.replace``; concurrent writers of the same key are safe —
        last complete write wins, readers never see a partial file)."""
        text = canonical_json({
            "format": _FORMAT,
            "kind": key.kind,
            "key": key.digest,
            "payload": payload,
        })
        atomic_write_text(self.path_for(key), text)
        self._remember(key, text)
        self.puts += 1
        return key

    def __contains__(self, key: StoreKey) -> bool:
        return key in self._lru or os.path.exists(self.path_for(key))

    # ------------------------------------------------------------------
    @staticmethod
    def _unwrap(text: str, key: StoreKey) -> object:
        try:
            wrapper = json.loads(text)
        except ValueError:
            return _CORRUPT
        if (not isinstance(wrapper, dict)
                or wrapper.get("format") != _FORMAT
                or wrapper.get("kind") != key.kind
                or wrapper.get("key") != key.digest
                or "payload" not in wrapper):
            return _CORRUPT
        return wrapper["payload"]

    def _remember(self, key: StoreKey, text: str) -> None:
        self._lru[key] = text
        self._lru.move_to_end(key)
        while len(self._lru) > self.lru_size:
            self._lru.popitem(last=False)

    # ------------------------------------------------------------------
    def entry_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-kind ``{"entries": ..., "bytes": ...}`` from a sorted
        walk of the on-disk layout (no payload is read)."""
        kinds: Dict[str, Dict[str, int]] = {}
        for kind in sorted(os.listdir(self.objects_root)):
            kind_dir = os.path.join(self.objects_root, kind)
            if not os.path.isdir(kind_dir):
                continue
            entries = 0
            size = 0
            for dirpath, dirnames, filenames in os.walk(kind_dir):
                dirnames.sort()
                for fname in sorted(filenames):
                    if not fname.endswith(".json"):
                        continue
                    entries += 1
                    try:
                        size += os.path.getsize(os.path.join(dirpath, fname))
                    except OSError:
                        pass
            kinds[kind] = {"entries": entries, "bytes": size}
        return kinds

    def __len__(self) -> int:
        return sum(k["entries"] for k in self.entry_counts().values())

    def stats(self) -> Dict:
        """Introspection payload: in-process counters plus the on-disk
        footprint (this is *reporting* output, not a store payload — it
        may name the root path)."""
        kinds = self.entry_counts()
        return {
            "root": self.root,
            "salt": self.salt,
            "format": _FORMAT,
            "counters": {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "corrupt": self.corrupt,
            },
            "entries": sum(k["entries"] for k in kinds.values()),
            "bytes": sum(k["bytes"] for k in kinds.values()),
            "kinds": kinds,
        }

    def reset_counters(self) -> None:
        self.hits = self.misses = self.puts = self.corrupt = 0


#: sentinel distinguishing "corrupt entry" from a legitimate None payload
_CORRUPT = object()


def as_store(
    store: Union[None, str, os.PathLike, ResultStore],
) -> Optional[ResultStore]:
    """Coerce a ``store=`` argument: ``None`` passes through, a path
    opens a :class:`ResultStore` there, an existing store is returned
    as-is — the one conversion every store-aware entry point shares."""
    if store is None or isinstance(store, ResultStore):
        return store
    return ResultStore(store)
