"""Content-addressed result store (see :mod:`repro.store.cas`).

The package namespace re-exports the whole public surface so callers
write ``from repro.store import ResultStore, atomic_write_json``.
"""

from .cas import (
    CODE_SALT,
    ResultStore,
    StoreKey,
    as_store,
    atomic_write_json,
    atomic_write_text,
    canonical_json,
)

__all__ = [
    "CODE_SALT",
    "ResultStore",
    "StoreKey",
    "as_store",
    "atomic_write_json",
    "atomic_write_text",
    "canonical_json",
]
