"""Zero-copy graph sharing for parallel sweeps.

The pickling path rebuilds every instance inside every worker task (the
task carries only ``(family, n, seed, index)`` digests and the worker
re-derives the graph).  At n=10^6 the rebuild dominates the task, so
:class:`SharedGraphPool` publishes each instance **once**: the CSR arrays
(``indptr``, ``indices``) and a coded copy of the node inputs are laid
out in a single :mod:`multiprocessing.shared_memory` segment, and workers
attach zero-copy views via :meth:`repro.local.graph.Graph.from_csr_buffers`
instead of rebuilding.

Protocol (see ``docs/engine-contract.md``):

1. the parent builds the instance and calls :meth:`SharedGraphPool.publish`
   under a stable digest key — one segment per graph, layout
   ``[indptr | indices | input codes]``;
2. the tiny picklable :class:`GraphSpec` tuples travel to the pool through
   ``fork_map``'s ``initializer``/``initargs`` hook
   (:func:`worker_attach_specs`);
3. workers resolve graphs lazily by key through :func:`shared_graph`,
   caching one attachment per process; a miss returns ``None`` and the
   caller falls back to the rebuild path, so shared memory is always an
   optimisation and never a semantic switch — JSON aggregates stay
   byte-identical with it on or off, at any worker count;
4. the parent owns the segments: :meth:`SharedGraphPool.close` (or the
   context manager) unlinks everything after the map returns.

Workers immediately unregister their attachments from the
``resource_tracker`` — Python 3.11 registers attached segments as if the
attacher owned them, which would otherwise unlink segments out from
under sibling workers and spam leak warnings at pool shutdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .local.graph import Graph

__all__ = [
    "GraphSpec",
    "SharedGraphPool",
    "attach_graph",
    "worker_attach_specs",
    "worker_detach",
    "shared_graph",
]

_ITEM = 8  # int64 bytes

#: the input section codes labels as uint8 indices into the spec's
#: alphabet — larger alphabets fall back to the rebuild path
MAX_ALPHABET = 256


@dataclass(frozen=True)
class GraphSpec:
    """Everything a worker needs to attach one published graph: the pool
    key, the OS-level segment name, the CSR shape and the (small) input
    alphabet.  Pickles in tens of bytes regardless of graph size."""

    key: str
    shm_name: str
    n: int
    m: int
    alphabet: Optional[Tuple[object, ...]]  # None -> every input is None

    def nbytes(self) -> int:
        base = _ITEM * (self.n + 1) + _ITEM * 2 * self.m
        return base + (self.n if self.alphabet is not None else 0)


class _CodedInputs:
    """Read-only sequence decoding uint8 input codes through a small
    alphabet on access — attaching never materializes an n-element label
    list."""

    __slots__ = ("_codes", "_alphabet")

    def __init__(self, codes, alphabet: Tuple[object, ...]) -> None:
        self._codes = codes
        self._alphabet = alphabet

    def __len__(self) -> int:
        return len(self._codes)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [self._alphabet[c] for c in self._codes[item]]
        return self._alphabet[self._codes[item]]

    def __iter__(self):
        alphabet = self._alphabet
        for c in self._codes:
            yield alphabet[c]


def _encode_inputs(inputs: Sequence) -> Tuple[Optional[Tuple[object, ...]], bytes]:
    """(alphabet, uint8 codes) for ``inputs``; ``(None, b"")`` when every
    label is ``None``.  Raises ``ValueError`` past :data:`MAX_ALPHABET`."""
    alphabet: List[object] = []
    index: Dict[object, int] = {}
    codes = bytearray(len(inputs))
    uniform_none = True
    for i, label in enumerate(inputs):
        if label is not None:
            uniform_none = False
        code = index.get(label)
        if code is None:
            code = len(alphabet)
            if code >= MAX_ALPHABET:
                raise ValueError(
                    f"input alphabet exceeds {MAX_ALPHABET} distinct labels"
                )
            index[label] = code
            alphabet.append(label)
        codes[i] = code
    if uniform_none:
        return None, b""
    return tuple(alphabet), bytes(codes)


def attach_graph(spec: GraphSpec, shm: shared_memory.SharedMemory) -> Graph:
    """Zero-copy :class:`Graph` over an already-opened segment.

    The whole segment is sealed read-only before slicing, so the CSR
    views *and* the coded-input bytes all reject stores (SHM001): an
    attached segment is concurrently mapped by every sibling worker, and
    a write here would race all of them.  Only the publishing parent
    (``SharedGraphPool.publish``) writes, before any worker attaches.
    """
    a = _ITEM * (spec.n + 1)
    b = a + _ITEM * 2 * spec.m
    buf = shm.buf.toreadonly()
    if spec.alphabet is None:
        return Graph.from_csr_buffers(spec.n, spec.m, buf[:a], buf[a:b])
    inputs = _CodedInputs(buf[b:b + spec.n], spec.alphabet)
    return Graph.from_csr_buffers(
        spec.n, spec.m, buf[:a], buf[a:b], inputs, copy_inputs=False
    )


class SharedGraphPool:
    """Parent-side registry of published graphs.

    ``publish`` is idempotent per key; ``specs()`` is what goes into
    ``fork_map(initializer=worker_attach_specs, initargs=(specs,))``;
    ``graph(key)`` serves the parent's own in-process lookups (the
    ``workers=1`` path attaches nothing).  Always ``close()`` (or use as
    a context manager) — segments outlive the process otherwise.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, GraphSpec] = {}
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._graphs: Dict[str, Graph] = {}

    def __enter__(self) -> "SharedGraphPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._specs)

    def publish(self, key: str, graph: Graph) -> GraphSpec:
        if key in self._specs:
            return self._specs[key]
        indptr, indices = graph.adjacency()
        alphabet, codes = _encode_inputs(graph.inputs())
        spec = GraphSpec(key, "", graph.n, graph.m, alphabet)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, spec.nbytes())
        )
        spec = GraphSpec(key, shm.name, graph.n, graph.m, alphabet)
        a = _ITEM * (graph.n + 1)
        b = a + _ITEM * 2 * graph.m
        shm.buf[:a] = memoryview(indptr).cast("B")
        shm.buf[a:b] = memoryview(indices).cast("B")
        if alphabet is not None:
            shm.buf[b:b + graph.n] = codes
        self._specs[key] = spec
        self._segments[key] = shm
        self._graphs[key] = graph
        return spec

    def specs(self) -> Tuple[GraphSpec, ...]:
        return tuple(self._specs.values())

    def graph(self, key: str) -> Optional[Graph]:
        return self._graphs.get(key)

    def close(self) -> None:
        """Drop every published segment (close + unlink)."""
        self._graphs.clear()
        worker_detach()  # in-process attaches alias our segments
        for shm in self._segments.values():
            try:
                shm.close()
            except BufferError:  # a caller still holds an attached view
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._specs.clear()


# ----------------------------------------------------------------------
# worker side: spec registry + lazy cached attachments
# ----------------------------------------------------------------------
_WORKER_SPECS: Dict[str, GraphSpec] = {}
_WORKER_GRAPHS: Dict[str, Graph] = {}
_WORKER_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}
# segments whose views a caller still held at detach time — parked here
# so their __del__ never fires against exported buffers
_ZOMBIE_SEGMENTS: List[shared_memory.SharedMemory] = []


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach without registering with the resource tracker.

    Python 3.11 has no ``SharedMemory(track=False)``: attaching registers
    the segment as if the attacher owned it, and because the tracker's
    cache is a set, concurrent register/unregister pairs from sibling
    workers interleave into spurious unlinks and KeyError spam at pool
    shutdown.  Only the publishing parent should track (and unlink) a
    segment, so the attach temporarily no-ops ``register``.
    """
    saved = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = saved  # type: ignore[assignment]


def worker_attach_specs(specs: Iterable[GraphSpec]) -> None:
    """``fork_map`` initializer: record which graphs this executor may
    attach.  Attachment itself is lazy (first :func:`shared_graph` hit)."""
    worker_detach()
    for spec in specs:
        _WORKER_SPECS[spec.key] = spec


def worker_detach() -> None:
    """Teardown twin of :func:`worker_attach_specs` — drops cached
    attachments and the spec registry (pool workers also get this for
    free at process exit)."""
    _WORKER_SPECS.clear()
    _WORKER_GRAPHS.clear()  # graphs die first, releasing exported views
    for shm in _WORKER_SEGMENTS.values():
        try:
            shm.close()
        except BufferError:  # pragma: no cover - caller kept a graph
            _ZOMBIE_SEGMENTS.append(shm)
    _WORKER_SEGMENTS.clear()


def shared_graph(key: str) -> Optional[Graph]:
    """The graph published under ``key``, or ``None`` when this executor
    was not initialized with it (callers then rebuild — the fallback and
    shared paths are observationally identical)."""
    graph = _WORKER_GRAPHS.get(key)
    if graph is not None:
        return graph
    spec = _WORKER_SPECS.get(key)
    if spec is None:
        return None
    shm = _attach_untracked(spec.shm_name)
    graph = attach_graph(spec, shm)
    _WORKER_GRAPHS[key] = graph
    _WORKER_SEGMENTS[key] = shm
    return graph
