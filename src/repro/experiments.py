"""Command-line experiment index.

Lists the E1..E18 experiments and how to regenerate each table::

    python -m repro.experiments            # list everything
    python -m repro.experiments e04        # show a recorded table

Tables are produced by ``pytest benchmarks/ --benchmark-only`` and stored
under ``benchmarks/results/``; this module is a convenience viewer that
also works from an installed package checkout.

``--dump-index PATH`` writes the experiment index (plus which recorded
tables currently exist) as canonical JSON — atomically, through
:func:`repro.store.atomic_write_json`, like every persisted artifact in
this repo.  For stored sweep/census results, query
``python -m repro.serve`` instead.
"""

from __future__ import annotations

import os
import sys
from typing import Dict

EXPERIMENTS: Dict[str, str] = {
    "e01": "Figures 1/2 — landscape regions and density witnesses",
    "e02": "Theorem 11 — 3.5-coloring node-averaged Theta((log* n)^(1/2^(k-1)))",
    "e03": "Corollary 10 — 3.5-coloring worst case Theta(log* n)",
    "e04": "Theorems 2/3 — Pi^2.5 node-averaged Theta(n^alpha1)",
    "e05": "Theorems 4/5 — Pi^3.5 node-averaged bounds",
    "e06": "Theorem 1 — density in the polynomial regime",
    "e07": "Theorem 6 / Lemma 62 — density in the log* regime",
    "e08": "Lemma 23 / Cor. 24 — weight-tree efficiency w^x",
    "e09": "Lemma 40 — |U_Copy| <= 6|U|^x",
    "e10": "Lemmas 65/68/69 — weight-augmented 2.5, x = 1 anchor",
    "e11": "Theorem 7 — gap decider verdicts",
    "e12": "Corollary 60 — the omega(sqrt n)..o(n) gap",
    "e13": "Lemma 16 [Feu17] — paths: averaged == worst",
    "e14": "Lemma 13 — phase survivor decay",
    "e15": "Lemma 72 — decomposition layer counts",
    "e16": "Corollaries 47/49 — fast d-free solver O(1) averaged",
    "e17": "Lemma 32 — minimax gamma ablation",
    "e18": "[BBK+23b] — unweighted 2.5 anchor (x = 0)",
}


def _results_candidates() -> list:
    """Recorded-table locations, in preference order: the repo-checkout
    layout (three levels above this module) and, for installed packages
    — where that path points into ``site-packages`` — the current
    working directory."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    return [
        os.path.join(here, "benchmarks", "results"),
        os.path.join(os.getcwd(), "benchmarks", "results"),
    ]


def results_dir() -> str:
    candidates = _results_candidates()
    for candidate in candidates:
        if os.path.isdir(candidate):
            return candidate
    return candidates[0]


def dump_index(path: str) -> Dict:
    """Write the experiment index as canonical JSON (atomically) and
    return the payload: every experiment id/description plus the
    recorded-table files that currently exist for it."""
    from .store import atomic_write_json

    rdir = results_dir()
    recorded = sorted(os.listdir(rdir)) if os.path.isdir(rdir) else []
    payload = {
        "experiments": [
            {
                "id": key,
                "description": desc,
                "recorded": sorted(
                    f for f in recorded if f.startswith(key)
                ),
            }
            for key, desc in EXPERIMENTS.items()
        ],
    }
    atomic_write_json(path, payload)
    return payload


def main(argv) -> int:
    if len(argv) >= 3 and argv[1] == "--dump-index":
        payload = dump_index(argv[2])
        print(f"wrote {argv[2]}: {len(payload['experiments'])} experiments")
        return 0
    if len(argv) < 2:
        print("Experiments (regenerate with: pytest benchmarks/ --benchmark-only)\n")
        for key, desc in EXPERIMENTS.items():
            print(f"  {key}  {desc}")
        print("\nView a recorded table: python -m repro.experiments e04")
        return 0
    key = argv[1].lower()
    if key not in EXPERIMENTS:
        print(f"unknown experiment {key!r}; known: {', '.join(EXPERIMENTS)}")
        return 1
    rdir = results_dir()
    shown = False
    if os.path.isdir(rdir):
        for fname in sorted(os.listdir(rdir)):
            if fname.startswith(key):
                with open(os.path.join(rdir, fname)) as fh:
                    print(fh.read())
                shown = True
    else:
        looked = " or ".join(_results_candidates())
        print(
            f"no benchmarks/results directory found (looked in {looked}); "
            f"run from a repo checkout or from a directory holding the "
            f"recorded tables"
        )
    if not shown:
        print(
            f"no recorded table for {key}; run "
            f"pytest benchmarks/bench_{key}_*.py --benchmark-only first"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
