"""LCL problem formalism and the paper's problem families."""

from .dfree import DFreeWeightProblem, count_copies
from .hierarchical import (
    B,
    COLORS_2,
    COLORS_3,
    Coloring25,
    Coloring35,
    D,
    E,
    G,
    HierarchicalColoring,
    R,
    W,
    Y,
    valid_coloring25,
)
from .blackwhite import BlackWhiteLCL, two_color_tree
from .labeling import (
    HierarchicalLabeling,
    SECONDARY_DECLINE,
    WeightAugmented25,
    compress_label,
    is_compress,
    is_rake,
    label_order,
    rake_label,
)
from .kernel import CompiledChecker, Verifier, compile_checker
from .levels import compute_levels, level_paths, nodes_of_level
from .problem import LCLProblem, LCLResult, Violation
from .proper import ProperColoring
from .weighted import (
    ACTIVE,
    CONNECT,
    COPY,
    DECLINE,
    WEIGHT,
    Weighted25,
    Weighted35,
    WeightedColoring,
    connect,
    copy_of,
    decline,
)

__all__ = [
    "DFreeWeightProblem",
    "count_copies",
    "B", "COLORS_2", "COLORS_3", "Coloring25", "Coloring35",
    "D", "E", "G", "HierarchicalColoring", "R", "W", "Y",
    "valid_coloring25",
    "BlackWhiteLCL", "two_color_tree",
    "HierarchicalLabeling", "SECONDARY_DECLINE", "WeightAugmented25",
    "compress_label", "is_compress", "is_rake", "label_order", "rake_label",
    "CompiledChecker", "Verifier", "compile_checker",
    "compute_levels", "level_paths", "nodes_of_level",
    "LCLProblem", "LCLResult", "Violation",
    "ProperColoring",
    "ACTIVE", "CONNECT", "COPY", "DECLINE", "WEIGHT",
    "Weighted25", "Weighted35", "WeightedColoring",
    "connect", "copy_of", "decline",
]
