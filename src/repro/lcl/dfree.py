"""The d-free weight problem (Section 7).

The subproblem the weight nodes of ``Pi^Z_{Delta,d,k}`` must solve.  Inputs
``A`` (adjacent — the weight nodes touching an active node) and ``W``
(weight); outputs ``Decline | Connect | Copy``.  Correctness:

1. an ``A``-node outputting ``Connect`` has >= 1 neighbour outputting
   ``Connect``; a ``W``-node outputting ``Connect`` has >= 2;
2. a ``Copy`` node has at most ``d`` neighbours outputting ``Decline``;
3. every ``A``-node outputs ``Connect`` or ``Copy``.

Quality of a solution is measured by how *few* nodes output ``Copy`` —
Lemma 23 lower-bounds this by ``w^x`` per attached tree with
``x = log(Delta-1-d)/log(Delta-1)``, and Lemma 40 shows Algorithm A gets
within a factor 6 of that.

``verify`` runs through the compiled CSR kernel
(:class:`repro.lcl.kernel.CompiledDFree`, which lowers the neighbour
tallies to ``bytes.count`` over a flat gather); ``check_node`` below is
the reference oracle.
"""

from __future__ import annotations

from typing import List, Sequence

from ..local.graph import Graph
from .problem import LCLProblem, Violation

__all__ = ["A_INPUT", "W_INPUT", "DFreeWeightProblem", "count_copies"]

A_INPUT = "A"
W_INPUT = "W"
DECLINE = "Decline"
CONNECT = "Connect"
COPY = "Copy"


class DFreeWeightProblem(LCLProblem):
    """The d-free weight problem; checkability radius 1."""

    radius = 1

    def __init__(self, delta: int, d: int) -> None:
        if not (1 <= d < delta) or delta < 3:
            raise ValueError("need 1 <= d < delta and delta >= 3")
        self.delta = delta
        self.d = d
        self.sigma_in = frozenset({A_INPUT, W_INPUT})
        self.sigma_out = frozenset({DECLINE, CONNECT, COPY})
        self.name = f"{d}-free weight problem (delta={delta})"

    def check_node(self, graph: Graph, outputs: Sequence, v: int) -> List[Violation]:
        bad: List[Violation] = []
        out = outputs[v]
        inp = graph.input_of(v)
        nbrs = graph.neighbors(v)

        if inp not in (A_INPUT, W_INPUT):
            bad.append(Violation(v, "input alphabet", repr(inp)))
            return bad

        if out == CONNECT:
            connected = sum(1 for w in nbrs if outputs[w] == CONNECT)
            need = 1 if inp == A_INPUT else 2
            if connected < need:
                bad.append(
                    Violation(v, "P1: Connect support",
                              f"input {inp}: {connected} < {need}")
                )
        if out == COPY:
            declines = sum(1 for w in nbrs if outputs[w] == DECLINE)
            if declines > self.d:
                bad.append(
                    Violation(v, "P2: Copy with too many Declines",
                              f"{declines} > d={self.d}")
                )
        if inp == A_INPUT and out == DECLINE:
            bad.append(Violation(v, "P3: A-node must output Connect or Copy"))
        return bad


def count_copies(outputs: Sequence) -> int:
    """Number of nodes outputting ``Copy`` (the quality measure)."""
    return sum(1 for o in outputs if o == COPY)
