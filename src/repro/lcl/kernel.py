"""Unified CSR verification kernel for every LCL checker.

An LCL constraint is a finite table over bounded-radius neighbourhoods
(Naor-Stockmeyer), so *checking* a labeling never needs the per-node
Python object traversals the legacy ``check_node`` methods perform: every
checker in :mod:`repro.lcl` lowers to

1. an **interning** step — outputs (and inputs) are mapped to small
   integer codes, one equality-based dict lookup per node, which doubles
   as the alphabet-membership check;
2. a per-graph **compile** step — anything that depends only on the
   instance (levels from :func:`repro.lcl.levels.compute_levels`, the
   active/weight partition, CSR edge ids) is computed once and cached;
3. a single **flat-array pass** over the graph's CSR ``indptr`` /
   ``indices`` arrays comparing integer codes against precomputed
   constraint tables.

:class:`CompiledChecker` is the base of that pipeline and the canonical
implementation of the :class:`Verifier` protocol::

    verify(graph, outputs, early_exit=False)        -> LCLResult
    verify_batch(graph, outputs_list, early_exit=False) -> [LCLResult]

``verify_batch`` amortizes step 2 across the many labelings one topology
produces (exactly the shape ``LocalSimulator.run_batch`` emits: one graph,
many ID samples); ``early_exit`` stops at the first violation instead of
materializing O(n) :class:`~repro.lcl.problem.Violation` objects on badly
invalid labelings — the sweep hot path uses both.

Every compiled scan mirrors its legacy checker *exactly*: same staged
short-circuits (alphabet violations suppress constraint checks), same
rule strings, same violating node sets.  The legacy per-node paths remain
available as ``verify_reference`` — the oracle the differential tests in
``tests/test_checker_kernel.py`` compare against.  Use
:func:`compile_checker` to lower a problem explicitly, or just call
``problem.verify`` — the ported problems route through the kernel and
fall back to the reference path for unknown subclasses.
"""

from __future__ import annotations

from itertools import repeat
from operator import itemgetter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

try:  # Protocol is typing-only; keep a runtime fallback for exotic setups
    from typing import Protocol
except ImportError:  # pragma: no cover - python < 3.8
    Protocol = object  # type: ignore[assignment]

from ..local.graph import Graph
from .problem import LCLResult, Violation

__all__ = [
    "Verifier",
    "CompiledChecker",
    "compile_checker",
    "CompiledHierarchicalColoring",
    "CompiledDFree",
    "CompiledWeightedColoring",
    "CompiledHierarchicalLabeling",
    "CompiledWeightAugmented25",
    "CompiledProperColoring",
    "CompiledBlackWhite",
]


class Verifier(Protocol):
    """What the sweep layer (and anything else that checks labelings)
    programs against.

    ``verify`` checks one labeling; ``verify_batch`` checks many labelings
    of the *same* graph, sharing the per-graph compile work (levels,
    interners, edge tables) across the batch.  With ``early_exit`` the
    returned :class:`LCLResult` carries at most one violation and the
    scan stops as soon as the verdict is known to be invalid; without it
    the violation list is complete.  Both :class:`CompiledChecker` and the
    ported :class:`~repro.lcl.problem.LCLProblem` classes satisfy this.
    """

    def verify(
        self, graph: Graph, outputs: Sequence, early_exit: bool = False
    ) -> LCLResult:
        ...

    def verify_batch(
        self,
        graph: Graph,
        outputs_list: Sequence[Sequence],
        early_exit: bool = False,
    ) -> List[LCLResult]:
        ...


class CompiledChecker:
    """Base class: per-graph compile cache + the verify entry points.

    Subclasses implement ``_compile_graph(graph) -> instance-data`` and
    ``_scan(graph, inst, outputs, early_exit) -> [Violation]``.  The
    compile cache keys on graph *identity* (graphs are immutable), keeping
    only the most recent graph — the access pattern everywhere in this
    codebase is "many labelings of one graph, then the next graph".
    """

    def __init__(self, problem) -> None:
        self.problem = problem
        self._cache: Optional[Tuple[Graph, object]] = None

    # -- compile -------------------------------------------------------
    def _instance(self, graph: Graph):
        cached = self._cache
        if cached is not None and cached[0] is graph:
            return cached[1]
        inst = self._compile_graph(graph)
        self._cache = (graph, inst)
        return inst

    def _compile_graph(self, graph: Graph):
        raise NotImplementedError

    def _scan(self, graph, inst, outputs, early_exit) -> List[Violation]:
        raise NotImplementedError

    # -- entry points --------------------------------------------------
    def verify(
        self, graph: Graph, outputs: Sequence, early_exit: bool = False
    ) -> LCLResult:
        if len(outputs) != graph.n:
            raise ValueError("outputs length must equal graph.n")
        return LCLResult(
            self._scan(graph, self._instance(graph), outputs, early_exit)
        )

    def verify_batch(
        self,
        graph: Graph,
        outputs_list: Sequence[Sequence],
        early_exit: bool = False,
    ) -> List[LCLResult]:
        inst = self._instance(graph)
        results = []
        for outputs in outputs_list:
            if len(outputs) != graph.n:
                raise ValueError("outputs length must equal graph.n")
            results.append(
                LCLResult(self._scan(graph, inst, outputs, early_exit))
            )
        return results


# ----------------------------------------------------------------------
# hierarchical 2.5 / 3.5 coloring
# ----------------------------------------------------------------------
# color codes: W/B/E contiguous so "colored" (W|B|E) tests are `code <= 2`
_W, _B, _E, _D, _R, _G, _Y = range(7)
_COLOR_LABELS = ("W", "B", "E", "D", "R", "G", "Y")
_COLOR_CODES = {label: code for code, label in enumerate(_COLOR_LABELS)}

# action-table bits: which work a (level, label) combination requires
_ACT_LOWER = 1   # E-iff: scan lower-level neighbours
_ACT_SAME = 2    # W/B (or level-k RGY in 3.5): scan same-level neighbours
_ACT_STATIC = 4  # emit precomputed level/label violations

# byte-translate table for the constraint-free fast path: every node of
# level >= 2 is scanned; level-1 nodes defer to the per-problem label mask
# (derived from the action table's level-1 row in _label_mask)
_LV_NEEDS_WORK = bytes(1 if x >= 2 else 0 for x in range(256))


def _label_mask(action) -> bytes:
    """Byte-translate table flagging labels with level-1 constraints."""
    return bytes(
        1 if (x < 7 and action[7 + x]) or x >= 7 else 0 for x in range(256)
    )


def _build_color_tables(k: int, three5: bool):
    """Lower the Definition 8/9 per-node constraints to flat tables.

    ``action[lv * 7 + lab]`` says what a node of level ``lv`` with label
    ``lab`` needs (bit mask of ``_ACT_*``); ``static[lv * 7 + lab]`` holds
    the neighbour-independent violations as prebuilt ``(rule, detail)``
    pairs.  Level 0 rows stay empty: in the weighted problems level 0
    marks nodes outside the active-restricted peeling, which this scan
    never visits.
    """
    color_limit = k - 1 if three5 else k
    size = (k + 2) * 7
    action = [0] * size
    static: List[Tuple] = [()] * size
    for lv in range(1, k + 2):
        for lab in range(7):
            label = _COLOR_LABELS[lab]
            sts = []
            if lv == 1 and lab == _E:
                sts.append(("level-1 node labeled E", ""))
            if lv == k + 1 and lab != _E:
                sts.append(("level-(k+1) node not labeled E", f"got {label}"))
            if lab <= _B and (lv > color_limit or lv > k):
                sts.append((f"{label} not allowed at level {lv}", ""))
            if lv == k:
                if three5:
                    if lab == _D or lab <= _B:
                        sts.append((f"level-k node labeled {label} (3.5)", ""))
                elif lab == _D:
                    sts.append(("level-k node labeled D", ""))
            if lab >= _R and (not three5 or lv != k):
                sts.append((f"label {label} not allowed at level {lv}", ""))
            act = 0
            if 2 <= lv <= k:
                act |= _ACT_LOWER
            if lab <= _B or (three5 and lv == k and lab >= _R):
                act |= _ACT_SAME
            if sts:
                act |= _ACT_STATIC
            action[lv * 7 + lab] = act
            static[lv * 7 + lab] = tuple(sts)
    return action, static


def _scan_colored_nodes(
    nodes,
    code,
    levels,
    action,
    static,
    indptr,
    indices,
    outputs,
    bad,
    early_exit,
):
    """The Definition 8/9 per-node constraints over interned codes.

    Shared by the pure hierarchical checker (``nodes`` = the nodes the
    fast-path mask flagged) and the weighted checkers (``nodes`` = active
    nodes, weight neighbours carry level 0 and are transparently skipped
    by the ``0 < level`` / ``level == lv`` filters, exactly as in the
    reference ``check_node_with_levels``).  Returns True when early_exit
    tripped.
    """
    append = bad.append
    for v in nodes:
        lab = code[v]
        lv = levels[v]
        act = action[lv * 7 + lab]
        if not act:
            continue
        if act & _ACT_STATIC:
            for rule, detail in static[lv * 7 + lab]:
                append(Violation(v, rule, detail))
        if act & (_ACT_LOWER | _ACT_SAME):
            has_colored_lower = False
            start, end = indptr[v], indptr[v + 1]
            if act & _ACT_SAME:
                is_wb = lab <= _B
                for i in range(start, end):
                    w = indices[i]
                    lw = levels[w]
                    if 0 < lw < lv:
                        if code[w] <= _E:
                            has_colored_lower = True
                    elif lw == lv:
                        cw = code[w]
                        if is_wb:
                            if cw == lab or cw == _D:
                                append(Violation(
                                    v, "same-level color conflict",
                                    f"{_COLOR_LABELS[lab]} next to "
                                    f"{outputs[w]} at level {lv}",
                                ))
                        elif cw == lab:
                            append(Violation(
                                v, "level-k 3-coloring conflict",
                                f"{_COLOR_LABELS[lab]} next to "
                                f"{_COLOR_LABELS[lab]}",
                            ))
            else:
                for i in range(start, end):
                    w = indices[i]
                    if 0 < levels[w] < lv and code[w] <= _E:
                        has_colored_lower = True
                        break
            if act & _ACT_LOWER and (lab == _E) != has_colored_lower:
                append(Violation(
                    v, "E-iff rule",
                    f"out={_COLOR_LABELS[lab]}, "
                    f"colored-lower-neighbor={has_colored_lower}",
                ))
        if early_exit and bad:
            return True
    return False


def _mask_positions(mask: bytes):
    """Positions of nonzero bytes, via C-speed ``bytes.find`` hops."""
    find = mask.find
    pos = find(1)
    while pos != -1:
        yield pos
        pos = find(1, pos + 1)


def _intern(codes: Dict, outputs) -> List[int]:
    """Outputs to label codes in one C pass; unknown labels become -1."""
    return list(map(codes.get, outputs, repeat(-1)))


def _make_gather(positions: Sequence[int]):
    """A compile-time gather: ``gather(code)`` returns ``code`` permuted
    to ``positions`` in one C call (itemgetter needs >= 2 positions; the
    tiny-graph fallback maps instead)."""
    if len(positions) >= 2:
        return itemgetter(*positions)
    return lambda code: tuple(code[i] for i in positions)


def _alphabet_violations(code, outputs, bad, early_exit) -> bool:
    """Collect ``alphabet`` violations for every -1 code; True if any."""
    if -1 not in code:
        return False
    v = -1
    while True:
        try:
            v = code.index(-1, v + 1)
        except ValueError:
            return True
        bad.append(Violation(v, "alphabet", f"output {outputs[v]!r}"))
        if early_exit:
            return True


class CompiledHierarchicalColoring(CompiledChecker):
    """Kernel lowering of :class:`repro.lcl.hierarchical.HierarchicalColoring`."""

    def __init__(self, problem) -> None:
        super().__init__(problem)
        self._codes = {
            label: _COLOR_CODES[label] for label in problem.sigma_out
        }
        self._tables = _build_color_tables(
            problem.k, problem.variant == "3.5"
        )
        self._lab_mask = _label_mask(self._tables[0])

    def _compile_graph(self, graph: Graph):
        from .levels import compute_levels

        levels = compute_levels(graph, self.problem.k)
        indptr, indices = graph.adjacency()
        # the fast-path level mask is per-graph; label mask is per-scan
        lv_mask = bytes(levels).translate(_LV_NEEDS_WORK)
        return levels, list(indptr), list(indices), lv_mask

    def _scan(self, graph, inst, outputs, early_exit):
        levels, indptr, indices, lv_mask = inst
        code = _intern(self._codes, outputs)
        bad: List[Violation] = []
        if _alphabet_violations(code, outputs, bad, early_exit):
            return bad
        n = graph.n
        if n == 0:
            return bad
        # constraint-free fast path: skip every (level, label) combination
        # whose action-table row is empty — one big-int OR over the two
        # translated masks, then C-speed find() hops to the flagged nodes
        mask = (
            int.from_bytes(lv_mask, "big")
            | int.from_bytes(bytes(code).translate(self._lab_mask), "big")
        ).to_bytes(n, "big")
        action, static = self._tables
        _scan_colored_nodes(
            _mask_positions(mask), code, levels, action, static,
            indptr, indices, outputs, bad, early_exit,
        )
        return bad[:1] if early_exit else bad


# ----------------------------------------------------------------------
# the d-free weight problem
# ----------------------------------------------------------------------
class CompiledDFree(CompiledChecker):
    """Kernel lowering of :class:`repro.lcl.dfree.DFreeWeightProblem`.

    The neighbour tallies (Connect supporters, Decline counts) lower to
    ``bytes.count`` over a flat gather of the neighbour codes along the
    CSR ``indices`` array — both C-speed passes.
    """

    _OUT_CODES = {"Decline": 0, "Connect": 1, "Copy": 2}
    _IN_CODES = {"A": 0, "W": 1}

    def _compile_graph(self, graph: Graph):
        get = self._IN_CODES.get
        in_code = [get(graph.input_of(v), -1) for v in range(graph.n)]
        indptr, indices = graph.adjacency()
        return in_code, list(indptr)[1:], _make_gather(list(indices))

    def _scan(self, graph, inst, outputs, early_exit):
        in_code, ends, gather = inst
        code = _intern(self._OUT_CODES, outputs)
        bad: List[Violation] = []
        if _alphabet_violations(code, outputs, bad, early_exit):
            return bad
        # flat gather: the output code of every CSR neighbour slot
        flat = bytes(gather(code))
        count = flat.count
        d = self.problem.d
        append = bad.append
        s = 0
        for v, out in enumerate(code):
            e = ends[v]
            inp = in_code[v]
            if inp < 0:
                append(
                    Violation(v, "input alphabet", repr(graph.input_of(v)))
                )
            elif out == 1:  # Connect
                need = 1 if inp == 0 else 2
                connected = count(1, s, e)
                if connected < need:
                    append(Violation(
                        v, "P1: Connect support",
                        f"input {graph.input_of(v)}: {connected} < {need}",
                    ))
            elif out == 2:  # Copy
                declines = count(0, s, e)
                if declines > d:
                    append(Violation(
                        v, "P2: Copy with too many Declines",
                        f"{declines} > d={d}",
                    ))
            elif inp == 0:  # A-node outputting Decline
                append(
                    Violation(v, "P3: A-node must output Connect or Copy")
                )
            if early_exit and bad:
                return bad[:1]
            s = e
        return bad


# ----------------------------------------------------------------------
# weighted Pi^Z_{Delta,d,k}
# ----------------------------------------------------------------------
_P_DECLINE, _P_CONNECT, _P_COPY = range(3)


class CompiledWeightedColoring(CompiledChecker):
    """Kernel lowering of :class:`repro.lcl.weighted.WeightedColoring`.

    Encoding: active nodes intern to color codes (``kind`` -1); weight
    nodes carry ``kind`` in {Decline, Connect, Copy} and, for Copy, the
    secondary color code.
    """

    def __init__(self, problem) -> None:
        super().__init__(problem)
        self._color_codes = {
            label: _COLOR_CODES[label] for label in problem.base.sigma_out
        }
        self._tables = _build_color_tables(
            problem.k, problem.variant == "3.5"
        )

    def _compile_graph(self, graph: Graph):
        from .levels import compute_levels
        from .weighted import ACTIVE, WEIGHT

        n = graph.n
        # 1 = active, 0 = weight, -1 = bad input
        is_active = [-1] * n
        active_nodes = []
        for v in range(n):
            inp = graph.input_of(v)
            if inp == ACTIVE:
                is_active[v] = 1
                active_nodes.append(v)
            elif inp == WEIGHT:
                is_active[v] = 0
        levels = compute_levels(graph, self.problem.k, restrict=active_nodes)
        return is_active, active_nodes, levels

    def _scan(self, graph, inst, outputs, early_exit):
        from .weighted import CONNECT, COPY, DECLINE

        is_active, active_nodes, levels = inst
        n = graph.n
        bad: List[Violation] = []
        for v in range(n):
            if is_active[v] < 0:
                bad.append(
                    Violation(v, "input alphabet", repr(graph.input_of(v)))
                )
                if early_exit:
                    return bad
        if bad:
            return bad

        color_codes = self._color_codes
        # kind[v]: active -1; weight 0/1/2 (Decline/Connect/Copy)
        kind = [-1] * n
        # code[v]: active color code; Copy secondary color code; else -9
        code = [-9] * n
        for v in range(n):
            label = outputs[v]
            if is_active[v]:
                c = -1
                if not isinstance(label, tuple):
                    c = color_codes.get(label, -1)
                if c < 0:
                    bad.append(
                        Violation(v, "active output alphabet", repr(label))
                    )
                    if early_exit:
                        return bad
                code[v] = c
            else:
                ok = isinstance(label, tuple)
                if ok:
                    head = label[0]
                    if head == DECLINE:
                        ok = len(label) == 1
                        kind[v] = _P_DECLINE
                    elif head == CONNECT:
                        ok = len(label) == 1
                        kind[v] = _P_CONNECT
                    elif head == COPY:
                        ok = (
                            len(label) == 2
                            and color_codes.get(label[1], -1) >= 0
                        )
                        if ok:
                            kind[v] = _P_COPY
                            code[v] = color_codes[label[1]]
                    else:
                        ok = False
                if not ok:
                    kind[v] = -2
                    bad.append(
                        Violation(v, "weight output alphabet", repr(label))
                    )
                    if early_exit:
                        return bad
        if bad:
            return bad

        indptr, indices = graph.adjacency()
        action, static = self._tables
        d = self.problem.d
        # Property 1: active components satisfy k-hierarchical Z-coloring
        if _scan_colored_nodes(
            active_nodes, code, levels, action, static, indptr, indices,
            outputs, bad, early_exit,
        ):
            return bad[:1]
        for v in range(n):
            if is_active[v]:
                continue
            kv = kind[v]
            start, end = indptr[v], indptr[v + 1]
            active_nbrs = 0
            connect_support = 0
            decline_nbrs = 0
            for i in range(start, end):
                w = indices[i]
                if is_active[w]:
                    active_nbrs += 1
                    connect_support += 1
                elif kind[w] == _P_CONNECT:
                    connect_support += 1
                elif kind[w] == _P_DECLINE:
                    decline_nbrs += 1
            # Property 2
            if active_nbrs and kv == _P_DECLINE:
                bad.append(
                    Violation(v, "P2: weight node next to active declines")
                )
            # Property 3
            if kv == _P_CONNECT and connect_support < 2:
                bad.append(Violation(
                    v, "P3: Connect needs >= 2 active/Connect neighbors",
                    f"have {connect_support}",
                ))
            # Properties 4 and 5
            if kv == _P_COPY:
                if decline_nbrs > d:
                    bad.append(Violation(
                        v, "P4: Copy with too many Decline neighbors",
                        f"{decline_nbrs} > d={d}",
                    ))
                sec = code[v]
                sec_label = outputs[v][1]
                if active_nbrs:
                    matched = False
                    for i in range(start, end):
                        w = indices[i]
                        if is_active[w] and code[w] == sec:
                            matched = True
                            break
                    if not matched:
                        bad.append(Violation(
                            v, "P5: secondary output matches no active neighbor",
                            f"secondary={sec_label!r}",
                        ))
                for i in range(start, end):
                    w = indices[i]
                    if not is_active[w] and kind[w] == _P_COPY and code[w] != sec:
                        bad.append(Violation(
                            v, "P5: adjacent Copy nodes disagree",
                            f"{sec_label!r} vs {outputs[w][1]!r}",
                        ))
            if early_exit and bad:
                return bad[:1]
        return bad


# ----------------------------------------------------------------------
# k-hierarchical labeling (and its weight-augmented extension)
# ----------------------------------------------------------------------
def _scan_labeling_nodes(
    nodes,
    order,
    out,
    member,
    indptr,
    indices,
    labels_of,
    bad,
    early_exit,
):
    """Definition 63 rules 1-6 over interned label orders.

    ``order[v]`` is the label's position in ``R1 < C1 < ... < Rk`` (even =
    rake, odd = compress); ``out[v]`` is the orientation target or -1.
    ``member`` (a byte mask or None) restricts the instance to an induced
    subgraph, exactly like the reference ``check_labeling_rules``.
    Returns True when early_exit tripped.
    """
    for v in nodes:
        ov = out[v]
        start, end = indptr[v], indptr[v + 1]
        if ov != -1:
            found = False
            for i in range(start, end):
                w = indices[i]
                if w == ov and (member is None or member[w]):
                    found = True
                    break
            if not found:
                bad.append(Violation(
                    v, "orientation target is not a neighbour", f"out={ov}"
                ))
                if early_exit:
                    return True
                continue
        lab_o = order[v]
        rake = lab_o % 2 == 0
        same_compress = 0
        pointing: List[int] = []
        for i in range(start, end):
            w = indices[i]
            if member is not None and not member[w]:
                continue
            points_vw = ov == w
            points_wv = out[w] == v
            if rake:
                if not points_vw and not points_wv:
                    bad.append(Violation(
                        v, "rule1: unoriented edge at rake node",
                        f"edge ({v},{w})",
                    ))
                if points_wv:
                    pointing.append(w)
            if points_vw and points_wv:
                bad.append(Violation(v, "doubly oriented edge", f"({v},{w})"))
            if not rake:
                wo = order[w]
                if wo % 2:
                    if wo == lab_o:
                        same_compress += 1
                    else:
                        bad.append(Violation(
                            v, "rule5: adjacent distinct compress labels",
                            f"{labels_of(v)} vs {labels_of(w)}",
                        ))
        if not rake:
            # Rule 2: interior compress nodes have no out-edge
            if same_compress >= 2 and ov != -1:
                bad.append(
                    Violation(v, "rule2: interior compress node has out-edge")
                )
            # Rule 4: each compress label induces disjoint paths
            if same_compress > 2:
                bad.append(Violation(
                    v, "rule4: compress label not a path",
                    f"{same_compress} same-label neighbours",
                ))
        # Rule 3: orientation respects the label order
        if ov != -1 and order[ov] < lab_o:
            bad.append(Violation(
                v, "rule3: orientation decreases label",
                f"{labels_of(v)} -> {labels_of(ov)}",
            ))
        # Rule 6: at most one compress pointer at a rake node; if one
        # exists, all pointers carry strictly lower labels
        if rake and pointing:
            compress_pointing = sum(1 for w in pointing if order[w] % 2)
            if compress_pointing > 1:
                bad.append(Violation(v, "rule6: two compress pointers"))
            if compress_pointing:
                for w in pointing:
                    if order[w] >= lab_o:
                        bad.append(Violation(
                            v, "rule6: pointer label not strictly lower",
                            f"{labels_of(w)} -> {labels_of(v)}",
                        ))
        if early_exit and bad:
            return True
    return False


class CompiledHierarchicalLabeling(CompiledChecker):
    """Kernel lowering of :class:`repro.lcl.labeling.HierarchicalLabeling`."""

    def __init__(self, problem) -> None:
        super().__init__(problem)
        from .labeling import label_order

        self._orders = {
            label: label_order(label) for label in problem.sigma_out
        }

    def _compile_graph(self, graph: Graph):
        return None

    def _scan(self, graph, inst, outputs, early_exit):
        orders = self._orders
        n = graph.n
        order = [0] * n
        out = [-1] * n
        bad: List[Violation] = []
        for v in range(n):
            o = outputs[v]
            ok = isinstance(o, tuple) and len(o) == 2
            if ok:
                lab_o = orders.get(o[0], -1) if isinstance(o[0], str) else -1
                tgt = o[1]
                ok = lab_o >= 0 and (tgt is None or isinstance(tgt, int))
            if not ok:
                bad.append(Violation(v, "alphabet", f"output {o!r}"))
                if early_exit:
                    return bad
            else:
                order[v] = lab_o
                # out-of-range targets can never match a neighbour scan,
                # which reproduces the reference "not a neighbour" rule
                out[v] = tgt if (tgt is not None and 0 <= tgt < n) else (
                    -1 if tgt is None else n
                )
        if bad:
            return bad
        # widen the arrays by a sentinel slot so `order[out[v]]`/`out[w]`
        # stay in-bounds for the out-of-range marker n
        order.append(-1)
        out.append(-1)
        indptr, indices = graph.adjacency()
        _scan_labeling_nodes(
            range(n), order, out, None, indptr, indices,
            lambda v: outputs[v][0] if v < n else None, bad, early_exit,
        )
        return bad[:1] if early_exit else bad


class CompiledWeightAugmented25(CompiledChecker):
    """Kernel lowering of :class:`repro.lcl.labeling.WeightAugmented25`."""

    _SEC_DECLINE = 9  # secondary code for Decline (disjoint from colors)

    def __init__(self, problem) -> None:
        super().__init__(problem)
        from .labeling import label_order

        self._orders = {
            label: label_order(label)
            for label in problem.labeling.sigma_out
        }
        self._color_codes = {
            label: _COLOR_CODES[label] for label in problem.base.sigma_out
        }
        self._tables = _build_color_tables(problem.k, False)

    def _compile_graph(self, graph: Graph):
        from .levels import compute_levels
        from .weighted import ACTIVE, WEIGHT

        n = graph.n
        is_active = [-1] * n
        active_nodes = []
        weight_nodes = []
        member = bytearray(n)
        for v in range(n):
            inp = graph.input_of(v)
            if inp == ACTIVE:
                is_active[v] = 1
                active_nodes.append(v)
            elif inp == WEIGHT:
                is_active[v] = 0
                weight_nodes.append(v)
                member[v] = 1
        levels = compute_levels(graph, self.problem.k, restrict=active_nodes)
        return is_active, active_nodes, weight_nodes, member, levels

    def _scan(self, graph, inst, outputs, early_exit):
        from .labeling import SECONDARY_DECLINE

        is_active, active_nodes, weight_nodes, member, levels = inst
        n = graph.n
        bad: List[Violation] = []
        for v in range(n):
            if is_active[v] < 0:
                bad.append(Violation(v, "input alphabet"))
                if early_exit:
                    return bad
        if bad:
            return bad

        orders = self._orders
        color_codes = self._color_codes
        code = [-9] * n      # active color / weight secondary code
        order = [0] * (n + 1)
        out = [-1] * (n + 1)
        order[n] = -1
        for v in range(n):
            o = outputs[v]
            if is_active[v]:
                c = -1
                if not isinstance(o, tuple):
                    c = color_codes.get(o, -1)
                if c < 0:
                    bad.append(
                        Violation(v, "active output alphabet", repr(o))
                    )
                    if early_exit:
                        return bad
                code[v] = c
            else:
                ok = isinstance(o, tuple) and len(o) == 3
                if ok:
                    lab_o = orders.get(o[0], -1) if isinstance(o[0], str) else -1
                    tgt = o[1]
                    sec = o[2]
                    sec_c = (
                        self._SEC_DECLINE if sec == SECONDARY_DECLINE
                        else color_codes.get(sec, -1)
                        if not isinstance(sec, tuple) else -1
                    )
                    ok = (
                        lab_o >= 0
                        and (tgt is None or isinstance(tgt, int))
                        and sec_c >= 0
                    )
                if not ok:
                    bad.append(
                        Violation(v, "weight output alphabet", repr(o))
                    )
                    if early_exit:
                        return bad
                else:
                    order[v] = lab_o
                    code[v] = sec_c
                    # labeling orientation: weight targets only (rule-3
                    # edges toward active nodes are not labeling edges)
                    out[v] = tgt if (
                        tgt is not None and 0 <= tgt < n and member[tgt]
                    ) else -1
        if bad:
            return bad

        indptr, indices = graph.adjacency()
        action, static = self._tables

        # Item 1: active side solves 2.5-coloring
        if _scan_colored_nodes(
            active_nodes, code, levels, action, static, indptr, indices,
            outputs, bad, early_exit,
        ):
            return bad[:1]

        # Item 2: weight side solves the labeling on the weight subgraph
        if _scan_labeling_nodes(
            weight_nodes, order, out, member, indptr, indices,
            lambda v: outputs[v][0], bad, early_exit,
        ):
            return bad[:1]

        # Items 3-5: secondary outputs
        for v in weight_nodes:
            lab_o = order[v]
            raw_out = outputs[v][1]
            sec = code[v]
            start, end = indptr[v], indptr[v + 1]
            has_active = False
            out_is_active_nbr = False
            for i in range(start, end):
                w = indices[i]
                if is_active[w]:
                    has_active = True
                    if w == raw_out:
                        out_is_active_nbr = True
            if has_active:
                if not out_is_active_nbr:
                    bad.append(Violation(
                        v, "rule3: must point at an active neighbour",
                        f"out={raw_out}",
                    ))
                elif sec != code[raw_out] or sec == self._SEC_DECLINE:
                    bad.append(Violation(
                        v, "rule3: secondary differs from active output",
                        f"{outputs[v][2]!r} vs {outputs[raw_out]!r}",
                    ))
            elif lab_o % 2:  # compress away from active
                if sec != self._SEC_DECLINE:
                    bad.append(Violation(
                        v, "rule5: compress node away from active must Decline",
                        repr(outputs[v][2]),
                    ))
            elif out[v] != -1:  # rake pointing at a weight node
                if sec != code[out[v]]:
                    bad.append(Violation(
                        v, "rule4: secondary differs from pointed-to node",
                        f"{outputs[v][2]!r} vs {outputs[out[v]][2]!r}",
                    ))
            elif sec == self._SEC_DECLINE:  # rake sink
                bad.append(Violation(
                    v, "rule5: rake sink cannot originate Decline"
                ))
            if early_exit and bad:
                return bad[:1]
        return bad


# ----------------------------------------------------------------------
# proper c-coloring
# ----------------------------------------------------------------------
class CompiledProperColoring(CompiledChecker):
    """Kernel lowering of :class:`repro.lcl.proper.ProperColoring`.

    With at most 255 colors the whole constraint collapses to one
    vectorized identity: gather the neighbour color and the owning node's
    color per CSR slot (two compile-time itemgetters), XOR them as big
    ints — a zero byte is exactly a monochromatic edge slot.  Wider
    palettes fall back to a plain loop.
    """

    def __init__(self, problem) -> None:
        super().__init__(problem)
        self._codes = {label: label for label in problem.sigma_out}
        self._byte_safe = problem.colors <= 255

    def _compile_graph(self, graph: Graph):
        indptr, indices = graph.adjacency()
        indices_l = list(indices)
        owners = [
            u
            for u in range(graph.n)
            for _ in range(indptr[u + 1] - indptr[u])
        ]
        return (
            list(indptr),
            indices_l,
            _make_gather(indices_l),
            _make_gather(owners),
            owners,
        )

    def _scan(self, graph, inst, outputs, early_exit):
        indptr, indices, gather_nbr, gather_own, owners = inst
        code = _intern(self._codes, outputs)
        bad: List[Violation] = []
        if _alphabet_violations(code, outputs, bad, early_exit):
            return bad
        append = bad.append
        if self._byte_safe and indices:
            nbr = bytes(gather_nbr(code))
            own = bytes(gather_own(code))
            diff = (
                int.from_bytes(nbr, "big") ^ int.from_bytes(own, "big")
            ).to_bytes(len(nbr), "big")
            # conflict-free labelings finish here with one C containment
            find = diff.find
            i = find(0)
            while i != -1:
                v = owners[i]
                append(Violation(
                    v, "proper: adjacent equal colors", f"({v},{indices[i]})"
                ))
                if early_exit:
                    return bad
                i = find(0, i + 1)
            return bad
        for v in range(graph.n):
            cv = code[v]
            for i in range(indptr[v], indptr[v + 1]):
                if code[indices[i]] == cv:
                    append(Violation(
                        v, "proper: adjacent equal colors",
                        f"({v},{indices[i]})",
                    ))
                    if early_exit:
                        return bad
        return bad


# ----------------------------------------------------------------------
# black-white LCLs (edge-labeled)
# ----------------------------------------------------------------------
class CompiledBlackWhite(CompiledChecker):
    """Kernel lowering of :class:`repro.lcl.blackwhite.BlackWhiteLCL`.

    An edge-labeled problem: the "outputs" of the Verifier protocol are a
    mapping ``frozenset({u, v}) -> output label``; node colors and edge
    inputs are part of the instance and supplied via keyword (defaulting
    to the distance-parity 2-coloring and the problem's single input
    label when its input alphabet is a singleton).  The compile step
    aligns a per-CSR-position edge-id array so each scan reads flat
    arrays; constraint predicates are evaluated through the problem's
    interning ``allows`` memo, so each distinct ``(color, pair-multiset)``
    key is judged once per problem instance.
    """

    def _compile_graph(self, graph: Graph):
        edge_ids: Dict[frozenset, int] = {}
        for u, v in graph.edges():
            edge_ids[frozenset((u, v))] = len(edge_ids)
        indptr, indices = graph.adjacency()
        # eid[i]: edge id of CSR slot i (the edge {u, indices[i]})
        eid = [0] * len(indices)
        for u in range(graph.n):
            for i in range(indptr[u], indptr[u + 1]):
                w = indices[i]
                eid[i] = edge_ids[frozenset((u, w))]
        return edge_ids, eid

    def _default_colors(self, graph: Graph) -> List[str]:
        from .blackwhite import two_color_tree

        return two_color_tree(graph)

    def _default_inputs(self, graph: Graph, edge_ids) -> Dict:
        sigma_in = self.problem.sigma_in
        if len(sigma_in) != 1:
            raise ValueError(
                "edge_inputs required: input alphabet is not a singleton"
            )
        fill = sigma_in[0]
        return {e: fill for e in edge_ids}

    def verify(
        self,
        graph: Graph,
        outputs,
        colors: Optional[Sequence[str]] = None,
        edge_inputs=None,
        early_exit: bool = False,
    ) -> LCLResult:
        inst = self._instance(graph)
        if colors is None:
            colors = self._default_colors(graph)
        if edge_inputs is None:
            edge_inputs = self._default_inputs(graph, inst[0])
        return LCLResult(
            self._scan_edges(graph, inst, colors, edge_inputs, outputs,
                             early_exit)
        )

    def verify_batch(
        self,
        graph: Graph,
        outputs_list,
        colors: Optional[Sequence[str]] = None,
        edge_inputs=None,
        early_exit: bool = False,
    ) -> List[LCLResult]:
        inst = self._instance(graph)
        if colors is None:
            colors = self._default_colors(graph)
        if edge_inputs is None:
            edge_inputs = self._default_inputs(graph, inst[0])
        return [
            LCLResult(self._scan_edges(graph, inst, colors, edge_inputs,
                                       outputs, early_exit))
            for outputs in outputs_list
        ]

    def _scan(self, graph, inst, outputs, early_exit):  # pragma: no cover
        raise NotImplementedError("use verify/verify_batch")

    def _scan_edges(self, graph, inst, colors, edge_inputs, edge_outputs,
                    early_exit):
        from .blackwhite import WHITE

        problem = self.problem
        edge_ids, eid = inst
        bad: List[Violation] = []
        for u, v in graph.edges():
            if colors[u] == colors[v]:
                bad.append(Violation(
                    u, "not properly 2-colored", f"edge ({u},{v})"
                ))
                if early_exit:
                    return bad
        if bad:
            return bad

        m = len(edge_ids)
        in_by_id = [None] * m
        out_by_id = [None] * m
        in_ok = bytearray(m)
        out_ok = bytearray(m)
        sigma_in = set(problem.sigma_in)
        sigma_out = set(problem.sigma_out)
        for e, i in edge_ids.items():
            lab_in = edge_inputs[e]
            lab_out = edge_outputs[e]
            in_by_id[i] = lab_in
            out_by_id[i] = lab_out
            if lab_in in sigma_in:
                in_ok[i] = 1
            if lab_out in sigma_out:
                out_ok[i] = 1

        indptr = graph.adjacency()[0]
        allows = problem.allows
        white = WHITE
        for v in range(graph.n):
            pairs = []
            for i in range(indptr[v], indptr[v + 1]):
                e = eid[i]
                if not in_ok[e]:
                    bad.append(
                        Violation(v, "input alphabet", repr(in_by_id[e]))
                    )
                if not out_ok[e]:
                    bad.append(
                        Violation(v, "output alphabet", repr(out_by_id[e]))
                    )
                pairs.append((in_by_id[e], out_by_id[e]))
            if not allows(colors[v], pairs):
                canon = problem.canonical_pairs(pairs)
                bad.append(
                    Violation(v, f"{colors[v]}-constraint", repr(canon))
                )
            if early_exit and bad:
                return bad[:1]
        return bad


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
def _compilers() -> Dict[type, Callable]:
    from .blackwhite import BlackWhiteLCL
    from .dfree import DFreeWeightProblem
    from .hierarchical import Coloring25, Coloring35, HierarchicalColoring
    from .labeling import HierarchicalLabeling, WeightAugmented25
    from .proper import ProperColoring
    from .weighted import Weighted25, Weighted35, WeightedColoring

    return {
        HierarchicalColoring: CompiledHierarchicalColoring,
        Coloring25: CompiledHierarchicalColoring,
        Coloring35: CompiledHierarchicalColoring,
        DFreeWeightProblem: CompiledDFree,
        WeightedColoring: CompiledWeightedColoring,
        Weighted25: CompiledWeightedColoring,
        Weighted35: CompiledWeightedColoring,
        HierarchicalLabeling: CompiledHierarchicalLabeling,
        WeightAugmented25: CompiledWeightAugmented25,
        ProperColoring: CompiledProperColoring,
        BlackWhiteLCL: CompiledBlackWhite,
    }


_COMPILER_CACHE: Optional[Dict[type, Callable]] = None


def compile_checker(problem) -> Optional[CompiledChecker]:
    """Lower ``problem`` to its :class:`CompiledChecker`, or None.

    Dispatch is on the problem's *exact* type: an unknown subclass (which
    may override ``check_node`` semantics the kernel cannot see) safely
    falls back to the legacy reference path instead of silently verifying
    the parent problem's constraint.
    """
    global _COMPILER_CACHE
    if _COMPILER_CACHE is None:
        _COMPILER_CACHE = _compilers()
    compiler = _COMPILER_CACHE.get(type(problem))
    return None if compiler is None else compiler(problem)
