"""k-hierarchical 2½- and 3½-coloring (Definitions 8 and 9).

Both problems share the level structure of :mod:`repro.lcl.levels` and the
labels ``W`` (white), ``B`` (black), ``E`` (exempt), ``D`` (decline); the
3½ variant adds the path-3-coloring labels ``R``, ``G``, ``Y`` for level-k
nodes.  Constraints (checkability radius ``O(k)``):

* level-1 nodes are never ``E``; level-(k+1) nodes are always ``E``;
* a node of level ``2 <= i <= k`` is ``E`` iff it has a *lower-level*
  neighbour labeled ``W``, ``B`` or ``E``;
* ``W``/``B`` behave as colours within a level: a ``W`` node has no
  same-level neighbour labeled ``W`` or ``D`` (symmetrically for ``B``);
* 2½: level-k nodes may not output ``D`` (so their non-``E`` part is a
  proper 2-coloring);
* 3½: level-k nodes may not output ``D``, ``W`` or ``B``; their non-``E``
  part must be properly 3-coloured with ``R/G/Y``; levels below ``k`` may
  not use ``R/G/Y``.

The 2½ family has worst-case complexity ``Theta(n^{1/k})`` [CP19] and
node-averaged ``Theta(n^{1/(2^k - 1)})`` [BBK+23b]; the 3½ family has
worst-case ``Theta(log* n)`` (Corollary 10) and node-averaged
``Theta((log* n)^{1/2^{k-1}})`` (Theorem 11).

``verify`` runs through the compiled CSR kernel
(:class:`repro.lcl.kernel.CompiledHierarchicalColoring`, which lowers
these rules to ``(level, label)`` action tables); the per-node
``check_node`` path below stays as the reference oracle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..local.graph import Graph
from .levels import compute_levels
from .problem import LCLProblem, Violation

__all__ = [
    "W", "B", "E", "D", "R", "G", "Y",
    "COLORS_2", "COLORS_3",
    "HierarchicalColoring",
    "Coloring25",
    "Coloring35",
    "valid_coloring25",
]

W, B, E, D = "W", "B", "E", "D"
R, G, Y = "R", "G", "Y"
COLORS_2 = (W, B)
COLORS_3 = (R, G, Y)


class HierarchicalColoring(LCLProblem):
    """Common checker for the 2½ / 3½ families; parameterized by variant."""

    #: "2.5" or "3.5"
    variant: str = "2.5"

    def __init__(self, k: int, variant: Optional[str] = None) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        if variant is not None:
            self.variant = variant
        if self.variant not in ("2.5", "3.5"):
            raise ValueError("variant must be '2.5' or '3.5'")
        self.radius = k + 1
        base = {W, B, E, D}
        if self.variant == "3.5":
            base |= {R, G, Y}
        self.sigma_out = frozenset(base)
        self.name = f"{k}-hierarchical {self.variant}-coloring"

    # -- levels --------------------------------------------------------
    def levels(self, graph: Graph, restrict=None) -> List[int]:
        return compute_levels(graph, self.k, restrict)

    # -- constraint ----------------------------------------------------
    def check_node(self, graph: Graph, outputs: Sequence, v: int) -> List[Violation]:
        levels = self._levels_cached(graph)
        return self.check_node_with_levels(graph, levels, outputs, v)

    def _levels_cached(self, graph: Graph) -> List[int]:
        cached = getattr(self, "_level_cache", None)
        if cached is not None and cached[0] is graph:
            return cached[1]
        levels = self.levels(graph)
        self._level_cache = (graph, levels)
        return levels

    def check_node_with_levels(
        self, graph: Graph, levels: Sequence[int], outputs: Sequence, v: int
    ) -> List[Violation]:
        """The per-node constraint, with levels supplied by the caller
        (the weighted problems compute levels per active component)."""
        k = self.k
        out = outputs[v]
        lv = levels[v]
        bad: List[Violation] = []

        if lv == 1 and out == E:
            bad.append(Violation(v, "level-1 node labeled E"))
        if lv == k + 1 and out != E:
            bad.append(Violation(v, "level-(k+1) node not labeled E", f"got {out}"))

        indptr, indices = graph.adjacency()
        nbrs = indices[indptr[v]:indptr[v + 1]]
        lower = [w for w in nbrs if 0 < levels[w] < lv]
        if 2 <= lv <= k:
            has_colored_lower = any(outputs[w] in (W, B, E) for w in lower)
            if (out == E) != has_colored_lower:
                bad.append(
                    Violation(
                        v,
                        "E-iff rule",
                        f"out={out}, colored-lower-neighbor={has_colored_lower}",
                    )
                )

        same = [w for w in nbrs if levels[w] == lv]
        color_limit = k if self.variant == "2.5" else k - 1
        if out in (W, B):
            if lv > color_limit or lv > k:
                bad.append(Violation(v, f"{out} not allowed at level {lv}"))
            for w in same:
                if outputs[w] == out or outputs[w] == D:
                    bad.append(
                        Violation(v, "same-level color conflict",
                                  f"{out} next to {outputs[w]} at level {lv}")
                    )

        if lv == k:
            if self.variant == "2.5":
                if out == D:
                    bad.append(Violation(v, "level-k node labeled D"))
            else:
                if out in (D, W, B):
                    bad.append(Violation(v, f"level-k node labeled {out} (3.5)"))
                if out in COLORS_3:
                    for w in same:
                        if outputs[w] == out:
                            bad.append(
                                Violation(v, "level-k 3-coloring conflict",
                                          f"{out} next to {out}")
                            )
        if out in COLORS_3 and (self.variant == "2.5" or lv != k):
            bad.append(Violation(v, f"label {out} not allowed at level {lv}"))
        return bad

    def verify_with_levels(
        self, graph: Graph, levels: Sequence[int], outputs: Sequence
    ):
        """Full verification against externally supplied levels."""
        from .problem import LCLResult

        violations = self.validate_alphabet(graph, outputs)
        if not violations:
            for v in graph.nodes():
                violations.extend(
                    self.check_node_with_levels(graph, levels, outputs, v)
                )
        return LCLResult(violations)


def valid_coloring25(graph: Graph, k: int) -> List[str]:
    """A canonical valid k-hierarchical 2½-coloring: ``D`` below level
    ``k`` (making the E-iff rule vacuous), ``W``/``B`` alternating along
    the level-``k`` paths, ``E`` at level ``k+1``.

    Valid whenever every level-``k`` component is a path — trees and
    grids qualify; a graph whose level-``k`` nodes form an odd cycle does
    not.  Benchmark and test call sites assert validity through the
    checker.
    """
    from .levels import compute_levels, level_paths

    levels = compute_levels(graph, k)
    out = [D] * graph.n
    for v in range(graph.n):
        if levels[v] == k + 1:
            out[v] = E
    for path in level_paths(graph, levels, k):
        for i, v in enumerate(path):
            out[v] = COLORS_2[i % 2]
    return out


class Coloring25(HierarchicalColoring):
    """k-hierarchical 2½-coloring (Definition 8)."""

    variant = "2.5"

    def __init__(self, k: int) -> None:
        super().__init__(k, "2.5")


class Coloring35(HierarchicalColoring):
    """k-hierarchical 3½-coloring (Definition 9)."""

    variant = "3.5"

    def __init__(self, k: int) -> None:
        super().__init__(k, "3.5")
