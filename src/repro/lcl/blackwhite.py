"""LCLs in the black-white formalism (Definition 70).

A problem is a tuple ``(Sigma_in, Sigma_out, C_W, C_B)`` on properly
2-coloured trees: every *edge* gets an input and must get an output, and
for each node the multiset of incident ``(input, output)`` pairs must
belong to the constraint set of its colour.  Constraints are predicates
over multisets (encoded as sorted tuples), which lets degree-generic
constraints ("all incident outputs equal") be written without enumerating
every degree.

This is the formalism of the Section-11 gap machinery: label-sets,
classes and the testing procedure (:mod:`repro.gap`) all operate on
:class:`BlackWhiteLCL` instances.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Sequence, Tuple

from ..local.graph import Graph
from .problem import LCLResult, Violation

__all__ = ["BlackWhiteLCL", "two_color_tree", "Pair"]

Pair = Tuple[object, object]  # (input label, output label)

WHITE = "W"
BLACK = "B"


class BlackWhiteLCL:
    """A black-white LCL with predicate-style constraints.

    ``constraint_white`` / ``constraint_black`` take the sorted tuple of
    incident ``(input, output)`` pairs of a node and return whether it is
    allowed.  ``radius`` is 1 by construction.
    """

    def __init__(
        self,
        name: str,
        sigma_in: Sequence,
        sigma_out: Sequence,
        constraint_white: Callable[[Tuple[Pair, ...]], bool],
        constraint_black: Callable[[Tuple[Pair, ...]], bool],
    ) -> None:
        self.name = name
        self.sigma_in: Tuple = tuple(sigma_in)
        self.sigma_out: Tuple = tuple(sigma_out)
        self._cw = constraint_white
        self._cb = constraint_black

    def allows(self, color: str, pairs: Sequence[Pair]) -> bool:
        key = tuple(sorted(pairs, key=repr))
        return self._cw(key) if color == WHITE else self._cb(key)

    # ------------------------------------------------------------------
    def verify(
        self,
        graph: Graph,
        colors: Sequence[str],
        edge_inputs,
        edge_outputs,
    ) -> LCLResult:
        """Verify an edge labeling.  ``edge_inputs`` / ``edge_outputs``
        map frozenset({u, v}) -> label."""
        violations: List[Violation] = []
        for u, v in graph.edges():
            if colors[u] == colors[v]:
                violations.append(Violation(u, "not properly 2-colored", f"edge ({u},{v})"))
        if violations:
            return LCLResult(violations)
        for v in graph.nodes():
            pairs = []
            for w in graph.neighbors(v):
                e = frozenset((v, w))
                i = edge_inputs[e]
                o = edge_outputs[e]
                if i not in self.sigma_in:
                    violations.append(Violation(v, "input alphabet", repr(i)))
                if o not in self.sigma_out:
                    violations.append(Violation(v, "output alphabet", repr(o)))
                pairs.append((i, o))
            if not self.allows(colors[v], pairs):
                violations.append(
                    Violation(v, f"{colors[v]}-constraint", repr(tuple(sorted(pairs, key=repr))))
                )
        return LCLResult(violations)


def two_color_tree(graph: Graph, root: int = 0) -> List[str]:
    """The proper 2-coloring of a tree by distance parity from a root."""
    dist = graph.bfs_distances([root])
    return [WHITE if (d or 0) % 2 == 0 else BLACK for d in dist]
