"""LCLs in the black-white formalism (Definition 70).

A problem is a tuple ``(Sigma_in, Sigma_out, C_W, C_B)`` on properly
2-coloured trees: every *edge* gets an input and must get an output, and
for each node the multiset of incident ``(input, output)`` pairs must
belong to the constraint set of its colour.  Constraints are predicates
over multisets (encoded as sorted tuples), which lets degree-generic
constraints ("all incident outputs equal") be written without enumerating
every degree.

This is the formalism of the Section-11 gap machinery: label-sets,
classes and the testing procedure (:mod:`repro.gap`) all operate on
:class:`BlackWhiteLCL` instances.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Sequence, Tuple

from ..local.graph import Graph
from .problem import LCLResult, Violation

__all__ = ["BlackWhiteLCL", "two_color_tree", "Pair"]

Pair = Tuple[object, object]  # (input label, output label)

WHITE = "W"
BLACK = "B"


class BlackWhiteLCL:
    """A black-white LCL with predicate-style constraints.

    ``constraint_white`` / ``constraint_black`` take the canonicalized
    tuple of incident ``(input, output)`` pairs of a node and return
    whether it is allowed; they must be pure functions of the pair
    *multiset* (order-insensitive).  ``radius`` is 1 by construction.

    Multiset canonicalization interns each distinct pair (by equality) to
    a stable index and sorts by index — never by ``repr``, whose ordering
    can disagree with equality on mixed-type labels (two unequal labels
    with colliding reprs would make equal multisets canonicalize
    differently depending on input order).  Constraint verdicts are
    memoized per ``(color, canonical multiset)``, so the verification
    kernel and the Section-11 gap machinery each evaluate every distinct
    neighbourhood type exactly once per problem instance.
    """

    def __init__(
        self,
        name: str,
        sigma_in: Sequence,
        sigma_out: Sequence,
        constraint_white: Callable[[Tuple[Pair, ...]], bool],
        constraint_black: Callable[[Tuple[Pair, ...]], bool],
    ) -> None:
        self.name = name
        self.sigma_in: Tuple = tuple(sigma_in)
        self.sigma_out: Tuple = tuple(sigma_out)
        self._cw = constraint_white
        self._cb = constraint_black
        self._pair_index: dict = {}
        self._pair_list: List[Pair] = []
        self._allow_memo: dict = {}

    def _canonical_indices(self, pairs: Sequence[Pair]) -> Tuple[int, ...]:
        """Sorted interned indices — a canonical multiset key such that
        equal pair multisets (under ``==``) always coincide."""
        index = self._pair_index
        idxs = []
        for p in pairs:
            i = index.get(p)
            if i is None:
                i = index[p] = len(self._pair_list)
                self._pair_list.append(p)
            idxs.append(i)
        idxs.sort()
        return tuple(idxs)

    def canonical_pairs(self, pairs: Sequence[Pair]) -> Tuple[Pair, ...]:
        """The pairs in canonical (interned-index) order."""
        pair_list = self._pair_list
        return tuple(pair_list[i] for i in self._canonical_indices(pairs))

    def allows(self, color: str, pairs: Sequence[Pair]) -> bool:
        key = (color == WHITE, self._canonical_indices(pairs))
        hit = self._allow_memo.get(key)
        if hit is None:
            pair_list = self._pair_list
            canon = tuple(pair_list[i] for i in key[1])
            hit = self._cw(canon) if key[0] else self._cb(canon)
            self._allow_memo[key] = hit
        return hit

    # ------------------------------------------------------------------
    def verify(
        self,
        graph: Graph,
        colors: Sequence[str],
        edge_inputs,
        edge_outputs,
        early_exit: bool = False,
    ) -> LCLResult:
        """Verify an edge labeling through the CSR kernel.

        ``edge_inputs`` / ``edge_outputs`` map ``frozenset({u, v})`` to a
        label.  See :class:`repro.lcl.kernel.CompiledBlackWhite` for the
        flat-array pass; :meth:`verify_reference` is the per-node oracle.
        """
        return self.compiled().verify(
            graph, edge_outputs, colors=colors, edge_inputs=edge_inputs,
            early_exit=early_exit,
        )

    def compiled(self):
        """This problem's cached kernel checker."""
        try:
            return self._compiled_checker
        except AttributeError:
            from .kernel import CompiledBlackWhite

            self._compiled_checker = CompiledBlackWhite(self)
            return self._compiled_checker

    def verify_reference(
        self,
        graph: Graph,
        colors: Sequence[str],
        edge_inputs,
        edge_outputs,
    ) -> LCLResult:
        """The legacy per-node verification loop (differential oracle)."""
        violations: List[Violation] = []
        for u, v in graph.edges():
            if colors[u] == colors[v]:
                violations.append(Violation(u, "not properly 2-colored", f"edge ({u},{v})"))
        if violations:
            return LCLResult(violations)
        for v in graph.nodes():
            pairs = []
            for w in graph.neighbors(v):
                e = frozenset((v, w))
                i = edge_inputs[e]
                o = edge_outputs[e]
                if i not in self.sigma_in:
                    violations.append(Violation(v, "input alphabet", repr(i)))
                if o not in self.sigma_out:
                    violations.append(Violation(v, "output alphabet", repr(o)))
                pairs.append((i, o))
            if not self.allows(colors[v], pairs):
                violations.append(
                    Violation(v, f"{colors[v]}-constraint",
                              repr(self.canonical_pairs(pairs)))
                )
        return LCLResult(violations)


def two_color_tree(graph: Graph, root: int = 0) -> List[str]:
    """The proper 2-coloring of a tree by distance parity from a root."""
    dist = graph.bfs_distances([root])
    return [WHITE if (d or 0) % 2 == 0 else BLACK for d in dist]
