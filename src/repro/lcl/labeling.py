"""k-hierarchical labeling (Definition 63) and weight-augmented
2½-coloring (Definition 67) — the Section-10 machinery that reaches
efficiency factor ``x = 1`` and hence node-averaged ``Theta(n^{1/k})``.

**k-hierarchical labeling.**  Output per node: a label from
``{R_1..R_k, C_1..C_{k-1}}`` plus at most one outgoing edge, encoded as
``(label, out)`` with ``out`` a neighbour handle or ``None``.  The label
order is ``R_1 < C_1 < R_2 < ... < C_{k-1} < R_k``.  Rules 1-6 of
Definition 63 are checked verbatim.

**Weight-augmented 2½-coloring.**  Active nodes solve k-hierarchical
2½-coloring; weight nodes output ``(label, out, secondary)`` where the
``(label, out)`` part solves k-hierarchical labeling on the weight-induced
subgraph and ``secondary`` comes from the active alphabet plus
``Decline``.  The paper's rules 3-5 are implemented in the reading that
makes Lemma 68's proof go through (rules 4 and 5 as literally stated
contradict each other on rake nodes below a declined compress node):

* a weight node adjacent to an active node points to exactly one such
  active neighbour and copies its output (rule 3);
* otherwise a compress-labeled node has secondary ``Decline`` (rule 5);
* otherwise a rake-labeled node pointing at a weight node copies that
  node's secondary — including ``Decline`` (rule 4, as used in the
  Lemma 68 case analysis);
* a rake-labeled sink (no outgoing edge, no active neighbour) may output
  any *non-Decline* active label (only compress nodes originate Decline).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..local.graph import Graph
from .hierarchical import Coloring25
from .levels import compute_levels
from .problem import LCLProblem, LCLResult, Violation
from .weighted import ACTIVE, WEIGHT

__all__ = [
    "rake_label",
    "compress_label",
    "label_order",
    "is_rake",
    "is_compress",
    "HierarchicalLabeling",
    "WeightAugmented25",
    "SECONDARY_DECLINE",
]

SECONDARY_DECLINE = "Decline"


def rake_label(i: int) -> str:
    return f"R{i}"


def compress_label(i: int) -> str:
    return f"C{i}"


def is_rake(label: str) -> bool:
    return isinstance(label, str) and label.startswith("R")


def is_compress(label: str) -> bool:
    return isinstance(label, str) and label.startswith("C")


def label_order(label: str) -> int:
    """Position in ``R1 < C1 < R2 < C2 < ... < Rk``."""
    i = int(label[1:])
    return 2 * (i - 1) if is_rake(label) else 2 * (i - 1) + 1


class HierarchicalLabeling(LCLProblem):
    """The k-hierarchical labeling LCL (Definition 63).

    Outputs are ``(label, out)`` tuples; ``out`` is a neighbour handle or
    ``None``.  Worst-case complexity ``O(n^{1/k})`` (Lemma 65).
    """

    radius = 1

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.sigma_out = frozenset(
            [rake_label(i) for i in range(1, k + 1)]
            + [compress_label(i) for i in range(1, k)]
        )
        self.name = f"{k}-hierarchical labeling"

    def output_in_alphabet(self, out) -> bool:
        return (
            isinstance(out, tuple)
            and len(out) == 2
            and out[0] in self.sigma_out
            and (out[1] is None or isinstance(out[1], int))
        )

    def check_node(self, graph: Graph, outputs: Sequence, v: int) -> List[Violation]:
        return check_labeling_rules(
            graph, outputs, v,
            members=None, get_label=lambda o: o[0], get_out=lambda o: o[1],
        )


def check_labeling_rules(
    graph: Graph,
    outputs: Sequence,
    v: int,
    members: Optional[set],
    get_label,
    get_out,
) -> List[Violation]:
    """Definition 63 rules 1-6 at node ``v``; ``members`` restricts the
    instance to an induced subgraph (None = whole graph)."""

    def inside(u: int) -> bool:
        return members is None or u in members

    bad: List[Violation] = []
    lab = get_label(outputs[v])
    out = get_out(outputs[v])
    nbrs = [w for w in graph.neighbors(v) if inside(w)]

    if out is not None and (out not in nbrs):
        bad.append(Violation(v, "orientation target is not a neighbour",
                             f"out={out}"))
        return bad

    def points_to(u: int, w: int) -> bool:
        return get_out(outputs[u]) == w

    # Rule 1: all edges of rake-labeled nodes are oriented (in >= one dir)
    if is_rake(lab):
        for w in nbrs:
            if not points_to(v, w) and not points_to(w, v):
                bad.append(Violation(v, "rule1: unoriented edge at rake node",
                                     f"edge ({v},{w})"))

    # doubly-oriented edges are contradictory
    for w in nbrs:
        if points_to(v, w) and points_to(w, v):
            bad.append(Violation(v, "doubly oriented edge", f"({v},{w})"))

    same_compress = [
        w for w in nbrs if get_label(outputs[w]) == lab
    ] if is_compress(lab) else []

    # Rule 2: compress nodes with two compress neighbours have no out-edge
    if is_compress(lab) and len(same_compress) >= 2 and out is not None:
        bad.append(Violation(v, "rule2: interior compress node has out-edge"))

    # Rule 3: orientation respects the label order
    if out is not None:
        if label_order(get_label(outputs[out])) < label_order(lab):
            bad.append(Violation(v, "rule3: orientation decreases label",
                                 f"{lab} -> {get_label(outputs[out])}"))

    # Rule 4: each compress label induces disjoint paths
    if is_compress(lab) and len(same_compress) > 2:
        bad.append(Violation(v, "rule4: compress label not a path",
                             f"{len(same_compress)} same-label neighbours"))

    # Rule 5: different compress labels are never adjacent
    if is_compress(lab):
        for w in nbrs:
            wl = get_label(outputs[w])
            if is_compress(wl) and wl != lab:
                bad.append(Violation(v, "rule5: adjacent distinct compress labels",
                                     f"{lab} vs {wl}"))

    # Rule 6: a rake node has at most one compress neighbour pointing at
    # it; if one exists, all pointers carry strictly lower labels
    if is_rake(lab):
        pointing = [w for w in nbrs if points_to(w, v)]
        compress_pointing = [
            w for w in pointing if is_compress(get_label(outputs[w]))
        ]
        if len(compress_pointing) > 1:
            bad.append(Violation(v, "rule6: two compress pointers"))
        if compress_pointing:
            for w in pointing:
                if label_order(get_label(outputs[w])) >= label_order(lab):
                    bad.append(Violation(
                        v, "rule6: pointer label not strictly lower",
                        f"{get_label(outputs[w])} -> {lab}",
                    ))
    return bad


class WeightAugmented25(LCLProblem):
    """k-hierarchical weight-augmented 2½-coloring (Definition 67).

    Active outputs: plain 2½-coloring labels.  Weight outputs:
    ``(label, out, secondary)`` — ``out`` may point at an active
    neighbour (rule 3) or a weight neighbour (the labeling orientation).
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.base = Coloring25(k)
        self.labeling = HierarchicalLabeling(k)
        self.radius = self.base.radius + 1
        self.sigma_in = frozenset({ACTIVE, WEIGHT})
        self.name = f"{k}-hierarchical weight-augmented 2.5-coloring"

    def verify_reference(self, graph: Graph, outputs: Sequence) -> LCLResult:
        if len(outputs) != graph.n:
            raise ValueError("outputs length must equal graph.n")
        violations: List[Violation] = []
        active = set()
        weight = set()
        for v in graph.nodes():
            if graph.input_of(v) == ACTIVE:
                active.add(v)
            elif graph.input_of(v) == WEIGHT:
                weight.add(v)
            else:
                violations.append(Violation(v, "input alphabet"))
        if violations:
            return LCLResult(violations)

        # alphabet shapes
        for v in graph.nodes():
            o = outputs[v]
            if v in active:
                if o not in self.base.sigma_out:
                    violations.append(Violation(v, "active output alphabet", repr(o)))
            else:
                ok = (
                    isinstance(o, tuple)
                    and len(o) == 3
                    and o[0] in self.labeling.sigma_out
                    and (o[1] is None or isinstance(o[1], int))
                    and (o[2] in self.base.sigma_out or o[2] == SECONDARY_DECLINE)
                )
                if not ok:
                    violations.append(Violation(v, "weight output alphabet", repr(o)))
        if violations:
            return LCLResult(violations)

        # Item 1: active side solves 2.5-coloring
        levels = compute_levels(graph, self.k, restrict=active)
        for v in sorted(active):
            violations.extend(
                self.base.check_node_with_levels(graph, levels, outputs, v)
            )

        # Item 2: weight side solves the labeling on the weight subgraph
        # (orientations toward active nodes are rule-3 edges, not labeling
        # edges)
        def w_out(o):
            return o[1] if (o[1] is not None and o[1] in weight) else None

        for v in sorted(weight):
            violations.extend(
                check_labeling_rules(
                    graph, outputs, v, members=weight,
                    get_label=lambda o: o[0],
                    get_out=w_out,
                )
            )

        # Items 3-5: secondary outputs
        for v in sorted(weight):
            lab, out, sec = outputs[v]
            active_nbrs = [w for w in graph.neighbors(v) if w in active]
            if active_nbrs:
                if out not in active_nbrs:
                    violations.append(Violation(
                        v, "rule3: must point at an active neighbour",
                        f"out={out}",
                    ))
                elif sec != outputs[out]:
                    violations.append(Violation(
                        v, "rule3: secondary differs from active output",
                        f"{sec!r} vs {outputs[out]!r}",
                    ))
                continue
            if is_compress(lab):
                if sec != SECONDARY_DECLINE:
                    violations.append(Violation(
                        v, "rule5: compress node away from active must Decline",
                        repr(sec),
                    ))
                continue
            # rake, no active neighbour
            if out is not None and out in weight:
                if sec != outputs[out][2]:
                    violations.append(Violation(
                        v, "rule4: secondary differs from pointed-to node",
                        f"{sec!r} vs {outputs[out][2]!r}",
                    ))
            elif sec == SECONDARY_DECLINE:
                violations.append(Violation(
                    v, "rule5: rake sink cannot originate Decline",
                ))
        return LCLResult(violations)
