"""Level computation for the k-hierarchical problems (Definition 8).

Levels are assigned by iterated peeling of low-degree nodes:

1. ``i = 1``.
2. ``V_i`` = nodes of degree at most 2 in the remaining forest; they get
   level ``i`` and are removed.
3. ``i += 1``; while ``i <= k`` continue from step 2.
4. Every remaining node gets level ``k + 1``.

A node can determine its own level in ``O(k)`` LOCAL rounds (the peeling is
a local process), which is why the k-hierarchical problems are LCLs with
checkability radius ``O(k)``.

Levels depend only on the instance (graph + input restriction), never on
outputs, so the verification kernel (:mod:`repro.lcl.kernel`) computes
them once per graph in its compile step and shares them across every
labeling of a ``verify_batch``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..local import vec
from ..local.graph import Graph

__all__ = ["compute_levels", "level_paths", "nodes_of_level"]


def compute_levels(graph: Graph, k: int, restrict: Optional[Iterable[int]] = None) -> List[int]:
    """Per-node levels in ``1..k+1``; nodes outside ``restrict`` get 0.

    ``restrict`` limits the peeling to an induced subgraph (used by the
    weighted problems, whose active components are leveled independently of
    the weight nodes).

    Dispatches to a flat-array peeling (:func:`_compute_levels_np`) at
    sweep sizes; :func:`_compute_levels_py` is the per-node twin the
    differential tests pin it against.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if vec.use_vector_path(graph.n):
        return _compute_levels_np(graph, k, restrict)
    return _compute_levels_py(graph, k, restrict)


def _compute_levels_np(
    graph: Graph, k: int, restrict: Optional[Iterable[int]]
) -> List[int]:
    """Vectorized peeling: one boolean sweep + one scatter-decrement per
    level instead of per-node neighbour scans."""
    np = vec.np
    n = graph.n
    indptr, indices = vec.csr_arrays(graph)
    if restrict is None:
        active = np.ones(n, dtype=bool)
    else:
        active = np.zeros(n, dtype=bool)
        active[list(restrict)] = True

    level = np.zeros(n, dtype=np.int64)
    alive = active.copy()
    deg = vec.induced_degrees(indptr, indices, active)
    for i in range(1, k + 1):
        peel = alive & (deg <= 2)
        if not peel.any():
            continue
        level[peel] = i
        alive[peel] = False
        _src, nbr = vec.expand_segments(indptr, indices, np.nonzero(peel)[0])
        targets = nbr[alive[nbr]]
        if targets.size:
            np.subtract.at(deg, targets, 1)
    level[alive] = k + 1
    return level.tolist()


def _compute_levels_py(
    graph: Graph, k: int, restrict: Optional[Iterable[int]]
) -> List[int]:
    n = graph.n
    indptr, indices = graph.adjacency()
    if restrict is None:
        active = bytearray([1]) * n
    else:
        active = bytearray(n)
        for v in restrict:
            active[v] = 1

    level = [0] * n
    alive = bytearray(active)
    deg = [0] * n
    for v in range(n):
        if active[v]:
            deg[v] = sum(
                1 for i in range(indptr[v], indptr[v + 1]) if active[indices[i]]
            )

    remaining = [v for v in range(n) if active[v]]
    for i in range(1, k + 1):
        peel = [v for v in remaining if deg[v] <= 2]
        for v in peel:
            level[v] = i
            alive[v] = 0
        for v in peel:
            for j in range(indptr[v], indptr[v + 1]):
                w = indices[j]
                if alive[w]:
                    deg[w] -= 1
        remaining = [v for v in remaining if alive[v]]
    for v in remaining:
        level[v] = k + 1
    return level


def nodes_of_level(levels: List[int], i: int) -> List[int]:
    return [v for v, lv in enumerate(levels) if lv == i]


def level_paths(graph: Graph, levels: List[int], i: int) -> List[List[int]]:
    """Connected components induced by the level-``i`` nodes, each returned
    in path order when it is a path (which peeling guarantees for i <= k:
    peeled nodes had degree <= 2 among same-or-higher levels).

    Components that are single nodes come back as one-element lists.
    """
    members = set(nodes_of_level(levels, i))
    seen = set()
    comps: List[List[int]] = []
    for start in sorted(members):
        if start in seen:
            continue
        comp = _trace_component(graph, members, start)
        seen.update(comp)
        comps.append(comp)
    return comps


def _trace_component(graph: Graph, members: set, start: int) -> List[int]:
    """Collect the component of ``start`` inside ``members``; return it in
    path order if it is a path, otherwise in BFS order."""
    same = lambda v: [w for w in graph.neighbors(v) if w in members]  # noqa: E731
    comp = {start}
    frontier = [start]
    while frontier:
        v = frontier.pop()
        for w in same(v):
            if w not in comp:
                comp.add(w)
                frontier.append(w)
    degs = {v: sum(1 for w in same(v) if w in comp) for v in comp}
    if any(d > 2 for d in degs.values()):
        return sorted(comp)
    endpoints = [v for v in sorted(comp) if degs[v] <= 1]
    if not endpoints:  # cycle: impossible in a tree, defensive
        return sorted(comp)
    order = [min(endpoints)]
    prev = None
    while True:
        nxt = [w for w in same(order[-1]) if w in comp and w != prev]
        if not nxt:
            break
        prev = order[-1]
        order.append(nxt[0])
    return order
