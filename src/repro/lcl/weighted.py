"""The weighted problems ``Pi^Z_{Delta,d,k}`` (Definition 22).

Inputs: every node is labeled ``Active`` or ``Weight``.  Active nodes solve
k-hierarchical Z-coloring (Z in {2.5, 3.5}) on the components induced by
active nodes.  Weight nodes output one of ``Decline | Connect | Copy``; a
``Copy`` node additionally carries a *secondary* output from the active
alphabet.  Correctness (checkability radius ``O(k)``):

1. active components satisfy k-hierarchical Z-coloring;
2. a weight node adjacent to an active node outputs ``Connect`` or ``Copy``;
3. a ``Connect`` weight node has >= 2 neighbours that are active or also
   output ``Connect``;
4. a ``Copy`` node has at most ``d`` neighbours that output ``Decline``;
5. a ``Copy`` weight node with an active neighbour copies the output of at
   least one active neighbour as its secondary output; two adjacent ``Copy``
   weight nodes have identical secondary outputs.

Weight-node outputs are encoded as tuples ``("Decline",)``, ``("Connect",)``
or ``("Copy", secondary)``; active outputs are plain labels.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..local.graph import Graph
from .hierarchical import Coloring25, Coloring35, HierarchicalColoring
from .levels import compute_levels
from .problem import LCLProblem, LCLResult, Violation

__all__ = [
    "ACTIVE", "WEIGHT", "DECLINE", "CONNECT", "COPY",
    "decline", "connect", "copy_of",
    "WeightedColoring", "Weighted25", "Weighted35",
]

ACTIVE = "Active"
WEIGHT = "Weight"
DECLINE = "Decline"
CONNECT = "Connect"
COPY = "Copy"


def decline() -> Tuple[str]:
    return (DECLINE,)


def connect() -> Tuple[str]:
    return (CONNECT,)


def copy_of(secondary) -> Tuple[str, object]:
    return (COPY, secondary)


def primary(label) -> str:
    """Primary part of a weight-node output tuple."""
    return label[0]


def secondary(label):
    """Secondary output of a ``Copy`` tuple, else None."""
    return label[1] if label[0] == COPY else None


class WeightedColoring(LCLProblem):
    """``Pi^Z_{Delta,d,k}``: weighted k-hierarchical Z-coloring."""

    def __init__(self, delta: int, d: int, k: int, variant: str = "2.5") -> None:
        if delta < d + 3:
            raise ValueError("Definition 22 requires delta >= d + 3")
        if d < 1 or k < 1:
            raise ValueError("d and k must be >= 1")
        self.delta = delta
        self.d = d
        self.k = k
        self.variant = variant
        self.base: HierarchicalColoring = (
            Coloring25(k) if variant == "2.5" else Coloring35(k)
        )
        self.radius = self.base.radius + 1
        self.sigma_in = frozenset({ACTIVE, WEIGHT})
        self.name = f"Pi^{variant}_{{D={delta},d={d},k={k}}}"

    # -- alphabets -------------------------------------------------
    def output_in_alphabet(self, label) -> bool:
        if isinstance(label, tuple):
            if label[0] in (DECLINE, CONNECT):
                return len(label) == 1
            if label[0] == COPY:
                return len(label) == 2 and label[1] in self.base.sigma_out
            return False
        return label in self.base.sigma_out

    # -- verification ------------------------------------------------
    def active_levels(self, graph: Graph) -> List[int]:
        """Levels computed inside the active-induced subgraph (0 = weight)."""
        active = [v for v in graph.nodes() if graph.input_of(v) == ACTIVE]
        return compute_levels(graph, self.k, restrict=active)

    def verify_reference(self, graph: Graph, outputs: Sequence) -> LCLResult:
        if len(outputs) != graph.n:
            raise ValueError("outputs length must equal graph.n")
        violations: List[Violation] = []
        for v in graph.nodes():
            if graph.input_of(v) not in (ACTIVE, WEIGHT):
                violations.append(
                    Violation(v, "input alphabet", repr(graph.input_of(v)))
                )
        if violations:
            return LCLResult(violations)

        is_active = [graph.input_of(v) == ACTIVE for v in graph.nodes()]
        for v in graph.nodes():
            label = outputs[v]
            if is_active[v]:
                if isinstance(label, tuple) or label not in self.base.sigma_out:
                    violations.append(
                        Violation(v, "active output alphabet", repr(label))
                    )
            else:
                if not isinstance(label, tuple) or not self.output_in_alphabet(label):
                    violations.append(
                        Violation(v, "weight output alphabet", repr(label))
                    )
        if violations:
            return LCLResult(violations)

        levels = self.active_levels(graph)
        for v in graph.nodes():
            if is_active[v]:
                violations.extend(
                    self.base.check_node_with_levels(graph, levels, outputs, v)
                )
            else:
                violations.extend(self._check_weight_node(graph, outputs, v))
        return LCLResult(violations)

    def check_node(self, graph: Graph, outputs: Sequence, v: int) -> List[Violation]:
        if graph.input_of(v) == ACTIVE:
            levels = self.active_levels(graph)
            return self.base.check_node_with_levels(graph, levels, outputs, v)
        return self._check_weight_node(graph, outputs, v)

    # -- weight-node rules (Properties 2-5) ----------------------------
    def _check_weight_node(self, graph: Graph, outputs: Sequence, v: int) -> List[Violation]:
        bad: List[Violation] = []
        label = outputs[v]
        kind = primary(label)
        indptr, indices = graph.adjacency()
        nbrs = indices[indptr[v]:indptr[v + 1]]
        active_nbrs = [w for w in nbrs if graph.input_of(w) == ACTIVE]

        # Property 2
        if active_nbrs and kind == DECLINE:
            bad.append(Violation(v, "P2: weight node next to active declines"))

        # Property 3
        if kind == CONNECT:
            supporters = sum(
                1
                for w in nbrs
                if graph.input_of(w) == ACTIVE
                or (isinstance(outputs[w], tuple) and primary(outputs[w]) == CONNECT)
            )
            if supporters < 2:
                bad.append(
                    Violation(v, "P3: Connect needs >= 2 active/Connect neighbors",
                              f"have {supporters}")
                )

        # Property 4
        if kind == COPY:
            declines = sum(
                1
                for w in nbrs
                if isinstance(outputs[w], tuple) and primary(outputs[w]) == DECLINE
            )
            if declines > self.d:
                bad.append(
                    Violation(v, "P4: Copy with too many Decline neighbors",
                              f"{declines} > d={self.d}")
                )

        # Property 5
        if kind == COPY:
            sec = secondary(label)
            if active_nbrs and not any(outputs[w] == sec for w in active_nbrs):
                bad.append(
                    Violation(v, "P5: secondary output matches no active neighbor",
                              f"secondary={sec!r}")
                )
            for w in nbrs:
                if (
                    graph.input_of(w) == WEIGHT
                    and isinstance(outputs[w], tuple)
                    and primary(outputs[w]) == COPY
                    and secondary(outputs[w]) != sec
                ):
                    bad.append(
                        Violation(v, "P5: adjacent Copy nodes disagree",
                                  f"{sec!r} vs {secondary(outputs[w])!r}")
                    )
        return bad


class Weighted25(WeightedColoring):
    """``Pi^{2.5}_{Delta,d,k}`` — the polynomial-regime weighted family."""

    def __init__(self, delta: int, d: int, k: int) -> None:
        super().__init__(delta, d, k, "2.5")


class Weighted35(WeightedColoring):
    """``Pi^{3.5}_{Delta,d,k}`` — the ``log*`` regime weighted family."""

    def __init__(self, delta: int, d: int, k: int) -> None:
        super().__init__(delta, d, k, "3.5")
