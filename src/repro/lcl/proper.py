"""Proper c-coloring — the textbook radius-1 LCL.

Not one of the paper's bespoke families, but the constraint the sweep
registry's symmetry-breaking algorithms (canonical 2-coloring,
Cole-Vishkin 3-coloring) actually solve: adjacent nodes get distinct
colors from ``{0, ..., c-1}``.  Registering it as an
:class:`~repro.lcl.problem.LCLProblem` lets ``repro.sweep`` pipe every
produced labeling through the verification kernel and report per-cell
validity counts.
"""

from __future__ import annotations

from typing import List, Sequence

from ..local.graph import Graph
from .problem import LCLProblem, Violation

__all__ = ["ProperColoring"]


class ProperColoring(LCLProblem):
    """Proper node coloring with ``colors`` colors; checkability radius 1."""

    radius = 1

    def __init__(self, colors: int) -> None:
        if colors < 1:
            raise ValueError("colors must be >= 1")
        self.colors = colors
        self.sigma_out = frozenset(range(colors))
        self.name = f"proper {colors}-coloring"

    def check_node(self, graph: Graph, outputs: Sequence, v: int) -> List[Violation]:
        bad: List[Violation] = []
        for w in graph.neighbors(v):
            if outputs[w] == outputs[v]:
                bad.append(Violation(
                    v, "proper: adjacent equal colors", f"({v},{w})"
                ))
        return bad
