"""The LCL problem abstraction.

An LCL problem (Naor–Stockmeyer) is a tuple ``(Sigma_in, Sigma_out, C, r)``:
finite input/output alphabets, a checkability radius ``r``, and a constraint
``C`` that every radius-``r`` neighbourhood of a labeled graph must satisfy.

Enumerating ``C`` as an explicit finite set of labeled balls is possible but
combinatorially enormous; the standard executable equivalent — used
throughout this library — is a *local checker*: a predicate
``check_node(graph, outputs, v)`` that inspects only the radius-``r`` ball
of ``v``.  Each problem family in this package documents its radius and
implements the checker; :class:`Violation` records failures for diagnostics
and failure-injection tests.

Verification runs on two paths.  ``verify``/``verify_batch`` lower the
problem to :mod:`repro.lcl.kernel`'s flat-array CSR pass (interned label
codes, per-graph compile cache, optional ``early_exit``);
``verify_reference`` keeps the literal per-node ``check_node`` loop as the
cross-check oracle, exactly like the simulator's incremental/reference
engine split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence

from ..local.graph import Graph

__all__ = ["Violation", "LCLProblem", "LCLResult"]


@dataclass(frozen=True)
class Violation:
    """A local constraint failure at a node."""

    node: int
    rule: str
    detail: str = ""

    def __str__(self) -> str:
        msg = f"node {self.node}: {self.rule}"
        if self.detail:
            msg += f" ({self.detail})"
        return msg


@dataclass
class LCLResult:
    """Outcome of verifying a labeling: valid flag plus all violations."""

    violations: List[Violation]

    @property
    def valid(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.valid

    def raise_if_invalid(self) -> None:
        if self.violations:
            head = "; ".join(str(v) for v in self.violations[:5])
            more = len(self.violations) - 5
            suffix = f" (+{more} more)" if more > 0 else ""
            raise AssertionError(f"invalid labeling: {head}{suffix}")


class LCLProblem:
    """Base class: a locally checkable labeling problem with a checker.

    Subclasses set :attr:`name`, :attr:`radius`, the alphabets, and
    implement :meth:`check_node`.
    """

    name: str = "lcl"
    radius: int = 1
    sigma_in: FrozenSet = frozenset({None})
    sigma_out: FrozenSet = frozenset()

    def check_node(self, graph: Graph, outputs: Sequence, v: int) -> List[Violation]:
        """Violations of the constraint in the radius-``r`` ball of ``v``."""
        raise NotImplementedError

    def validate_alphabet(self, graph: Graph, outputs: Sequence) -> List[Violation]:
        """Alphabet membership check (part of every LCL's constraint)."""
        bad = []
        for v in graph.nodes():
            if not self.output_in_alphabet(outputs[v]):
                bad.append(Violation(v, "alphabet", f"output {outputs[v]!r}"))
        return bad

    def output_in_alphabet(self, label) -> bool:
        return label in self.sigma_out

    def verify(
        self, graph: Graph, outputs: Sequence, early_exit: bool = False
    ) -> LCLResult:
        """Verify a labeling through the compiled CSR kernel.

        Problems with a registered lowering (every family in this
        package) verify through :mod:`repro.lcl.kernel`'s flat-array
        pass; unknown subclasses fall back to the per-node reference
        path.  ``early_exit`` stops at the first violation instead of
        materializing the full violation list.
        """
        checker = self.compiled()
        if checker is not None:
            return checker.verify(graph, outputs, early_exit=early_exit)
        result = self.verify_reference(graph, outputs)
        if early_exit:
            return LCLResult(result.violations[:1])
        return result

    def verify_batch(
        self,
        graph: Graph,
        outputs_list: Sequence[Sequence],
        early_exit: bool = False,
    ) -> List[LCLResult]:
        """Verify many labelings of one graph, amortizing the per-graph
        compile work (levels, input partition, interners) across the
        batch — the shape ``LocalSimulator.run_batch`` produces."""
        checker = self.compiled()
        if checker is not None:
            return checker.verify_batch(graph, outputs_list,
                                        early_exit=early_exit)
        return [
            self.verify(graph, outputs, early_exit=early_exit)
            for outputs in outputs_list
        ]

    def compiled(self):
        """This problem's cached kernel :class:`~repro.lcl.kernel.CompiledChecker`
        (None when no lowering is registered for the exact type)."""
        try:
            return self._compiled_checker
        except AttributeError:
            from .kernel import compile_checker

            self._compiled_checker = compile_checker(self)
            return self._compiled_checker

    def verify_reference(self, graph: Graph, outputs: Sequence) -> LCLResult:
        """The legacy per-node verification path: alphabet pass, then
        ``check_node`` over every node.  Kept as the executable
        definition of the constraint — the oracle the kernel is
        differentially tested against."""
        if len(outputs) != graph.n:
            raise ValueError("outputs length must equal graph.n")
        violations = self.validate_alphabet(graph, outputs)
        if not violations:
            for v in graph.nodes():
                violations.extend(self.check_node(graph, outputs, v))
        return LCLResult(violations)
