"""The weighted lower-bound construction (Definition 25, Figure 4).

Take the Definition-18 graph ``G'`` on ``n' = n/k`` nodes (lengths scaled by
``k^{-1/k}``), then for every level ``i in {2..k}`` distribute ``n/k``
weight nodes evenly over the level-``i`` nodes as balanced ``delta``-regular
trees (one tree per node).  Nodes of ``G'`` get input ``Active``, tree nodes
get ``Weight`` — a valid instance of ``Pi^Z_{delta,d,k}`` with a linear
amount of weight resting on every level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..lcl.weighted import ACTIVE, WEIGHT
from ..local.graph import Graph
from .lowerbound import LowerBoundGraph, build_lower_bound_graph
from .trees import weight_tree_edges

__all__ = ["WeightedInstance", "build_weighted_construction"]


@dataclass
class WeightedInstance:
    """A ``Pi^Z`` instance: graph with Active/Weight inputs plus metadata.

    ``core`` is the underlying Definition-18 construction (handles of the
    active nodes coincide with the core graph's handles);
    ``tree_of[a]`` lists the weight-node handles attached to active node
    ``a`` (empty for level-1 nodes).
    """

    graph: Graph
    core: LowerBoundGraph
    delta: int
    tree_of: Dict[int, List[int]]

    @property
    def n(self) -> int:
        return self.graph.n

    def active_nodes(self) -> List[int]:
        return list(range(self.core.graph.n))

    def weight_nodes(self) -> List[int]:
        return list(range(self.core.graph.n, self.graph.n))


def build_weighted_construction(
    lengths: Sequence[int],
    delta: int,
    weight_per_level: int,
) -> WeightedInstance:
    """Build Definition 25 from explicit core path lengths.

    ``lengths`` are the (already scaled) ``l'_1..l'_k`` of the core graph;
    ``weight_per_level`` is the number of weight nodes to spread over each
    of the levels ``2..k`` (the paper's ``n/k``).
    """
    if delta < 3:
        raise ValueError("delta must be >= 3")
    core = build_lower_bound_graph(lengths)
    k = core.k
    edges: List[Tuple[int, int]] = list(core.graph.edges())
    next_handle = core.graph.n
    tree_of: Dict[int, List[int]] = {}

    for i in range(2, k + 1):
        targets = core.nodes_of_intended_level(i)
        if not targets or weight_per_level <= 0:
            continue
        per_node = weight_per_level // len(targets)
        extra = weight_per_level - per_node * len(targets)
        for idx, a in enumerate(targets):
            w = per_node + (1 if idx < extra else 0)
            if w == 0:
                continue
            first = next_handle
            tree_edges, next_handle = weight_tree_edges(w, delta, a, first)
            edges.extend(tree_edges)
            tree_of[a] = list(range(first, next_handle))

    n_total = next_handle
    inputs = [ACTIVE] * core.graph.n + [WEIGHT] * (n_total - core.graph.n)
    graph = Graph(n_total, edges, inputs)
    return WeightedInstance(graph=graph, core=core, delta=delta, tree_of=tree_of)
