"""Lower-bound constructions and workload generators."""

from .lowerbound import LowerBoundGraph, build_lower_bound_graph, paper_lengths
from .trees import caterpillar, random_forest_inputs, random_tree, weight_tree_edges
from .weighted import WeightedInstance, build_weighted_construction

__all__ = [
    "LowerBoundGraph",
    "build_lower_bound_graph",
    "paper_lengths",
    "caterpillar",
    "random_forest_inputs",
    "random_tree",
    "weight_tree_edges",
    "WeightedInstance",
    "build_weighted_construction",
]
