"""The k-hierarchical lower-bound graph (Definition 18, Figure 3).

Recursive construction from lengths ``l_1, ..., l_k``: start with a path of
``l_k`` nodes (level ``k``); then for ``i = k-1, ..., 1``, hang a fresh path
of ``l_i`` nodes (by one endpoint) off *every* node of every level-``(i+1)``
path.  Total size ``prod_i l_i``; the set of level-``i`` nodes has size
``Theta(prod_{j >= i} l_j)`` (Corollary 19).

Note the paper's own off-by-constant: the outermost nodes of a level-``i``
path have degree 2 even before lower levels peel, so the peeling of
Definition 8 assigns them level ``i - 1`` (Figure 3 writes the level-2 path
as having length ``n/sqrt(log* n) - 2`` for exactly this reason).  The
construction here is verbatim Definition 18; tests assert the level-set
sizes up to those O(1)-per-path leaks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..local.graph import Graph
from ..analysis.mathutil import log_star

__all__ = ["LowerBoundGraph", "build_lower_bound_graph", "paper_lengths"]


@dataclass
class LowerBoundGraph:
    """The constructed graph plus its intended level structure.

    ``intended_level[v]`` is the construction level (which the peeling of
    Definition 8 matches up to the boundary leaks described above);
    ``paths_by_level[i]`` lists each level-``i`` path in path order.
    """

    graph: Graph
    lengths: Tuple[int, ...]
    intended_level: List[int]
    paths_by_level: Dict[int, List[List[int]]] = field(default_factory=dict)

    @property
    def k(self) -> int:
        return len(self.lengths)

    def nodes_of_intended_level(self, i: int) -> List[int]:
        return [v for v, lv in enumerate(self.intended_level) if lv == i]


def build_lower_bound_graph(lengths: Sequence[int]) -> LowerBoundGraph:
    """Build the Definition-18 graph for ``lengths = (l_1, ..., l_k)``."""
    if not lengths or any(l < 1 for l in lengths):
        raise ValueError("need k >= 1 positive lengths")
    k = len(lengths)
    edges: List[Tuple[int, int]] = []
    intended: List[int] = []
    paths_by_level: Dict[int, List[List[int]]] = {i: [] for i in range(1, k + 1)}

    def new_path(length: int, level: int) -> List[int]:
        start = len(intended)
        handles = list(range(start, start + length))
        intended.extend([level] * length)
        edges.extend((handles[j], handles[j + 1]) for j in range(length - 1))
        paths_by_level[level].append(handles)
        return handles

    frontier = [new_path(lengths[k - 1], k)]
    for i in range(k - 1, 0, -1):
        next_frontier = []
        for path in frontier:
            for v in path:
                child = new_path(lengths[i - 1], i)
                edges.append((v, child[0]))
                next_frontier.append(child)
        frontier = next_frontier

    graph = Graph(len(intended), edges)
    return LowerBoundGraph(
        graph=graph,
        lengths=tuple(lengths),
        intended_level=intended,
        paths_by_level=paths_by_level,
    )


def paper_lengths(
    n_target: int, alphas: Sequence[float], regime: str = "poly"
) -> List[int]:
    """Lengths ``l_1..l_k`` from the optimal exponent vector.

    ``regime='poly'``: ``l_i = n^{alpha_i}`` (Section 6.1);
    ``regime='logstar'``: ``l_i = (log* n)^{alpha_i}`` (Section 6.2);
    in both cases ``l_k`` absorbs the remainder so that
    ``prod l_i ~ n_target``.  Every length is clamped to >= 2.
    """
    if n_target < 4:
        raise ValueError("n_target too small")
    if regime == "poly":
        base = float(n_target)
    elif regime == "logstar":
        base = float(max(2, log_star(n_target)))
    else:
        raise ValueError("regime must be 'poly' or 'logstar'")
    lower = [max(2, int(round(base**a))) for a in alphas]
    prod = math.prod(lower)
    l_k = max(2, n_target // prod)
    return lower + [l_k]
