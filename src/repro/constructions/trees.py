"""Tree builders: weight trees, random trees, caterpillars.

:func:`attach_weight_tree` realizes the paper's "balanced Delta-regular tree
of w weight nodes attached to an active node" (Lemma 23): the root hangs off
the active node, every weight node has at most ``delta - 1`` children, and
levels fill breadth-first so the tree is as balanced as ``w`` allows.
"""

from __future__ import annotations

import random
from collections import deque
from typing import List, Optional, Tuple

from ..local.graph import Graph
from ..parallel import stable_seed

__all__ = [
    "weight_tree_edges",
    "random_tree",
    "caterpillar",
    "random_forest_inputs",
]


def weight_tree_edges(
    w: int, delta: int, root_handle: int, first_handle: int
) -> Tuple[List[Tuple[int, int]], int]:
    """Edges of a balanced ``delta``-regular tree with ``w`` nodes whose
    root attaches to ``root_handle``.

    New nodes take handles ``first_handle, first_handle+1, ...``; the root
    of the weight tree is ``first_handle`` (edge to ``root_handle``
    included).  Every node gets at most ``delta - 1`` children, so the
    attached node's degree budget is respected.  Returns ``(edges,
    next_free_handle)``.
    """
    if w <= 0:
        return [], first_handle
    if delta < 2:
        raise ValueError("delta must be >= 2")
    edges = [(root_handle, first_handle)]
    frontier = deque([first_handle])
    next_handle = first_handle + 1
    remaining = w - 1
    while remaining > 0:
        parent = frontier.popleft()
        for _ in range(delta - 1):
            if remaining == 0:
                break
            edges.append((parent, next_handle))
            frontier.append(next_handle)
            next_handle += 1
            remaining -= 1
    return edges, next_handle


def random_tree(n: int, max_degree: int = 4, rng: Optional[random.Random] = None) -> Graph:
    """A uniform-ish random tree with bounded degree (random attachment
    among nodes with spare degree).

    Also the builder behind the ``bounded_tree_d3`` family in
    :mod:`repro.families`.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    # no rng given: a deterministic function of the shape parameters
    # (DET001 — unseeded entropy is banned in library code)
    rng = rng or random.Random(
        stable_seed("repro.constructions.random_tree", n, max_degree))
    edges: List[Tuple[int, int]] = []
    degree = [0] * n
    candidates = [0]
    for v in range(1, n):
        if not candidates:
            raise ValueError("degree budget exhausted; raise max_degree")
        i = rng.randrange(len(candidates))
        parent = candidates[i]
        edges.append((parent, v))
        degree[parent] += 1
        degree[v] += 1
        if degree[parent] >= max_degree:
            # swap-pop: the candidate list is a set, order is irrelevant
            candidates[i] = candidates[-1]
            candidates.pop()
        if degree[v] < max_degree:
            candidates.append(v)
    return Graph(n, edges)


def caterpillar(spine: int, legs: int) -> Graph:
    """A caterpillar: a spine path with ``legs`` pendant nodes per spine
    node.  A classic worst case for peeling-based level computations."""
    if spine < 1 or legs < 0:
        raise ValueError("need spine >= 1 and legs >= 0")
    edges = [(i, i + 1) for i in range(spine - 1)]
    handle = spine
    for s in range(spine):
        for _ in range(legs):
            edges.append((s, handle))
            handle += 1
    return Graph(handle, edges)


def random_forest_inputs(
    graph: Graph, weight_fraction: float, rng: Optional[random.Random] = None
) -> List[str]:
    """Random Active/Weight input assignment (for fuzzing the weighted
    problem checkers)."""
    from ..lcl.weighted import ACTIVE, WEIGHT

    rng = rng or random.Random(stable_seed(
        "repro.constructions.random_forest_inputs", graph.n, weight_fraction))
    return [
        WEIGHT if rng.random() < weight_fraction else ACTIVE
        for _ in graph.nodes()
    ]
