"""Parallel family sweeps: measure ``AVG_V`` as the paper defines it.

The node-averaged complexity of an algorithm is a supremum over a graph
family *and* an ID assignment (``AVG_V(A) = max_{G} (1/|V|) sum_v T_v``,
:mod:`repro.local.metrics`).  A :class:`SweepRunner` estimates that sup
empirically: it draws ``instances`` seeded graphs per ``(family, n)`` cell
from :mod:`repro.families`, runs every registered algorithm over
``samples`` ID assignments per instance
(:meth:`~repro.local.simulator.LocalSimulator.run_batch`, so the
BFS-layer atlas is shared across the ID samples of an instance), and
aggregates ``max``/``mean`` of the node-averaged and worst-case
complexity per cell.  The ID assignments form an axis of their own
(``id_mode``): digest-seeded random draws by default, or one of the
deterministic adversarial assignments in
:data:`repro.local.ids.ID_MODES`.  Executions default to
``engine="auto"``: the batched engine for every algorithm that supports
it, incremental for the rest, recorded per run in the trace meta.

Validity
--------
Complexity numbers are only meaningful for *correct* labelings, so every
algorithm that declares the LCL it solves (``AlgorithmSpec.problem``) has
each produced labeling verified through the compiled checker kernel
(:mod:`repro.lcl.kernel`; ``verify_batch`` amortizes the per-graph
compile across the instance's ID samples, ``early_exit`` keeps invalid
labelings cheap).  Cells report ``validity: {valid, violations}`` run
counts — ``null`` for algorithms without a declared problem — and
``python -m repro.sweep --check`` exits nonzero on any violation.

Parallelism and determinism
---------------------------
Work is chunked *by instance*: one task = one ``(family, n, instance,
algorithm)`` unit, fanned over a ``multiprocessing`` pool (fork context —
workers inherit dynamically registered families and algorithms).  Every
graph and every ID assignment is derived from a stable digest of
``(family, n, seed, instance, sample)``, and per-cell run sequences are
re-assembled in task order, so ``workers=1`` and ``workers=8`` produce
**byte-identical** JSON — the worker count only changes wall-clock time.
Graphs are rebuilt inside the worker from ``(name, n, seed, index)``
instead of being pickled over IPC.

CLI
---
::

    python -m repro.sweep --family random_tree --sizes 64,256 \
        --algorithms two_coloring --workers 4 --seed 0 --out sweep.json

``--algorithms`` names come from :data:`ALGORITHMS`; add project-specific
entries with :func:`register_algorithm` (benchmarks do this for the
paper's constructions).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .families import FAMILIES, Family, get_family, register_family
from .parallel import fork_map, stable_digest, stable_seed
from .shm import SharedGraphPool, shared_graph, worker_attach_specs
from .store import ResultStore, StoreKey, as_store, atomic_write_text
from .local.graph import Graph
from .local.ids import ID_MODES, id_space_size, make_ids
from .local.metrics import ExecutionTrace
from .local.simulator import ENGINES, LocalSimulator, resolve_auto_engine

#: ``engine`` choices for sweeps: the simulator engines plus ``"auto"``,
#: which resolves per algorithm — batched for algorithms that implement
#: ``decide_batch`` (and message algorithms, whose shared global dynamics
#: already are the batched execution), incremental otherwise.  The engine
#: actually used is recorded per run in ``ExecutionTrace.meta["engine"]``.
ENGINE_CHOICES = ENGINES + ("auto",)

__all__ = [
    "AlgorithmSpec",
    "ALGORITHMS",
    "register_algorithm",
    "get_algorithm",
    "SweepRunner",
    "unit_key",
    "main",
]


# ----------------------------------------------------------------------
# algorithm registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AlgorithmSpec:
    """A named sweep algorithm.

    Exactly one of the two runners must be set: ``factory(n)`` builds a
    :class:`LocalAlgorithm`/:class:`MessageAlgorithm` executed through
    ``LocalSimulator.run_batch`` (the default path), while
    ``fast_forward(graph, ids)`` computes the same trace centrally for
    algorithms whose simulator runs would be infeasible at sweep sizes.

    ``problem(n)`` optionally names the LCL the algorithm solves: a
    factory returning a :class:`repro.lcl.kernel.Verifier` (any ported
    :class:`~repro.lcl.problem.LCLProblem`).  When set, the sweep pipes
    every produced labeling through ``verify_batch`` on the compiled
    checker kernel and reports per-cell validity counts.
    """

    name: str
    factory: Optional[Callable[[int], object]] = None
    fast_forward: Optional[Callable[[Graph, List[int]], ExecutionTrace]] = None
    problem: Optional[Callable[[int], object]] = None
    description: str = ""

    def __post_init__(self) -> None:
        if (self.factory is None) == (self.fast_forward is None):
            raise ValueError(
                f"algorithm {self.name!r} needs exactly one of "
                "factory / fast_forward"
            )


ALGORITHMS: Dict[str, AlgorithmSpec] = {}


def register_algorithm(spec: AlgorithmSpec, overwrite: bool = False) -> AlgorithmSpec:
    if not overwrite and spec.name in ALGORITHMS:
        raise ValueError(f"algorithm {spec.name!r} already registered")
    ALGORITHMS[spec.name] = spec
    return spec


def get_algorithm(name: str) -> AlgorithmSpec:
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {sorted(ALGORITHMS)}"
        ) from None


def _make_two_coloring(n: int):
    from .algorithms import CanonicalTwoColoring

    return CanonicalTwoColoring()


def _make_cole_vishkin(n: int):
    from .algorithms import ColeVishkin3Coloring

    return ColeVishkin3Coloring()


def _proper_coloring_problem(colors: int):
    from .lcl import ProperColoring

    def make(n: int):
        return ProperColoring(colors)

    return make


def _make_wait_whole_graph(n: int):
    from .algorithms import WaitForWholeGraph

    def degrees(graph: Graph, ids: Sequence[int]) -> List[int]:
        return [graph.degree(v) for v in graph.nodes()]

    return WaitForWholeGraph(degrees)


def _make_rake_layering(n: int):
    from .algorithms import RakeCompressLayering

    return RakeCompressLayering(gamma=1, ell=2)


def _two_coloring_fast_forward(graph: Graph, ids: List[int]) -> ExecutionTrace:
    from .algorithms import two_coloring_fast_forward

    colors, rounds = two_coloring_fast_forward(graph, ids)
    return ExecutionTrace(rounds=rounds, outputs=colors,
                          algorithm="canonical-2coloring-ff")


def _cv3_path_fast_forward(graph: Graph, ids: List[int]) -> ExecutionTrace:
    from .algorithms import three_color_path

    if graph.m != graph.n - 1 or any(v != u + 1 for u, v in graph.edges()):
        raise ValueError("cv3_path_ff runs on canonical path graphs only")
    colors, rounds = three_color_path(ids, id_space_size(graph.n))
    return ExecutionTrace(rounds=[rounds] * graph.n, outputs=colors,
                          algorithm="cole-vishkin-3coloring-ff")


def _weighted_problem(variant: str, delta: int, d: int, k: int):
    def make(n: int):
        from .lcl import Weighted25, Weighted35

        cls = Weighted25 if variant == "2.5" else Weighted35
        return cls(delta, d, k)

    return make


def _weighted25_fast_forward(graph: Graph, ids: List[int]) -> ExecutionTrace:
    from .algorithms import run_apoly

    return run_apoly(graph, list(ids), 5, 2, 2)


def _weighted35_fast_forward(graph: Graph, ids: List[int]) -> ExecutionTrace:
    from .algorithms import run_weighted35

    return run_weighted35(graph, list(ids), 6, 3, 2)


def _make_weighted25_replay(n: int):
    from .algorithms import replay_apoly

    return replay_apoly(5, 2, 2)


def _make_weighted35_replay(n: int):
    from .algorithms import replay_weighted35

    return replay_weighted35(6, 3, 2)


for _spec in (
    AlgorithmSpec("two_coloring", factory=_make_two_coloring,
                  problem=_proper_coloring_problem(2),
                  description="canonical 2-coloring of forests (Theta(n) avg)"),
    AlgorithmSpec("cole_vishkin", factory=_make_cole_vishkin,
                  problem=_proper_coloring_problem(3),
                  description="Cole-Vishkin 3-coloring (max degree <= 2)"),
    AlgorithmSpec("wait_whole_graph", factory=_make_wait_whole_graph,
                  description="gather-everything baseline (Theta(diameter))"),
    AlgorithmSpec("rake_layering", factory=_make_rake_layering,
                  description="rake-and-compress layering on forests "
                  "(staggered commits, O(log n) rounds at gamma=1)"),
    AlgorithmSpec("two_coloring_ff", fast_forward=_two_coloring_fast_forward,
                  problem=_proper_coloring_problem(2),
                  description="fast-forward canonical 2-coloring"),
    AlgorithmSpec("cv3_path_ff", fast_forward=_cv3_path_fast_forward,
                  problem=_proper_coloring_problem(3),
                  description="fast-forward Cole-Vishkin on canonical paths"),
    AlgorithmSpec("weighted25_ff", fast_forward=_weighted25_fast_forward,
                  problem=_weighted_problem("2.5", 5, 2, 2),
                  description="Theorem 2 (E4): Pi^{2.5} solver at "
                  "(5, 2, 2), centralized fast-forward"),
    AlgorithmSpec("weighted25_replay", factory=_make_weighted25_replay,
                  problem=_weighted_problem("2.5", 5, 2, 2),
                  description="Theorem 2 (E4) solver replayed through the "
                  "batched engine (engine-contract bookkeeping on)"),
    AlgorithmSpec("weighted35_ff", fast_forward=_weighted35_fast_forward,
                  problem=_weighted_problem("3.5", 6, 3, 2),
                  description="Theorem 5 (E5): Pi^{3.5} solver at "
                  "(6, 3, 2), centralized fast-forward"),
    AlgorithmSpec("weighted35_replay", factory=_make_weighted35_replay,
                  problem=_weighted_problem("3.5", 6, 3, 2),
                  description="Theorem 5 (E5) solver replayed through the "
                  "batched engine (engine-contract bookkeeping on)"),
):
    register_algorithm(_spec)
del _spec


# ----------------------------------------------------------------------
# tasks and workers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Task:
    family: str
    n: int
    index: int
    algorithm: str
    samples: int
    seed: int
    engine: str
    id_mode: str
    check: bool
    # zero-copy substrate: the instance's SharedGraphPool key (None on the
    # rebuild path) and the first ID-sample this task covers — shared
    # graphs make per-sample tasks cheap, so sweeps with few cells can
    # still fan out across samples
    graph_key: Optional[str] = None
    sample_base: int = 0


def _sample_seed(family: str, n: int, seed: int, index: int, sample: int) -> int:
    """Stable cross-process seed for one ID draw; independent of the
    algorithm so every algorithm of a cell sees identical IDs."""
    return stable_seed("ids", family, n, seed, index, sample)


def _sample_chunks(samples: int, parts: int) -> Tuple[Tuple[int, int], ...]:
    """Split ``range(samples)`` into ``parts`` contiguous ``(base, count)``
    ranges (first chunks one larger on uneven splits)."""
    parts = max(1, min(parts, samples))
    size, extra = divmod(samples, parts)
    chunks = []
    start = 0
    for i in range(parts):
        count = size + (1 if i < extra else 0)
        chunks.append((start, count))
        start += count
    return tuple(chunks)


def _run_task(
    task: _Task,
) -> Tuple[int, List[Tuple[float, int]], Optional[List[bool]]]:
    """One (instance, algorithm, sample-range) unit: resolve the graph —
    a zero-copy shared-memory attach when the task carries a pool key,
    a rebuild from ``(family, n, seed, index)`` otherwise — run the
    task's ID samples (sharing the topology atlas via ``run_batch``),
    return the instance's actual node count, per-sample
    ``(node_averaged, worst_case)``, and — when the algorithm declares
    its LCL and checking is on — per-sample validity verdicts from the
    checker kernel (``verify_batch`` shares the per-graph compile across
    the ID samples; ``early_exit`` keeps invalid labelings cheap)."""
    graph = shared_graph(task.graph_key) if task.graph_key else None
    if graph is None:
        family = get_family(task.family)
        graph = family.instance(task.n, task.seed, task.index)
    # deterministic id modes (declared on their ID_MODES entry) ignore the
    # rng and would repeat the same assignment for every sample — simulate
    # it once and replicate the per-sample results instead (aggregates are
    # over identical values either way, so the payload is unchanged);
    # rng-consuming modes draw digest-seeded assignments per sample
    deterministic = ID_MODES[task.id_mode].deterministic
    effective_samples = 1 if deterministic else task.samples
    id_samples = [
        make_ids(task.id_mode, graph.n, rng=random.Random(
            _sample_seed(task.family, task.n, task.seed, task.index, s)))
        for s in range(task.sample_base, task.sample_base + effective_samples)
    ]
    spec = get_algorithm(task.algorithm)
    if spec.fast_forward is not None:
        traces = [spec.fast_forward(graph, ids) for ids in id_samples]
    else:
        algorithm = spec.factory(graph.n)
        engine = task.engine
        if engine == "auto":
            engine = resolve_auto_engine(algorithm)
        traces = LocalSimulator(engine=engine).run_batch(
            graph, algorithm, id_samples
        )
    valid: Optional[List[bool]] = None
    if task.check and spec.problem is not None:
        verifier = spec.problem(graph.n)
        valid = [
            bool(result)
            for result in verifier.verify_batch(
                graph, [t.outputs for t in traces], early_exit=True
            )
        ]
    runs = [(t.node_averaged(), t.worst_case()) for t in traces]
    if deterministic and task.samples > 1:
        runs = runs * task.samples
        if valid is not None:
            valid = valid * task.samples
    return (graph.n, runs, valid)


def _task_label(task: _Task) -> str:
    """Human-readable fork_map label: names the failing sweep unit."""
    return (f"sweep {task.family}/n={task.n}/{task.algorithm} "
            f"instance {task.index} samples "
            f"{task.sample_base}..{task.sample_base + task.samples - 1}")


# ----------------------------------------------------------------------
# the result store: one entry per (instance, algorithm) unit
# ----------------------------------------------------------------------
#: a sweep work unit: ``(family, n, algorithm, index)``
_Unit = Tuple[str, int, str, int]


def unit_key(
    store: ResultStore,
    family: str,
    n: int,
    seed: int,
    index: int,
    algorithm: str,
    engine: str,
    id_mode: str,
    check: bool,
    samples: int,
) -> StoreKey:
    """The content address of one sweep unit — every value the unit's
    measured runs are a function of.  Shared with :mod:`repro.serve`,
    which must reconstruct exactly these keys to answer queries."""
    return store.key("sweep-unit", family, n, seed, index, algorithm,
                     engine, id_mode, check, samples)


def _encode_unit(result: Tuple[int, List, Optional[List[bool]]]) -> Dict:
    instance_n, runs, valid = result
    return {"n": instance_n, "runs": [list(r) for r in runs],
            "valid": valid}


def _decode_unit(payload: object) -> Optional[Tuple]:
    """Validate a stored unit payload; ``None`` (→ miss, recompute) on
    any shape surprise, so a wrong-schema entry can never poison an
    aggregate."""
    if not isinstance(payload, dict):
        return None
    instance_n, runs, valid = (payload.get("n"), payload.get("runs"),
                               payload.get("valid"))
    if not isinstance(instance_n, int) or not isinstance(runs, list):
        return None
    if not all(isinstance(r, list) and len(r) == 2 for r in runs):
        return None
    if valid is not None and not (
            isinstance(valid, list) and all(isinstance(v, bool) for v in valid)):
        return None
    return (instance_n, [tuple(r) for r in runs], valid)


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class SweepRunner:
    """Fan a family x sizes x algorithms sweep over worker processes.

    Parameters
    ----------
    workers:
        Process count; ``1`` runs in-process (no pool).  Aggregates are
        byte-identical for every worker count.
    samples:
        Random ID assignments per instance.
    instances:
        Instances per ``(family, n)`` cell; ``None`` uses each family's
        ``default_count``.
    engine:
        Simulator engine for factory-based algorithms; the default
        ``"auto"`` picks the batched engine for every algorithm that
        supports it (see :data:`ENGINE_CHOICES`) and incremental for the
        rest.  The engine each run actually used is recorded in its
        trace's ``meta["engine"]``.
    id_mode:
        Named ID-assignment mode (:data:`repro.local.ids.ID_MODES`):
        ``"random"`` (default) draws digest-seeded random assignments;
        the adversarial modes (``descending``, ``bit_reversal``,
        ``boundary_clustered``, ``sequential``) are deterministic — the
        node-averaged measure is a sup over ID assignments too, so they
        form a sweep axis.  With a deterministic mode every sample of an
        instance sees the same IDs, so each instance is simulated once
        and the result replicated to ``samples`` (the payload is
        unchanged, the redundant work is not done).
    check:
        Verify every produced labeling against the algorithm's declared
        LCL (``AlgorithmSpec.problem``) through the compiled checker
        kernel and record per-cell validity counts.  Algorithms without
        a declared problem report ``validity: null``.
    shared:
        Zero-copy substrate switch.  ``True`` builds every instance once
        in the parent and publishes its CSR arrays through
        :class:`repro.shm.SharedGraphPool`, so workers attach views
        instead of rebuilding; it also splits rng-mode tasks across ID
        samples when the sweep has fewer (instance, algorithm) units than
        workers (attachment makes per-sample tasks cheap).  ``False``
        always rebuilds in the worker.  The default ``None`` resolves to
        ``workers > 1``.  The emitted payload is byte-identical either
        way — sharing is an optimisation, never a semantic switch.
    store:
        Content-addressed result store (a :class:`repro.store.ResultStore`,
        a directory path, or ``None`` to disable).  With a store, every
        ``(family, n, seed, index, algorithm, engine, id_mode, check,
        samples)`` unit is looked up before fan-out; only misses
        simulate (through the shm substrate as usual) and are written
        back.  The JSON aggregates are **byte-identical whether the
        store is cold, warm or disabled, at any worker count** — hit and
        miss counts live in :attr:`last_cache`, never in the payload.
    """

    def __init__(
        self,
        workers: int = 1,
        samples: int = 3,
        instances: Optional[int] = None,
        engine: str = "auto",
        id_mode: str = "random",
        check: bool = True,
        shared: Optional[bool] = None,
        store: Union[None, str, ResultStore] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if samples < 1:
            raise ValueError("samples must be >= 1")
        if instances is not None and instances < 1:
            raise ValueError("instances must be >= 1")
        if engine not in ENGINE_CHOICES:
            raise ValueError(f"unknown engine {engine!r}")
        if id_mode not in ID_MODES:
            raise ValueError(
                f"unknown id mode {id_mode!r}; known: {sorted(ID_MODES)}"
            )
        self.workers = workers
        self.samples = samples
        self.instances = instances
        self.engine = engine
        self.id_mode = id_mode
        self.check = check
        self.shared = workers > 1 if shared is None else bool(shared)
        self.store = as_store(store)
        #: after each :meth:`run`: ``{"hits": ..., "misses": ...}`` when
        #: a store is wired, ``None`` otherwise — deliberately outside
        #: the payload so cold/warm/disabled runs emit identical bytes
        self.last_cache: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    def run(
        self,
        families: Sequence[Union[str, Family]],
        sizes: Sequence[int],
        algorithms: Sequence[str],
        seed: int = 0,
    ) -> Dict:
        """Execute the sweep and return the aggregate payload (a plain
        JSON-serializable dict; see :meth:`run_json`)."""
        family_names = []
        for f in families:
            if isinstance(f, Family):
                # make ad-hoc families resolvable by name inside fork workers
                if FAMILIES.get(f.name) is not f:
                    register_family(f, overwrite=True)
                family_names.append(f.name)
            else:
                get_family(f)  # fail fast on typos
                family_names.append(f)
        for a in algorithms:
            get_algorithm(a)
        if not family_names or not sizes or not algorithms:
            raise ValueError("families, sizes and algorithms must be non-empty")

        counts = {
            name: self.instances or get_family(name).default_count
            for name in family_names
        }
        cells: List[Tuple[str, int, str]] = []
        units: List[_Unit] = []
        for name in family_names:
            for n in sizes:
                for algo in algorithms:
                    cells.append((name, n, algo))
                    for index in range(counts[name]):
                        units.append((name, n, algo, index))
        if len(set(cells)) != len(cells):
            raise ValueError(
                "duplicate (family, n, algorithm) cells — repeated "
                "entries in families/sizes/algorithms would "
                "double-count runs"
            )

        # partition into store hits and misses; only misses simulate
        unit_results: Dict[_Unit, Tuple] = {}
        if self.store is not None:
            for u in units:
                payload = self.store.get(self._unit_key(u, seed))
                decoded = None if payload is None else _decode_unit(payload)
                if decoded is not None:
                    unit_results[u] = decoded
        miss_units = [u for u in units if u not in unit_results]
        self.last_cache = None if self.store is None else {
            "hits": len(units) - len(miss_units),
            "misses": len(miss_units),
        }

        if miss_units:
            pool = SharedGraphPool() if self.shared else None
            try:
                tasks = self._build_tasks(miss_units, seed, pool)
                results = self._map(tasks, pool)
            finally:
                if pool is not None:
                    pool.close()
            # re-assemble sample chunks per unit (tasks are emitted in
            # sample_base-ascending order per unit, zip preserves it)
            fresh: Dict[_Unit, List] = {}
            for task, (instance_n, runs, valid) in zip(tasks, results):
                u = (task.family, task.n, task.algorithm, task.index)
                entry = fresh.setdefault(u, [instance_n, [], []])
                entry[1].extend(runs)
                if valid is None:
                    entry[2] = None
                elif entry[2] is not None:
                    entry[2].extend(valid)
            for u in miss_units:
                instance_n, runs, valid = fresh[u]
                unit_results[u] = (instance_n, runs, valid)
                if self.store is not None:
                    self.store.put(self._unit_key(u, seed),
                                   _encode_unit((instance_n, runs, valid)))

        per_cell: Dict[Tuple[str, int, str], List[Tuple[float, int]]] = {
            cell: [] for cell in cells
        }
        cell_sizes: Dict[Tuple[str, int, str], List[int]] = {
            cell: [] for cell in cells
        }
        cell_valid: Dict[Tuple[str, int, str], Optional[List[bool]]] = {
            cell: [] for cell in cells
        }
        for u in units:
            name, n, algo, _index = u
            instance_n, runs, valid = unit_results[u]
            key = (name, n, algo)
            per_cell[key].extend(runs)
            cell_sizes[key].append(instance_n)
            if valid is None:
                cell_valid[key] = None
            elif cell_valid[key] is not None:
                cell_valid[key].extend(valid)

        payload_cells = []
        for (name, n, algo) in cells:
            runs = per_cell[(name, n, algo)]
            avgs = [avg for avg, _ in runs]
            worsts = [worst for _, worst in runs]
            sizes_seen = cell_sizes[(name, n, algo)]
            valid = cell_valid[(name, n, algo)]
            payload_cells.append({
                "family": name,
                "n": n,
                "algorithm": algo,
                "runs": len(runs),
                # actual built sizes: families like grid or the benchmark
                # lower-bound constructions round the target n
                "instance_n": {"min": min(sizes_seen), "max": max(sizes_seen)},
                "node_averaged": {
                    "max": max(avgs),
                    "mean": sum(avgs) / len(avgs),
                },
                "worst_case": {
                    "max": max(worsts),
                    "mean": sum(worsts) / len(worsts),
                },
                # null when the algorithm declares no LCL (or check=False)
                "validity": None if valid is None else {
                    "valid": sum(1 for ok in valid if ok),
                    "violations": sum(1 for ok in valid if not ok),
                },
            })

        return {
            "spec": {
                "families": list(family_names),
                "sizes": list(sizes),
                "algorithms": list(algorithms),
                "samples": self.samples,
                "instances": {
                    name: self.instances or get_family(name).default_count
                    for name in family_names
                },
                "seed": seed,
                "engine": self.engine,
                "id_mode": self.id_mode,
                "check": self.check,
                # deliberately no worker count: the payload must be
                # byte-identical for any parallelism level
            },
            "cells": payload_cells,
        }

    def run_json(
        self,
        families: Sequence[Union[str, Family]],
        sizes: Sequence[int],
        algorithms: Sequence[str],
        seed: int = 0,
    ) -> str:
        """The sweep aggregates as canonical JSON (sorted keys, 2-space
        indent, trailing newline) — the byte-comparable artifact."""
        payload = self.run(families, sizes, algorithms, seed)
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    # ------------------------------------------------------------------
    def _unit_key(self, unit: _Unit, seed: int) -> StoreKey:
        name, n, algo, index = unit
        return unit_key(self.store, name, n, seed, index, algo,
                        self.engine, self.id_mode, self.check, self.samples)

    def _build_tasks(
        self,
        units: Sequence[_Unit],
        seed: int,
        pool: Optional[SharedGraphPool],
    ) -> List[_Task]:
        """The task list for the units that actually need simulating.

        With a pool, every unique instance is built once here and
        published; tasks then carry only its digest key.  When the sweep
        has fewer (instance, algorithm) units than worker slots and the
        id mode draws per-sample assignments, units are further split
        across contiguous sample ranges — chunking never changes the
        per-cell run order (index-ascending, then sample-ascending), so
        aggregates stay byte-identical at every worker count, with
        sharing on or off, and with the store cold or warm.
        """
        deterministic = ID_MODES[self.id_mode].deterministic
        parts = 1
        if (pool is not None and not deterministic
                and len(units) < 2 * self.workers):
            parts = min(self.samples, -(-2 * self.workers // len(units)))
        chunks = _sample_chunks(self.samples, parts)

        tasks: List[_Task] = []
        graph_keys: Dict[Tuple[str, int, int], Optional[str]] = {}
        for (name, n, algo, index) in units:
            key = None
            if pool is not None:
                gk = (name, n, index)
                if gk not in graph_keys:
                    graph_keys[gk] = self._publish(pool, name, n, seed, index)
                key = graph_keys[gk]
            task_chunks = chunks
            if key is None or deterministic:
                task_chunks = ((0, self.samples),)
            for base, count in task_chunks:
                tasks.append(_Task(
                    family=name, n=n, index=index,
                    algorithm=algo, samples=count, seed=seed,
                    engine=self.engine, id_mode=self.id_mode,
                    check=self.check, graph_key=key,
                    sample_base=base,
                ))
        return tasks

    @staticmethod
    def _publish(
        pool: SharedGraphPool, name: str, n: int, seed: int, index: int
    ) -> Optional[str]:
        graph = get_family(name).instance(n, seed, index)
        key = stable_digest("sweep-graph", name, n, seed, index)
        try:
            pool.publish(key, graph)
        except ValueError:
            # unshareable inputs (alphabet too large) — workers rebuild
            return None
        return key

    def _map(
        self, tasks: List[_Task], pool: Optional[SharedGraphPool] = None
    ) -> List[Tuple[int, List[Tuple[float, int]], Optional[List[bool]]]]:
        if pool is None or len(pool) == 0:
            return fork_map(_run_task, tasks, self.workers,
                            label=_task_label)
        return fork_map(
            _run_task, tasks, self.workers,
            initializer=worker_attach_specs, initargs=(pool.specs(),),
            label=_task_label,
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _csv_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _csv_names(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Sweep LOCAL algorithms over seeded graph families and "
        "report family-sup node-averaged complexity aggregates as JSON.",
    )
    parser.add_argument(
        "--family", action="append", required=True, metavar="NAME[,NAME...]",
        help=f"family to sweep (repeatable / comma-separated); "
        f"known: {', '.join(sorted(FAMILIES))}",
    )
    parser.add_argument(
        "--sizes", type=_csv_ints, default=[64], metavar="N[,N...]",
        help="comma-separated target instance sizes (default: 64)",
    )
    parser.add_argument(
        "--algorithms", type=_csv_names, default=["two_coloring"],
        metavar="NAME[,NAME...]",
        help=f"comma-separated algorithm registry names (default: "
        f"two_coloring); known: {', '.join(sorted(ALGORITHMS))}",
    )
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (default: 1)")
    parser.add_argument("--seed", type=int, default=0,
                        help="sweep seed (default: 0)")
    parser.add_argument("--samples", type=int, default=3,
                        help="ID assignments per instance (default: 3)")
    parser.add_argument("--instances", type=int, default=None,
                        help="instances per (family, n) cell "
                        "(default: family-specific)")
    parser.add_argument("--engine", choices=list(ENGINE_CHOICES),
                        default="auto",
                        help="simulator engine; auto picks batched for "
                        "algorithms that support it (default: auto)")
    parser.add_argument("--id-mode", choices=sorted(ID_MODES),
                        default="random", dest="id_mode",
                        help="ID-assignment mode: random (digest-seeded) "
                        "or a deterministic adversarial assignment "
                        "(default: random)")
    parser.add_argument("--shm", action=argparse.BooleanOptionalAction,
                        default=None, dest="shm",
                        help="publish instances to shared memory so workers "
                        "attach zero-copy CSR views instead of rebuilding "
                        "(--no-shm forces the rebuild path; default: on "
                        "when workers > 1); the JSON payload is identical "
                        "either way")
    parser.add_argument("--check", action="store_true",
                        help="verify every produced labeling against its "
                        "algorithm's declared LCL and exit nonzero on any "
                        "violation; without the flag no verification runs "
                        "and cells report validity: null")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="content-addressed result store directory: "
                        "look every sweep unit up before simulating and "
                        "write misses back, so reruns are incremental; "
                        "the JSON payload is byte-identical with the "
                        "store cold, warm or absent")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write JSON here instead of stdout")
    args = parser.parse_args(argv)

    families: List[str] = []
    for chunk in args.family:
        families.extend(_csv_names(chunk))

    runner = SweepRunner(
        workers=args.workers, samples=args.samples,
        instances=args.instances, engine=args.engine,
        id_mode=args.id_mode, check=args.check, shared=args.shm,
        store=args.store,
    )
    text = runner.run_json(families, args.sizes, args.algorithms, args.seed)
    if runner.last_cache is not None:
        print(f"store: hits={runner.last_cache['hits']} "
              f"misses={runner.last_cache['misses']}", file=sys.stderr)
    payload = json.loads(text)
    cells = payload["cells"]
    if args.out:
        atomic_write_text(args.out, text)
        sup = max(c["node_averaged"]["max"] for c in cells)
        print(f"wrote {args.out}: {len(cells)} cells, "
              f"family-sup node-averaged = {sup:.2f}")
    else:
        sys.stdout.write(text)

    if args.check:
        checked = [c for c in cells if c["validity"] is not None]
        violations = sum(c["validity"]["violations"] for c in checked)
        unchecked = len(cells) - len(checked)
        summary = (
            f"validity: {sum(c['validity']['valid'] for c in checked)} valid, "
            f"{violations} violating run(s) across {len(checked)} checked "
            f"cell(s)"
        )
        if unchecked:
            summary += f"; {unchecked} cell(s) declare no LCL (unchecked)"
        print(summary, file=sys.stderr)
        if violations:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
