"""Per-directory severity configuration.

Severities are ``"error"`` (fails the run), ``"warning"`` (reported,
does not fail) and ``"off"`` (rule skipped).  Rules declare a default
(``error`` throughout) and :data:`PATH_OVERRIDES` relaxes them by
path prefix — the determinism rules are hard errors in library code but
benchmarks are allowed looser hygiene, and ``benchmarks/harness.py`` is
the one sanctioned wall-clock reader (its ``timed`` helper is how
benches are *supposed* to measure time, so DET003 is off exactly there).

Resolution: the longest matching prefix that configures the rule wins;
an exact file entry beats its directory entry.  An override map may use
the wildcard rule id ``"*"`` to set a severity for every rule under a
prefix; a rule-specific entry beats the wildcard at the same prefix.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["PATH_OVERRIDES", "severity_for", "normalize_path"]

#: ``(path prefix, {rule id: severity})`` — longest matching prefix wins.
PATH_OVERRIDES: List[Tuple[str, Dict[str, str]]] = [
    # benchmarks are exploratory: determinism lapses are worth a warning,
    # not a broken build (they never feed byte-compared payloads)
    ("benchmarks", {
        "DET001": "warning",
        "DET004": "warning",
        "IPD001": "warning",
        # benches legitimately mix timing (harness.timed) with result
        # persistence in one function; their tables are not byte-compared
        "STORE001": "warning",
        "STORE002": "warning",
    }),
    # the sanctioned wall-clock reader: every bench times through
    # harness.timed()/peak_rss_mib() rather than calling the clock itself
    ("benchmarks/harness.py", {"DET003": "off"}),
    # examples are linted for visibility, not gated: everything there is
    # a warning so the snippets stay honest without failing the build
    ("examples", {"*": "warning"}),
]


def normalize_path(path: str) -> str:
    """Posix-style relative display path (what prefixes match against)."""
    return path.replace("\\", "/").lstrip("./")


def severity_for(path: str, rule_id: str, default: str) -> str:
    """The effective severity of ``rule_id`` for the file at ``path``."""
    path = normalize_path(path)
    best = default
    # (prefix length, 1 for a rule-specific entry / 0 for "*"): longest
    # prefix wins, specific beats wildcard at equal length
    best_rank = (-1, -1)
    for prefix, overrides in PATH_OVERRIDES:
        severity = overrides.get(rule_id)
        rank = (len(prefix), 1)
        if severity is None:
            severity = overrides.get("*")
            rank = (len(prefix), 0)
        if severity is None:
            continue
        if path == prefix or path.startswith(prefix + "/"):
            if rank > best_rank:
                best = severity
                best_rank = rank
    return best
