"""repro.lint — a contract-aware static analyzer for this repository.

The repo's correctness story rests on disciplines stated in prose
(``docs/engine-contract.md``, the :mod:`repro.parallel` docstring) and
pinned by runtime differential tests: every random draw derives from a
``stable_seed`` digest, ``fork_map`` results stay task-ordered, attached
shared-memory graphs are never written, ``decide``/``decide_batch``
stay inside the View API, and per-execution caches reset in ``setup``.
Runtime tests catch a violation only on the inputs they happen to run;
this package catches the *pattern* on every line, at review time — the
same local-checkability idea behind :mod:`repro.lcl.kernel` (verify a
local constraint everywhere, get a global guarantee).

Layout:

* :mod:`repro.lint.core` — the rule framework: :class:`Finding`,
  :class:`Rule`, :class:`ModuleContext` (shared import/scope
  resolution), inline ``# lint: allow(RULE-ID) reason`` suppressions,
  and single-file analysis.
* :mod:`repro.lint.config` — per-directory severity overrides
  (DET rules are errors in ``src/``, relaxed in ``benchmarks/``).
* :mod:`repro.lint.baseline` — the JSON baseline file so CI gates on
  regressions only; every baselined finding must carry a reason.
* :mod:`repro.lint.rules` — the rule packs (DET, ENG, PAR, SHM).
* :mod:`repro.lint.runner` / ``python -m repro.lint`` — file
  collection, :func:`repro.parallel.fork_map` fan-out (the linter obeys
  the ordered-fan-out discipline it enforces) and deterministic
  ``text``/``json`` reports, byte-identical at every ``--jobs`` count.
"""

from .core import Finding, ModuleContext, Rule, analyze_file, analyze_source
from .rules import all_rules
from .runner import LintReport, run_lint

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "analyze_file",
    "analyze_source",
    "all_rules",
    "LintReport",
    "run_lint",
]
