"""``python -m repro.lint`` — the analyzer's command line.

Exit codes: 0 clean (or warnings only), 1 non-baselined errors found,
2 usage / baseline errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from .baseline import BaselineError, prune_baseline, render_baseline
from .runner import run_lint

__all__ = ["main"]

_DEFAULT_PATHS = ["src", "tests", "benchmarks", "examples"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Contract-aware static analyzer for this repository "
                    "(determinism, engine and shared-memory disciplines).",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint "
             f"(default: {' '.join(_DEFAULT_PATHS)})")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is byte-identical at any --jobs)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fork_map workers for file analysis (default: 1)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="JSON baseline of known findings (each needs a reason)")
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="write current findings as a baseline skeleton to FILE "
             "(edit in per-entry reasons afterwards) and exit")
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="rewrite the --baseline file in place dropping stale "
             "entries (findings no longer present), keeping each "
             "surviving entry's reason")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the active rules and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    opts = parser.parse_args(argv)

    if opts.list_rules:
        from .rules import all_rules
        for rule in all_rules():
            print(f"{rule.id}  [{rule.default_severity}]  {rule.summary}")
        return 0

    paths: List[str] = opts.paths or [
        p for p in _DEFAULT_PATHS if os.path.exists(p)]
    if opts.jobs < 1:
        parser.error("--jobs must be >= 1")
    if opts.prune_baseline and not opts.baseline:
        parser.error("--prune-baseline requires --baseline")
    try:
        report = run_lint(paths, jobs=opts.jobs,
                          baseline_path=opts.baseline)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if opts.prune_baseline:
        try:
            dropped = prune_baseline(opts.baseline, report.stale_baseline)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"pruned {dropped} stale entr"
              f"{'y' if dropped == 1 else 'ies'} from {opts.baseline}")
        report.stale_baseline = []

    if opts.write_baseline:
        with open(opts.write_baseline, "w", encoding="utf-8") as fh:
            fh.write(render_baseline(
                report.findings, reason="FILL IN: why is this intentional?"))
        print(f"wrote {len(report.findings)} entries to "
              f"{opts.write_baseline}; edit in per-entry reasons")
        return 0

    out = report.to_json() if opts.format == "json" else report.to_text()
    sys.stdout.write(out)
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
