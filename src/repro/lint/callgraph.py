"""Project call graph: module naming, import resolution, call linking.

Phase 1 of the two-phase analyzer (see :mod:`repro.lint.summaries`)
needs to know, for every call site in the project, *which project
function it lands on* — that is what lets a summary bit (an entropy
draw, a private-view read, a shared-buffer write) propagate from a
helper to the ``decide``/``fork_map`` entry that reaches it.

The resolution is deliberately syntactic and conservative:

* **module naming** — a display path maps to a dotted module name
  (``src/repro/sweep.py`` → ``repro.sweep``); top-level script
  directories (``benchmarks/``, ``tests/``) also register their bare
  stem (``harness``) because that is how sibling scripts import them.
* **imports** — ``import a.b``, ``from a import c`` (including relative
  forms, resolved against the module's own package) bind local names to
  absolute dotted paths.
* **re-exports** — a dotted path that crosses a package ``__init__``
  re-export (``repro.store.ResultStore`` → ``repro.store.cas.
  ResultStore``) is chased through each module's export map, a few hops
  deep.
* **calls** — ``f(...)`` through module defs and imports,
  ``mod.f(...)``/``Class.method(...)`` through attribute chains,
  ``self.m(...)`` through the enclosing class and its project-resolved
  bases, and ``Class(...)`` to ``Class.__init__``.

What it does **not** resolve (documented in ``docs/lint.md``): calls
through instance-typed locals (``runner.run()``), values returned from
factories, ``super()``, and dynamic dispatch.  Unresolved calls simply
contribute no edges — the analysis under-approximates, it never guesses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = [
    "module_name_for_path",
    "CallSite",
    "FunctionFacts",
    "ClassFacts",
    "ModuleFacts",
    "CallGraph",
]

#: attribute names whose call marks the receiver as an attached
#: shared-memory object (mirrors rules/contracts.SharedGraphWriteRule)
ATTACH_CALLS = frozenset({"shared_graph", "attach_graph",
                          "from_csr_buffers"})


def module_name_for_path(path: str) -> str:
    """Dotted module name for a root-relative display path.

    ``src/`` is the package root (``src/repro/x.py`` → ``repro.x``,
    ``__init__.py`` names the package itself); other top-level
    directories keep their directory as a prefix (``benchmarks/
    harness.py`` → ``benchmarks.harness``).  Path oddities (absolute
    paths, ``..`` components) degrade to the sanitized remainder — a
    wrong-but-harmless module name only makes resolution miss.
    """
    parts = [p for p in path.replace("\\", "/").split("/")
             if p not in ("", ".", "..")]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return "<unknown>"
    last = parts[-1]
    if last.endswith(".py"):
        last = last[:-3]
    if last == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + [last]
    return ".".join(parts) if parts else "<unknown>"


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function unit.

    ``target`` is a symbolic reference resolved at link time:
    ``("qual", dotted)`` for import/def-based chains, ``("self", name)``
    for ``self.name(...)``, ``("bare", name)`` for names the module
    could not resolve (kept for intra-project diagnostics only).

    Argument facts are recorded twice, for the two consumers: ``*_bare``
    maps argument slots to *bare caller names* (what per-parameter taint
    propagation follows), ``*_roots`` maps slots to the closure-expanded
    set of local names influencing the argument (what the STORE002 key
    completeness check follows).
    """

    line: int
    col: int
    target: Tuple[str, str]
    pos_bare: Tuple[Tuple[int, str], ...] = ()
    kw_bare: Tuple[Tuple[str, str], ...] = ()
    pos_roots: Tuple[Tuple[int, FrozenSet[str]], ...] = ()
    kw_roots: Tuple[Tuple[str, FrozenSet[str]], ...] = ()


@dataclass(frozen=True)
class Evidence:
    """Where a summary bit is locally generated."""

    path: str
    line: int
    detail: str


@dataclass
class FunctionFacts:
    """Everything phase 1 records about one function unit.

    A *unit* is a ``def``, an ``async def``, a module/class-level
    ``name = lambda ...``, or the module body itself (qualname
    ``<mod>.<module>``, caller-only).  Nested defs are their own units.
    """

    qualname: str
    name: str
    path: str
    module: str
    line: int
    params: Tuple[str, ...]
    col: int = 0
    end_line: int = 0
    class_qual: Optional[str] = None
    # ambient evidence (None = bit not locally generated)
    entropy: Optional[Evidence] = None
    wall_clock: Optional[Evidence] = None
    set_escape: Optional[Evidence] = None
    # per-parameter evidence
    private_reads: Dict[str, Evidence] = field(default_factory=dict)
    buffer_writes: Dict[str, Evidence] = field(default_factory=dict)
    #: params whose value flows into a stable_digest/<store>.key call
    digest_params: Tuple[str, ...] = ()
    #: True when the body calls stable_digest/stable_seed/<store>.key
    has_digest: bool = False
    #: names bound to attached shared-memory graphs/arrays (→ origin line)
    attached: Dict[str, int] = field(default_factory=dict)
    calls: List[CallSite] = field(default_factory=list)
    #: symbolic refs passed to fork_map as fn=/initializer=
    fork_workers: List[Tuple[Tuple[str, str], int]] = field(
        default_factory=list)
    #: ``<store>.put(key, payload)`` sites for the STORE002 check:
    #: (line, col, payload_roots, key_call target or None,
    #:  key argument roots per slot, direct digest roots or None)
    store_puts: List["StorePut"] = field(default_factory=list)


@dataclass(frozen=True)
class StorePut:
    """One ``<store>.put(key, payload)`` site, pre-digested for the
    STORE002 completeness check."""

    line: int
    col: int
    #: closure-expanded local names influencing the payload expression
    payload_roots: FrozenSet[str]
    #: closure-expanded names of the put receiver (never key-checked)
    receiver_roots: FrozenSet[str]
    #: the key expression reduced to provenance: for each contributing
    #: call — a symbolic target plus per-slot roots; plus any roots that
    #: reach the key without passing through a call (digest-direct)
    key_calls: Tuple[CallSite, ...]
    direct_roots: FrozenSet[str]
    #: True when some key provenance involved stable_digest/<store>.key
    #: directly (those roots are complete by construction)
    saw_digest: bool


@dataclass
class ClassFacts:
    qualname: str
    name: str
    #: base classes as symbolic dotted refs (resolved at link time)
    bases: Tuple[str, ...] = ()


@dataclass
class ModuleFacts:
    """Phase-1 facts for one file — plain data, picklable across
    :func:`repro.parallel.fork_map`."""

    path: str
    module: str
    functions: List[FunctionFacts] = field(default_factory=list)
    classes: Dict[str, ClassFacts] = field(default_factory=dict)
    #: local name → absolute dotted path (imports, defs, classes)
    exports: Dict[str, str] = field(default_factory=dict)


# ----------------------------------------------------------------------
# import resolution
# ----------------------------------------------------------------------
def _resolve_relative(module: str, is_package: bool, level: int,
                      target: Optional[str]) -> str:
    """Absolute dotted base for a ``from``-import of ``target`` at
    ``level`` dots, evaluated inside ``module``."""
    if level == 0:
        return target or ""
    parts = module.split(".")
    package = parts if is_package else parts[:-1]
    anchor = package[: max(0, len(package) - (level - 1))]
    base = ".".join(anchor)
    if target:
        base = f"{base}.{target}" if base else target
    return base


def build_import_map(tree: ast.Module, module: str,
                     is_package: bool) -> Dict[str, str]:
    """Local name → absolute dotted path for every import binding."""
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    out[top] = top
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(module, is_package, node.level,
                                     node.module)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                out[local] = f"{base}.{alias.name}" if base else alias.name
    return out


def dotted_chain(node: ast.AST) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """``(base name, attribute parts)`` of a ``Name.attr.attr`` chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    return node.id, tuple(reversed(parts))


# ----------------------------------------------------------------------
# linking
# ----------------------------------------------------------------------
class CallGraph:
    """Linked view over every module's facts.

    * :meth:`resolve` — absolute dotted path → defining qualname,
      chasing package re-exports and short-name aliases.
    * :meth:`resolve_call` — a :class:`CallSite`'s symbolic target →
      ``(function qualname, positional offset)`` or ``None``.  The
      offset is 1 when the first declared parameter is bound implicitly
      (``self.m(...)``, ``Class(...)``), else 0.
    """

    def __init__(self, modules: Sequence[ModuleFacts]) -> None:
        self.modules: Dict[str, ModuleFacts] = {}
        self.functions: Dict[str, FunctionFacts] = {}
        self.classes: Dict[str, ClassFacts] = {}
        self._aliases: Dict[str, str] = {}
        for facts in sorted(modules, key=lambda m: m.path):
            if facts.module not in self.modules:
                self.modules[facts.module] = facts
            short = facts.module.split(".")[-1]
            if "." in facts.module:
                self._aliases.setdefault(short, facts.module)
            for fn in facts.functions:
                self.functions.setdefault(fn.qualname, fn)
            for qual, cls in facts.classes.items():
                self.classes.setdefault(qual, cls)

    # -- name resolution ------------------------------------------------
    def resolve(self, dotted: str, _depth: int = 0) -> Optional[str]:
        if _depth > 8 or not dotted:
            return None
        if dotted in self.functions or dotted in self.classes:
            return dotted
        parts = dotted.split(".")
        # chase re-exports: the longest prefix that is a known module and
        # exports the next component rewrites the path
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            mod = self.modules.get(prefix)
            if mod is None:
                continue
            target = mod.exports.get(parts[i])
            if target is None:
                return None
            rest = parts[i + 1:]
            rewritten = ".".join([target] + rest)
            if rewritten == dotted:
                return None
            return self.resolve(rewritten, _depth + 1)
        # short-name alias for top-level script dirs (harness → benchmarks.harness)
        alias = self._aliases.get(parts[0])
        if alias is not None:
            return self.resolve(".".join([alias] + parts[1:]), _depth + 1)
        return None

    def method_on(self, class_qual: str, name: str,
                  _depth: int = 0) -> Optional[str]:
        """Qualname of ``name`` looked up on a class or its
        project-resolved bases (single-pass DFS, depth-limited)."""
        if _depth > 8:
            return None
        candidate = f"{class_qual}.{name}"
        if candidate in self.functions:
            return candidate
        cls = self.classes.get(class_qual)
        if cls is None:
            return None
        for base in cls.bases:
            resolved = self.resolve(base)
            if resolved is not None and resolved in self.classes:
                found = self.method_on(resolved, name, _depth + 1)
                if found is not None:
                    return found
        return None

    # -- call resolution ------------------------------------------------
    def resolve_call(
        self, caller: FunctionFacts, site: CallSite,
    ) -> Optional[Tuple[str, int]]:
        kind, ref = site.target
        if kind == "self":
            if caller.class_qual is None:
                return None
            method = self.method_on(caller.class_qual, ref)
            return None if method is None else (method, 1)
        if kind != "qual":
            return None
        resolved = self.resolve(ref)
        if resolved is None:
            return None
        if resolved in self.functions:
            return (resolved, 0)
        if resolved in self.classes:
            init = self.method_on(resolved, "__init__")
            return None if init is None else (init, 1)
        return None

    def resolve_worker(
        self, caller: FunctionFacts, target: Tuple[str, str],
    ) -> Optional[str]:
        """A fork_map ``fn=``/``initializer=`` reference → qualname."""
        resolved = self.resolve_call(
            caller, CallSite(line=0, col=0, target=target))
        return None if resolved is None else resolved[0]

    def param_for_slot(self, qualname: str, offset: int,
                       slot: object) -> Optional[str]:
        """The callee parameter a positional index / keyword binds to."""
        fn = self.functions.get(qualname)
        if fn is None:
            return None
        if isinstance(slot, int):
            index = slot + offset
            return fn.params[index] if 0 <= index < len(fn.params) else None
        return slot if slot in fn.params else None
