"""File collection, parallel analysis and deterministic reports.

The runner eats its own dogfood: files fan out over
:func:`repro.parallel.fork_map` — the exact ordered-fan-out discipline
DET005/PAR001 enforce — with a module-level worker, so ``--format json``
output is byte-identical at every ``--jobs`` count (test-gated by
``tests/test_lint.py``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..parallel import fork_map
from .baseline import BaselineKey, load_baseline, split_findings
from .config import normalize_path
from .core import Finding, analyze_file

__all__ = ["LintReport", "collect_files", "run_lint"]


def collect_files(paths: Sequence[str],
                  root: str = ".") -> List[Tuple[str, str]]:
    """``(abs_path, display_path)`` pairs, sorted by display path.

    Directories expand to every ``*.py`` beneath them; files are taken
    as given.  Display paths are root-relative and posix-style so the
    report (and baseline keys) are machine-independent.
    """
    root = os.path.abspath(root)
    out: Dict[str, str] = {}

    def add(abs_path: str) -> None:
        rel = os.path.relpath(abs_path, root)
        out[normalize_path(rel.replace(os.sep, "/"))] = abs_path

    for path in paths:
        abs_path = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isdir(abs_path):
            for dirpath, dirnames, filenames in os.walk(abs_path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git"))
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        add(os.path.join(dirpath, name))
        elif os.path.isfile(abs_path):
            add(abs_path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return [(out[display], display) for display in sorted(out)]


def _analyze_task(task: Tuple[str, str]) -> List[Finding]:
    """fork_map worker: lint one file (module-level, hence picklable)."""
    abs_path, display_path = task
    return analyze_file(abs_path, display_path)


@dataclass
class LintReport:
    """The outcome of one lint run over a set of files."""

    files: int
    findings: List[Finding]                       # active (not baselined)
    baselined: List[Tuple[Finding, str]] = field(default_factory=list)
    stale_baseline: List[BaselineKey] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    # -- rendering ------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        return {
            "files": self.files,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "baselined": len(self.baselined),
            "stale_baseline": len(self.stale_baseline),
        }

    def to_json(self) -> str:
        payload = {
            "findings": [f.to_json() for f in self.findings],
            "baselined": [
                dict(f.to_json(), reason=reason)
                for f, reason in self.baselined
            ],
            "stale_baseline": [
                {"file": file, "rule": rule, "line": line}
                for file, rule, line in self.stale_baseline
            ],
            "summary": self.summary(),
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def to_text(self) -> str:
        lines = [f.render() for f in self.findings]
        for key in self.stale_baseline:
            file, rule, line = key
            lines.append(f"{file}:{line}: stale baseline entry for {rule} "
                         "(finding no longer present — prune it)")
        s = self.summary()
        lines.append(
            f"{s['files']} files: {s['errors']} errors, "
            f"{s['warnings']} warnings, {s['baselined']} baselined, "
            f"{s['stale_baseline']} stale baseline entries"
        )
        return "\n".join(lines) + "\n"


def run_lint(
    paths: Sequence[str],
    jobs: int = 1,
    baseline_path: Optional[str] = None,
    root: str = ".",
) -> LintReport:
    """Lint ``paths`` with ``jobs`` workers, honouring a baseline file."""
    tasks = collect_files(paths, root=root)
    per_file = fork_map(_analyze_task, tasks, workers=jobs)
    findings = sorted(f for file_findings in per_file
                      for f in file_findings)
    baseline = load_baseline(baseline_path) if baseline_path else {}
    active, matched, stale = split_findings(findings, baseline)
    return LintReport(files=len(tasks), findings=active,
                      baselined=matched, stale_baseline=stale)
